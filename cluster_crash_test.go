// Crash e2e tests for cluster self-healing: a node of a 3-node broker
// cluster is killed (SIGKILL semantics — no Leave, no drain, no goodbye
// on the wire) in the middle of a live capture stream. The failure
// detector must notice, crash takeover must reassign the dead node's
// partitions and redeliver the retained link frames, and the end-to-end
// machinery (device spools, end-to-end acks, store dedup) must converge
// the pipeline to exactly-once despite the frames that died inside the
// killed broker.
package provlight_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	provlight "github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/cluster"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/transport"
	"github.com/provlight/provlight/internal/wal"
)

const crashSuspectTimeout = 600 * time.Millisecond

func newCrashCluster(t testing.TB, lb transport.Transport) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:             3,
		Transport:         lb,
		RetryInterval:     time.Second,
		DrainTimeout:      20 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectTimeout:    crashSuspectTimeout,
		LinkKeepAlive:     time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// killAndAwaitTakeover kills a node and waits for the detector to remove
// it, returning the detection+takeover latency.
func killAndAwaitTakeover(t testing.TB, cl *cluster.Cluster, id string) time.Duration {
	t.Helper()
	killAt := time.Now()
	if err := cl.Kill(id); err != nil {
		t.Fatalf("kill %s: %v", id, err)
	}
	deadline := killAt.Add(30 * time.Second)
	for len(cl.NodeIDs()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("detector never removed %s", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return time.Since(killAt)
}

// TestClusterPipelineCrash is the self-healing headline: spooling devices
// stream through a 3-node cluster into a durable store while one node is
// killed mid-stream. The detector fires within its budget, partitions
// reassign, and — after the spool/ack/dedup machinery drains — the store
// holds every record exactly once. Frames that died inside the killed
// broker are re-published by the device spools; frames the takeover
// redelivered twice are deduplicated by the store's frame-origin dedup.
func TestClusterPipelineCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("crash e2e in -short mode")
	}
	lb := transport.NewLoopback()
	cl := newCrashCluster(t, lb)
	addrs := cl.Addrs()

	store, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
		Dir:           t.TempDir(),
		Sync:          wal.SyncInterval,
		SnapshotEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	tr, err := translate.New(context.Background(), translate.Config{
		ClusterAddrs:  addrs,
		Transport:     lb,
		ClientID:      "crash-translator",
		KeepAlive:     300 * time.Millisecond,
		RetryInterval: 200 * time.Millisecond,
		MaxRetries:    10,
		Targets:       []translate.Target{translate.NewStoreTarget(store, "provlight")},
	})
	if err != nil {
		t.Fatalf("translate.New: %v", err)
	}
	defer tr.Close()

	const devices = 4
	const tasks = 40
	clients := make([]*provlight.Client, devices)
	for d := range clients {
		c, err := provlight.NewClient(context.Background(), provlight.Config{
			Broker:         addrs[d%2], // n0, n1 — the survivors
			Transport:      lb,
			ClientID:       fmt.Sprintf("dev-%d", d),
			SpoolDir:       t.TempDir(),
			WindowSize:     16,
			AckWindow:      32,
			RedeliverAfter: 500 * time.Millisecond,
			RetryInterval:  time.Second,
			OnError:        func(err error) { t.Logf("device: %v", err) },
		})
		if err != nil {
			t.Fatalf("device %d: %v", d, err)
		}
		defer c.Close()
		clients[d] = c
	}

	kill := make(chan struct{})
	takeoverDone := make(chan time.Duration, 1)
	go func() {
		<-kill
		takeoverDone <- killAndAwaitTakeover(t, cl, "n2")
	}()

	start := time.Now()
	errs := make(chan error, devices)
	for d := range clients {
		go func(d int) {
			wf := clients[d].NewWorkflow(fmt.Sprintf("wf-%d", d))
			if err := wf.Begin(); err != nil {
				errs <- fmt.Errorf("device %d workflow begin: %w", d, err)
				return
			}
			for i := 0; i < tasks; i++ {
				task := wf.NewTask(fmt.Sprintf("d%d-t%04d", d, i), "train")
				if err := task.Begin(provlight.NewData(fmt.Sprintf("in-%d-%d", d, i),
					provlight.Attrs(map[string]any{"lr": 0.01}))); err != nil {
					errs <- fmt.Errorf("device %d task %d begin: %w", d, i, err)
					return
				}
				if err := task.End(provlight.NewData(fmt.Sprintf("out-%d-%d", d, i),
					provlight.Attrs(map[string]any{"accuracy": float64(i)}))); err != nil {
					errs <- fmt.Errorf("device %d task %d end: %w", d, i, err)
					return
				}
				if d == 0 && i == tasks/3 {
					close(kill)
				}
			}
			errs <- nil
		}(d)
	}
	for i := 0; i < devices; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	detectLatency := <-takeoverDone

	// Drain every device spool: Shutdown only returns once each frame has
	// been end-to-end acknowledged by the translator, which means it was
	// durably applied (or deduplicated) by the store.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for d, c := range clients {
		if err := c.Shutdown(ctx); err != nil {
			t.Fatalf("device %d drain: %v (stats %+v)", d, err, c.StatsSnapshot())
		}
	}
	tr.Drain()
	elapsed := time.Since(start)

	const n = devices * tasks
	if got := store.TaskCount("provlight"); got != n {
		t.Fatalf("task catalog has %d entries, want exactly %d", got, n)
	}
	for _, set := range []string{"train_input", "train_output"} {
		rows, err := store.Select(context.Background(), dfanalyzer.Query{Dataflow: "provlight", Set: set})
		if err != nil {
			t.Fatalf("select %s: %v", set, err)
		}
		if len(rows) != n {
			t.Fatalf("%s has %d rows, want exactly %d (lost or duplicated)", set, len(rows), n)
		}
		seen := map[any]bool{}
		for _, row := range rows {
			id := row["task_id"]
			if seen[id] {
				t.Fatalf("%s: duplicated task %v", set, id)
			}
			seen[id] = true
		}
	}

	// The detector's latency budget: suspicion needs one timeout of
	// silence, confirmation and takeover must not take another.
	if detectLatency > 2*crashSuspectTimeout {
		t.Errorf("takeover took %v, budget 2x suspicion timeout = %v", detectLatency, 2*crashSuspectTimeout)
	}
	topo := cl.Topology()
	for p, owner := range topo.Owners {
		if owner == "n2" {
			t.Fatalf("partition %d still owned by killed n2", p)
		}
	}
	redelivered, lost := uint64(0), uint64(0)
	for _, st := range cl.Stats() {
		redelivered += st.TakeoverRedelivered
		lost += st.LinkLost
	}
	rate := float64(2*n+devices) / elapsed.Seconds()
	t.Logf("takeover in %v; %d records at %.0f frames/s; %d redelivered, %d link-lost",
		detectLatency, n, rate, redelivered, lost)

	if os.Getenv("BENCH_JSON") != "" {
		out := map[string]any{
			"benchmark":          "ClusterTakeover",
			"detect_takeover_ms": float64(detectLatency.Microseconds()) / 1000,
			"suspect_timeout_ms": float64(crashSuspectTimeout.Microseconds()) / 1000,
			"budget_ms":          float64((2 * crashSuspectTimeout).Microseconds()) / 1000,
			"pass_2x_suspicion":  detectLatency <= 2*crashSuspectTimeout,
			"records":            n,
			"pipeline_fps":       rate,
			"takeover_redeliv":   redelivered,
			"link_lost":          lost,
		}
		data, _ := json.MarshalIndent(out, "", "  ")
		if err := os.WriteFile(filepath.Join(".", "BENCH_cluster_takeover.json"), append(data, '\n'), 0o644); err != nil {
			t.Logf("write BENCH_cluster_takeover.json: %v", err)
		}
	}
}

// TestTranslatorFailoverOnNodeDeath: a node dies WITHOUT a clean Leave —
// its broker just stops answering (no DISCONNECT goes out on loopback; a
// dead endpoint swallows datagrams silently). The translator session
// homed on it must notice via keepalive silence, redial a surviving
// node, and the stream must stay exactly-once: records published before
// the kill are fully quiesced, records published after it route through
// the survivors (including takeover redelivery of frames retained toward
// the corpse), so the target must end with every record exactly once.
func TestTranslatorFailoverOnNodeDeath(t *testing.T) {
	lb := transport.NewLoopback()
	cl := newCrashCluster(t, lb)

	mem := translate.NewMemoryTarget()
	tr, err := translate.New(context.Background(), translate.Config{
		ClusterAddrs:  cl.Addrs(),
		Transport:     lb,
		ClientID:      "failover-translator",
		KeepAlive:     300 * time.Millisecond,
		RetryInterval: 200 * time.Millisecond,
		MaxRetries:    10,
		Targets:       []translate.Target{mem},
		DisableAcks:   true,
	})
	if err != nil {
		t.Fatalf("translate.New: %v", err)
	}
	defer tr.Close()
	if got := tr.Sessions(); got != 3 {
		t.Fatalf("translator opened %d sessions, want one per node", got)
	}

	dev, err := provlight.NewClient(context.Background(), provlight.Config{
		Broker:     cl.Addrs()[0],
		Transport:  lb,
		ClientID:   "dev-0",
		WindowSize: 16,
	})
	if err != nil {
		t.Fatalf("device: %v", err)
	}
	defer dev.Close()

	// Phase 1: capture and fully quiesce, so nothing is in flight when
	// the node dies (in-flight frames need spool+dedup to stay exactly-
	// once through a crash — that path is TestClusterPipelineCrash's).
	const tasks = 15
	wf := dev.NewWorkflow("wf-failover")
	if err := wf.Begin(); err != nil {
		t.Fatalf("workflow begin: %v", err)
	}
	capture := func(from, to int) {
		for i := from; i < to; i++ {
			task := wf.NewTask(fmt.Sprintf("t%04d", i), "step")
			if err := task.Begin(provlight.NewData(fmt.Sprintf("in-%d", i), nil)); err != nil {
				t.Fatalf("task %d begin: %v", i, err)
			}
			if err := task.End(provlight.NewData(fmt.Sprintf("out-%d", i), nil)); err != nil {
				t.Fatalf("task %d end: %v", i, err)
			}
		}
		if err := dev.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	capture(0, tasks)
	phase1 := 1 + 2*tasks
	waitRecords(t, mem, phase1)

	// The node dies. No Leave, no drain, no goodbye.
	latency := killAndAwaitTakeover(t, cl, "n2")
	t.Logf("takeover in %v", latency)

	// Phase 2: the stream continues; topics previously owned by n2 now
	// route to survivors, and the translator's third session redials.
	capture(tasks, 2*tasks)
	want := 1 + 2*2*tasks
	waitRecords(t, mem, want)
	tr.Drain()
	if got := mem.Len(); got != want {
		t.Fatalf("target has %d records, want exactly %d (duplicate delivery)", got, want)
	}
	// The session homed on the dead node notices via keepalive silence
	// (1.5x KeepAlive of nothing heard) and redials a survivor; that can
	// trail the record stream, which survivors' group members already
	// cover.
	deadline := time.Now().Add(30 * time.Second)
	for tr.Stats().SessionRedials == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("translator never redialed a session: %+v", tr.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitRecords(t testing.TB, mem *translate.MemoryTarget, want int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for mem.Len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("target has %d/%d records", mem.Len(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
