// Failover end-to-end test for the replication subsystem: a spooling
// capture client over a lossy netem link feeds a primary store that ships
// its WAL to two followers; the primary process is SIGKILLed mid-stream,
// the most-caught-up follower is promoted under a fenced term, and the
// drained pipeline must hold every record exactly once on the promoted
// store — with the deposed primary's zombie writes rejected on rejoin.
package provlight_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/chaos"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/replica"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/wal"
)

// openReplStore opens a durable store tuned for replication tests.
func openReplStore(t testing.TB, dir string) *dfanalyzer.Store {
	t.Helper()
	store, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
		Dir:           dir,
		Sync:          wal.SyncInterval,
		SnapshotEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func startTestFollower(t testing.TB, store *dfanalyzer.Store, primary, id string) *replica.Follower {
	t.Helper()
	f, err := replica.StartFollower(store, replica.FollowerOptions{
		Primary:      primary,
		ID:           id,
		ReconnectMin: 25 * time.Millisecond,
		ReconnectMax: 250 * time.Millisecond,
		AckInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func lastSeq(store *dfanalyzer.Store) uint64 {
	_, last := store.WALSeqs()
	return last
}

func waitCondition(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// zombieFrame builds a direct-ingest frame distinct from the client's
// capture stream (its own origin), for exercising deposed-primary writes.
func zombieFrame(seq uint64) []dfanalyzer.FrameMsg {
	return []dfanalyzer.FrameMsg{{
		Origin: "provlight/zombie/records", Seq: seq,
		Tasks: []*dfanalyzer.TaskMsg{{
			Dataflow: "provlight", Transformation: "train",
			ID: fmt.Sprintf("z%d", seq), Status: dfanalyzer.StatusFinished,
			Sets: []dfanalyzer.SetData{{Tag: "train_output", Elements: []dfanalyzer.Element{{float64(seq)}}}},
		}},
	}}
}

// TestFailoverExactlyOnce is the headline replication test. Topology:
// one spooling client over a 25%-loss link, one broker, a translator
// feeding the primary store, the primary shipping WAL to two followers
// with MinSync=1 semi-sync acks. Mid-stream the whole primary process
// (translator, replication server, store) is SIGKILLed; zombie writes
// land on the deposed primary after its followers are gone; the
// most-caught-up follower is promoted under term 2; the survivor
// re-points; a new translator (term-stamped) resumes; and the client
// drains. The promoted store must hold every client record exactly once,
// stale-term writes must be rejected in both directions, and the deposed
// primary must be refused on rejoin as diverged.
func TestFailoverExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("failover e2e in -short mode")
	}
	spoolDir := t.TempDir()
	dirA, dirB, dirC := t.TempDir(), t.TempDir(), t.TempDir()
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// ---- primary process: store A + replication server + translator ----
	storeA := openReplStore(t, dirA)
	replA, err := replica.NewServer(storeA, replica.Options{
		MinSync:           1,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := replA.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	termA := storeA.CurrentTerm()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	targetA := translate.NewStoreTarget(storeA, "provlight")
	targetA.SetTerm(termA)
	trA, err := translate.New(ctx, translate.Config{
		Broker:        b.Addr(),
		ClientID:      "translator-a",
		Targets:       []translate.Target{targetA},
		Term:          termA,
		AckGate:       replA.CommitGate(10 * time.Second),
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    10,
		OnError:       func(err error) { t.Logf("translator-a: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// The primary "process": one SIGKILL takes down translator, WAL
	// shipping, and the store together, with no graceful flush.
	primaryProc := chaos.NewProc()
	primaryProc.OnKill(func() { trA.Abort() })
	primaryProc.OnKill(func() { replA.Close() })

	// ---- two followers ----
	storeB, storeC := openReplStore(t, dirB), openReplStore(t, dirC)
	fB := startTestFollower(t, storeB, replA.Addr(), "replica-b")
	fC := startTestFollower(t, storeC, replA.Addr(), "replica-c")

	// ---- phase 1: capture over the lossy link, let it replicate ----
	const n = 36
	client := newSpoolingClient(t, b.Addr(), spoolDir)
	captureRange(t, client, 0, n/2)
	waitCondition(t, "followers caught up with phase 1", func() bool {
		// The whole phase-1 capture must be on the primary (not just the
		// term record) and fully replicated before the plug gets pulled.
		if storeA.TaskCount("provlight") < n/2 {
			return false
		}
		_, last := storeA.WALSeqs()
		return fB.AppliedSeq() == last && fC.AppliedSeq() == last
	})
	t.Logf("phase1: client %+v", client.StatsSnapshot())

	// Hold follower C back so promotion has a real choice: stop its
	// replication, keep B live.
	fC.Stop()

	captureRange(t, client, n/2, 3*n/4)
	waitCondition(t, "follower B ahead of stopped C", func() bool {
		return fB.AppliedSeq() > lastSeq(storeC)
	})

	// ---- SIGKILL the primary process mid-stream ----
	primaryProc.Kill()

	// Zombie writes: the deposed primary's store is still open in-process
	// and still believes it is the term-1 primary; writes land on it but
	// can never reach the promoted lineage.
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := storeA.IngestFramesTerm(termA, zombieFrame(seq)); err != nil {
			t.Fatalf("zombie write %d on deposed primary: %v", seq, err)
		}
	}

	// The client keeps capturing into dead air; the spool holds it.
	captureRange(t, client, 3*n/4, n)

	// ---- promote the most-caught-up follower ----
	if bSeq, cSeq := fB.AppliedSeq(), lastSeq(storeC); bSeq <= cSeq {
		t.Fatalf("setup: B (%d) should be ahead of C (%d)", bSeq, cSeq)
	}
	fB.Stop()
	termB, err := storeB.Promote()
	if err != nil {
		t.Fatalf("promote B: %v", err)
	}
	if termB <= termA {
		t.Fatalf("promoted term %d not beyond deposed term %d", termB, termA)
	}

	// Fencing, both directions, at the store layer:
	// the promoted store rejects writes stamped with the deposed term...
	if _, err := storeB.IngestFramesTerm(termA, zombieFrame(100)); !errors.Is(err, dfanalyzer.ErrStaleTerm) {
		t.Fatalf("stale-term write on promoted store: %v, want ErrStaleTerm", err)
	}
	// ...and the deposed primary rejects writes stamped with the new term
	// (it cannot masquerade as the new lineage).
	if _, err := storeA.IngestFramesTerm(termB, zombieFrame(101)); !errors.Is(err, dfanalyzer.ErrStaleTerm) {
		t.Fatalf("new-term write on deposed store: %v, want ErrStaleTerm", err)
	}

	replB, err := replica.NewServer(storeB, replica.Options{
		MinSync:           1,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := replB.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	// Survivor C re-points at the promoted primary and catches up; it
	// learns term 2 through the replicated term record.
	fC2 := startTestFollower(t, storeC, replB.Addr(), "replica-c")
	defer fC2.Stop()
	waitCondition(t, "survivor C resynced to promoted primary", func() bool {
		_, last := storeB.WALSeqs()
		return fC2.AppliedSeq() == last && storeC.CurrentTerm() == termB
	})

	// New translator against the promoted store, acks fenced to term 2.
	targetB := translate.NewStoreTarget(storeB, "provlight")
	targetB.SetTerm(termB)
	trB, err := translate.New(ctx, translate.Config{
		Broker:        b.Addr(),
		ClientID:      "translator-b",
		Targets:       []translate.Target{targetB},
		Term:          termB,
		AckGate:       replB.CommitGate(10 * time.Second),
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    10,
		OnError:       func(err error) { t.Logf("translator-b: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// ---- drain and verify exactly-once on the promoted lineage ----
	if err := client.Shutdown(ctx); err != nil {
		t.Fatalf("drain after failover: %v\nclient %+v\ntrB %+v\nbroker %+v\nreplB %+v",
			err, client.StatsSnapshot(), trB.Stats(), b.Stats(), replB.Stats())
	}
	trB.Drain()
	st := client.StatsSnapshot()
	if st.SpoolPending != 0 {
		t.Fatalf("spool still pending %d frames after failover", st.SpoolPending)
	}
	if st.AckTerm != termB {
		t.Fatalf("client ack term = %d, want promoted term %d", st.AckTerm, termB)
	}
	assertExactlyOnce(t, storeB, n)

	// The resynced replica serves the same rows.
	waitCondition(t, "replica C holding the drained stream", func() bool {
		_, last := storeB.WALSeqs()
		return fC2.AppliedSeq() == last
	})
	assertExactlyOnce(t, storeC, n)

	// ---- deposed primary rejoin: rejected as diverged ----
	// Crash A (no snapshot) and bring it back as a follower of B. Its
	// zombie records sit beyond the promoted term's start, so the
	// handshake must refuse it rather than silently merge two histories.
	if err := storeA.Close(); err != nil {
		t.Fatal(err)
	}
	storeA2 := openReplStore(t, dirA)
	defer storeA2.Close()
	fA, err := replica.StartFollower(storeA2, replica.FollowerOptions{
		Primary:      replB.Addr(),
		ID:           "deposed-a",
		ReconnectMin: 25 * time.Millisecond,
		ReconnectMax: 250 * time.Millisecond,
		AckInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fA.Stop()
	waitCondition(t, "deposed primary refused as diverged", func() bool {
		return fA.Err() != nil
	})
	if !errors.Is(fA.Err(), replica.ErrDiverged) {
		t.Fatalf("deposed rejoin error = %v, want ErrDiverged", fA.Err())
	}

	// Clean teardown of the promoted side.
	if err := trB.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := replB.Close(); err != nil {
		t.Fatal(err)
	}
	if err := storeB.Close(); err != nil {
		t.Fatal(err)
	}
	if err := storeC.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("failover exactly-once: %d tasks on promoted store, term %d, client stats %+v", n, termB, st)
}

// BenchmarkReplicaLag measures how far a live follower trails a primary
// ingesting frames at a paced 10k frames/s (each iteration is one frame).
// The reported lag_ms is how long the follower needs to drain the
// residual gap once ingest stops — the real-world answer to "how much do
// I lose if I promote right now". Set BENCH_JSON=1 to write
// BENCH_replica_lag.json next to the test binary's working directory.
func BenchmarkReplicaLag(b *testing.B) {
	dirP, dirF := b.TempDir(), b.TempDir()
	primary, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
		Dir: dirP, Sync: wal.SyncOff, SnapshotEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer primary.Close()
	srv, err := replica.NewServer(primary, replica.Options{HeartbeatInterval: 100 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	followerStore, err := dfanalyzer.OpenStore(dfanalyzer.StoreOptions{
		Dir: dirF, Sync: wal.SyncOff, SnapshotEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer followerStore.Close()
	f, err := replica.StartFollower(followerStore, replica.FollowerOptions{
		Primary:     srv.Addr(),
		ID:          "bench-replica",
		AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Stop()

	spec := &dfanalyzer.Dataflow{Tag: "provlight", Transformations: []dfanalyzer.Transformation{{
		Tag: "train",
		Output: []dfanalyzer.SetSchema{{Tag: "train_output",
			Attributes: []dfanalyzer.Attribute{{Name: "accuracy", Type: dfanalyzer.Numeric}}}},
	}}}
	if err := primary.RegisterDataflow(spec); err != nil {
		b.Fatal(err)
	}

	const rate = 10000 // frames per second
	var maxLagRecords uint64
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		frame := []dfanalyzer.FrameMsg{{
			Origin: "provlight/bench/records", Seq: uint64(i + 1),
			Tasks: []*dfanalyzer.TaskMsg{{
				Dataflow: "provlight", Transformation: "train",
				ID: fmt.Sprintf("t%d", i), Status: dfanalyzer.StatusFinished,
				Sets: []dfanalyzer.SetData{{Tag: "train_output", Elements: []dfanalyzer.Element{{float64(i)}}}},
			}},
		}}
		if _, err := primary.IngestFrames(frame); err != nil {
			b.Fatalf("ingest %d: %v", i, err)
		}
		// Pace to the target rate; sample lag while running.
		if i%100 == 99 {
			if lag := f.Health().LagRecords; lag > maxLagRecords {
				maxLagRecords = lag
			}
			if ahead := time.Duration(i+1)*time.Second/rate - time.Since(start); ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
	ingestDone := time.Now()
	_, last := primary.WALSeqs()
	for f.AppliedSeq() < last {
		if time.Since(ingestDone) > 30*time.Second {
			b.Fatalf("follower stalled at %d/%d", f.AppliedSeq(), last)
		}
		time.Sleep(200 * time.Microsecond)
	}
	lag := time.Since(ingestDone)
	b.StopTimer()

	achieved := float64(b.N) / ingestDone.Sub(start).Seconds()
	b.ReportMetric(float64(lag.Microseconds())/1000, "lag_ms")
	b.ReportMetric(float64(maxLagRecords), "max_lag_records")
	b.ReportMetric(achieved, "frames/s")

	if os.Getenv("BENCH_JSON") != "" {
		out := map[string]any{
			"benchmark":       "BenchmarkReplicaLag",
			"frames":          b.N,
			"target_rate_fps": rate,
			"achieved_fps":    achieved,
			"lag_ms":          float64(lag.Microseconds()) / 1000,
			"max_lag_records": maxLagRecords,
			"pass_100ms":      lag < 100*time.Millisecond,
		}
		data, _ := json.MarshalIndent(out, "", "  ")
		if err := os.WriteFile(filepath.Join(".", "BENCH_replica_lag.json"), append(data, '\n'), 0o644); err != nil {
			b.Logf("write BENCH_replica_lag.json: %v", err)
		}
	}
	if b.N >= 1000 && lag >= 100*time.Millisecond {
		b.Fatalf("replica lag %v >= 100ms at %d frames (%.0f frames/s)", lag, b.N, achieved)
	}
}
