// Smartgrid: sensor-data aggregation on a constrained uplink.
//
// Four smart-meter devices aggregate readings and ship provenance over an
// emulated 25 Kbit/s uplink (netem shaping on the real UDP socket, the
// scenario of Table VIII). Grouping of ended tasks keeps the number of
// transmissions low; the example prints the per-device wire statistics so
// the effect is visible.
//
// Run with: go run ./examples/smartgrid
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/core"
	"github.com/provlight/provlight/internal/netem"
)

const (
	meters      = 4
	windows     = 10 // aggregation windows per meter
	readingsPer = 30
)

func main() {
	ctx := context.Background()
	mem := provlight.NewMemoryTarget()
	server, err := provlight.StartServer(ctx, provlight.ServerConfig{
		Addr:    "127.0.0.1:0",
		Targets: []provlight.Target{mem},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	done := make(chan *core.Client, meters)
	for m := 0; m < meters; m++ {
		go func(m int) {
			// Shape this meter's uplink: 25 Kbit/s, 11.5 ms one-way.
			raw, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			conn := netem.WrapPacketConn(raw, netem.Profile{
				BandwidthBps: 25_000,
				Delay:        11500 * time.Microsecond,
				Seed:         int64(m + 1),
			})
			client, err := provlight.NewClient(ctx, provlight.Config{
				Broker:    server.Addr(),
				ClientID:  fmt.Sprintf("meter-%d", m),
				Conn:      conn,
				GroupSize: 5, // group ended windows to cut transmissions
			})
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(m) + 7))
			wf := client.NewWorkflow(fmt.Sprintf("grid-%d", m))
			if err := wf.Begin(); err != nil {
				log.Fatal(err)
			}
			for w := 0; w < windows; w++ {
				task := wf.NewTask(fmt.Sprintf("window-%d", w), "aggregate")
				in := provlight.NewData(
					fmt.Sprintf("raw-%d-%d", m, w),
					provlight.Attrs(map[string]any{
						"readings": int64(readingsPer),
						"window_s": int64(60),
					}),
				)
				if err := task.Begin(in); err != nil {
					log.Fatal(err)
				}
				// Aggregate simulated readings.
				var sum, peak float64
				for r := 0; r < readingsPer; r++ {
					v := 230 + rng.NormFloat64()*3
					sum += v
					if v > peak {
						peak = v
					}
				}
				out := provlight.NewData(
					fmt.Sprintf("agg-%d-%d", m, w),
					provlight.Attrs(map[string]any{
						"mean_v": sum / readingsPer,
						"peak_v": peak,
					}),
				).DerivedFrom(in.ID())
				if err := task.End(out); err != nil {
					log.Fatal(err)
				}
			}
			if err := wf.End(); err != nil {
				log.Fatal(err)
			}
			done <- client
		}(m)
	}

	var clients []*core.Client
	for m := 0; m < meters; m++ {
		clients = append(clients, <-done)
	}
	want := meters * (2 + 2*windows)
	deadline := time.Now().Add(30 * time.Second)
	for mem.Len() < want {
		if time.Now().After(deadline) {
			log.Fatalf("pipeline drained %d/%d records", mem.Len(), want)
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Printf("received %d provenance records from %d meters over a 25 Kbit/s uplink\n\n", mem.Len(), meters)
	for i, c := range clients {
		st := c.StatsSnapshot()
		fmt.Printf("meter-%d: %d records -> %d frames (%d grouped records), %d wire bytes\n",
			i, st.RecordsCaptured, st.FramesPublished, st.RecordsGrouped, st.BytesPublished)
		// The slow emulated uplink can hold frames in flight: drain each
		// meter under a deadline instead of waiting forever.
		closeCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
		if err := c.Shutdown(closeCtx); err != nil {
			log.Printf("meter-%d: shutdown: %v", i, err)
		}
		cancel()
	}
	fmt.Println("\ngrouping ships 5 ended windows per frame: begin events stay immediate,")
	fmt.Println("so the cloud can still track which windows have started (paper §IV-C2).")
}
