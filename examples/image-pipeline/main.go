// Image-pipeline: chained pre-processing transformations with full data
// lineage, exported as a W3C PROV-JSON document.
//
// A single edge camera node runs decode -> resize -> normalize -> infer
// over a batch of frames; every stage's outputs are derived from the
// previous stage's data, so the resulting PROV document contains the
// complete wasDerivedFrom chain (the "Where did the data come from? How
// was it transformed?" questions of §IV-A).
//
// Run with: go run ./examples/image-pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"github.com/provlight/provlight"
)

const frames = 6

func main() {
	ctx := context.Background()
	pj := provlight.NewPROVJSONTarget()
	mem := provlight.NewMemoryTarget()
	server, err := provlight.StartServer(ctx, provlight.ServerConfig{
		Addr:    "127.0.0.1:0",
		Targets: []provlight.Target{mem, pj},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	client, err := provlight.NewClient(ctx, provlight.Config{
		Broker:   server.Addr(),
		ClientID: "camera-7",
	})
	if err != nil {
		log.Fatal(err)
	}

	stages := []string{"decode", "resize", "normalize", "infer"}
	rng := rand.New(rand.NewSource(7))

	wf := client.NewWorkflow("vision-batch-42")
	if err := wf.Begin(); err != nil {
		log.Fatal(err)
	}
	var prevTask *provlight.Task
	for f := 0; f < frames; f++ {
		prevData := fmt.Sprintf("jpeg-%d", f) // the raw camera frame
		for s, stage := range stages {
			task := wf.NewTask(fmt.Sprintf("%s-%d", stage, f), stage, prevTask)
			in := provlight.NewData(prevData, provlight.Attrs(map[string]any{
				"stage": stage, "frame": int64(f),
			}))
			if err := task.Begin(in); err != nil {
				log.Fatal(err)
			}
			outID := fmt.Sprintf("%s-out-%d", stage, f)
			attrs := map[string]any{"frame": int64(f)}
			if stage == "infer" {
				attrs["label"] = []string{"cat", "dog", "truck"}[rng.Intn(3)]
				attrs["confidence"] = 0.7 + 0.3*rng.Float64()
			} else {
				attrs["bytes"] = int64(1 << (20 - s)) // each stage shrinks the data
			}
			out := provlight.NewData(outID, provlight.Attrs(attrs)).DerivedFrom(prevData)
			if err := task.End(out); err != nil {
				log.Fatal(err)
			}
			prevData = outID
			prevTask = task
		}
	}
	if err := wf.End(); err != nil {
		log.Fatal(err)
	}
	want := 2 + 2*frames*len(stages)
	for mem.Len() < want {
		time.Sleep(10 * time.Millisecond)
	}
	if err := client.Close(); err != nil {
		log.Fatal(err)
	}
	server.Drain()

	doc, err := pj.Document()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline captured: %d PROV elements, %d relations\n",
		len(doc.Elements), len(doc.Relations))

	out, err := os.CreateTemp("", "image-pipeline-*.provjson")
	if err != nil {
		log.Fatal(err)
	}
	n, err := pj.WriteTo(out)
	if err != nil {
		log.Fatal(err)
	}
	out.Close()
	fmt.Printf("wrote %d bytes of PROV-JSON to %s\n", n, out.Name())
	fmt.Println("\nlineage of the last inference (wasDerivedFrom chain):")
	fmt.Printf("  infer-out-%d <- normalize-out-%d <- resize-out-%d <- decode-out-%d <- jpeg-%d\n",
		frames-1, frames-1, frames-1, frames-1, frames-1)
}
