// Quickstart: the paper's Listing 1 in Go.
//
// It starts an in-process ProvLight server (MQTT-SN broker + translator),
// instruments a small chained-transformation workflow with the capture
// library, and prints what arrived on the server side.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/provlight/provlight"
)

func main() {
	// Server side: broker + translator with an in-memory target.
	mem := provlight.NewMemoryTarget()
	server, err := provlight.StartServer(provlight.ServerConfig{
		Addr:    "127.0.0.1:0",
		Targets: []provlight.Target{mem},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	// Device side: connect the capture client to the broker.
	client, err := provlight.NewClient(provlight.Config{
		Broker:   server.Addr(),
		ClientID: "edge-device-1",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Listing 1: workflow, tasks, and data derivations.
	const (
		attributes             = 100
		chainedTransformations = 5
		numberOfTasks          = 25
	)
	inAttrs := provlight.Attrs(map[string]any{"in": make([]byte, attributes)})
	outAttrs := provlight.Attrs(map[string]any{"out": make([]byte, attributes)})

	wf := client.NewWorkflow("1")
	if err := wf.Begin(); err != nil {
		log.Fatal(err)
	}
	dataID := 0
	var previousTask *provlight.Task
	for transfID := 0; transfID < chainedTransformations; transfID++ {
		for taskID := 0; taskID < numberOfTasks/chainedTransformations; taskID++ {
			dataID++
			task := wf.NewTask(
				fmt.Sprintf("%d-%d", transfID, taskID),
				fmt.Sprintf("transformation-%d", transfID),
				previousTask,
			)
			dataIn := provlight.NewData(fmt.Sprintf("in%d", dataID), inAttrs)
			if err := task.Begin(dataIn); err != nil {
				log.Fatal(err)
			}
			// #### YOUR TASK RUNS HERE ####
			time.Sleep(2 * time.Millisecond)
			dataOut := provlight.NewData(fmt.Sprintf("out%d", dataID), outAttrs).
				DerivedFrom(dataIn.ID())
			if err := task.End(dataOut); err != nil {
				log.Fatal(err)
			}
			previousTask = task
		}
	}
	if err := wf.End(); err != nil {
		log.Fatal(err)
	}

	// Wait for the pipeline to drain, then inspect.
	for mem.Len() < 2+2*numberOfTasks {
		time.Sleep(10 * time.Millisecond)
	}
	if err := client.Close(); err != nil {
		log.Fatal(err)
	}

	stats := client.Stats()
	fmt.Printf("captured %d records in %d frames (%d compressed), %d bytes on the wire\n",
		stats.RecordsCaptured, stats.FramesPublished, stats.FramesCompressed, stats.BytesPublished)
	fmt.Printf("server received %d records end to end\n", mem.Len())
	for _, rec := range mem.Records()[:4] {
		fmt.Printf("  %-14s workflow=%s task=%s\n", rec.Event, rec.WorkflowID, rec.TaskID)
	}
	fmt.Println("  ...")
}
