// Quickstart: the paper's Listing 1 in Go, plus the read side.
//
// It starts an in-process ProvLight server (MQTT-SN broker + translator),
// opens a live subscription on the server, instruments a small
// chained-transformation workflow with the capture library, and finally
// queries what arrived through the backend-agnostic Source interface.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/provlight/provlight"
)

func main() {
	ctx := context.Background()

	// Server side: broker + translator with an in-memory target.
	mem := provlight.NewMemoryTarget()
	server, err := provlight.StartServer(ctx, provlight.ServerConfig{
		Addr:    "127.0.0.1:0",
		Targets: []provlight.Target{mem},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	// Live subscription: watch task completions as they stream in.
	const numberOfTasks = 25
	live, cancelLive := server.Subscribe(ctx, provlight.Filter{
		Events: []provlight.EventKind{provlight.EventTaskEnd},
		Buffer: numberOfTasks,
	})
	defer cancelLive()

	// Device side: connect the capture client to the broker.
	connectCtx, cancelConnect := context.WithTimeout(ctx, 10*time.Second)
	client, err := provlight.NewClient(connectCtx, provlight.Config{
		Broker:   server.Addr(),
		ClientID: "edge-device-1",
	})
	cancelConnect()
	if err != nil {
		log.Fatal(err)
	}

	// Listing 1: workflow, tasks, and data derivations.
	const (
		attributes             = 100
		chainedTransformations = 5
	)
	inAttrs := provlight.Attrs(map[string]any{"in": make([]byte, attributes)})
	outAttrs := provlight.Attrs(map[string]any{"out": make([]byte, attributes)})

	wf := client.NewWorkflow("1")
	if err := wf.Begin(); err != nil {
		log.Fatal(err)
	}
	dataID := 0
	var previousTask *provlight.Task
	for transfID := 0; transfID < chainedTransformations; transfID++ {
		for taskID := 0; taskID < numberOfTasks/chainedTransformations; taskID++ {
			dataID++
			task := wf.NewTask(
				fmt.Sprintf("%d-%d", transfID, taskID),
				fmt.Sprintf("transformation-%d", transfID),
				previousTask,
			)
			dataIn := provlight.NewData(fmt.Sprintf("in%d", dataID), inAttrs)
			if err := task.Begin(dataIn); err != nil {
				log.Fatal(err)
			}
			// #### YOUR TASK RUNS HERE ####
			time.Sleep(2 * time.Millisecond)
			dataOut := provlight.NewData(fmt.Sprintf("out%d", dataID), outAttrs).
				DerivedFrom(dataIn.ID())
			if err := task.End(dataOut); err != nil {
				log.Fatal(err)
			}
			previousTask = task
		}
	}
	if err := wf.End(); err != nil {
		log.Fatal(err)
	}

	// The subscription delivers every task completion live: count them as
	// they arrive (device -> broker -> translator -> subscriber).
	seen := 0
	timeout := time.After(30 * time.Second)
	for seen < numberOfTasks {
		select {
		case rec := <-live:
			seen++
			if seen <= 3 {
				fmt.Printf("live: %-10s workflow=%s task=%s\n", rec.Event, rec.WorkflowID, rec.TaskID)
			}
		case <-timeout:
			log.Fatalf("subscription delivered %d/%d task ends", seen, numberOfTasks)
		}
	}
	fmt.Printf("live subscription observed all %d task completions\n", seen)

	// Drain and disconnect under a deadline.
	closeCtx, cancelClose := context.WithTimeout(ctx, 10*time.Second)
	if err := client.Shutdown(closeCtx); err != nil {
		log.Fatal(err)
	}
	cancelClose()
	// Client drain guarantees the broker holds every frame; the last one
	// may still be on the broker->translator leg, so poll the target to
	// the expected count before reporting.
	want := 2 + 2*numberOfTasks
	for deadline := time.Now().Add(30 * time.Second); mem.Len() < want; {
		if time.Now().After(deadline) {
			log.Fatalf("pipeline drained %d/%d records", mem.Len(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	server.Drain()

	stats := client.StatsSnapshot()
	fmt.Printf("captured %d records in %d frames (%d compressed), %d bytes on the wire\n",
		stats.RecordsCaptured, stats.FramesPublished, stats.FramesCompressed, stats.BytesPublished)
	fmt.Printf("server received %d records end to end\n", mem.Len())

	// The read side: MemoryTarget is a Source, so generic queries work on
	// it exactly as they would on a DfAnalyzer backend.
	rows, err := mem.Select(ctx, provlight.Query{
		Dataflow: "provlight",
		Set:      "transformation-0_output",
		Limit:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		fmt.Printf("  query row: task_id=%v\n", row["task_id"])
	}
}
