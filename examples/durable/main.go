// Durable capture: the edge spool and the WAL-backed store, end to end.
//
// The demo runs the crash story in one process:
//
//  1. A capture client with Config.SpoolDir starts while the broker is
//     still DOWN: captures land in the on-disk spool, nothing blocks.
//  2. The server comes up — broker, translator, and a durable DfAnalyzer
//     store (WAL + snapshots). The client's drainer reconnects on its
//     own, publishes the backlog, and end-to-end acknowledgements drain
//     the spool.
//  3. The server is torn down and "restarted": a fresh store opened on
//     the same data directory recovers everything and answers queries —
//     with exactly-once counts, even though the spool redelivered frames
//     whose acks were lost in the teardown.
//
// Run with: go run ./examples/durable
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/provlight/provlight"
)

func main() {
	ctx := context.Background()
	base, err := os.MkdirTemp("", "provlight-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	spoolDir := filepath.Join(base, "spool")
	storeDir := filepath.Join(base, "store")

	// Reserve a broker address, then free it: phase 1 runs dark.
	probe, err := provlight.StartServer(ctx, provlight.ServerConfig{
		Addr: "127.0.0.1:0", Targets: []provlight.Target{provlight.NewMemoryTarget()},
	})
	if err != nil {
		log.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	// Phase 1: capture with the broker down. NewClient succeeds anyway —
	// the spool is the transmit queue now, and the drainer keeps dialing
	// with exponential backoff.
	client, err := provlight.NewClient(ctx, provlight.Config{
		Broker:            addr,
		ClientID:          "edge-device-1",
		SpoolDir:          spoolDir,
		SpoolSync:         provlight.SyncInterval,
		ReconnectMinDelay: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	wf := client.NewWorkflow("1")
	wf.Begin()
	for epoch := 0; epoch < 5; epoch++ {
		task := wf.NewTask(fmt.Sprintf("epoch-%d", epoch), "training")
		task.Begin(provlight.NewData(fmt.Sprintf("in%d", epoch),
			provlight.Attrs(map[string]any{"lr": 0.01, "epoch": int64(epoch)})))
		task.End(provlight.NewData(fmt.Sprintf("out%d", epoch),
			provlight.Attrs(map[string]any{"accuracy": 0.80 + float64(epoch)*0.03})).
			DerivedFrom(fmt.Sprintf("in%d", epoch)))
	}
	wf.End()
	st := client.StatsSnapshot()
	fmt.Printf("broker down: %d records captured, %d frames spooled to disk, %d acked\n",
		st.RecordsCaptured, st.FramesSpooled, st.SpoolAcked)

	// Phase 2: the server appears. A durable store backs the translator,
	// so frames are WAL-logged and deduplicated before they are acked.
	store, err := provlight.OpenStore(provlight.StoreOptions{Dir: storeDir})
	if err != nil {
		log.Fatal(err)
	}
	server, err := provlight.StartServer(ctx, provlight.ServerConfig{
		Addr:    addr,
		Targets: []provlight.Target{provlight.NewStoreTarget(store, "provlight")},
	})
	if err != nil {
		log.Fatal(err)
	}
	shutdownCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := client.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain spool: %v (stats %+v)", err, client.StatsSnapshot())
	}
	st = client.StatsSnapshot()
	fmt.Printf("broker up:   spool drained after %d reconnect(s): %d/%d frames acked end-to-end\n",
		st.SpoolReconnects, st.SpoolAcked, st.FramesSpooled)
	server.Close()
	store.Snapshot()
	store.Close()

	// Phase 3: "restart" the server side — a fresh store on the same
	// directory recovers snapshot + WAL tail.
	recovered, err := provlight.OpenStore(provlight.StoreOptions{Dir: storeDir})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	rows, err := provlight.TopKAccuracy(ctx, recovered, "provlight", "training_output", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered:   %d tasks survive the restart; top accuracies:\n", recovered.TaskCount("provlight"))
	for _, row := range rows {
		fmt.Printf("  task %-10v accuracy %.2f\n", row["task_id"], row["accuracy"])
	}
}
