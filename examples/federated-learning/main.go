// Federated-learning: the paper's motivating use case (§II-B2, §VII-B).
//
// Eight edge devices collaboratively train a logistic-regression model on
// synthetic local datasets with FedAvg. Every local training epoch is
// captured with ProvLight (hyperparameters in, loss/accuracy out), shipped
// over MQTT-SN to the broker, translated into DfAnalyzer, and finally the
// §I analysis queries are answered through the backend-agnostic Source
// interface — against the local DfAnalyzer store and against the remote
// DfAnalyzer server over HTTP, with identical results:
//
//	(i)  elapsed time and training loss in the latest epoch,
//	(ii) hyperparameters with the 3 best accuracy values.
//
// Run with: go run ./examples/federated-learning
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/dfanalyzer"
)

const (
	devices   = 8
	rounds    = 5
	localData = 200
	features  = 4
	dataflow  = "fl-training"
)

// dataset is one device's private data.
type dataset struct {
	x [][]float64
	y []float64
}

// synthesize draws a linearly separable dataset around a true weight
// vector, with device-specific noise (non-IID flavour).
func synthesize(rng *rand.Rand, trueW []float64) dataset {
	var d dataset
	for i := 0; i < localData; i++ {
		x := make([]float64, features)
		dot := 0.0
		for j := range x {
			x[j] = rng.NormFloat64()
			dot += x[j] * trueW[j]
		}
		label := 0.0
		if sigmoid(dot+0.3*rng.NormFloat64()) > 0.5 {
			label = 1.0
		}
		d.x = append(d.x, x)
		d.y = append(d.y, label)
	}
	return d
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// localEpoch runs one epoch of SGD and returns loss and accuracy.
func localEpoch(w []float64, d dataset, lr float64) (loss, acc float64) {
	correct := 0
	for i := range d.x {
		dot := 0.0
		for j := range w {
			dot += w[j] * d.x[i][j]
		}
		p := sigmoid(dot)
		err := p - d.y[i]
		for j := range w {
			w[j] -= lr * err * d.x[i][j]
		}
		loss += -d.y[i]*math.Log(p+1e-9) - (1-d.y[i])*math.Log(1-p+1e-9)
		if (p > 0.5) == (d.y[i] > 0.5) {
			correct++
		}
	}
	return loss / float64(len(d.x)), float64(correct) / float64(len(d.x))
}

func main() {
	ctx := context.Background()

	// Cloud side: DfAnalyzer storage + ProvLight server feeding it.
	dfaSrv := dfanalyzer.NewServer(nil)
	if err := dfaSrv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer dfaSrv.Close()
	server, err := provlight.StartServer(ctx, provlight.ServerConfig{
		Addr: "127.0.0.1:0",
		Targets: []provlight.Target{
			provlight.NewDfAnalyzerTarget("http://"+dfaSrv.Addr(), dataflow),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	trueW := []float64{1.5, -2.0, 0.7, 1.1}
	global := make([]float64, features)
	lrs := []float64{0.5, 0.1, 0.05, 0.01, 0.5, 0.1, 0.05, 0.01} // per-device hyperparameter

	type update struct {
		w []float64
		n int
	}

	var clients []*provlight.Client
	var workflows []*provlight.Workflow
	var data []dataset
	for d := 0; d < devices; d++ {
		client, err := provlight.NewClient(ctx, provlight.Config{
			Broker:   server.Addr(),
			ClientID: fmt.Sprintf("fl-device-%d", d),
		})
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, client)
		wf := client.NewWorkflow(fmt.Sprintf("device-%d", d))
		if err := wf.Begin(); err != nil {
			log.Fatal(err)
		}
		workflows = append(workflows, wf)
		data = append(data, synthesize(rand.New(rand.NewSource(int64(d+1))), trueW))
	}

	// FedAvg training loop with per-epoch provenance capture.
	for round := 0; round < rounds; round++ {
		updates := make([]update, devices)
		var wg sync.WaitGroup
		for d := 0; d < devices; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				w := append([]float64(nil), global...)
				task := workflows[d].NewTask(fmt.Sprintf("round-%d", round), "training")
				in := provlight.NewData(
					fmt.Sprintf("hp-%d-%d", d, round),
					provlight.Attrs(map[string]any{
						"lr": lrs[d], "round": int64(round), "epochs": int64(1),
					}),
				)
				if err := task.Begin(in); err != nil {
					log.Fatal(err)
				}
				start := time.Now()
				loss, acc := localEpoch(w, data[d], lrs[d])
				out := provlight.NewData(
					fmt.Sprintf("metrics-%d-%d", d, round),
					provlight.Attrs(map[string]any{
						"epoch": int64(round), "loss": loss, "accuracy": acc,
						"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
					}),
				).DerivedFrom(in.ID())
				if err := task.End(out); err != nil {
					log.Fatal(err)
				}
				updates[d] = update{w: w, n: localData}
			}(d)
		}
		wg.Wait()
		// Global aggregation on the cloud server.
		total := 0
		agg := make([]float64, features)
		for _, u := range updates {
			total += u.n
			for j := range agg {
				agg[j] += u.w[j] * float64(u.n)
			}
		}
		for j := range agg {
			agg[j] /= float64(total)
		}
		global = agg
	}
	for d := range clients {
		if err := workflows[d].End(); err != nil {
			log.Fatal(err)
		}
		if err := clients[d].Close(); err != nil {
			log.Fatal(err)
		}
	}
	// Wait for the provenance pipeline to drain into DfAnalyzer.
	want := devices * rounds
	for int(dfaSrv.Store().TaskCount(dataflow)) < want {
		time.Sleep(20 * time.Millisecond)
	}
	server.Drain()

	fmt.Printf("trained %d rounds on %d devices; global weights %v\n\n", rounds, devices, rounded(global))

	// The read side is backend-agnostic: the same queries run against the
	// local column store and against the DfAnalyzer server over HTTP.
	local := provlight.Source(dfaSrv.Store())
	remote := provlight.NewDfAnalyzerSource("http://" + dfaSrv.Addr())

	// Query (ii): hyperparameters with the 3 best accuracy values.
	top, err := provlight.TopKAccuracy(ctx, local, dataflow, "training_output", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 accuracy epochs (query ii of the paper's introduction):")
	for _, row := range top {
		fmt.Printf("  task=%-22s epoch=%v accuracy=%.3f loss=%.3f\n",
			row["task_id"], row["epoch"], row["accuracy"], row["loss"])
	}
	remoteTop, err := provlight.TopKAccuracy(ctx, remote, dataflow, "training_output", 3)
	if err != nil {
		log.Fatal(err)
	}
	if fmt.Sprint(remoteTop) != fmt.Sprint(top) {
		log.Fatalf("remote Source diverged from local store:\n  local:  %v\n  remote: %v", top, remoteTop)
	}
	fmt.Println("  (identical over the remote HTTP Source)")

	// Query (i): per-epoch metrics for steering.
	ms, err := provlight.LatestEpochMetrics(ctx, local, dataflow, "training_output")
	if err != nil {
		log.Fatal(err)
	}
	last := ms[len(ms)-1]
	fmt.Printf("\nlatest epoch %v: loss=%.3f accuracy=%.3f (query i)\n", last.Epoch, last.Loss, last.Accuracy)

	// Hyperparameter analysis across devices.
	sums, err := provlight.AccuracyByHyperparam(ctx, local, dataflow, "training_input", "training_output", "lr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naccuracy by learning rate:")
	for _, s := range sums {
		fmt.Printf("  lr=%-6s runs=%-3d best=%.3f mean=%.3f\n", s.Value, s.Runs, s.BestAccuracy, s.MeanAccuracy)
	}
}

func rounded(w []float64) []float64 {
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = math.Round(v*100) / 100
	}
	return out
}
