package provlight_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	provlight "github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/cluster"
	"github.com/provlight/provlight/internal/core"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/transport"
)

// TestObservabilityEndToEnd drives the full capture pipeline — devices,
// a 2-node broker cluster, a cluster-aware translator — with one shared
// metrics registry and asserts the end-to-end frame trace populated a
// latency histogram at every stage: capture→publish, broker routing,
// the cluster forward hop, translation, and durable apply. One device
// is deliberately connected to the node that does NOT own its topic so
// at least part of the stream crosses a bridge link.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	lb := transport.NewLoopback()
	cl, err := cluster.New(cluster.Config{
		Nodes:         2,
		Transport:     lb,
		RetryInterval: 2 * time.Second,
		Metrics:       reg,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	defer cl.Close()

	mem := translate.NewMemoryTarget()
	tr, err := translate.New(context.Background(), translate.Config{
		ClusterAddrs:  cl.Addrs(),
		Transport:     lb,
		ClientID:      "obs-translator",
		RetryInterval: 2 * time.Second,
		MaxRetries:    10,
		Targets:       []translate.Target{mem},
		DisableAcks:   true,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatalf("translate.New: %v", err)
	}
	defer tr.Close()

	// Pick one device whose topic partition is owned by the node it
	// connects to (local routing) and one owned by the other node
	// (forwarded over a bridge link) — both connect to node 0, so the
	// second is guaranteed to exercise the forward hop.
	topo := cl.Topology()
	ownerOf := func(id string) string {
		return topo.Owners[cluster.PartitionOf(core.DefaultTopic(id), topo.Partitions)]
	}
	var localID, remoteID string
	for i := 0; (localID == "" || remoteID == "") && i < 1000; i++ {
		id := fmt.Sprintf("obs-dev-%d", i)
		switch ownerOf(id) {
		case "n0":
			if localID == "" {
				localID = id
			}
		case "n1":
			if remoteID == "" {
				remoteID = id
			}
		}
	}
	if localID == "" || remoteID == "" {
		t.Fatalf("could not find device ids on both sides of the partition map")
	}

	const tasks = 20
	addr := cl.Addrs()[0]
	for _, id := range []string{localID, remoteID} {
		c, err := provlight.NewClient(context.Background(), provlight.Config{
			Broker:     addr,
			Transport:  lb,
			ClientID:   id,
			WindowSize: 16,
			Metrics:    reg,
		})
		if err != nil {
			t.Fatalf("client %s: %v", id, err)
		}
		defer c.Close()
		wf := c.NewWorkflow("wf-" + id)
		if err := wf.Begin(); err != nil {
			t.Fatalf("%s workflow begin: %v", id, err)
		}
		for i := 0; i < tasks; i++ {
			task := wf.NewTask(fmt.Sprintf("t%04d", i), "step")
			if err := task.Begin(provlight.NewData(fmt.Sprintf("in-%d", i), nil)); err != nil {
				t.Fatalf("%s task %d begin: %v", id, i, err)
			}
			if err := task.End(provlight.NewData(fmt.Sprintf("out-%d", i), nil)); err != nil {
				t.Fatalf("%s task %d end: %v", id, i, err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("%s flush: %v", id, err)
		}
	}

	want := 2 * (1 + 2*tasks)
	deadline := time.Now().Add(60 * time.Second)
	for mem.Len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("target has %d/%d records", mem.Len(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	tr.Drain()

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	sc, err := obs.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}

	// Every pipeline stage must have observed at least one traced frame.
	for _, stage := range []string{
		obs.StageCapturePublish,
		obs.StageBrokerRoute,
		obs.StageForwardHop,
		obs.StageTranslate,
		obs.StageDurableApply,
	} {
		n, ok := sc.Value(obs.StageLatencyName+"_count", "stage", stage)
		if !ok {
			t.Errorf("stage %q: histogram missing from exposition", stage)
			continue
		}
		if n <= 0 {
			t.Errorf("stage %q: histogram count = %v, want > 0", stage, n)
		}
		sum, _ := sc.Value(obs.StageLatencyName+"_sum", "stage", stage)
		if sum < 0 {
			t.Errorf("stage %q: negative latency sum %v", stage, sum)
		}
	}

	// Cluster health families: per-node broker counters and per-peer
	// link gauges, labeled by node identity.
	if v, ok := sc.Value("provlight_broker_publishes_received_total", "node", "n0"); !ok || v <= 0 {
		t.Errorf("n0 publishes_received = %v (present=%v), want > 0", v, ok)
	}
	if _, ok := sc.Value("provlight_cluster_peer_heartbeat_age_seconds", "node", "n0", "peer", "n1"); !ok {
		t.Errorf("per-peer heartbeat age gauge missing")
	}
	if v, ok := sc.Value("provlight_cluster_link_up", "node", "n1", "peer", "n0"); !ok || v != 1 {
		t.Errorf("n1->n0 link_up = %v (present=%v), want 1", v, ok)
	}

	// Per-client capture counters, labeled by client id.
	for _, id := range []string{localID, remoteID} {
		if v, ok := sc.Value("provlight_client_records_captured_total", "client", id); !ok || v != float64(1+2*tasks) {
			t.Errorf("client %s records_captured = %v (present=%v), want %d", id, v, ok, 1+2*tasks)
		}
	}

	// Translator counters from the same registry.
	if v, ok := sc.Value("provlight_translate_records_total"); !ok || v != float64(want) {
		t.Errorf("translate records_total = %v (present=%v), want %d", v, ok, want)
	}
}
