// Package provlight is the public API of the ProvLight reproduction: an
// efficient workflow-provenance capture library for the Edge-to-Cloud
// Continuum (Rosendo et al., IEEE CLUSTER 2023).
//
// ProvLight captures W3C PROV-DM-compliant provenance on resource-limited
// IoT/Edge devices with low overhead by combining a simplified data
// exchange model (Workflow/Task/Data), binary payload compression,
// grouping of captured data, and asynchronous MQTT-SN publish/subscribe
// transmission over UDP at QoS 2 (exactly once).
//
// Device side (capture):
//
//	client, err := provlight.NewClient(ctx, provlight.Config{
//	    Broker:   "cloud-host:1883",
//	    ClientID: "edge-device-1",
//	})
//	wf := client.NewWorkflow("1")
//	wf.Begin()
//	task := wf.NewTask("epoch-0", "training")
//	task.Begin(provlight.NewData("in0", provlight.Attrs(map[string]any{"lr": 0.01})))
//	// ... task work ...
//	task.End(provlight.NewData("out0", provlight.Attrs(map[string]any{"loss": 0.3})).DerivedFrom("in0"))
//	wf.End()
//	client.Close()
//
// Server side (broker + provenance data translator):
//
//	server, err := provlight.StartServer(ctx, provlight.ServerConfig{
//	    Addr:    ":1883",
//	    Targets: []provlight.Target{provlight.NewMemoryTarget()},
//	})
//
// Read side (queries and live subscriptions): every backend exposes the
// same Source interface, so analysis code is backend-agnostic:
//
//	var src provlight.Source = mem // or a dfanalyzer store / remote client
//	rows, err := src.Select(ctx, provlight.Query{
//	    Dataflow: "provlight", Set: "training_output",
//	    OrderBy: "accuracy", Desc: true, Limit: 3,
//	})
//	records, cancel := server.Subscribe(ctx, provlight.Filter{Workflow: "1"})
//	defer cancel()
//	for rec := range records { /* live monitoring */ }
//
// Targets exist for the DfAnalyzer and ProvLake provenance systems
// (re-implemented in this repository), for W3C PROV-JSON export, and for
// in-memory analysis; custom systems integrate by implementing Target, and
// custom capture backends by implementing CaptureClient.
package provlight

import (
	"context"

	"github.com/provlight/provlight/internal/capture"
	"github.com/provlight/provlight/internal/core"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/queries"
	"github.com/provlight/provlight/internal/source"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/wal"
)

// Client is the device-side capture library.
type Client = core.Client

// Config configures a capture client.
type Config = core.Config

// Stats counts client capture activity. Obtain snapshots via
// Client.StatsSnapshot.
type Stats = core.Stats

// Workflow is the application workflow handle (PROV-DM Agent).
type Workflow = core.Workflow

// Task is one processing step (PROV-DM Activity).
type Task = core.Task

// Data carries attribute values and derivations (PROV-DM Entity).
type Data = core.Data

// Attribute is one named value of a Data record.
type Attribute = provdm.Attribute

// Record is the provenance exchange record crossing the network.
type Record = provdm.Record

// EventKind identifies the capture event a Record carries.
type EventKind = provdm.EventKind

// Capture event kinds (workflow/task lifecycle).
const (
	EventWorkflowBegin = provdm.EventWorkflowBegin
	EventWorkflowEnd   = provdm.EventWorkflowEnd
	EventTaskBegin     = provdm.EventTaskBegin
	EventTaskEnd       = provdm.EventTaskEnd
)

// CaptureClient is the uniform provenance-capture interface implemented by
// every capture backend in the evaluation (ProvLight's Client, DfAnalyzer,
// ProvLake): instrument a workload once, run it against any backend.
type CaptureClient = capture.Client

// NopCapture is a CaptureClient that discards everything: the "no capture"
// baseline used to measure workflow time without provenance.
type NopCapture = capture.Nop

// CaptureFunc adapts a function to the CaptureClient interface.
type CaptureFunc = capture.Func

// Server bundles the MQTT-SN broker and the provenance data translators.
type Server = core.Server

// ServerConfig configures StartServer.
type ServerConfig = core.ServerConfig

// ErrQueueFull is returned by Capture when the transmit queue is full
// and no spool is configured (see Config.QueueCapacity for the
// backpressure contract); the drop is counted in StatsSnapshot.QueueFull.
var ErrQueueFull = core.ErrQueueFull

// SyncPolicy selects when WAL appends (client spool and durable store)
// are fsynced: SyncEach, SyncInterval (default), or SyncOff.
type SyncPolicy = wal.SyncPolicy

// WAL fsync policies.
const (
	SyncEach     = wal.SyncEach
	SyncInterval = wal.SyncInterval
	SyncOff      = wal.SyncOff
)

// DfStore is the DfAnalyzer-model column store: in-memory via NewStore,
// crash-durable (WAL + snapshots + recovery-on-open) via OpenStore.
type DfStore = dfanalyzer.Store

// StoreOptions configures a durable store for OpenStore.
type StoreOptions = dfanalyzer.StoreOptions

// Target receives translated provenance records on the server side.
type Target = translate.Target

// BatchTarget is the optional batch-delivery extension of Target.
type BatchTarget = translate.BatchTarget

// Frame is one decoded capture frame with its provenance identity
// (origin topic + durable sequence number), as handed to FrameTargets.
type Frame = translate.Frame

// FrameTarget is the durable-delivery extension of Target: targets
// implementing it receive frames with their identities and deduplicate
// redeliveries, enabling exactly-once ingestion from spooling clients.
type FrameTarget = translate.FrameTarget

// StoreTarget delivers records straight into a local DfStore; paired
// with OpenStore it forms a durable, exactly-once translator backend.
type StoreTarget = translate.StoreTarget

// Translator consumes device topics and feeds targets.
type Translator = translate.Translator

// TranslatorConfig configures a standalone Translator.
type TranslatorConfig = translate.Config

// MemoryTarget accumulates records in memory and doubles as a Source.
type MemoryTarget = translate.MemoryTarget

// PROVJSONTarget folds records into a W3C PROV-JSON document.
type PROVJSONTarget = translate.PROVJSONTarget

// Source is the backend-agnostic read interface over captured provenance:
// Select (predicate/order/limit queries), Task (catalog lookup), and
// Workflows (known dataflow tags). MemoryTarget, the DfAnalyzer store, and
// the remote DfAnalyzer client all implement it, and the queries in this
// package run identically against any of them.
type Source = source.Source

// Query selects rows from one set of a dataflow: conjunctive Where
// predicates, optional Project, and OrderBy/Desc/Limit top-k behaviour.
type Query = source.Query

// Pred filters rows on one attribute.
type Pred = source.Pred

// Op is a comparison operator in a query predicate.
type Op = source.Op

// Predicate operators.
const (
	Eq = source.Eq
	Ne = source.Ne
	Lt = source.Lt
	Le = source.Le
	Gt = source.Gt
	Ge = source.Ge
)

// Row is one query result with attribute values plus the producing task id
// under "task_id".
type Row = source.Row

// TaskInfo is the backend-agnostic task-catalog entry returned by
// Source.Task.
type TaskInfo = source.TaskInfo

// ErrNotFound is returned (wrapped) by Source lookups for missing
// entities; match with errors.Is.
var ErrNotFound = source.ErrNotFound

// Filter selects which records a live subscription receives; the zero
// value matches everything. Buffer bounds the per-subscriber channel.
type Filter = translate.Filter

// SubscriptionStats counts live-subscription activity, including
// slow-consumer drops.
type SubscriptionStats = translate.HubStats

// EpochMetrics is one training epoch's captured provenance, as returned by
// LatestEpochMetrics.
type EpochMetrics = queries.EpochMetrics

// HyperparamSummary aggregates accuracy per hyperparameter value, as
// returned by AccuracyByHyperparam.
type HyperparamSummary = queries.HyperparamSummary

// NewClient connects a capture client to a broker; ctx bounds the connect
// handshake.
func NewClient(ctx context.Context, cfg Config) (*Client, error) { return core.NewClient(ctx, cfg) }

// NewData creates a data handle with ordered attributes.
func NewData(id string, attributes []Attribute) *Data { return core.NewData(id, attributes) }

// Attrs builds a deterministic attribute list from a map.
func Attrs(m map[string]any) []Attribute { return core.Attrs(m) }

// StartServer launches the broker plus translators; ctx bounds the
// translators' connect/subscribe handshakes.
func StartServer(ctx context.Context, cfg ServerConfig) (*Server, error) {
	return core.StartServer(ctx, cfg)
}

// NewTranslator connects a standalone translator to a broker; ctx bounds
// the connect/subscribe handshakes.
func NewTranslator(ctx context.Context, cfg TranslatorConfig) (*Translator, error) {
	return translate.New(ctx, cfg)
}

// NewMemoryTarget returns an in-memory record sink whose Source view is
// exposed under the dataflow tag "provlight".
func NewMemoryTarget() *MemoryTarget { return translate.NewMemoryTarget() }

// NewMemoryTargetForDataflow returns an in-memory record sink exposing its
// Source view under the given dataflow tag.
func NewMemoryTargetForDataflow(tag string) *MemoryTarget {
	return translate.NewMemoryTargetForDataflow(tag)
}

// NewPROVJSONTarget returns a W3C PROV-JSON accumulator.
func NewPROVJSONTarget() *PROVJSONTarget { return translate.NewPROVJSONTarget() }

// NewDfAnalyzerTarget forwards records to a DfAnalyzer server (the setup
// used by the paper's E2Clab Provenance Manager).
func NewDfAnalyzerTarget(baseURL, dataflowTag string) Target {
	return translate.NewDfAnalyzerTarget(dfanalyzer.NewClient(baseURL), dataflowTag)
}

// NewDfAnalyzerSource returns a Source that queries a remote DfAnalyzer
// server over HTTP — the read-side counterpart of NewDfAnalyzerTarget.
func NewDfAnalyzerSource(baseURL string) Source { return dfanalyzer.NewClient(baseURL) }

// NewStore returns an empty in-memory DfStore.
func NewStore() *DfStore { return dfanalyzer.NewStore() }

// OpenStore opens a crash-durable DfStore: every mutation is write-ahead
// logged, snapshots are written periodically with atomic temp+rename,
// and opening recovers the latest snapshot plus the WAL tail.
//
// Migration from NewStore: a store previously created with NewStore (or
// NewServer(nil)) was lost on process exit; pass the same data through
// OpenStore(StoreOptions{Dir: ...}) instead and it survives crashes —
// the rest of the Store API is unchanged.
func OpenStore(opts StoreOptions) (*DfStore, error) { return dfanalyzer.OpenStore(opts) }

// NewStoreTarget returns a Target (and FrameTarget) that ingests into a
// local store under the given dataflow tag.
func NewStoreTarget(store *DfStore, dataflow string) *StoreTarget {
	return translate.NewStoreTarget(store, dataflow)
}

// NewProvLakeTarget forwards records to a ProvLake manager service.
func NewProvLakeTarget(baseURL string) Target {
	return translate.NewProvLakeTarget(provlake.NewClient(baseURL))
}

// TopKAccuracy answers query (ii) of the paper's §I against any Source:
// the k output rows with the best accuracy values.
func TopKAccuracy(ctx context.Context, src Source, dataflow, outputSet string, k int) ([]Row, error) {
	return queries.TopKAccuracy(ctx, src, dataflow, outputSet, k)
}

// LatestEpochMetrics answers query (i) of the paper's §I against any
// Source: per-epoch loss/accuracy joined with task elapsed times.
func LatestEpochMetrics(ctx context.Context, src Source, dataflow, outputSet string) ([]EpochMetrics, error) {
	return queries.LatestEpochMetrics(ctx, src, dataflow, outputSet)
}

// AccuracyByHyperparam groups the output set's accuracy by an input
// attribute (e.g. learning rate) against any Source.
func AccuracyByHyperparam(ctx context.Context, src Source, dataflow, inputSet, outputSet, attr string) ([]HyperparamSummary, error) {
	return queries.AccuracyByHyperparam(ctx, src, dataflow, inputSet, outputSet, attr)
}
