// Package provlight is the public API of the ProvLight reproduction: an
// efficient workflow-provenance capture library for the Edge-to-Cloud
// Continuum (Rosendo et al., IEEE CLUSTER 2023).
//
// ProvLight captures W3C PROV-DM-compliant provenance on resource-limited
// IoT/Edge devices with low overhead by combining a simplified data
// exchange model (Workflow/Task/Data), binary payload compression,
// grouping of captured data, and asynchronous MQTT-SN publish/subscribe
// transmission over UDP at QoS 2 (exactly once).
//
// Device side (capture):
//
//	client, err := provlight.NewClient(provlight.Config{
//	    Broker:   "cloud-host:1883",
//	    ClientID: "edge-device-1",
//	})
//	wf := client.NewWorkflow("1")
//	wf.Begin()
//	task := wf.NewTask("epoch-0", "training")
//	task.Begin(provlight.NewData("in0", provlight.Attrs(map[string]any{"lr": 0.01})))
//	// ... task work ...
//	task.End(provlight.NewData("out0", provlight.Attrs(map[string]any{"loss": 0.3})).DerivedFrom("in0"))
//	wf.End()
//	client.Close()
//
// Server side (broker + provenance data translator):
//
//	server, err := provlight.StartServer(provlight.ServerConfig{
//	    Addr:    ":1883",
//	    Targets: []provlight.Target{provlight.NewMemoryTarget()},
//	})
//
// Targets exist for the DfAnalyzer and ProvLake provenance systems
// (re-implemented in this repository), for W3C PROV-JSON export, and for
// in-memory analysis; custom systems integrate by implementing Target.
package provlight

import (
	"github.com/provlight/provlight/internal/core"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/translate"
)

// Client is the device-side capture library.
type Client = core.Client

// Config configures a capture client.
type Config = core.Config

// Stats counts client capture activity.
type Stats = core.Stats

// Workflow is the application workflow handle (PROV-DM Agent).
type Workflow = core.Workflow

// Task is one processing step (PROV-DM Activity).
type Task = core.Task

// Data carries attribute values and derivations (PROV-DM Entity).
type Data = core.Data

// Attribute is one named value of a Data record.
type Attribute = provdm.Attribute

// Record is the provenance exchange record crossing the network.
type Record = provdm.Record

// Server bundles the MQTT-SN broker and the provenance data translators.
type Server = core.Server

// ServerConfig configures StartServer.
type ServerConfig = core.ServerConfig

// Target receives translated provenance records on the server side.
type Target = translate.Target

// BatchTarget is the optional batch-delivery extension of Target.
type BatchTarget = translate.BatchTarget

// Translator consumes device topics and feeds targets.
type Translator = translate.Translator

// TranslatorConfig configures a standalone Translator.
type TranslatorConfig = translate.Config

// MemoryTarget accumulates records in memory.
type MemoryTarget = translate.MemoryTarget

// PROVJSONTarget folds records into a W3C PROV-JSON document.
type PROVJSONTarget = translate.PROVJSONTarget

// NewClient connects a capture client to a broker.
func NewClient(cfg Config) (*Client, error) { return core.NewClient(cfg) }

// NewData creates a data handle with ordered attributes.
func NewData(id string, attributes []Attribute) *Data { return core.NewData(id, attributes) }

// Attrs builds a deterministic attribute list from a map.
func Attrs(m map[string]any) []Attribute { return core.Attrs(m) }

// StartServer launches the broker plus translators.
func StartServer(cfg ServerConfig) (*Server, error) { return core.StartServer(cfg) }

// NewTranslator connects a standalone translator to a broker.
func NewTranslator(cfg TranslatorConfig) (*Translator, error) { return translate.New(cfg) }

// NewMemoryTarget returns an in-memory record sink.
func NewMemoryTarget() *MemoryTarget { return translate.NewMemoryTarget() }

// NewPROVJSONTarget returns a W3C PROV-JSON accumulator.
func NewPROVJSONTarget() *PROVJSONTarget { return translate.NewPROVJSONTarget() }

// NewDfAnalyzerTarget forwards records to a DfAnalyzer server (the setup
// used by the paper's E2Clab Provenance Manager).
func NewDfAnalyzerTarget(baseURL, dataflowTag string) Target {
	return translate.NewDfAnalyzerTarget(dfanalyzer.NewClient(baseURL), dataflowTag)
}

// NewProvLakeTarget forwards records to a ProvLake manager service.
func NewProvLakeTarget(baseURL string) Target {
	return translate.NewProvLakeTarget(provlake.NewClient(baseURL))
}
