package provlight_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	provlight "github.com/provlight/provlight"
	"github.com/provlight/provlight/internal/cluster"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/transport"
)

// TestClusterPipelineLeave drives the full capture pipeline through a
// 3-node broker cluster: devices connected to two different nodes, a
// cluster-aware translator with a consumer-group member on every node,
// and a node leave in the middle of the stream. Every record must reach
// the target exactly once, and each workflow's records must arrive in
// capture order — the tier's headline guarantee.
func TestClusterPipelineLeave(t *testing.T) {
	lb := transport.NewLoopback()
	cl, err := cluster.New(cluster.Config{
		Nodes:         3,
		Transport:     lb,
		RetryInterval: 2 * time.Second,
		DrainTimeout:  20 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	defer cl.Close()

	mem := translate.NewMemoryTarget()
	tr, err := translate.New(context.Background(), translate.Config{
		ClusterAddrs:  cl.Addrs(),
		Transport:     lb,
		ClientID:      "cluster-translator",
		RetryInterval: 2 * time.Second,
		MaxRetries:    10,
		Targets:       []translate.Target{mem},
		DisableAcks:   true,
	})
	if err != nil {
		t.Fatalf("translate.New: %v", err)
	}
	defer tr.Close()
	if got := tr.Sessions(); got != 3 {
		t.Fatalf("translator opened %d sessions, want one per node", got)
	}

	// Devices on the two surviving nodes (a device on the leaving node
	// would need a spool to outlive its broker; that path is covered by
	// the store-and-forward tests).
	const devices = 4
	const tasks = 30
	addrs := cl.Addrs()
	clients := make([]*provlight.Client, devices)
	for d := range clients {
		c, err := provlight.NewClient(context.Background(), provlight.Config{
			Broker:     addrs[d%2], // n0, n1
			Transport:  lb,
			ClientID:   fmt.Sprintf("dev-%d", d),
			WindowSize: 16,
		})
		if err != nil {
			t.Fatalf("device %d: %v", d, err)
		}
		defer c.Close()
		clients[d] = c
	}

	leave := make(chan struct{})
	left := make(chan error, 1)
	go func() {
		<-leave
		left <- cl.Leave(context.Background(), "n2")
	}()

	errs := make(chan error, devices)
	for d := range clients {
		go func(d int) {
			wf := clients[d].NewWorkflow(fmt.Sprintf("wf-%d", d))
			if err := wf.Begin(); err != nil {
				errs <- fmt.Errorf("device %d workflow begin: %w", d, err)
				return
			}
			for i := 0; i < tasks; i++ {
				task := wf.NewTask(fmt.Sprintf("t%04d", i), "step")
				if err := task.Begin(provlight.NewData(fmt.Sprintf("in-%d-%d", d, i), nil)); err != nil {
					errs <- fmt.Errorf("device %d task %d begin: %w", d, i, err)
					return
				}
				if err := task.End(provlight.NewData(fmt.Sprintf("out-%d-%d", d, i), nil)); err != nil {
					errs <- fmt.Errorf("device %d task %d end: %w", d, i, err)
					return
				}
				if d == 0 && i == tasks/3 {
					close(leave)
				}
			}
			errs <- clients[d].Flush()
		}(d)
	}
	for i := 0; i < devices; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-left; err != nil {
		t.Fatalf("leave: %v", err)
	}

	want := devices * (1 + 2*tasks)
	deadline := time.Now().Add(60 * time.Second)
	for mem.Len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("target has %d/%d records", mem.Len(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	tr.Drain()
	if got := mem.Len(); got != want {
		t.Fatalf("target has %d records, want exactly %d (duplicate delivery)", got, want)
	}

	// Per-workflow capture order must survive forwarding and migration.
	perWF := map[string][]provdm.Record{}
	for _, r := range mem.Records() {
		perWF[r.WorkflowID] = append(perWF[r.WorkflowID], r)
	}
	if len(perWF) != devices {
		t.Fatalf("records span %d workflows, want %d", len(perWF), devices)
	}
	for wf, recs := range perWF {
		if recs[0].Event != provdm.EventWorkflowBegin {
			t.Fatalf("workflow %s: first record is %v, not workflow begin", wf, recs[0].Event)
		}
		rest := recs[1:]
		if len(rest) != 2*tasks {
			t.Fatalf("workflow %s: %d task records, want %d", wf, len(rest), 2*tasks)
		}
		for i := 0; i < tasks; i++ {
			wantID := fmt.Sprintf("t%04d", i)
			begin, end := rest[2*i], rest[2*i+1]
			if begin.Event != provdm.EventTaskBegin || begin.TaskID != wantID {
				t.Fatalf("workflow %s: record %d is %v %s, want begin %s", wf, 2*i, begin.Event, begin.TaskID, wantID)
			}
			if end.Event != provdm.EventTaskEnd || end.TaskID != wantID {
				t.Fatalf("workflow %s: record %d is %v %s, want end %s", wf, 2*i+1, end.Event, end.TaskID, wantID)
			}
		}
	}

	// The leave really moved ownership: two survivors cover the space.
	topo := cl.Topology()
	for p, owner := range topo.Owners {
		if owner == "n2" {
			t.Fatalf("partition %d still owned by departed n2", p)
		}
	}
}
