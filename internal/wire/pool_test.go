package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

func sampleRecord(i int) *provdm.Record {
	attrs := make([]provdm.Attribute, 0, 8)
	for a := 0; a < 8; a++ {
		attrs = append(attrs, provdm.Attribute{Name: fmt.Sprintf("attr_%d", a), Value: int64(a * i)})
	}
	return &provdm.Record{
		Event:          provdm.EventTaskEnd,
		WorkflowID:     "wf",
		TaskID:         fmt.Sprintf("t%d", i),
		Transformation: "tr",
		Status:         provdm.StatusFinished,
		Data:           []provdm.DataRef{{ID: fmt.Sprintf("d%d", i), WorkflowID: "wf", Attributes: attrs}},
		Time:           time.Unix(0, int64(i)).UTC(),
	}
}

// TestAppendFrameMatchesEncodeFrame pins AppendFrame to the EncodeFrame
// wire format and checks dst-append semantics.
func TestAppendFrameMatchesEncodeFrame(t *testing.T) {
	enc := Encoder{}
	recs := []*provdm.Record{sampleRecord(1), sampleRecord(2), sampleRecord(3)}
	for _, n := range []int{1, 3} {
		want, err := enc.EncodeFrame(recs[:n]...)
		if err != nil {
			t.Fatal(err)
		}
		prefix := []byte("prefix")
		got, err := enc.AppendFrame(append([]byte(nil), prefix...), recs[:n]...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, prefix) {
			t.Fatalf("AppendFrame dropped dst prefix")
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("AppendFrame(%d records) differs from EncodeFrame", n)
		}
	}
}

// TestAppendFrameReuseRoundTrip re-encodes into the same dst buffer many
// times (the capture client's pattern) and decodes each frame back.
func TestAppendFrameReuseRoundTrip(t *testing.T) {
	enc := Encoder{}
	var dst []byte
	for i := 0; i < 100; i++ {
		rec := sampleRecord(i)
		var err error
		dst, err = enc.AppendFrame(dst[:0], rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeFrame(dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].TaskID != rec.TaskID {
			t.Fatalf("round %d: decoded %+v", i, got)
		}
	}
}

// TestEncoderConcurrentPooledUse hammers the shared scratch pool from many
// goroutines with compressed group frames to catch buffer aliasing.
func TestEncoderConcurrentPooledUse(t *testing.T) {
	enc := Encoder{CompressThreshold: 32}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				recs := []*provdm.Record{sampleRecord(g*1000 + i), sampleRecord(g*1000 + i + 1)}
				frame, err := enc.EncodeFrame(recs...)
				if err != nil {
					errs <- err
					return
				}
				got, err := DecodeFrame(frame)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %w", g, i, err)
					return
				}
				if len(got) != 2 || got[0].TaskID != recs[0].TaskID || got[1].TaskID != recs[1].TaskID {
					errs <- fmt.Errorf("goroutine %d round %d: wrong records %+v", g, i, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDecodeFrameCompressedPooledReader decodes many compressed frames to
// exercise zlib reader Reset reuse.
func TestDecodeFrameCompressedPooledReader(t *testing.T) {
	enc := Encoder{CompressThreshold: 16}
	for i := 0; i < 50; i++ {
		frame, err := enc.EncodeFrame(sampleRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		if !IsCompressed(frame) {
			t.Fatalf("frame %d unexpectedly uncompressed", i)
		}
		got, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].TaskID != fmt.Sprintf("t%d", i) {
			t.Fatalf("frame %d decoded wrong record %+v", i, got[0])
		}
	}
}
