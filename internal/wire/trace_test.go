package wire

import (
	"reflect"
	"testing"
	"time"
)

func TestFrameCaptureRoundTrip(t *testing.T) {
	enc := &Encoder{}
	rec := taskRecord(10)
	now := time.Now().UnixNano()
	for _, seq := range []uint64{0, 1, 1 << 40} {
		frame, err := enc.AppendFrameSeqCapture(nil, seq, now, rec)
		if err != nil {
			t.Fatal(err)
		}
		gotNS, ok := FrameCaptureNS(frame)
		if !ok || gotNS != now {
			t.Fatalf("seq=%d: FrameCaptureNS = %d, %v; want %d", seq, gotNS, ok, now)
		}
		gotSeq, seqOK := FrameSeq(frame)
		if seq == 0 {
			if seqOK {
				t.Fatalf("seq=0 frame reports a sequence")
			}
		} else if !seqOK || gotSeq != seq {
			t.Fatalf("FrameSeq = %d, %v; want %d", gotSeq, seqOK, seq)
		}
		records, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("decode traced frame: %v", err)
		}
		if len(records) != 1 || !reflect.DeepEqual(records[0], *rec) {
			t.Fatal("traced frame body mismatch")
		}
	}
}

func TestFrameCaptureZeroEncodesUntraced(t *testing.T) {
	enc := &Encoder{}
	rec := taskRecord(2)
	plain, err := enc.AppendFrameSeq(nil, 5, rec)
	if err != nil {
		t.Fatal(err)
	}
	viaCapture, err := enc.AppendFrameSeqCapture(nil, 5, 0, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, viaCapture) {
		t.Fatal("captureNS=0 frame differs from seq frame")
	}
	if _, ok := FrameCaptureNS(plain); ok {
		t.Fatal("untraced frame reports a capture timestamp")
	}
}

func TestFrameCaptureGroupedCompressed(t *testing.T) {
	enc := &Encoder{}
	now := time.Now().UnixNano()
	frame, err := enc.AppendFrameSeqCapture(nil, 77, now, taskRecord(40), taskRecord(40))
	if err != nil {
		t.Fatal(err)
	}
	if !IsCompressed(frame) || !IsGroup(frame) {
		t.Fatalf("expected compressed group frame, flags=%x", frame[0])
	}
	if ns, ok := FrameCaptureNS(frame); !ok || ns != now {
		t.Fatalf("FrameCaptureNS = %d, %v", ns, ok)
	}
	if seq, ok := FrameSeq(frame); !ok || seq != 77 {
		t.Fatalf("FrameSeq = %d, %v", seq, ok)
	}
	records, err := DecodeFrame(frame)
	if err != nil || len(records) != 2 {
		t.Fatalf("decode: %d records, err %v", len(records), err)
	}
}

func TestFrameCaptureNSMalformed(t *testing.T) {
	for _, frame := range [][]byte{
		nil,
		{0x18},                   // flagTrace set, no timestamp bytes
		{0x18, 0x80},             // truncated varint
		{0x1c, 0x01},             // flagSeq+flagTrace, seq only
		{0x28, 0x02, 0x01},       // wrong version
		{0x10, 0x02, 0x01, 0x01}, // no trace flag
	} {
		if ns, ok := FrameCaptureNS(frame); ok {
			t.Errorf("FrameCaptureNS(%x) = %d, true; want false", frame, ns)
		}
	}
}
