package wire

import (
	"reflect"
	"testing"

	"github.com/provlight/provlight/internal/provdm"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder. The
// decoder fronts the broker, translator, and spool replay on input that
// arrived over UDP, so it must be total: any byte string either decodes
// to records or returns an error — never a panic, never unbounded
// allocation (the compressed path is capped at MaxFrameBody). When a
// frame does decode and its records survive re-encoding, the round trip
// must be lossless.
func FuzzDecodeFrame(f *testing.F) {
	enc := &Encoder{}
	raw := &Encoder{DisableCompression: true}
	seed := func(frame []byte, err error) {
		if err != nil {
			f.Fatalf("seed frame: %v", err)
		}
		f.Add(frame)
	}
	// One frame per encoder shape: single/group, compressed (the large
	// record crosses the compression threshold) and uncompressed, with
	// and without a durable frame id.
	seed(enc.EncodeFrame(taskRecord(3)))
	seed(enc.EncodeFrame(taskRecord(100)))
	seed(raw.EncodeFrame(taskRecord(100)))
	seed(enc.EncodeFrame(taskRecord(1), taskRecord(2), taskRecord(3)))
	seed(enc.EncodeFrame(&provdm.Record{Event: provdm.EventWorkflowEnd, WorkflowID: "wf"}))
	seed(enc.AppendFrameSeq(nil, 42, taskRecord(2)))
	seed(raw.AppendFrameSeq(nil, 7, taskRecord(1), taskRecord(2)))
	seed(enc.AppendFrameSeqCapture(nil, 42, 1700000000000000000, taskRecord(2)))
	seed(raw.AppendFrameSeqCapture(nil, 0, 1700000000000000000, taskRecord(1), taskRecord(2)))
	// Truncations and junk the generator should mutate from.
	f.Add([]byte{})
	f.Add([]byte{0x10})
	f.Add([]byte{0x14, 0xff})
	f.Add([]byte{0x12, 0x78, 0x9c})

	f.Fuzz(func(t *testing.T, frame []byte) {
		records, err := DecodeFrame(frame)
		if err != nil {
			return
		}
		ptrs := make([]*provdm.Record, len(records))
		for i := range records {
			ptrs[i] = &records[i]
		}
		re, err := (&Encoder{}).EncodeFrame(ptrs...)
		if err != nil {
			// The wire format can express records the encoder refuses to
			// produce (e.g. a task event without a task id); decoding them
			// is fine, round-tripping them is not required.
			return
		}
		again, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(records, again) {
			t.Fatalf("round trip mismatch:\n first %+v\n again %+v", records, again)
		}
	})
}

// FuzzDecodeAckPayload covers the other wire-format decoder: the
// cumulative-ack payload the translator publishes back to devices. Same
// contract — total on arbitrary bytes, lossless on valid payloads.
func FuzzDecodeAckPayload(f *testing.F) {
	f.Add(AppendAckPayload(nil, 0, nil))
	f.Add(AppendAckPayload(nil, 12, []uint64{13, 15, 900}))
	f.Add(AppendAckPayload(nil, ^uint64(0), []uint64{1}))
	f.Add([]byte{})
	f.Add([]byte{0x80})

	f.Fuzz(func(t *testing.T, p []byte) {
		seqs, term, err := DecodeAckPayload(p)
		if err != nil {
			return
		}
		re := AppendAckPayload(nil, term, seqs)
		seqs2, term2, err := DecodeAckPayload(re)
		if err != nil {
			t.Fatalf("re-encoded ack payload does not decode: %v", err)
		}
		if term2 != term || !reflect.DeepEqual(seqs, seqs2) {
			t.Fatalf("round trip mismatch: (%v, %d) vs (%v, %d)", seqs, term, seqs2, term2)
		}
	})
}
