// End-to-end acknowledgement protocol for spooling clients.
//
// A QoS 2 publish handshake only proves the *broker* received a frame; a
// store-and-forward client must not reclaim spooled frames until they have
// been durably applied on the server side. The translator therefore
// publishes acknowledgements back to each device on a per-device ack
// topic; the spooling client subscribes to its own ack topic and advances
// the spool's persisted low-water mark from these messages.
//
// An ack payload is: one version byte, then a uvarint count, then that
// many uvarint sequence numbers (the durable frame ids the server applied,
// see AppendFrameSeq). Acks are idempotent and unordered: the spool tracks
// a floor plus a sparse acked set, so lost, duplicated, or reordered acks
// all resolve correctly.
package wire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// AckVersion is the ack payload format version.
const AckVersion = 1

// recordsSuffix is the conventional last topic segment for capture frames
// (core.DefaultTopic publishes on "provlight/<id>/records").
const recordsSuffix = "/records"

// AckSuffix is the last topic segment acknowledgements travel on.
const AckSuffix = "/acks"

// AckTopic derives the acknowledgement topic paired with a records topic:
// "provlight/<id>/records" -> "provlight/<id>/acks". Topics without the
// "/records" suffix get "/acks" appended, so every topic has a distinct,
// deterministic ack counterpart on both ends of the pipeline.
func AckTopic(recordsTopic string) string {
	return strings.TrimSuffix(recordsTopic, recordsSuffix) + AckSuffix
}

// AppendAckPayload appends the ack encoding of seqs to dst.
func AppendAckPayload(dst []byte, seqs []uint64) []byte {
	dst = append(dst, AckVersion)
	dst = binary.AppendUvarint(dst, uint64(len(seqs)))
	for _, s := range seqs {
		dst = binary.AppendUvarint(dst, s)
	}
	return dst
}

// DecodeAckPayload decodes an ack message into the acknowledged frame
// sequence numbers.
func DecodeAckPayload(p []byte) ([]uint64, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("wire: ack payload too short (%d bytes)", len(p))
	}
	if p[0] != AckVersion {
		return nil, fmt.Errorf("wire: unsupported ack version %d", p[0])
	}
	rd := &reader{b: p[1:]}
	count, err := rd.listLen()
	if err != nil {
		return nil, err
	}
	seqs := make([]uint64, 0, count)
	for i := 0; i < count; i++ {
		s, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		seqs = append(seqs, s)
	}
	if rd.remain() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in ack payload", rd.remain())
	}
	return seqs, nil
}
