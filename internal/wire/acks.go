// End-to-end acknowledgement protocol for spooling clients.
//
// A QoS 2 publish handshake only proves the *broker* received a frame; a
// store-and-forward client must not reclaim spooled frames until they have
// been durably applied on the server side. The translator therefore
// publishes acknowledgements back to each device on a per-device ack
// topic; the spooling client subscribes to its own ack topic and advances
// the spool's persisted low-water mark from these messages.
//
// An ack payload is: one version byte, then a uvarint count, then that
// many uvarint sequence numbers (the durable frame ids the server applied,
// see AppendFrameSeq). Acks are idempotent and unordered: the spool tracks
// a floor plus a sparse acked set, so lost, duplicated, or reordered acks
// all resolve correctly.
//
// Version 2 additionally stamps the primary's replication *term* (a
// uvarint between the version byte and the count). The term fences a
// deposed primary's translator out of the ack path: a spooling client
// tracks the highest term it has seen and ignores acks from any lower
// term, so a zombie pipeline that durably applied frames only to a store
// off the promoted lineage can never release the client's spooled copies.
// Version 1 payloads decode with term 0 (unfenced), so mixed deployments
// interoperate.
package wire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// AckVersion is the unfenced ack payload format version.
const AckVersion = 1

// AckVersionTerm is the term-stamped ack payload format version.
const AckVersionTerm = 2

// recordsSuffix is the conventional last topic segment for capture frames
// (core.DefaultTopic publishes on "provlight/<id>/records").
const recordsSuffix = "/records"

// AckSuffix is the last topic segment acknowledgements travel on.
const AckSuffix = "/acks"

// AckTopic derives the acknowledgement topic paired with a records topic:
// "provlight/<id>/records" -> "provlight/<id>/acks". Topics without the
// "/records" suffix get "/acks" appended, so every topic has a distinct,
// deterministic ack counterpart on both ends of the pipeline.
func AckTopic(recordsTopic string) string {
	return strings.TrimSuffix(recordsTopic, recordsSuffix) + AckSuffix
}

// AppendAckPayload appends the ack encoding of seqs to dst. A zero term
// produces the compact version-1 payload; a non-zero term produces the
// version-2 term-stamped payload.
func AppendAckPayload(dst []byte, term uint64, seqs []uint64) []byte {
	if term == 0 {
		dst = append(dst, AckVersion)
	} else {
		dst = append(dst, AckVersionTerm)
		dst = binary.AppendUvarint(dst, term)
	}
	dst = binary.AppendUvarint(dst, uint64(len(seqs)))
	for _, s := range seqs {
		dst = binary.AppendUvarint(dst, s)
	}
	return dst
}

// DecodeAckPayload decodes an ack message into the acknowledged frame
// sequence numbers and the publishing translator's term (0 for version-1
// unfenced payloads).
func DecodeAckPayload(p []byte) (seqs []uint64, term uint64, err error) {
	if len(p) < 2 {
		return nil, 0, fmt.Errorf("wire: ack payload too short (%d bytes)", len(p))
	}
	if p[0] != AckVersion && p[0] != AckVersionTerm {
		return nil, 0, fmt.Errorf("wire: unsupported ack version %d", p[0])
	}
	rd := &reader{b: p[1:]}
	if p[0] == AckVersionTerm {
		if term, err = rd.uvarint(); err != nil {
			return nil, 0, err
		}
	}
	count, err := rd.listLen()
	if err != nil {
		return nil, 0, err
	}
	seqs = make([]uint64, 0, count)
	for i := 0; i < count; i++ {
		s, err := rd.uvarint()
		if err != nil {
			return nil, 0, err
		}
		seqs = append(seqs, s)
	}
	if rd.remain() != 0 {
		return nil, 0, fmt.Errorf("wire: %d trailing bytes in ack payload", rd.remain())
	}
	return seqs, term, nil
}
