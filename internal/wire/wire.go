// Package wire implements the ProvLight on-the-wire payload format: a
// compact binary encoding of provenance capture records with optional zlib
// compression and multi-record grouping (paper §IV-C2: "provenance data
// representation", "payload compression", "data capture grouping").
//
// A frame is the payload of one MQTT-SN PUBLISH:
//
//	byte 0   : version (high nibble) | flags (low nibble)
//	body     : one record, or a group (varint count + length-prefixed
//	           records); zlib-compressed when flagCompressed is set
//
// All integers are varints; int64 values use zigzag encoding; strings and
// byte slices are length-prefixed.
package wire

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

// Version is the frame format version carried in the high nibble.
const Version = 1

// Frame flags (low nibble of byte 0).
const (
	flagCompressed = 0x01
	flagGroup      = 0x02
	// flagSeq marks a frame carrying a durable frame id: a uvarint
	// sequence number between the header byte and the body. Spooling
	// clients stamp every frame with its spool sequence so the server can
	// deduplicate redeliveries across client restarts (exactly-once).
	flagSeq = 0x04
	// flagTrace marks a frame carrying a capture timestamp: a varint
	// UnixNano between the seq field (if any) and the body. Every stage of
	// the pipeline (publish, broker route, cluster forward, translate,
	// durable apply) subtracts it from its own clock to record cumulative
	// end-to-end latency histograms without any out-of-band trace store.
	flagTrace = 0x08
)

// DefaultCompressThreshold is the body size above which EncodeFrame
// compresses; tiny payloads gain nothing from zlib's 11-byte envelope.
const DefaultCompressThreshold = 96

// MaxFrameBody caps the decoded body size (defense against corrupt or
// hostile length fields): 16 MiB.
const MaxFrameBody = 16 << 20

// value type tags.
const (
	tagNil = iota
	tagInt
	tagFloat
	tagString
	tagTrue
	tagFalse
	tagBytes
)

// Encoder encodes capture records into frames. The zero value encodes with
// compression enabled at the default threshold. Encoders are stateless and
// safe for concurrent use; scratch buffers and zlib writers come from a
// shared pool.
type Encoder struct {
	// DisableCompression turns zlib off (used by the compression ablation).
	DisableCompression bool
	// CompressThreshold overrides DefaultCompressThreshold when > 0.
	CompressThreshold int
}

// maxPooledScratch bounds the capacity of buffers returned to the encoder
// pool so one giant frame does not pin memory forever.
const maxPooledScratch = 1 << 20

// sliceWriter is an allocation-free io.Writer target for the pooled
// zlib.Writer.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// encScratch is the per-encode working set: the record/body build buffers
// and a reusable zlib writer (zlib.NewWriter alone costs ~800 KB of
// allocations per call; Reset makes it free after the first use).
type encScratch struct {
	body []byte
	rec  []byte
	comp sliceWriter
	zw   *zlib.Writer
}

var encPool = sync.Pool{New: func() any { return &encScratch{} }}

func putEncScratch(s *encScratch) {
	if cap(s.body) > maxPooledScratch || cap(s.rec) > maxPooledScratch || cap(s.comp.b) > maxPooledScratch {
		return
	}
	encPool.Put(s)
}

// appendString appends a varint length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendValue appends a tagged attribute value.
func appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case int64:
		b = append(b, tagInt)
		return binary.AppendVarint(b, x), nil
	case float64:
		b = append(b, tagFloat)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(x)), nil
	case string:
		b = append(b, tagString)
		return appendString(b, x), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	case []byte:
		b = append(b, tagBytes)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	default:
		return nil, fmt.Errorf("wire: unsupported attribute type %T", v)
	}
}

// AppendRecord appends the binary encoding of r to b.
func AppendRecord(b []byte, r *provdm.Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	b = append(b, byte(r.Event))
	b = appendString(b, r.WorkflowID)
	b = binary.AppendVarint(b, r.Time.UnixNano())
	if r.Event == provdm.EventTaskBegin || r.Event == provdm.EventTaskEnd {
		b = appendString(b, r.TaskID)
		b = appendString(b, r.Transformation)
		b = binary.AppendUvarint(b, uint64(len(r.Dependencies)))
		for _, d := range r.Dependencies {
			b = appendString(b, d)
		}
		b = append(b, byte(r.Status))
		b = binary.AppendUvarint(b, uint64(len(r.Data)))
		for i := range r.Data {
			var err error
			b, err = appendDataRef(b, &r.Data[i])
			if err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func appendDataRef(b []byte, d *provdm.DataRef) ([]byte, error) {
	b = appendString(b, d.ID)
	b = appendString(b, d.WorkflowID)
	b = binary.AppendUvarint(b, uint64(len(d.Derivations)))
	for _, dv := range d.Derivations {
		b = appendString(b, dv)
	}
	b = binary.AppendUvarint(b, uint64(len(d.Attributes)))
	for _, a := range d.Attributes {
		b = appendString(b, a.Name)
		var err error
		b, err = appendValue(b, a.Value)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// EncodeFrame encodes one or more records into a transmit-ready frame.
// Multiple records produce a group frame (the client's grouping feature).
// The returned slice is freshly allocated and owned by the caller.
func (e *Encoder) EncodeFrame(records ...*provdm.Record) ([]byte, error) {
	return e.AppendFrame(nil, records...)
}

// AppendFrame appends the frame encoding of records to dst and returns the
// extended slice. All intermediate work (record encoding, compression)
// happens in pooled scratch buffers, so the only allocation on the steady
// state path is growing dst itself; callers that reuse dst encode with
// zero allocations.
func (e *Encoder) AppendFrame(dst []byte, records ...*provdm.Record) ([]byte, error) {
	return e.AppendFrameSeq(dst, 0, records...)
}

// AppendFrameSeq is AppendFrame with a durable frame id: when seq > 0 the
// frame carries it in a header field (flagSeq) so the receiving side can
// deduplicate redelivered frames by (origin topic, seq). seq == 0 encodes
// a plain frame.
func (e *Encoder) AppendFrameSeq(dst []byte, seq uint64, records ...*provdm.Record) ([]byte, error) {
	return e.AppendFrameSeqCapture(dst, seq, 0, records...)
}

// AppendFrameSeqCapture is AppendFrameSeq with an optional capture
// timestamp (flagTrace): when captureNS > 0 the frame carries the capture
// UnixNano so every downstream stage can record cumulative latency since
// capture. captureNS == 0 encodes an untraced frame.
func (e *Encoder) AppendFrameSeqCapture(dst []byte, seq uint64, captureNS int64, records ...*provdm.Record) ([]byte, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("wire: empty frame")
	}
	s := encPool.Get().(*encScratch)
	var flags byte
	body := s.body[:0]
	if len(records) == 1 {
		var err error
		body, err = AppendRecord(body, records[0])
		if err != nil {
			s.body = body
			putEncScratch(s)
			return nil, err
		}
	} else {
		flags |= flagGroup
		body = binary.AppendUvarint(body, uint64(len(records)))
		rec := s.rec[:0]
		for _, r := range records {
			var err error
			rec, err = AppendRecord(rec[:0], r)
			if err != nil {
				s.body, s.rec = body, rec
				putEncScratch(s)
				return nil, err
			}
			body = binary.AppendUvarint(body, uint64(len(rec)))
			body = append(body, rec...)
		}
		s.rec = rec
	}
	s.body = body
	threshold := e.CompressThreshold
	if threshold <= 0 {
		threshold = DefaultCompressThreshold
	}
	if !e.DisableCompression && len(body) > threshold {
		s.comp.b = s.comp.b[:0]
		if s.zw == nil {
			s.zw = zlib.NewWriter(&s.comp)
		} else {
			s.zw.Reset(&s.comp)
		}
		if _, err := s.zw.Write(body); err != nil {
			putEncScratch(s)
			return nil, err
		}
		if err := s.zw.Close(); err != nil {
			putEncScratch(s)
			return nil, err
		}
		if len(s.comp.b) < len(body) {
			body = s.comp.b
			flags |= flagCompressed
		}
	}
	need := 1 + 2*binary.MaxVarintLen64 + len(body)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	if seq > 0 {
		flags |= flagSeq
	}
	if captureNS > 0 {
		flags |= flagTrace
	}
	dst = append(dst, Version<<4|flags)
	if seq > 0 {
		dst = binary.AppendUvarint(dst, seq)
	}
	if captureNS > 0 {
		dst = binary.AppendVarint(dst, captureNS)
	}
	dst = append(dst, body...)
	putEncScratch(s)
	return dst, nil
}

// FrameSeq returns the durable frame id carried by a frame, if any,
// without decoding the body.
func FrameSeq(frame []byte) (uint64, bool) {
	if len(frame) < 2 || frame[0]&flagSeq == 0 {
		return 0, false
	}
	seq, n := binary.Uvarint(frame[1:])
	if n <= 0 {
		return 0, false
	}
	return seq, true
}

// FrameCaptureNS returns the capture timestamp (UnixNano) carried by a
// traced frame, if any, without decoding the body.
func FrameCaptureNS(frame []byte) (int64, bool) {
	if len(frame) < 2 || frame[0]>>4 != Version || frame[0]&flagTrace == 0 {
		return 0, false
	}
	body := frame[1:]
	if frame[0]&flagSeq != 0 {
		_, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, false
		}
		body = body[n:]
	}
	ns, n := binary.Varint(body)
	if n <= 0 || ns <= 0 {
		return 0, false
	}
	return ns, true
}

// reader consumes a record body.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) remain() int { return len(r.b) - r.pos }

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, io.ErrUnexpectedEOF
	}
	c := r.b[r.pos]
	r.pos++
	return c, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint")
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint")
	}
	r.pos += n
	return v, nil
}

func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remain()) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remain()) {
		return nil, io.ErrUnexpectedEOF
	}
	out := append([]byte(nil), r.b[r.pos:r.pos+int(n)]...)
	r.pos += int(n)
	return out, nil
}

func (r *reader) value() (any, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagInt:
		return r.varint()
	case tagFloat:
		if r.remain() < 8 {
			return nil, io.ErrUnexpectedEOF
		}
		bits := binary.BigEndian.Uint64(r.b[r.pos:])
		r.pos += 8
		return math.Float64frombits(bits), nil
	case tagString:
		return r.string()
	case tagTrue:
		return true, nil
	case tagFalse:
		return false, nil
	case tagBytes:
		return r.bytes()
	default:
		return nil, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}

// listCap bounds a decoded list length both by a sanity constant and by the
// bytes actually remaining (each element needs >= 1 byte).
func (r *reader) listLen() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remain()) {
		return 0, fmt.Errorf("wire: list length %d exceeds remaining %d bytes", n, r.remain())
	}
	return int(n), nil
}

func (r *reader) record() (provdm.Record, error) {
	var rec provdm.Record
	ev, err := r.byte()
	if err != nil {
		return rec, err
	}
	rec.Event = provdm.EventKind(ev)
	if rec.WorkflowID, err = r.string(); err != nil {
		return rec, err
	}
	ns, err := r.varint()
	if err != nil {
		return rec, err
	}
	rec.Time = time.Unix(0, ns).UTC()
	if rec.Event == provdm.EventTaskBegin || rec.Event == provdm.EventTaskEnd {
		if rec.TaskID, err = r.string(); err != nil {
			return rec, err
		}
		if rec.Transformation, err = r.string(); err != nil {
			return rec, err
		}
		ndeps, err := r.listLen()
		if err != nil {
			return rec, err
		}
		for i := 0; i < ndeps; i++ {
			d, err := r.string()
			if err != nil {
				return rec, err
			}
			rec.Dependencies = append(rec.Dependencies, d)
		}
		st, err := r.byte()
		if err != nil {
			return rec, err
		}
		rec.Status = provdm.TaskStatus(st)
		ndata, err := r.listLen()
		if err != nil {
			return rec, err
		}
		for i := 0; i < ndata; i++ {
			d, err := r.dataRef()
			if err != nil {
				return rec, err
			}
			rec.Data = append(rec.Data, d)
		}
	}
	if err := rec.Validate(); err != nil {
		return rec, err
	}
	return rec, nil
}

func (r *reader) dataRef() (provdm.DataRef, error) {
	var d provdm.DataRef
	var err error
	if d.ID, err = r.string(); err != nil {
		return d, err
	}
	if d.WorkflowID, err = r.string(); err != nil {
		return d, err
	}
	nderiv, err := r.listLen()
	if err != nil {
		return d, err
	}
	for i := 0; i < nderiv; i++ {
		s, err := r.string()
		if err != nil {
			return d, err
		}
		d.Derivations = append(d.Derivations, s)
	}
	nattrs, err := r.listLen()
	if err != nil {
		return d, err
	}
	for i := 0; i < nattrs; i++ {
		name, err := r.string()
		if err != nil {
			return d, err
		}
		v, err := r.value()
		if err != nil {
			return d, err
		}
		d.Attributes = append(d.Attributes, provdm.Attribute{Name: name, Value: v})
	}
	return d, nil
}

// decScratch is the pooled decode working set: a reusable zlib reader
// (reset per frame instead of reallocating its ~40 KB window) and the
// decompression output buffer. Decoded records copy every string and byte
// slice out of the buffer, so it is safe to recycle once DecodeFrame
// returns.
type decScratch struct {
	br  bytes.Reader
	zr  io.ReadCloser
	buf []byte
}

var decPool = sync.Pool{New: func() any { return &decScratch{} }}

func putDecScratch(s *decScratch) {
	if cap(s.buf) > maxPooledScratch {
		return
	}
	s.br.Reset(nil)
	decPool.Put(s)
}

// decompress inflates body into the scratch buffer and returns the view.
func (s *decScratch) decompress(body []byte) ([]byte, error) {
	s.br.Reset(body)
	if s.zr == nil {
		zr, err := zlib.NewReader(&s.br)
		if err != nil {
			return nil, fmt.Errorf("wire: bad compressed body: %w", err)
		}
		s.zr = zr
	} else if err := s.zr.(zlib.Resetter).Reset(&s.br, nil); err != nil {
		return nil, fmt.Errorf("wire: bad compressed body: %w", err)
	}
	out := s.buf[:0]
	for {
		if len(out) == cap(out) {
			out = append(out, 0)[:len(out)]
		}
		n, err := s.zr.Read(out[len(out):cap(out)])
		out = out[:len(out)+n]
		if len(out) > MaxFrameBody {
			s.buf = out
			return nil, fmt.Errorf("wire: decompressed body exceeds %d bytes", MaxFrameBody)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			s.buf = out
			return nil, fmt.Errorf("wire: decompress: %w", err)
		}
	}
	s.buf = out
	return out, nil
}

// DecodeFrame decodes a frame produced by EncodeFrame, returning the
// records in order.
func DecodeFrame(frame []byte) ([]provdm.Record, error) {
	if len(frame) < 2 {
		return nil, fmt.Errorf("wire: frame too short (%d bytes)", len(frame))
	}
	head := frame[0]
	if head>>4 != Version {
		return nil, fmt.Errorf("wire: unsupported version %d", head>>4)
	}
	body := frame[1:]
	if head&flagSeq != 0 {
		_, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("wire: bad frame sequence field")
		}
		body = body[n:]
	}
	if head&flagTrace != 0 {
		_, n := binary.Varint(body)
		if n <= 0 {
			return nil, fmt.Errorf("wire: bad frame capture timestamp field")
		}
		body = body[n:]
	}
	var scratch *decScratch
	if head&flagCompressed != 0 {
		scratch = decPool.Get().(*decScratch)
		decoded, err := scratch.decompress(body)
		if err != nil {
			putDecScratch(scratch)
			return nil, err
		}
		body = decoded
	}
	records, err := decodeBody(head, body)
	if scratch != nil {
		putDecScratch(scratch)
	}
	return records, err
}

// decodeBody parses the (decompressed) frame body.
func decodeBody(head byte, body []byte) ([]provdm.Record, error) {
	rd := &reader{b: body}
	if head&flagGroup == 0 {
		rec, err := rd.record()
		if err != nil {
			return nil, err
		}
		if rd.remain() != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes", rd.remain())
		}
		return []provdm.Record{rec}, nil
	}
	count, err := rd.listLen()
	if err != nil {
		return nil, err
	}
	records := make([]provdm.Record, 0, count)
	for i := 0; i < count; i++ {
		n, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(rd.remain()) {
			return nil, io.ErrUnexpectedEOF
		}
		sub := &reader{b: rd.b[rd.pos : rd.pos+int(n)]}
		rd.pos += int(n)
		rec, err := sub.record()
		if err != nil {
			return nil, err
		}
		if sub.remain() != 0 {
			return nil, fmt.Errorf("wire: record %d has %d trailing bytes", i, sub.remain())
		}
		records = append(records, rec)
	}
	if rd.remain() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after group", rd.remain())
	}
	return records, nil
}

// IsCompressed reports whether the frame's body is zlib-compressed.
func IsCompressed(frame []byte) bool {
	return len(frame) > 0 && frame[0]&flagCompressed != 0
}

// IsGroup reports whether the frame carries multiple records.
func IsGroup(frame []byte) bool {
	return len(frame) > 0 && frame[0]&flagGroup != 0
}
