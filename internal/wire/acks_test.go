package wire

import (
	"reflect"
	"testing"
)

func TestFrameSeqRoundTrip(t *testing.T) {
	enc := &Encoder{}
	rec := taskRecord(10)
	for _, seq := range []uint64{1, 127, 128, 1 << 40} {
		frame, err := enc.AppendFrameSeq(nil, seq, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := FrameSeq(frame)
		if !ok || got != seq {
			t.Fatalf("FrameSeq = %d, %v; want %d", got, ok, seq)
		}
		// The body still decodes identically to a plain frame.
		records, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("decode seq frame: %v", err)
		}
		if len(records) != 1 || !reflect.DeepEqual(records[0], *rec) {
			t.Fatal("seq frame body mismatch")
		}
	}
}

func TestFrameSeqZeroEncodesPlainFrame(t *testing.T) {
	enc := &Encoder{}
	rec := taskRecord(2)
	plain, err := enc.EncodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	viaSeq, err := enc.AppendFrameSeq(nil, 0, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, viaSeq) {
		t.Fatal("seq=0 frame differs from plain frame")
	}
	if _, ok := FrameSeq(plain); ok {
		t.Fatal("plain frame reports a sequence")
	}
}

func TestFrameSeqGroupedCompressed(t *testing.T) {
	enc := &Encoder{}
	// Grouped + large enough to compress.
	r1, r2 := taskRecord(40), taskRecord(40)
	frame, err := enc.AppendFrameSeq(nil, 999, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !IsCompressed(frame) || !IsGroup(frame) {
		t.Fatalf("expected compressed group frame, flags=%x", frame[0])
	}
	if seq, ok := FrameSeq(frame); !ok || seq != 999 {
		t.Fatalf("FrameSeq = %d, %v", seq, ok)
	}
	records, err := DecodeFrame(frame)
	if err != nil || len(records) != 2 {
		t.Fatalf("decode: %d records, err %v", len(records), err)
	}
}

func TestAckPayloadRoundTrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{1},
		{5, 3, 9, 9, 1 << 50},
	}
	for _, seqs := range cases {
		for _, term := range []uint64{0, 1, 7, 1 << 33} {
			payload := AppendAckPayload(nil, term, seqs)
			if term == 0 && payload[0] != AckVersion {
				t.Fatalf("term 0 should encode version 1, got %d", payload[0])
			}
			if term > 0 && payload[0] != AckVersionTerm {
				t.Fatalf("term %d should encode version 2, got %d", term, payload[0])
			}
			got, gotTerm, err := DecodeAckPayload(payload)
			if err != nil {
				t.Fatalf("decode acks %v term %d: %v", seqs, term, err)
			}
			if gotTerm != term {
				t.Fatalf("decoded term %d, want %d", gotTerm, term)
			}
			if len(got) != len(seqs) {
				t.Fatalf("decoded %d seqs, want %d", len(got), len(seqs))
			}
			for i := range seqs {
				if got[i] != seqs[i] {
					t.Fatalf("seq %d = %d, want %d", i, got[i], seqs[i])
				}
			}
		}
	}
	if _, _, err := DecodeAckPayload([]byte{}); err == nil {
		t.Fatal("empty ack payload accepted")
	}
	if _, _, err := DecodeAckPayload([]byte{99, 1, 1}); err == nil {
		t.Fatal("bad ack version accepted")
	}
}

func TestAckTopicDerivation(t *testing.T) {
	cases := map[string]string{
		"provlight/dev-1/records": "provlight/dev-1/acks",
		"custom/topic":            "custom/topic/acks",
	}
	for in, want := range cases {
		if got := AckTopic(in); got != want {
			t.Fatalf("AckTopic(%q) = %q, want %q", in, got, want)
		}
	}
}
