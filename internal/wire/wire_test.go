package wire

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

func taskRecord(attrs int) *provdm.Record {
	d := provdm.DataRef{ID: "in1", WorkflowID: "wf", Derivations: []string{"d0"}}
	for i := 0; i < attrs; i++ {
		d.Attributes = append(d.Attributes, provdm.Attribute{
			Name: fmt.Sprintf("attr_%d", i), Value: int64(i),
		})
	}
	return &provdm.Record{
		Event: provdm.EventTaskBegin, WorkflowID: "wf", TaskID: "t1",
		Transformation: "train", Dependencies: []string{"t0"},
		Status: provdm.StatusRunning, Data: []provdm.DataRef{d},
		Time: time.Unix(0, 1234567890).UTC(),
	}
}

func TestSingleRecordRoundTrip(t *testing.T) {
	enc := &Encoder{}
	rec := taskRecord(10)
	frame, err := enc.EncodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d records, want 1", len(got))
	}
	if !reflect.DeepEqual(got[0], *rec) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got[0], *rec)
	}
}

func TestWorkflowEventRoundTrip(t *testing.T) {
	enc := &Encoder{}
	rec := &provdm.Record{Event: provdm.EventWorkflowEnd, WorkflowID: "9", Time: time.Unix(5, 0).UTC()}
	frame, err := enc.EncodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], *rec) {
		t.Errorf("round trip mismatch: %+v vs %+v", got[0], *rec)
	}
}

func TestGroupFrameRoundTrip(t *testing.T) {
	enc := &Encoder{}
	var recs []*provdm.Record
	for i := 0; i < 20; i++ {
		r := taskRecord(5)
		r.TaskID = fmt.Sprintf("t%d", i)
		recs = append(recs, r)
	}
	frame, err := enc.EncodeFrame(recs...)
	if err != nil {
		t.Fatal(err)
	}
	if !IsGroup(frame) {
		t.Error("frame should be marked as group")
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("decoded %d records, want 20", len(got))
	}
	for i := range got {
		if got[i].TaskID != fmt.Sprintf("t%d", i) {
			t.Errorf("record %d out of order: %s", i, got[i].TaskID)
		}
	}
}

func TestCompressionEngagesForLargePayloads(t *testing.T) {
	enc := &Encoder{}
	big, err := enc.EncodeFrame(taskRecord(100))
	if err != nil {
		t.Fatal(err)
	}
	if !IsCompressed(big) {
		t.Error("100-attribute record should compress")
	}
	small, err := enc.EncodeFrame(&provdm.Record{
		Event: provdm.EventWorkflowBegin, WorkflowID: "1", Time: time.Unix(0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if IsCompressed(small) {
		t.Error("tiny record should not compress")
	}
	// Compression must actually shrink the frame.
	raw, err := (&Encoder{DisableCompression: true}).EncodeFrame(taskRecord(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(big) >= len(raw) {
		t.Errorf("compressed %d >= raw %d", len(big), len(raw))
	}
}

func TestSimplifiedModelIsSmallerThanJSON(t *testing.T) {
	// The paper's rationale: the binary exchange model transmits ~2x less
	// than JSON-over-HTTP baselines (Fig. 6c). Compare the same logical
	// record encoded both ways.
	rec := taskRecord(100)
	frame, err := (&Encoder{}).EncodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) >= len(jsonBytes)/2 {
		t.Errorf("wire frame %dB vs JSON %dB: want at least 2x smaller", len(frame), len(jsonBytes))
	}
}

func TestAllValueTypes(t *testing.T) {
	rec := &provdm.Record{
		Event: provdm.EventTaskEnd, WorkflowID: "w", TaskID: "t",
		Status: provdm.StatusFinished, Time: time.Unix(1, 2).UTC(),
		Data: []provdm.DataRef{{
			ID: "d",
			Attributes: []provdm.Attribute{
				{Name: "i", Value: int64(-42)},
				{Name: "f", Value: 3.14159},
				{Name: "s", Value: "hello"},
				{Name: "bt", Value: true},
				{Name: "bf", Value: false},
				{Name: "raw", Value: []byte{0, 1, 2, 255}},
				{Name: "nil", Value: nil},
			},
		}},
	}
	frame, err := (&Encoder{}).EncodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], *rec) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got[0].Data[0], rec.Data[0])
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x10},             // version only, no body
		{0x99, 1, 2, 3},    // wrong version
		{0x11, 0xff, 0xff}, // compressed flag but not zlib
		{0x10, 200, 0, 0},  // unknown event kind
	}
	for i, c := range cases {
		if _, err := DecodeFrame(c); err == nil {
			t.Errorf("case %d: expected decode error for % x", i, c)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	frame, err := (&Encoder{DisableCompression: true}).EncodeFrame(taskRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	frame = append(frame, 0xAB)
	if _, err := DecodeFrame(frame); err == nil {
		t.Error("expected error for trailing bytes")
	}
}

func TestEncodeRejectsInvalidRecords(t *testing.T) {
	if _, err := (&Encoder{}).EncodeFrame(); err == nil {
		t.Error("empty frame should fail")
	}
	bad := &provdm.Record{Event: provdm.EventTaskBegin, WorkflowID: "w"} // no task id
	if _, err := (&Encoder{}).EncodeFrame(bad); err == nil {
		t.Error("invalid record should fail to encode")
	}
}

// randomRecord builds a valid random record from fuzz inputs.
func randomRecord(rng *rand.Rand) *provdm.Record {
	r := &provdm.Record{
		WorkflowID: fmt.Sprintf("wf%d", rng.Intn(100)),
		Time:       time.Unix(rng.Int63n(1e9), rng.Int63n(1e9)).UTC(),
	}
	switch rng.Intn(4) {
	case 0:
		r.Event = provdm.EventWorkflowBegin
	case 1:
		r.Event = provdm.EventWorkflowEnd
	case 2:
		r.Event = provdm.EventTaskBegin
		r.Status = provdm.StatusRunning
	default:
		r.Event = provdm.EventTaskEnd
		r.Status = provdm.StatusFinished
	}
	if r.Event == provdm.EventTaskBegin || r.Event == provdm.EventTaskEnd {
		r.TaskID = fmt.Sprintf("t%d", rng.Intn(1000))
		r.Transformation = fmt.Sprintf("tr%d", rng.Intn(10))
		for i := 0; i < rng.Intn(3); i++ {
			r.Dependencies = append(r.Dependencies, fmt.Sprintf("t%d", rng.Intn(1000)))
		}
		for i := 0; i < rng.Intn(3); i++ {
			d := provdm.DataRef{ID: fmt.Sprintf("d%d", rng.Intn(1000))}
			for j := 0; j < rng.Intn(8); j++ {
				var v any
				switch rng.Intn(5) {
				case 0:
					v = rng.Int63() - rng.Int63()
				case 1:
					v = rng.NormFloat64()
				case 2:
					v = fmt.Sprintf("val%d", rng.Intn(50))
				case 3:
					v = rng.Intn(2) == 0
				default:
					v = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
				}
				d.Attributes = append(d.Attributes, provdm.Attribute{Name: fmt.Sprintf("a%d", j), Value: v})
			}
			r.Data = append(r.Data, d)
		}
	}
	return r
}

// Property: every valid record round-trips bit-exactly through the codec,
// grouped or not, compressed or not.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, group uint8, noCompress bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(group%5) + 1
		recs := make([]*provdm.Record, n)
		for i := range recs {
			recs[i] = randomRecord(rng)
		}
		enc := &Encoder{DisableCompression: noCompress}
		frame, err := enc.EncodeFrame(recs...)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := DecodeFrame(frame)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], *recs[i]) {
				t.Logf("mismatch at %d:\n got %+v\nwant %+v", i, got[i], *recs[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: DecodeFrame never panics on arbitrary input.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("DecodeFrame panicked on % x: %v", data, r)
			}
		}()
		_, _ = DecodeFrame(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGroupingAmortizesBytes(t *testing.T) {
	// The grouping feature must transmit fewer bytes than N single frames
	// (shared compression dictionary across records).
	enc := &Encoder{}
	var recs []*provdm.Record
	singles := 0
	for i := 0; i < 50; i++ {
		r := taskRecord(20)
		r.TaskID = fmt.Sprintf("t%d", i)
		recs = append(recs, r)
		frame, err := enc.EncodeFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		singles += len(frame)
	}
	grouped, err := enc.EncodeFrame(recs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) >= singles {
		t.Errorf("grouped frame %dB not smaller than %dB of singles", len(grouped), singles)
	}
}
