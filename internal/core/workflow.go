package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

// This file provides the user-facing instrumentation API of Listing 1:
//
//	wf := client.NewWorkflow("1")
//	wf.Begin()
//	task := wf.NewTask("t1", "training", prevTask)
//	task.Begin(core.NewData("in1", core.Attrs(map[string]any{...})))
//	... task work ...
//	task.End(core.NewData("out1", attrs).DerivedFrom("in1"))
//	wf.End()

// Workflow is the PROV-DM Agent of the exchange model: the application
// workflow provenance is captured for.
type Workflow struct {
	client *Client
	id     string
	began  atomic.Bool
	ended  atomic.Bool
}

// NewWorkflow creates a workflow handle with the given id.
func (c *Client) NewWorkflow(id string) *Workflow {
	return &Workflow{client: c, id: id}
}

// ID returns the workflow id.
func (w *Workflow) ID() string { return w.id }

// Begin captures the workflow start event.
func (w *Workflow) Begin() error {
	if !w.began.CompareAndSwap(false, true) {
		return fmt.Errorf("provlight: workflow %s already began", w.id)
	}
	err := w.client.Capture(&provdm.Record{
		Event:      provdm.EventWorkflowBegin,
		WorkflowID: w.id,
		Time:       time.Now(),
	})
	if err != nil {
		w.began.Store(false) // retryable, e.g. after ErrQueueFull
	}
	return err
}

// End captures the workflow end event and flushes any grouped records.
// In spool mode the flush ends at the disk spool (the workflow's records
// are durable at that point); it does not wait for the broker — waiting
// out a partition is Flush/Shutdown's job, not the workload's.
func (w *Workflow) End() error {
	if !w.ended.CompareAndSwap(false, true) {
		return fmt.Errorf("provlight: workflow %s already ended", w.id)
	}
	if err := w.client.Capture(&provdm.Record{
		Event:      provdm.EventWorkflowEnd,
		WorkflowID: w.id,
		Time:       time.Now(),
	}); err != nil {
		w.ended.Store(false) // retryable, e.g. after ErrQueueFull
		return err
	}
	if w.client.spool != nil {
		// The group buffer (if any) was cut by the workflow-end capture
		// above and is already on disk; nothing in flight to wait for.
		return nil
	}
	return w.client.Flush()
}

// Task is the PROV-DM Activity of the exchange model: one processing step
// (e.g. a training epoch).
type Task struct {
	workflow       *Workflow
	id             string
	transformation string
	deps           []string
	began          atomic.Bool
	ended          atomic.Bool
}

// NewTask creates a task belonging to this workflow. transformation names
// the processing step type; deps are tasks that must precede this one
// (wasInformedBy).
func (w *Workflow) NewTask(id, transformation string, deps ...*Task) *Task {
	t := &Task{workflow: w, id: id, transformation: transformation}
	for _, d := range deps {
		if d != nil {
			t.deps = append(t.deps, d.id)
		}
	}
	return t
}

// ID returns the task id.
func (t *Task) ID() string { return t.id }

// Begin captures the task start together with its input data derivations
// (used relations). A failed capture (e.g. ErrQueueFull under
// backpressure) leaves the task un-begun, so the call is retryable.
func (t *Task) Begin(inputs ...*Data) error {
	if !t.began.CompareAndSwap(false, true) {
		return fmt.Errorf("provlight: task %s already began", t.id)
	}
	err := t.workflow.client.Capture(&provdm.Record{
		Event:          provdm.EventTaskBegin,
		WorkflowID:     t.workflow.id,
		TaskID:         t.id,
		Transformation: t.transformation,
		Dependencies:   t.deps,
		Status:         provdm.StatusRunning,
		Data:           dataRefs(t.workflow.id, inputs),
		Time:           time.Now(),
	})
	if err != nil {
		t.began.Store(false)
	}
	return err
}

// End captures the task completion together with its generated outputs
// (wasGeneratedBy relations). Like Begin, a failed capture leaves the
// task un-ended so the call is retryable.
func (t *Task) End(outputs ...*Data) error {
	if !t.began.Load() {
		return fmt.Errorf("provlight: task %s ended before beginning", t.id)
	}
	if !t.ended.CompareAndSwap(false, true) {
		return fmt.Errorf("provlight: task %s already ended", t.id)
	}
	err := t.workflow.client.Capture(&provdm.Record{
		Event:          provdm.EventTaskEnd,
		WorkflowID:     t.workflow.id,
		TaskID:         t.id,
		Transformation: t.transformation,
		Status:         provdm.StatusFinished,
		Data:           dataRefs(t.workflow.id, outputs),
		Time:           time.Now(),
	})
	if err != nil {
		t.ended.Store(false)
	}
	return err
}

// Data is the PROV-DM Entity of the exchange model: input parameters or
// output values with optional derivation links.
type Data struct {
	id          string
	attributes  []provdm.Attribute
	derivations []string
}

// NewData creates a data handle with ordered attributes.
func NewData(id string, attributes []provdm.Attribute) *Data {
	return &Data{id: id, attributes: attributes}
}

// DerivedFrom links this data to the ids it was derived from
// (wasDerivedFrom) and returns the handle for chaining.
func (d *Data) DerivedFrom(ids ...string) *Data {
	d.derivations = append(d.derivations, ids...)
	return d
}

// ID returns the data id.
func (d *Data) ID() string { return d.id }

func dataRefs(workflowID string, data []*Data) []provdm.DataRef {
	if len(data) == 0 {
		return nil
	}
	out := make([]provdm.DataRef, 0, len(data))
	for _, d := range data {
		if d == nil {
			continue
		}
		out = append(out, provdm.DataRef{
			ID:          d.id,
			WorkflowID:  workflowID,
			Derivations: d.derivations,
			Attributes:  d.attributes,
		})
	}
	return out
}
