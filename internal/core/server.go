package core

import (
	"context"
	"fmt"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/translate"
)

// ServerConfig configures a ProvLight server: the broker plus one or more
// provenance data translators (paper Fig. 3: "The ProvLight server is
// composed of a broker and a provenance data translator. Both may be
// parallelized to scale the data capture").
type ServerConfig struct {
	// Addr is the UDP address the broker listens on ("127.0.0.1:0" picks
	// a free port).
	Addr string
	// Targets receive translated records.
	Targets []translate.Target
	// Translators is how many parallel translator sessions to run; each
	// consumes the full topic space unless TopicFilters is set. Default 1.
	Translators int
	// TopicFilters optionally pins each translator to its own filter
	// (e.g. one per device topic, as in the Table IX scalability setup).
	// When set, it overrides Translators.
	TopicFilters []string
	// Sessions is how many broker sessions each translator opens in one
	// shared-subscription consumer group: the broker partitions the
	// device topic space across them (per-workflow order preserved), so
	// the fan-in path scales horizontally instead of squeezing through
	// one session's outbound window. Default 1.
	Sessions int
	// Workers per translator. Default 1.
	Workers int
	// BatchSize caps the translator delivery micro-batch (frames drained
	// from the queue per delivery round). Default 64; 1 disables batching.
	BatchSize int
	// BatchLinger is how long a translator worker waits for more frames
	// before delivering an underfull batch. Default 0 (no wait).
	BatchLinger time.Duration
	// RetryInterval tunes broker and translator retransmissions.
	RetryInterval time.Duration
	// MaxSessions, ConnectRate and ConnectBurst pass through to the
	// broker's overload admission control (see broker.Config): past either
	// limit new CONNECTs get a congestion CONNACK instead of a session.
	MaxSessions  int
	ConnectRate  float64
	ConnectBurst int
	// OnError receives asynchronous translator errors.
	OnError func(error)
	// Metrics, when set, exports broker counters, translator counters and
	// pipeline stage latencies into the registry. Scrape-time cost only.
	Metrics *obs.Registry
}

// Server bundles the broker and translators.
type Server struct {
	Broker      *broker.Broker
	Translators []*translate.Translator

	hub *translate.Hub
}

// StartServer launches the broker and its translators. ctx bounds the
// translators' connect/subscribe handshakes; it does not govern the
// server's lifetime — use Shutdown/Close for that.
func StartServer(ctx context.Context, cfg ServerConfig) (*Server, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("provlight: server requires at least one target")
	}
	b, err := broker.New(broker.Config{
		Addr:          cfg.Addr,
		RetryInterval: cfg.RetryInterval,
		MaxSessions:   cfg.MaxSessions,
		ConnectRate:   cfg.ConnectRate,
		ConnectBurst:  cfg.ConnectBurst,
		Metrics:       cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		broker.CollectStats(cfg.Metrics, "", b.Stats)
	}
	filters := cfg.TopicFilters
	if len(filters) == 0 {
		n := cfg.Translators
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			filters = append(filters, "provlight/+/records")
		}
	}
	srv := &Server{Broker: b, hub: translate.NewHub()}
	for i, filter := range filters {
		tr, err := translate.New(ctx, translate.Config{
			Broker:        b.Addr(),
			ClientID:      fmt.Sprintf("translator-%d", i+1),
			TopicFilter:   filter,
			QoS:           mqttsn.QoS2,
			QoSSet:        true,
			Targets:       cfg.Targets,
			Sessions:      cfg.Sessions,
			Workers:       cfg.Workers,
			BatchSize:     cfg.BatchSize,
			BatchLinger:   cfg.BatchLinger,
			RetryInterval: cfg.RetryInterval,
			OnError:       cfg.OnError,
			Hub:           srv.hub,
			Metrics:       cfg.Metrics,
		})
		if err != nil {
			srv.Close()
			return nil, err
		}
		srv.Translators = append(srv.Translators, tr)
	}
	return srv, nil
}

// Addr returns the broker's UDP address for clients.
func (s *Server) Addr() string { return s.Broker.Addr() }

// Subscribe opens a live provenance stream: every record decoded by the
// server's translators (any of them) that matches filter is delivered on
// the returned channel, after target delivery. The channel is closed when
// the subscription ends — cancel is called, ctx is cancelled, or the
// server shuts down.
//
// Delivery is non-blocking with a bounded per-subscriber buffer
// (Filter.Buffer, default translate.DefaultSubscribeBuffer): a slow
// consumer loses records rather than backpressuring ingestion, and every
// such drop is counted in SubscriptionStats().Dropped.
func (s *Server) Subscribe(ctx context.Context, filter translate.Filter) (<-chan provdm.Record, func()) {
	return s.hub.Subscribe(ctx, filter)
}

// SubscriptionStats returns a snapshot of live-subscription counters
// (active subscribers, records delivered, slow-consumer drops).
func (s *Server) SubscriptionStats() translate.HubStats { return s.hub.Stats() }

// Drain waits until every translator has delivered all received frames.
func (s *Server) Drain() {
	for _, t := range s.Translators {
		t.Drain()
	}
}

// Shutdown stops the server gracefully under ctx: each translator stops
// consuming and drains its already-received frames, live subscriptions are
// ended (their channels closed), and the broker is stopped last. If ctx
// expires mid-drain the first context error is returned and the remaining
// teardown is forced.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	for _, t := range s.Translators {
		if e := t.Shutdown(ctx); e != nil && err == nil {
			err = e
		}
	}
	s.hub.Close()
	if s.Broker != nil {
		s.Broker.Close()
	}
	return err
}

// Close stops translators and the broker, draining without a deadline.
func (s *Server) Close() { _ = s.Shutdown(context.Background()) }
