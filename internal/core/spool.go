package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/ctxutil"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/resilience"
	"github.com/provlight/provlight/internal/spool"
	"github.com/provlight/provlight/internal/wire"
)

// This file implements the client's store-and-forward mode
// (Config.SpoolDir): captures append to a disk spool, and a single
// drainer goroutine owns the broker session lifecycle — dialing with
// exponential backoff, re-establishing the topic registration and the
// end-to-end acknowledgement subscription on every (re)connect, sliding
// an ack window over the spool, and rewinding to redeliver frames whose
// acknowledgements never arrived. The mqtt transport below it still runs
// QoS 2, but broker receipt no longer releases a frame: only the
// translator's ack (published after durable delivery to every target)
// advances the spool's persisted floor.

// Sentinel results of a drain session.
var (
	errDrainStop    = errors.New("provlight: drain stopped")
	errDrainKill    = errors.New("provlight: drain killed")
	errSessionDown  = errors.New("provlight: broker session down")
	errSpoolReadEnd = errors.New("provlight: spool read failed")
)

// newSpoolClient opens the spool and starts the drainer; the broker does
// not need to be reachable.
func newSpoolClient(cfg Config) (*Client, error) {
	if cfg.Synchronous {
		return nil, fmt.Errorf("provlight: Synchronous and SpoolDir are mutually exclusive")
	}
	if cfg.AckWindow <= 0 {
		cfg.AckWindow = 64
	}
	if cfg.RedeliverAfter <= 0 {
		cfg.RedeliverAfter = 10 * time.Second
	}
	if cfg.ReconnectMinDelay <= 0 {
		cfg.ReconnectMinDelay = 250 * time.Millisecond
	}
	if cfg.ReconnectMaxDelay <= 0 {
		cfg.ReconnectMaxDelay = 10 * time.Second
	}
	if cfg.CongestionRetryAfter <= 0 {
		cfg.CongestionRetryAfter = time.Second
	}
	sp, err := spool.Open(spool.Options{
		Dir:           cfg.SpoolDir,
		Sync:          cfg.SpoolSync,
		SyncInterval:  cfg.SpoolSyncInterval,
		SegmentSize:   cfg.SpoolSegmentSize,
		Quota:         cfg.SpoolQuota,
		HighWatermark: cfg.SpoolHighWatermark,
		LowWatermark:  cfg.SpoolLowWatermark,
		Policy:        cfg.SpoolPolicy,
	})
	if err != nil {
		return nil, fmt.Errorf("provlight: open spool: %w", err)
	}
	c := &Client{
		cfg:       cfg,
		topic:     cfg.Topic,
		enc:       wire.Encoder{DisableCompression: cfg.DisableCompression},
		spool:     sp,
		drainStop: make(chan struct{}),
		drainKill: make(chan struct{}),
	}
	c.initMetrics()
	c.drainWG.Add(1)
	go c.drainer()
	return c, nil
}

// spoolAppend encodes records into a frame stamped with its spool
// sequence number and appends it to the WAL. This is the whole capture
// hot path in spool mode: one encode, one write(2). Under a disk quota
// the spool's degradation policy applies: a shed frame is counted and
// silently dropped (the policy chose loss), a Block rejection propagates
// as a retryable error so the caller stalls rather than loses data.
func (c *Client) spoolAppend(records ...*provdm.Record) error {
	if c.closed.Load() {
		return fmt.Errorf("provlight: client closed")
	}
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	var size int
	var compressed bool
	qos0 := c.cfg.QoS <= mqttsn.QoS0
	_, err := c.spool.AppendFrame(qos0, func(seq uint64) ([]byte, error) {
		frame, err := c.enc.AppendFrameSeqCapture((*bufp)[:0], seq, c.captureNow(), records...)
		if err != nil {
			return nil, err
		}
		*bufp = frame
		size = len(frame)
		compressed = wire.IsCompressed(frame)
		return frame, nil
	})
	if errors.Is(err, spool.ErrShed) {
		c.ctr.framesShed.Add(1)
		return nil
	}
	if err != nil {
		return err
	}
	c.ctr.framesSpooled.Add(1)
	c.ctr.bytesPublished.Add(uint64(size))
	if compressed {
		c.ctr.framesCompressed.Add(1)
	}
	return nil
}

// reportAsync counts an asynchronous error and delivers it to OnError
// under the serialization contract.
func (c *Client) reportAsync(err error) {
	c.ctr.asyncErrors.Add(1)
	if cb := c.cfg.OnError; cb != nil {
		c.errMu.Lock()
		cb(err)
		c.errMu.Unlock()
	}
}

func (c *Client) currentSession() *mqttsn.Client {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	return c.sess
}

func (c *Client) setSession(mc *mqttsn.Client) {
	c.sessMu.Lock()
	c.sess = mc
	c.sessMu.Unlock()
}

// drainer owns the broker connection: dial, drain, tear down, back off,
// repeat — until stopped (graceful) or killed (crash simulation). Backoff
// comes from the shared resilience schedule: exponential with [d/2, d]
// jitter, which matters at fleet scale — after a broker or translator
// failover every edge client notices the outage within the same retry
// interval, and without jitter their backoffs stay phase-locked,
// thousands of devices re-dialing in synchronized waves. A congestion
// rejection from the broker's admission control raises the sleep to at
// least CongestionRetryAfter (jittered upward), honoring the broker's
// "come back later" instead of hammering it at the dial cadence.
func (c *Client) drainer() {
	defer c.drainWG.Done()
	bo := resilience.Backoff{Min: c.cfg.ReconnectMinDelay, Max: c.cfg.ReconnectMaxDelay}
	attempt := 0
	for {
		select {
		case <-c.drainStop:
			return
		case <-c.drainKill:
			return
		default:
		}
		c.ctr.reconnectAttempts.Add(1)
		mc, conn, down, err := c.dialSession()
		if err != nil {
			c.ctr.consecFailures.Add(1)
			c.reportAsync(fmt.Errorf("provlight: spool connect %s: %w", c.cfg.Broker, err))
			sleep := bo.Delay(attempt)
			if errors.Is(err, mqttsn.ErrCongestion) && sleep < c.cfg.CongestionRetryAfter {
				// Jitter over [after, 2×after]: at least what the broker
				// asked for, never the whole herd at once.
				after := c.cfg.CongestionRetryAfter
				sleep = resilience.Backoff{Min: 2 * after, Max: 2 * after}.Delay(0)
			}
			attempt++
			if !c.backoffSleep(sleep) {
				return
			}
			continue
		}
		c.ctr.reconnects.Add(1)
		c.ctr.consecFailures.Store(0)
		c.ctr.nextRetryNano.Store(0)
		attempt = 0
		c.setSession(mc)
		err = c.drainWith(mc, down)
		c.setSession(nil)
		if err == errDrainStop {
			_ = mc.Disconnect() // clean goodbye: the broker releases the session now
		} else {
			mc.Close()
		}
		if conn != nil {
			conn.Close() // DialConn-supplied sockets are ours to close
		}
		switch err {
		case errDrainStop, errDrainKill:
			return
		}
		sleep := bo.Delay(attempt)
		attempt++
		if !c.backoffSleep(sleep) {
			return
		}
	}
}

// backoffSleep waits out one backoff delay, publishing the wake deadline
// in stats (NextRetryUnixNano) so an operator can see when a disconnected
// client will try again. Returns false when the drainer should exit.
func (c *Client) backoffSleep(d time.Duration) bool {
	c.ctr.nextRetryNano.Store(time.Now().Add(d).UnixNano())
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		c.ctr.nextRetryNano.Store(0)
		return true
	case <-c.drainStop:
		return false
	case <-c.drainKill:
		return false
	}
}

// dialSession establishes one broker session: connect, register the
// records topic, subscribe to the ack topic. down is closed when the
// session dies (broker disconnect, socket error, or a publish giving up
// its retries).
func (c *Client) dialSession() (*mqttsn.Client, net.PacketConn, <-chan struct{}, error) {
	var conn net.PacketConn
	var dialed bool
	if c.cfg.DialConn != nil {
		var err error
		if conn, err = c.cfg.DialConn(); err != nil {
			return nil, nil, nil, err
		}
		dialed = true
	} else if c.cfg.Conn != nil {
		conn = c.cfg.Conn // reused across sessions; caller-owned
	}
	down := make(chan struct{})
	var downOnce sync.Once
	closeDown := func(error) { downOnce.Do(func() { close(down) }) }
	mc, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:       c.cfg.ClientID,
		Gateway:        c.cfg.Broker,
		Conn:           conn,
		Transport:      c.cfg.Transport,
		KeepAlive:      c.cfg.KeepAlive,
		RetryInterval:  c.cfg.RetryInterval,
		MaxRetries:     c.cfg.MaxRetries,
		InflightWindow: c.cfg.WindowSize,
		CleanSession:   true,
		OnDisconnect:   closeDown,
	})
	if err != nil {
		if dialed && conn != nil {
			conn.Close()
		}
		return nil, nil, nil, err
	}
	fail := func(err error) (*mqttsn.Client, net.PacketConn, <-chan struct{}, error) {
		mc.Close()
		if dialed && conn != nil {
			conn.Close()
		}
		return nil, nil, nil, err
	}
	if err := mc.Connect(); err != nil {
		return fail(err)
	}
	if _, err := mc.RegisterTopic(c.topic); err != nil {
		return fail(err)
	}
	// Subscription re-establishment: the per-device ack topic, on which
	// the translator reports end-to-end durable delivery.
	if err := mc.Subscribe(wire.AckTopic(c.topic), mqttsn.QoS1, c.onAck); err != nil {
		return fail(err)
	}
	if !dialed {
		conn = nil // not ours to close
	}
	return mc, conn, down, nil
}

// onAck advances the spool floor from a translator acknowledgement. Runs
// on the session's read goroutine.
//
// Term fencing: the ack payload carries the replication term of the
// primary store the translator fed (0 for unfenced version-1 acks). The
// client tracks the highest term it has ever seen and drops acks from any
// lower term — after a failover, a zombie translator still applying
// frames to the deposed primary must not release spooled frames, because
// the deposed store's writes are off the promoted lineage and will be
// discarded when it rejoins. Unfenced (term 0) acks are always accepted,
// so single-node deployments behave exactly as before.
func (c *Client) onAck(_ string, payload []byte) {
	seqs, term, err := wire.DecodeAckPayload(payload)
	if err != nil {
		c.reportAsync(fmt.Errorf("provlight: bad ack payload: %w", err))
		return
	}
	if term > 0 {
		for {
			cur := c.ctr.ackTerm.Load()
			if term < cur {
				c.ctr.staleAcks.Add(1)
				return // zombie translator: ignore the whole ack
			}
			if term == cur || c.ctr.ackTerm.CompareAndSwap(cur, term) {
				break
			}
		}
	}
	for _, seq := range seqs {
		if err := c.spool.Ack(seq); err != nil {
			c.reportAsync(fmt.Errorf("provlight: ack %d: %w", seq, err))
		}
	}
}

// drainWith pumps spooled frames through one session until it dies or the
// client stops. Frames are published in order within an ack window above
// the floor; completion of the QoS handshake releases the frame buffer
// but not the frame — only acks do that.
func (c *Client) drainWith(mc *mqttsn.Client, down <-chan struct{}) error {
	r := c.spool.NewReader()
	defer r.Close()
	window := uint64(c.cfg.AckWindow)
	stall := time.NewTicker(c.cfg.RedeliverAfter)
	defer stall.Stop()
	lastFloor := c.spool.Floor()
	var lastPub uint64

	// checkStall rewinds the reader when published frames sit unacked
	// with no floor progress for a full tick: the ack was lost, or the
	// translator restarted. Redelivered frames are deduplicated
	// downstream by their durable ids. Rewinding must also reopen the
	// ack window (lastPub back to the floor): the rewound reader re-sends
	// from floor+1, and keeping the old high-water mark would wedge the
	// window-wait loop whenever an ack hole sits more than AckWindow
	// frames below the furthest publish — rewound but never re-read.
	checkStall := func() {
		floor := c.spool.Floor()
		if floor == lastFloor && lastPub > floor && c.spool.Pending() > 0 {
			r.Reset()
			lastPub = floor
			c.ctr.redeliveries.Add(1)
		}
		lastFloor = floor
	}

	// The session is gone when either `down` fires (broker DISCONNECT or
	// socket death, via OnDisconnect) or the client is closed — which
	// includes the publish-failure collector below recycling it with
	// mc.Close(), a path OnDisconnect deliberately does NOT report.
	// Selecting on both is what lets the drainer notice its own recycle.
	sessionGone := mc.Done()
	for {
		select {
		case <-c.drainKill:
			return errDrainKill
		case <-c.drainStop:
			return errDrainStop
		case <-down:
			return errSessionDown
		case <-sessionGone:
			return errSessionDown
		default:
		}
		// Sliding ack window: never run more than AckWindow frames ahead
		// of the acknowledged floor.
		for lastPub >= c.spool.Floor()+window {
			select {
			case <-c.spool.AckSignal():
			case <-stall.C:
				checkStall()
			case <-down:
				return errSessionDown
			case <-sessionGone:
				return errSessionDown
			case <-c.drainStop:
				return errDrainStop
			case <-c.drainKill:
				return errDrainKill
			}
		}
		bufp := framePool.Get().(*[]byte)
		seq, frame, ok, err := r.Next((*bufp)[:0])
		if err != nil {
			framePool.Put(bufp)
			c.reportAsync(fmt.Errorf("provlight: read spool: %w", err))
			return errSpoolReadEnd
		}
		if !ok {
			framePool.Put(bufp)
			// Caught up: sleep until new frames, ack progress (which can
			// expose skipped frames after a Reset), or a stall tick.
			select {
			case <-c.spool.Notify():
			case <-c.spool.AckSignal():
			case <-stall.C:
				checkStall()
			case <-down:
				return errSessionDown
			case <-sessionGone:
				return errSessionDown
			case <-c.drainStop:
				return errDrainStop
			case <-c.drainKill:
				return errDrainKill
			}
			continue
		}
		*bufp = frame
		// Publish barrier: the frame must be on stable storage before the
		// server can see (and dedup-mark) its sequence number.
		if err := c.spool.EnsureSynced(seq); err != nil {
			framePool.Put(bufp)
			c.reportAsync(fmt.Errorf("provlight: sync spool before publish: %w", err))
			return errSpoolReadEnd
		}
		if c.stageCapture != nil {
			if ns, ok := wire.FrameCaptureNS(frame); ok {
				obs.ObserveSince(c.stageCapture, ns)
			}
		}
		// Blocks only while the transport's in-flight window is full;
		// Close/Abort unblocks it.
		errc := mc.PublishAsync(c.topic, frame, c.cfg.QoS)
		c.ctr.framesPublished.Add(1)
		lastPub = seq
		go func() {
			err := <-errc
			framePool.Put(bufp)
			if err != nil {
				if !errors.Is(err, mqttsn.ErrClosed) {
					c.reportAsync(fmt.Errorf("provlight: publish spooled frame %d: %w", seq, err))
				}
				// A handshake that exhausted its retries means the link is
				// gone: recycle the session, the next one redelivers.
				mc.Close()
			}
		}()
	}
}

// waitDrained blocks until every spooled frame is acked, or ctx expires.
func (c *Client) waitDrained(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for !c.spool.Drained() {
		select {
		case <-c.spool.AckSignal():
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// shutdownSpool is Shutdown for spool mode: flush the group to disk, wait
// (under ctx) for the spool to drain end to end, then stop the drainer
// and persist the spool state. On ctx expiry the unacked frames simply
// stay on disk for the next run — durable shutdown never loses data, it
// only decides how long to wait for the network.
func (c *Client) shutdownSpool(ctx context.Context) error {
	err := c.flushGroup(nil)
	if !c.closed.CompareAndSwap(false, true) {
		// Another Shutdown/Close/Abort owns the teardown; wait for it
		// under our ctx.
		if werr := ctxutil.Wait(ctx, c.drainWG.Wait); werr != nil && err == nil {
			err = werr
		}
		return err
	}
	werr := c.waitDrained(ctx)
	close(c.drainStop)
	c.drainWG.Wait()
	if cerr := c.spool.Close(); err == nil {
		err = cerr
	}
	if werr != nil && err == nil {
		err = werr
	}
	return err
}

// Abort tears the client down as a crash would: no group flush, no drain,
// no ack-mark persistence — the spool directory is left exactly as a
// SIGKILL would leave it, and the next NewClient with the same SpoolDir
// resumes from the persisted state. Used by crash-recovery tests and as
// an emergency stop; the graceful path is Shutdown/Close.
func (c *Client) Abort() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	if c.spool != nil {
		close(c.drainKill)
		if mc := c.currentSession(); mc != nil {
			mc.Close()
		}
		c.drainWG.Wait()
		c.spool.Crash()
		return
	}
	c.mqtt.Close()
	c.txMu.Lock()
	c.txMu.Unlock() //nolint:staticcheck // barrier: wait out in-progress transmits
	close(c.sendQ)
	c.wg.Wait()
	c.inFly.Wait()
}
