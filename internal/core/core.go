package core
