package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/capture"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/translate"
)

var _ capture.Client = (*Client)(nil)

func startPipeline(t *testing.T, cfgMod func(*Config)) (*Client, *translate.MemoryTarget, *Server) {
	t.Helper()
	mem := translate.NewMemoryTarget()
	srv, err := StartServer(ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{mem},
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cfg := Config{
		Broker:        srv.Addr(),
		ClientID:      "device-1",
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	client, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, mem, srv
}

func waitRecords(t *testing.T, mem *translate.MemoryTarget, want int) []provdm.Record {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for mem.Len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d records, want %d", mem.Len(), want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return mem.Records()
}

func TestListing1EndToEnd(t *testing.T) {
	// Reproduce Listing 1: 5 chained transformations, tasks with input and
	// output data derivations, through the full client->broker->translator
	// pipeline.
	client, mem, _ := startPipeline(t, nil)

	const transformations = 3
	const tasksPerTransf = 4
	attrs := Attrs(map[string]any{"in": int64(1), "param": 0.5})

	wf := client.NewWorkflow("1")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	dataID := 0
	var prev *Task
	for tr := 0; tr < transformations; tr++ {
		for i := 0; i < tasksPerTransf; i++ {
			dataID++
			task := wf.NewTask(fmt.Sprintf("%d-%d", tr, i), fmt.Sprintf("transf%d", tr), prev)
			in := NewData(fmt.Sprintf("in%d", dataID), attrs)
			if err := task.Begin(in); err != nil {
				t.Fatal(err)
			}
			out := NewData(fmt.Sprintf("out%d", dataID), attrs).DerivedFrom(in.ID())
			if err := task.End(out); err != nil {
				t.Fatal(err)
			}
			prev = task
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}

	total := 2 + 2*transformations*tasksPerTransf
	records := waitRecords(t, mem, total)
	if records[0].Event != provdm.EventWorkflowBegin {
		t.Errorf("first record = %s, want workflow.begin", records[0].Event)
	}
	// Build the PROV document and validate the full mapping.
	doc, err := provdm.BuildDocument(records)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(doc.ElementsOfKind(provdm.KindActivity)); got != transformations*tasksPerTransf {
		t.Errorf("activities = %d, want %d", got, transformations*tasksPerTransf)
	}
	// Derivations made it across the wire.
	if got := len(doc.RelationsOfKind(provdm.WasDerivedFrom)); got != transformations*tasksPerTransf {
		t.Errorf("derivations = %d, want %d", got, transformations*tasksPerTransf)
	}
}

func TestGroupingEndedTasksOnly(t *testing.T) {
	client, mem, _ := startPipeline(t, func(c *Config) {
		c.GroupSize = 5
	})
	wf := client.NewWorkflow("g")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	waitRecords(t, mem, 22)

	st := client.Stats()
	// begins (10) + workflow.begin are immediate; 10 ends + workflow.end
	// grouped by 5: 11 immediate frames + 3 group frames.
	if st.RecordsCaptured != 22 {
		t.Errorf("captured = %d, want 22", st.RecordsCaptured)
	}
	if st.RecordsGrouped != 11 {
		t.Errorf("grouped records = %d, want 11 (ends + workflow end)", st.RecordsGrouped)
	}
	if st.FramesPublished != 14 {
		t.Errorf("frames = %d, want 14 (11 immediate + 3 groups)", st.FramesPublished)
	}
}

func TestCompressionStats(t *testing.T) {
	bigAttrs := map[string]any{}
	for i := 0; i < 100; i++ {
		bigAttrs[fmt.Sprintf("attr_%02d", i)] = int64(i)
	}
	client, mem, _ := startPipeline(t, nil)
	wf := client.NewWorkflow("c")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	task := wf.NewTask("t0", "tr")
	if err := task.Begin(NewData("in", Attrs(bigAttrs))); err != nil {
		t.Fatal(err)
	}
	if err := task.End(NewData("out", Attrs(bigAttrs))); err != nil {
		t.Fatal(err)
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	records := waitRecords(t, mem, 4)
	st := client.Stats()
	if st.FramesCompressed < 2 {
		t.Errorf("compressed frames = %d, want >= 2 (100-attr payloads)", st.FramesCompressed)
	}
	// The attribute values survived.
	var taskBegin *provdm.Record
	for i := range records {
		if records[i].Event == provdm.EventTaskBegin {
			taskBegin = &records[i]
		}
	}
	if taskBegin == nil || len(taskBegin.Data) != 1 || len(taskBegin.Data[0].Attributes) != 100 {
		t.Fatalf("task begin data corrupted: %+v", taskBegin)
	}
}

func TestWindowSizeOneStopAndWait(t *testing.T) {
	// WindowSize 1 restores the pre-windowing stop-and-wait sender: one
	// frame fully acknowledged before the next leaves. Everything must
	// still arrive exactly once, in capture order on a loss-free link.
	client, mem, _ := startPipeline(t, func(c *Config) {
		c.WindowSize = 1
	})
	wf := client.NewWorkflow("w1")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	const tasks = 10
	for i := 0; i < tasks; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	records := waitRecords(t, mem, 2+2*tasks)
	if records[0].Event != provdm.EventWorkflowBegin {
		t.Errorf("first record = %s, want workflow.begin", records[0].Event)
	}
	if last := records[len(records)-1]; last.Event != provdm.EventWorkflowEnd {
		t.Errorf("last record = %s, want workflow.end", last.Event)
	}
	if st := client.Stats(); st.FramesPublished != uint64(2+2*tasks) {
		t.Errorf("frames = %d, want %d", st.FramesPublished, 2+2*tasks)
	}
}

func TestWindowedCaptureDeliversEverything(t *testing.T) {
	// A wide window overlaps many QoS 2 handshakes; every record must
	// still arrive exactly once.
	client, mem, _ := startPipeline(t, func(c *Config) {
		c.WindowSize = 32
	})
	wf := client.NewWorkflow("wide")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	const tasks = 50
	for i := 0; i < tasks; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	records := waitRecords(t, mem, 2+2*tasks)
	seen := map[string]int{}
	for _, r := range records {
		seen[fmt.Sprintf("%s/%s", r.Event, r.TaskID)]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("record %s delivered %d times", k, n)
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	client, _, _ := startPipeline(t, nil)
	wf := client.NewWorkflow("e")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := wf.Begin(); err == nil {
		t.Error("double workflow begin should fail")
	}
	task := wf.NewTask("t", "tr")
	if err := task.End(); err == nil {
		t.Error("end before begin should fail")
	}
	if err := task.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := task.Begin(); err == nil {
		t.Error("double task begin should fail")
	}
	if err := task.End(); err != nil {
		t.Fatal(err)
	}
	if err := task.End(); err == nil {
		t.Error("double task end should fail")
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	if err := wf.End(); err == nil {
		t.Error("double workflow end should fail")
	}
}

func TestSynchronousMode(t *testing.T) {
	client, mem, _ := startPipeline(t, func(c *Config) {
		c.Synchronous = true
	})
	wf := client.NewWorkflow("s")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	// Synchronous publishes complete before End returns; one poll pass is
	// enough for the translator to drain.
	waitRecords(t, mem, 2)
}

func TestParallelTranslatorsPerDeviceTopics(t *testing.T) {
	// Table IX setup: each device publishes to its own topic; one
	// translator per topic consumes in parallel.
	mem := translate.NewMemoryTarget()
	const devices = 4
	var filters []string
	for d := 0; d < devices; d++ {
		filters = append(filters, fmt.Sprintf("provlight/device-%d/records", d))
	}
	srv, err := StartServer(ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{mem},
		TopicFilters:  filters,
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for d := 0; d < devices; d++ {
		client, err := NewClient(Config{
			Broker:        srv.Addr(),
			ClientID:      fmt.Sprintf("device-%d", d),
			RetryInterval: 150 * time.Millisecond,
			MaxRetries:    10,
		})
		if err != nil {
			t.Fatal(err)
		}
		wf := client.NewWorkflow(fmt.Sprintf("wf-%d", d))
		if err := wf.Begin(); err != nil {
			t.Fatal(err)
		}
		task := wf.NewTask("t0", "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
		if err := wf.End(); err != nil {
			t.Fatal(err)
		}
		client.Close()
	}
	records := waitRecords(t, mem, devices*4)
	wfs := map[string]int{}
	for _, r := range records {
		wfs[r.WorkflowID]++
	}
	for d := 0; d < devices; d++ {
		if wfs[fmt.Sprintf("wf-%d", d)] != 4 {
			t.Errorf("workflow wf-%d has %d records, want 4", d, wfs[fmt.Sprintf("wf-%d", d)])
		}
	}
	// Each translator consumed only its own topic.
	for i, tr := range srv.Translators {
		if st := tr.Stats(); st.FramesReceived != 4 {
			t.Errorf("translator %d received %d frames, want 4", i, st.FramesReceived)
		}
	}
}
