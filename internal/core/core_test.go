package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/capture"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/translate"
)

var _ capture.Client = (*Client)(nil)

func startPipeline(t *testing.T, cfgMod func(*Config)) (*Client, *translate.MemoryTarget, *Server) {
	t.Helper()
	mem := translate.NewMemoryTarget()
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{mem},
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cfg := Config{
		Broker:        srv.Addr(),
		ClientID:      "device-1",
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	client, err := NewClient(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, mem, srv
}

func waitRecords(t *testing.T, mem *translate.MemoryTarget, want int) []provdm.Record {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for mem.Len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d records, want %d", mem.Len(), want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return mem.Records()
}

func TestListing1EndToEnd(t *testing.T) {
	// Reproduce Listing 1: 5 chained transformations, tasks with input and
	// output data derivations, through the full client->broker->translator
	// pipeline.
	client, mem, _ := startPipeline(t, nil)

	const transformations = 3
	const tasksPerTransf = 4
	attrs := Attrs(map[string]any{"in": int64(1), "param": 0.5})

	wf := client.NewWorkflow("1")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	dataID := 0
	var prev *Task
	for tr := 0; tr < transformations; tr++ {
		for i := 0; i < tasksPerTransf; i++ {
			dataID++
			task := wf.NewTask(fmt.Sprintf("%d-%d", tr, i), fmt.Sprintf("transf%d", tr), prev)
			in := NewData(fmt.Sprintf("in%d", dataID), attrs)
			if err := task.Begin(in); err != nil {
				t.Fatal(err)
			}
			out := NewData(fmt.Sprintf("out%d", dataID), attrs).DerivedFrom(in.ID())
			if err := task.End(out); err != nil {
				t.Fatal(err)
			}
			prev = task
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}

	total := 2 + 2*transformations*tasksPerTransf
	records := waitRecords(t, mem, total)
	if records[0].Event != provdm.EventWorkflowBegin {
		t.Errorf("first record = %s, want workflow.begin", records[0].Event)
	}
	// Build the PROV document and validate the full mapping.
	doc, err := provdm.BuildDocument(records)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(doc.ElementsOfKind(provdm.KindActivity)); got != transformations*tasksPerTransf {
		t.Errorf("activities = %d, want %d", got, transformations*tasksPerTransf)
	}
	// Derivations made it across the wire.
	if got := len(doc.RelationsOfKind(provdm.WasDerivedFrom)); got != transformations*tasksPerTransf {
		t.Errorf("derivations = %d, want %d", got, transformations*tasksPerTransf)
	}
}

func TestGroupingEndedTasksOnly(t *testing.T) {
	client, mem, _ := startPipeline(t, func(c *Config) {
		c.GroupSize = 5
	})
	wf := client.NewWorkflow("g")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	waitRecords(t, mem, 22)

	st := client.Stats()
	// begins (10) + workflow.begin are immediate; 10 ends + workflow.end
	// grouped by 5: 11 immediate frames + 3 group frames.
	if st.RecordsCaptured != 22 {
		t.Errorf("captured = %d, want 22", st.RecordsCaptured)
	}
	if st.RecordsGrouped != 11 {
		t.Errorf("grouped records = %d, want 11 (ends + workflow end)", st.RecordsGrouped)
	}
	if st.FramesPublished != 14 {
		t.Errorf("frames = %d, want 14 (11 immediate + 3 groups)", st.FramesPublished)
	}
}

func TestCompressionStats(t *testing.T) {
	bigAttrs := map[string]any{}
	for i := 0; i < 100; i++ {
		bigAttrs[fmt.Sprintf("attr_%02d", i)] = int64(i)
	}
	client, mem, _ := startPipeline(t, nil)
	wf := client.NewWorkflow("c")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	task := wf.NewTask("t0", "tr")
	if err := task.Begin(NewData("in", Attrs(bigAttrs))); err != nil {
		t.Fatal(err)
	}
	if err := task.End(NewData("out", Attrs(bigAttrs))); err != nil {
		t.Fatal(err)
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	records := waitRecords(t, mem, 4)
	st := client.Stats()
	if st.FramesCompressed < 2 {
		t.Errorf("compressed frames = %d, want >= 2 (100-attr payloads)", st.FramesCompressed)
	}
	// The attribute values survived.
	var taskBegin *provdm.Record
	for i := range records {
		if records[i].Event == provdm.EventTaskBegin {
			taskBegin = &records[i]
		}
	}
	if taskBegin == nil || len(taskBegin.Data) != 1 || len(taskBegin.Data[0].Attributes) != 100 {
		t.Fatalf("task begin data corrupted: %+v", taskBegin)
	}
}

func TestWindowSizeOneStopAndWait(t *testing.T) {
	// WindowSize 1 restores the pre-windowing stop-and-wait sender: one
	// frame fully acknowledged before the next leaves. Everything must
	// still arrive exactly once, in capture order on a loss-free link.
	client, mem, _ := startPipeline(t, func(c *Config) {
		c.WindowSize = 1
	})
	wf := client.NewWorkflow("w1")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	const tasks = 10
	for i := 0; i < tasks; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	records := waitRecords(t, mem, 2+2*tasks)
	if records[0].Event != provdm.EventWorkflowBegin {
		t.Errorf("first record = %s, want workflow.begin", records[0].Event)
	}
	if last := records[len(records)-1]; last.Event != provdm.EventWorkflowEnd {
		t.Errorf("last record = %s, want workflow.end", last.Event)
	}
	if st := client.Stats(); st.FramesPublished != uint64(2+2*tasks) {
		t.Errorf("frames = %d, want %d", st.FramesPublished, 2+2*tasks)
	}
}

func TestWindowedCaptureDeliversEverything(t *testing.T) {
	// A wide window overlaps many QoS 2 handshakes; every record must
	// still arrive exactly once.
	client, mem, _ := startPipeline(t, func(c *Config) {
		c.WindowSize = 32
	})
	wf := client.NewWorkflow("wide")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	const tasks = 50
	for i := 0; i < tasks; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	records := waitRecords(t, mem, 2+2*tasks)
	seen := map[string]int{}
	for _, r := range records {
		seen[fmt.Sprintf("%s/%s", r.Event, r.TaskID)]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("record %s delivered %d times", k, n)
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	client, _, _ := startPipeline(t, nil)
	wf := client.NewWorkflow("e")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := wf.Begin(); err == nil {
		t.Error("double workflow begin should fail")
	}
	task := wf.NewTask("t", "tr")
	if err := task.End(); err == nil {
		t.Error("end before begin should fail")
	}
	if err := task.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := task.Begin(); err == nil {
		t.Error("double task begin should fail")
	}
	if err := task.End(); err != nil {
		t.Fatal(err)
	}
	if err := task.End(); err == nil {
		t.Error("double task end should fail")
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	if err := wf.End(); err == nil {
		t.Error("double workflow end should fail")
	}
}

func TestSynchronousMode(t *testing.T) {
	client, mem, _ := startPipeline(t, func(c *Config) {
		c.Synchronous = true
	})
	wf := client.NewWorkflow("s")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}
	// Synchronous publishes complete before End returns; one poll pass is
	// enough for the translator to drain.
	waitRecords(t, mem, 2)
}

func TestParallelTranslatorsPerDeviceTopics(t *testing.T) {
	// Table IX setup: each device publishes to its own topic; one
	// translator per topic consumes in parallel.
	mem := translate.NewMemoryTarget()
	const devices = 4
	var filters []string
	for d := 0; d < devices; d++ {
		filters = append(filters, fmt.Sprintf("provlight/device-%d/records", d))
	}
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{mem},
		TopicFilters:  filters,
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for d := 0; d < devices; d++ {
		client, err := NewClient(context.Background(), Config{
			Broker:        srv.Addr(),
			ClientID:      fmt.Sprintf("device-%d", d),
			RetryInterval: 150 * time.Millisecond,
			MaxRetries:    10,
		})
		if err != nil {
			t.Fatal(err)
		}
		wf := client.NewWorkflow(fmt.Sprintf("wf-%d", d))
		if err := wf.Begin(); err != nil {
			t.Fatal(err)
		}
		task := wf.NewTask("t0", "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
		if err := wf.End(); err != nil {
			t.Fatal(err)
		}
		client.Close()
	}
	records := waitRecords(t, mem, devices*4)
	wfs := map[string]int{}
	for _, r := range records {
		wfs[r.WorkflowID]++
	}
	for d := 0; d < devices; d++ {
		if wfs[fmt.Sprintf("wf-%d", d)] != 4 {
			t.Errorf("workflow wf-%d has %d records, want 4", d, wfs[fmt.Sprintf("wf-%d", d)])
		}
	}
	// Each translator consumed only its own topic.
	for i, tr := range srv.Translators {
		if st := tr.Stats(); st.FramesReceived != 4 {
			t.Errorf("translator %d received %d frames, want 4", i, st.FramesReceived)
		}
	}
}

func TestSubscribeEndToEnd(t *testing.T) {
	// Live subscription: device -> broker -> translator -> subscriber.
	// Records must arrive on the subscription channel as the workflow runs,
	// after target delivery, with nothing lost for a keeping-up consumer.
	client, _, srv := startPipeline(t, nil)

	ctx := context.Background()
	all, cancelAll := srv.Subscribe(ctx, translate.Filter{Buffer: 128})
	defer cancelAll()
	endsOnly, cancelEnds := srv.Subscribe(ctx, translate.Filter{
		Events: []provdm.EventKind{provdm.EventTaskEnd},
		Buffer: 128,
	})
	defer cancelEnds()

	const tasks = 10
	wf := client.NewWorkflow("live")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tasks; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	if err := wf.End(); err != nil {
		t.Fatal(err)
	}

	want := 2 + 2*tasks
	deadline := time.After(10 * time.Second)
	var got []provdm.Record
	for len(got) < want {
		select {
		case rec := <-all:
			got = append(got, rec)
		case <-deadline:
			t.Fatalf("subscription delivered %d/%d records", len(got), want)
		}
	}
	seen := map[string]int{}
	for _, r := range got {
		seen[fmt.Sprintf("%s/%s", r.Event, r.TaskID)]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("record %s delivered %d times", k, n)
		}
	}
	for i := 0; i < tasks; i++ {
		select {
		case rec := <-endsOnly:
			if rec.Event != provdm.EventTaskEnd {
				t.Errorf("filtered subscription got %s", rec.Event)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("filtered subscription delivered %d/%d task ends", i, tasks)
		}
	}
	if st := srv.SubscriptionStats(); st.Dropped != 0 {
		t.Errorf("dropped = %d for keeping-up consumers, want 0", st.Dropped)
	}

	// Cancelling one subscription closes its channel and leaves the other
	// (plus the pipeline) functional.
	cancelEnds()
	if _, ok := <-endsOnly; ok {
		t.Error("cancelled subscription channel should be closed")
	}
}

func TestClientAndServerShutdownUnderDeadline(t *testing.T) {
	// A healthy pipeline drains well within the deadline: Shutdown returns
	// nil on both the client and the server, and subscriptions end.
	client, mem, srv := startPipeline(t, func(c *Config) {
		c.GroupSize = 4 // leave a partial group for Shutdown to flush
	})
	sub, cancelSub := srv.Subscribe(context.Background(), translate.Filter{})
	defer cancelSub()

	wf := client.NewWorkflow("drain")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	// No wf.End(): two ended tasks sit in the partial group buffer; the
	// client Shutdown must flush and drain them.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.Shutdown(ctx); err != nil {
		t.Fatalf("client shutdown: %v", err)
	}
	waitRecords(t, mem, 1+2*6)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("server shutdown: %v", err)
	}
	// Server shutdown closed the subscription channel (possibly after the
	// buffered records drain).
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-sub:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscription channel not closed by server Shutdown")
		}
	}
}

func TestClientShutdownExpiredDeadlineAbandons(t *testing.T) {
	// Kill the broker under the client, queue frames whose QoS 2 handshakes
	// can never complete, and check that Shutdown gives up at the deadline
	// instead of hanging, accounting the abandoned frames as async errors.
	client, _, srv := startPipeline(t, func(c *Config) {
		c.RetryInterval = 200 * time.Millisecond
		c.MaxRetries = 50 // retry budget far beyond the shutdown deadline
	})
	wf := client.NewWorkflow("doomed")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}
	client.Flush()
	srv.Broker.Close()
	for i := 0; i < 3; i++ {
		task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := client.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown error = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v, deadline was 400ms", elapsed)
	}
	// The force-closed transport fails the abandoned handshakes; their
	// collectors record async errors shortly after.
	deadline := time.Now().Add(5 * time.Second)
	for client.StatsSnapshot().AsyncErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned frames were not accounted as async errors")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStatsSnapshotRace(t *testing.T) {
	// Concurrent captures against concurrent StatsSnapshot reads: run with
	// -race (the CI race job does) to verify the snapshot path is
	// race-free, and check counters are monotonically consistent.
	client, mem, _ := startPipeline(t, nil)
	wf := client.NewWorkflow("stats")
	if err := wf.Begin(); err != nil {
		t.Fatal(err)
	}

	const tasks = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < tasks; i++ {
			task := wf.NewTask(fmt.Sprintf("t%d", i), "tr")
			if err := task.Begin(); err != nil {
				t.Error(err)
				return
			}
			if err := task.End(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var lastCaptured uint64
	for {
		st := client.StatsSnapshot()
		if st.RecordsCaptured < lastCaptured {
			t.Fatalf("RecordsCaptured went backwards: %d -> %d", lastCaptured, st.RecordsCaptured)
		}
		lastCaptured = st.RecordsCaptured
		select {
		case <-done:
			if err := wf.End(); err != nil {
				t.Fatal(err)
			}
			waitRecords(t, mem, 2+2*tasks)
			if st := client.StatsSnapshot(); st.RecordsCaptured != 2+2*tasks {
				t.Errorf("captured = %d, want %d", st.RecordsCaptured, 2+2*tasks)
			}
			return
		default:
		}
	}
}

func TestServerSessionsConsumerGroup(t *testing.T) {
	// One translator, several consumer-group broker sessions: capture from
	// parallel devices must arrive exactly once with per-workflow order.
	mem := translate.NewMemoryTarget()
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{mem},
		Sessions:      3,
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if got := srv.Translators[0].Sessions(); got != 3 {
		t.Fatalf("translator sessions = %d, want 3", got)
	}
	const devices = 4
	for d := 0; d < devices; d++ {
		client, err := NewClient(context.Background(), Config{
			Broker:        srv.Addr(),
			ClientID:      fmt.Sprintf("gdev-%d", d),
			RetryInterval: 150 * time.Millisecond,
			MaxRetries:    10,
			// Stop-and-wait: overlapping handshakes (WindowSize > 1) may
			// complete out of order by design, and this test asserts strict
			// per-workflow order — what it pins is the *group's* stickiness,
			// so arrival order must be deterministic.
			WindowSize: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		wf := client.NewWorkflow(fmt.Sprintf("gwf-%d", d))
		if err := wf.Begin(); err != nil {
			t.Fatal(err)
		}
		task := wf.NewTask("t0", "tr")
		if err := task.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := task.End(); err != nil {
			t.Fatal(err)
		}
		if err := wf.End(); err != nil {
			t.Fatal(err)
		}
		client.Close()
	}
	records := waitRecords(t, mem, devices*4)
	perWf := map[string][]provdm.EventKind{}
	for _, r := range records {
		perWf[r.WorkflowID] = append(perWf[r.WorkflowID], r.Event)
	}
	wantSeq := []provdm.EventKind{
		provdm.EventWorkflowBegin, provdm.EventTaskBegin,
		provdm.EventTaskEnd, provdm.EventWorkflowEnd,
	}
	for d := 0; d < devices; d++ {
		got := perWf[fmt.Sprintf("gwf-%d", d)]
		if len(got) != len(wantSeq) {
			t.Errorf("workflow gwf-%d has %d records, want %d", d, len(got), len(wantSeq))
			continue
		}
		for i := range wantSeq {
			if got[i] != wantSeq[i] {
				t.Errorf("workflow gwf-%d event %d = %v, want %v (order violated)", d, i, got[i], wantSeq[i])
				break
			}
		}
	}
}
