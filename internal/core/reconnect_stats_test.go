package core

import (
	"context"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/translate"
)

// TestReconnectCountersSurface: while the broker is down, the drainer's
// retry state is visible in StatsSnapshot — attempts climb, consecutive
// failures climb, and the next-retry deadline is published; a successful
// reconnect clears the failure streak. Run with -race: the counters are
// read here while the drainer goroutine writes them.
func TestReconnectCountersSurface(t *testing.T) {
	// Reserve an address, then close it so the drainer's dials fail.
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	b.Close()

	client, err := NewClient(context.Background(), Config{
		Broker:            addr,
		ClientID:          "retry-stats-device",
		SpoolDir:          t.TempDir(),
		RetryInterval:     100 * time.Millisecond,
		MaxRetries:        3,
		RedeliverAfter:    500 * time.Millisecond,
		ReconnectMinDelay: 20 * time.Millisecond,
		ReconnectMaxDelay: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient must succeed with the broker down: %v", err)
	}
	captureTask(t, client, "wf", 0)

	deadline := time.Now().Add(10 * time.Second)
	var sawDeadline bool
	for {
		st := client.StatsSnapshot()
		if st.NextRetryUnixNano > 0 {
			sawDeadline = true
		}
		if st.ReconnectAttempts >= 2 && st.ReconnectConsecFailures >= 2 && sawDeadline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry state never surfaced: %+v (sawDeadline=%v)", st, sawDeadline)
		}
		time.Sleep(5 * time.Millisecond)
	}

	mem := translate.NewMemoryTarget()
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          addr,
		Targets:       []translate.Target{mem},
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v (stats %+v)", err, client.StatsSnapshot())
	}
	st := client.StatsSnapshot()
	if st.SpoolReconnects == 0 {
		t.Fatalf("no successful reconnect counted: %+v", st)
	}
	if st.ReconnectConsecFailures != 0 {
		t.Fatalf("failure streak not cleared by successful session: %+v", st)
	}
	if st.ReconnectAttempts < 2 {
		t.Fatalf("attempt counter regressed: %+v", st)
	}
}
