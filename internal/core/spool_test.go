package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/translate"
)

func captureTask(t testing.TB, c *Client, wf string, i int) {
	t.Helper()
	w := c.NewWorkflow(wf)
	task := w.NewTask(fmt.Sprintf("t%d", i), "train")
	if err := task.Begin(NewData(fmt.Sprintf("in%d", i), Attrs(map[string]any{"lr": 0.01}))); err != nil {
		t.Fatalf("begin %d: %v", i, err)
	}
	if err := task.End(NewData(fmt.Sprintf("out%d", i), Attrs(map[string]any{"acc": float64(i)}))); err != nil {
		t.Fatalf("end %d: %v", i, err)
	}
}

// TestQueueFullDropsAndCounts pins the backpressure contract: with no
// spool and a full transmit queue, Capture fails fast with ErrQueueFull
// and counts the drop — it never blocks the workload.
func TestQueueFullDropsAndCounts(t *testing.T) {
	// A broker that accepts the session but a queue of 1 with a slow
	// (high-latency) path would be flaky; instead just stop the sender
	// from draining by pointing at a broker, connecting, then filling the
	// queue faster than QoS 2 over loopback can drain a queue of 2.
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	client, err := NewClient(context.Background(), Config{
		Broker:        b.Addr(),
		ClientID:      "qf-device",
		QueueCapacity: 1,
		WindowSize:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var dropped int
	for i := 0; i < 500; i++ {
		rec := &provdm.Record{Event: provdm.EventWorkflowBegin, WorkflowID: fmt.Sprintf("w%d", i), Time: time.Now()}
		if err := client.Capture(rec); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("capture %d: %v", i, err)
			}
			dropped++
		}
	}
	st := client.StatsSnapshot()
	if dropped == 0 || st.QueueFull != uint64(dropped) {
		t.Fatalf("dropped=%d QueueFull=%d (want equal, nonzero)", dropped, st.QueueFull)
	}
	if st.FramesPublished+st.QueueFull != 500 {
		t.Fatalf("published %d + dropped %d != 500", st.FramesPublished, st.QueueFull)
	}
}

// TestSpoolPipelineEndToEnd drives the full durable path: spooling client
// -> broker -> translator -> target, with end-to-end acks draining the
// spool.
func TestSpoolPipelineEndToEnd(t *testing.T) {
	mem := translate.NewMemoryTarget()
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{mem},
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := NewClient(context.Background(), Config{
		Broker:            srv.Addr(),
		ClientID:          "spool-device",
		SpoolDir:          t.TempDir(),
		RetryInterval:     150 * time.Millisecond,
		MaxRetries:        10,
		RedeliverAfter:    500 * time.Millisecond,
		ReconnectMinDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		captureTask(t, client, "wf", i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := client.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v (stats %+v)", err, client.StatsSnapshot())
	}
	st := client.StatsSnapshot()
	if st.FramesSpooled != 2*n {
		t.Fatalf("FramesSpooled = %d, want %d", st.FramesSpooled, 2*n)
	}
	if st.SpoolAcked != 2*n || st.SpoolPending != 0 {
		t.Fatalf("acked=%d pending=%d, want %d/0", st.SpoolAcked, st.SpoolPending, 2*n)
	}
	srv.Drain()
	if got := mem.Len(); got != 2*n {
		t.Fatalf("memory target has %d records, want %d", got, 2*n)
	}
}

// TestSpoolSurvivesBrokerOutage starts capturing with no broker at all,
// then brings the server up: the drainer's reconnect loop must find it
// and drain everything without losing a record.
func TestSpoolSurvivesBrokerOutage(t *testing.T) {
	// Reserve an address, then close it so the drainer's first dials fail.
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	b.Close()

	client, err := NewClient(context.Background(), Config{
		Broker:            addr,
		ClientID:          "outage-device",
		SpoolDir:          t.TempDir(),
		RetryInterval:     100 * time.Millisecond,
		MaxRetries:        3,
		RedeliverAfter:    500 * time.Millisecond,
		ReconnectMinDelay: 50 * time.Millisecond,
		ReconnectMaxDelay: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient must succeed with the broker down: %v", err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		captureTask(t, client, "wf", i)
	}
	if st := client.StatsSnapshot(); st.FramesSpooled != 2*n || st.SpoolAcked != 0 {
		t.Fatalf("before broker: spooled=%d acked=%d", st.FramesSpooled, st.SpoolAcked)
	}

	mem := translate.NewMemoryTarget()
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          addr,
		Targets:       []translate.Target{mem},
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after outage: %v (stats %+v)", err, client.StatsSnapshot())
	}
	st := client.StatsSnapshot()
	if st.SpoolAcked != 2*n {
		t.Fatalf("acked = %d, want %d", st.SpoolAcked, 2*n)
	}
	if st.SpoolReconnects == 0 {
		t.Fatal("no reconnects counted")
	}
	srv.Drain()
	if got := mem.Len(); got != 2*n {
		t.Fatalf("memory target has %d records, want %d", got, 2*n)
	}
}

// TestSpoolClientCrashResume: Abort mid-stream (simulated SIGKILL), then
// a new client on the same spool dir finishes the job; the server sees
// every record exactly once (dedup absorbs the redeliveries).
func TestSpoolClientCrashResume(t *testing.T) {
	store := translate.NewStoreTarget(newTestStore(t), "provlight")
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{store},
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dir := t.TempDir()
	mkClient := func(id string) *Client {
		c, err := NewClient(context.Background(), Config{
			Broker:            srv.Addr(),
			ClientID:          id,
			Topic:             DefaultTopic("crash-device"), // same identity across restarts
			SpoolDir:          dir,
			RetryInterval:     150 * time.Millisecond,
			MaxRetries:        10,
			RedeliverAfter:    400 * time.Millisecond,
			ReconnectMinDelay: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	const n = 60
	c1 := mkClient("crash-device")
	for i := 0; i < n/2; i++ {
		captureTask(t, c1, "wf", i)
	}
	// Give the drainer a moment to publish some (but likely not persist
	// every ack), then crash.
	time.Sleep(300 * time.Millisecond)
	c1.Abort()

	c2 := mkClient("crash-device")
	for i := n / 2; i < n; i++ {
		captureTask(t, c2, "wf", i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c2.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v (stats %+v)", err, c2.StatsSnapshot())
	}
	srv.Drain()
	if got := store.Store().TaskCount("provlight"); got != n {
		t.Fatalf("store has %d tasks, want exactly %d (lost or duplicated)", got, n)
	}
	rows, err := store.Store().Select(context.Background(), querySelectAll("train_output"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("output rows = %d, want exactly %d", len(rows), n)
	}
}

func newTestStore(t *testing.T) *dfanalyzer.Store { return dfanalyzer.NewStore() }

func querySelectAll(set string) dfanalyzer.Query {
	return dfanalyzer.Query{Dataflow: "provlight", Set: set}
}

// TestSpoolReconnectsAfterMidStreamBrokerDeath is the session-recycle
// regression: the broker dies while frames are in flight, so a publish
// exhausts its retries and the error collector closes the session from
// our own side — a path OnDisconnect deliberately does not report. The
// drainer must still notice (via the session's Done channel), back off,
// and reconnect once a broker is listening again.
func TestSpoolReconnectsAfterMidStreamBrokerDeath(t *testing.T) {
	// One store target shared by both server incarnations, so exactly-once
	// is assertable across the outage (frames acked by either server land
	// in the same store).
	store := translate.NewStoreTarget(dfanalyzer.NewStore(), "provlight")
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{store},
		RetryInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client, err := NewClient(context.Background(), Config{
		Broker:            addr,
		ClientID:          "midstream-device",
		SpoolDir:          t.TempDir(),
		RetryInterval:     100 * time.Millisecond,
		MaxRetries:        3,
		RedeliverAfter:    400 * time.Millisecond,
		ReconnectMinDelay: 50 * time.Millisecond,
		ReconnectMaxDelay: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n/2; i++ {
		captureTask(t, client, "wf", i)
	}
	// Let some frames ack, then kill the whole server mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for client.StatsSnapshot().SpoolAcked == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	srv.Close()
	for i := n / 2; i < n; i++ {
		captureTask(t, client, "wf", i)
	}
	// Give the in-flight publishes time to exhaust retries and recycle
	// the session (the wedge this test guards against).
	time.Sleep(600 * time.Millisecond)

	srv2, err := StartServer(context.Background(), ServerConfig{
		Addr:          addr,
		Targets:       []translate.Target{store},
		RetryInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := client.Shutdown(ctx); err != nil {
		t.Fatalf("drain after mid-stream broker death: %v (stats %+v)", err, client.StatsSnapshot())
	}
	st := client.StatsSnapshot()
	if st.SpoolPending != 0 || st.SpoolReconnects < 2 {
		t.Fatalf("pending=%d reconnects=%d (want 0 pending, >=2 sessions)", st.SpoolPending, st.SpoolReconnects)
	}
	srv2.Drain()
	if got := store.Store().TaskCount("provlight"); got != n {
		t.Fatalf("store has %d tasks, want exactly %d", got, n)
	}
}
