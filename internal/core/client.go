// Package core implements the ProvLight client capture library: the
// paper's primary contribution (§IV). It provides the Workflow/Task/Data
// instrumentation API of Listing 1, backed by the simplified PROV-DM
// exchange model (Table V), binary payload compression, optional grouping
// of captured data from ended tasks, and asynchronous publish/subscribe
// transmission over MQTT-SN/UDP at QoS 2 (Table VI).
package core

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/wire"
)

// DefaultTopicPattern is where a client publishes its records: one topic
// per device, mirroring Fig. 5 (topic-1..topic-64).
func DefaultTopic(clientID string) string {
	return "provlight/" + clientID + "/records"
}

// Config configures a capture client.
type Config struct {
	// Broker is the MQTT-SN gateway address (host:port over UDP).
	Broker string
	// ClientID identifies this device (also the default topic component).
	ClientID string
	// Topic overrides the publish topic; empty uses DefaultTopic(ClientID).
	Topic string
	// QoS is the publish quality of service. The paper's default is QoS 2
	// ("exactly once", Table VI); that is also the zero-value default here.
	QoS mqttsn.QoS
	// GroupSize, when > 0, buffers the records of that many *ended tasks*
	// and transmits them in one frame. Task-begin records are always sent
	// immediately so users can still track started tasks at runtime
	// (§IV-C2: "group data just from ended tasks").
	GroupSize int
	// GroupAll additionally groups begin records (used by ablations).
	GroupAll bool
	// DisableCompression turns off payload compression (ablation).
	DisableCompression bool
	// Synchronous makes Capture block until the QoS flow completes
	// (ablation; the paper's client is asynchronous).
	Synchronous bool
	// QueueCapacity bounds the async transmit queue. Default 1024.
	QueueCapacity int
	// KeepAlive, RetryInterval, MaxRetries tune the MQTT-SN session.
	KeepAlive     time.Duration
	RetryInterval time.Duration
	MaxRetries    int
	// Conn optionally supplies the UDP socket (e.g. netem-shaped).
	Conn net.PacketConn
	// OnError receives asynchronous transmission errors. Default: drop.
	OnError func(error)
}

// Stats counts client activity.
type Stats struct {
	RecordsCaptured  uint64
	FramesPublished  uint64
	BytesPublished   uint64
	FramesCompressed uint64
	RecordsGrouped   uint64
	AsyncErrors      uint64
}

// Client is the ProvLight capture library handle. Create with NewClient,
// instrument code via NewWorkflow, and Close when done.
type Client struct {
	cfg   Config
	mqtt  *mqttsn.Client
	topic string
	enc   wire.Encoder

	mu     sync.Mutex
	group  []*provdm.Record
	stats  Stats
	closed bool

	sendQ chan []byte
	wg    sync.WaitGroup // sender goroutine
	inFly sync.WaitGroup // outstanding frames
}

// NewClient connects to the broker and returns a ready capture client.
func NewClient(cfg Config) (*Client, error) {
	if cfg.ClientID == "" {
		return nil, fmt.Errorf("provlight: ClientID required")
	}
	if cfg.Topic == "" {
		cfg.Topic = DefaultTopic(cfg.ClientID)
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1024
	}
	mc, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      cfg.ClientID,
		Gateway:       cfg.Broker,
		Conn:          cfg.Conn,
		KeepAlive:     cfg.KeepAlive,
		RetryInterval: cfg.RetryInterval,
		MaxRetries:    cfg.MaxRetries,
		CleanSession:  true,
	})
	if err != nil {
		return nil, err
	}
	if err := mc.Connect(); err != nil {
		mc.Close()
		return nil, fmt.Errorf("provlight: connect broker %s: %w", cfg.Broker, err)
	}
	// Register the topic once up front: the long-lived connection and
	// pre-registered topic are part of why per-event cost stays low
	// (§VII-A: "keeps the connection to the remote server open").
	if _, err := mc.RegisterTopic(cfg.Topic); err != nil {
		mc.Close()
		return nil, fmt.Errorf("provlight: register topic %q: %w", cfg.Topic, err)
	}
	c := &Client{
		cfg:   cfg,
		mqtt:  mc,
		topic: cfg.Topic,
		enc:   wire.Encoder{DisableCompression: cfg.DisableCompression},
		sendQ: make(chan []byte, cfg.QueueCapacity),
	}
	if !cfg.Synchronous {
		c.wg.Add(1)
		go c.sender()
	}
	return c, nil
}

// Stats returns a snapshot of capture counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// MQTTStats exposes the underlying transport counters.
func (c *Client) MQTTStats() mqttsn.ClientStats { return c.mqtt.Stats() }

func (c *Client) sender() {
	defer c.wg.Done()
	for frame := range c.sendQ {
		if err := c.mqtt.Publish(c.topic, frame, c.cfg.QoS); err != nil {
			c.mu.Lock()
			c.stats.AsyncErrors++
			cb := c.cfg.OnError
			c.mu.Unlock()
			if cb != nil {
				cb(err)
			}
		}
		c.inFly.Done()
	}
}

// Capture implements the capture.Client interface: encodes and transmits
// one provenance record, honouring the grouping configuration.
func (c *Client) Capture(rec *provdm.Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("provlight: client closed")
	}
	c.stats.RecordsCaptured++
	groupable := c.cfg.GroupSize > 0 &&
		(c.cfg.GroupAll || rec.Event == provdm.EventTaskEnd || rec.Event == provdm.EventWorkflowEnd)
	if groupable {
		cp := *rec
		c.group = append(c.group, &cp)
		c.stats.RecordsGrouped++
		full := len(c.group) >= c.cfg.GroupSize
		flush := rec.Event == provdm.EventWorkflowEnd // end of workflow drains the group
		var batch []*provdm.Record
		if full || flush {
			batch = c.group
			c.group = nil
		}
		c.mu.Unlock()
		if batch != nil {
			return c.transmit(batch...)
		}
		return nil
	}
	c.mu.Unlock()
	return c.transmit(rec)
}

// Flush transmits any buffered group and waits for in-flight frames.
func (c *Client) Flush() error {
	c.mu.Lock()
	batch := c.group
	c.group = nil
	c.mu.Unlock()
	var err error
	if len(batch) > 0 {
		err = c.transmit(batch...)
	}
	c.inFly.Wait()
	return err
}

// Close flushes, disconnects, and releases the client.
func (c *Client) Close() error {
	err := c.Flush()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return err
	}
	c.closed = true
	c.mu.Unlock()
	if !c.cfg.Synchronous {
		close(c.sendQ)
		c.wg.Wait()
	}
	if derr := c.mqtt.Disconnect(); derr != nil && err == nil {
		err = derr
	}
	return err
}

func (c *Client) transmit(records ...*provdm.Record) error {
	frame, err := c.enc.EncodeFrame(records...)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.FramesPublished++
	c.stats.BytesPublished += uint64(len(frame))
	if wire.IsCompressed(frame) {
		c.stats.FramesCompressed++
	}
	closed := c.closed
	c.mu.Unlock()
	if c.cfg.Synchronous {
		return c.mqtt.Publish(c.topic, frame, c.cfg.QoS)
	}
	if closed {
		return fmt.Errorf("provlight: client closed")
	}
	c.inFly.Add(1)
	select {
	case c.sendQ <- frame:
		return nil
	default:
		// Queue saturated (e.g. radio slower than capture rate): block,
		// exposing backpressure to the caller like a real radio queue.
		c.sendQ <- frame
		return nil
	}
}

// Attrs builds an ordered attribute list from a map (sorted by name for
// deterministic encoding).
func Attrs(m map[string]any) []provdm.Attribute {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]provdm.Attribute, 0, len(m))
	for _, k := range names {
		out = append(out, provdm.Attribute{Name: k, Value: m[k]})
	}
	return out
}
