// Package core implements the ProvLight client capture library: the
// paper's primary contribution (§IV). It provides the Workflow/Task/Data
// instrumentation API of Listing 1, backed by the simplified PROV-DM
// exchange model (Table V), binary payload compression, optional grouping
// of captured data from ended tasks, and asynchronous publish/subscribe
// transmission over MQTT-SN/UDP at QoS 2 (Table VI).
package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/ctxutil"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/spool"
	"github.com/provlight/provlight/internal/transport"
	"github.com/provlight/provlight/internal/wal"
	"github.com/provlight/provlight/internal/wire"
)

// ErrQueueFull is returned by Capture when the asynchronous transmit
// queue is full and no spool is configured: the frame is dropped and
// counted in StatsSnapshot.QueueFull. See Config.QueueCapacity for the
// backpressure contract.
var ErrQueueFull = errors.New("provlight: transmit queue full")

// DefaultTopic returns the topic a client with the given id publishes its
// records on: one topic per device, mirroring Fig. 5 (topic-1..topic-64).
func DefaultTopic(clientID string) string {
	return "provlight/" + clientID + "/records"
}

// Config configures a capture client.
type Config struct {
	// Broker is the MQTT-SN gateway address (host:port over UDP).
	Broker string
	// ClientID identifies this device (also the default topic component).
	ClientID string
	// Topic overrides the publish topic; empty uses DefaultTopic(ClientID).
	Topic string
	// QoS is the publish quality of service. The paper's default is QoS 2
	// ("exactly once", Table VI); the zero value is mapped to QoS 2 (as in
	// translate.Config). Fire-and-forget capture is available via
	// mqttsn.QoSMinusOne; QoS 0 cannot be requested through this field.
	QoS mqttsn.QoS
	// GroupSize, when > 0, buffers the records of that many *ended tasks*
	// and transmits them in one frame. Task-begin records are always sent
	// immediately so users can still track started tasks at runtime
	// (§IV-C2: "group data just from ended tasks").
	GroupSize int
	// GroupAll additionally groups begin records (used by ablations).
	GroupAll bool
	// DisableCompression turns off payload compression (ablation).
	DisableCompression bool
	// Synchronous makes Capture block until the QoS flow completes
	// (ablation; the paper's client is asynchronous). Incompatible with
	// SpoolDir.
	Synchronous bool
	// QueueCapacity bounds the async transmit queue. Default 1024.
	//
	// Backpressure contract: when the queue is full (the broker is slower
	// than capture, or unreachable) and no spool is configured, Capture
	// drops the frame, counts it in StatsSnapshot.QueueFull, and returns
	// ErrQueueFull — it never blocks the instrumented workload. Callers
	// that prefer lossless capture under backpressure should either size
	// QueueCapacity for their burst profile or configure SpoolDir, which
	// replaces the bounded memory queue with a disk-backed one.
	QueueCapacity int
	// SpoolDir, when set, enables store-and-forward capture: frames are
	// appended to a segmented write-ahead log in this directory before
	// (instead of) the in-memory transmit queue, a background drainer
	// publishes them — auto-reconnecting to the broker with exponential
	// backoff and re-establishing the session, topic registration, and
	// acknowledgement subscription each time — and frames are released
	// (and their disk space reclaimed) only on end-to-end acknowledgements
	// from the translator. Capture therefore survives client crashes and
	// arbitrarily long partitions; redelivered frames carry durable ids so
	// the server ingests them exactly once. NewClient does not require the
	// broker to be reachable in this mode.
	SpoolDir string
	// SpoolSync is the spool's fsync policy. The default, wal.SyncInterval,
	// survives process crashes with zero loss (the page cache persists)
	// and bounds power-loss exposure to SpoolSyncInterval; wal.SyncEach
	// makes every captured frame power-loss durable before Capture
	// returns.
	SpoolSync wal.SyncPolicy
	// SpoolSyncInterval is the background fsync period. Default 100 ms.
	SpoolSyncInterval time.Duration
	// SpoolSegmentSize is the WAL segment rotation size. Default 8 MiB.
	SpoolSegmentSize int64
	// SpoolQuota caps the spool's on-disk bytes (0 = unlimited). When
	// usage crosses SpoolHighWatermark×SpoolQuota the spool degrades
	// according to SpoolPolicy until usage falls below
	// SpoolLowWatermark×SpoolQuota. See spool.DegradePolicy.
	SpoolQuota         int64
	SpoolHighWatermark float64
	SpoolLowWatermark  float64
	// SpoolPolicy selects degraded-mode behavior: spool.Block (default)
	// stalls capture with ErrSpoolDegraded, spool.DropNew sheds arriving
	// QoS 0 frames first, spool.DropOldestUnacked sheds the oldest
	// spooled frames (freshest-data-wins).
	SpoolPolicy spool.DegradePolicy
	// CongestionRetryAfter is the minimum (pre-jitter) delay before
	// re-dialing a broker that rejected the CONNECT for congestion.
	// Default 1 s. The actual sleep is jittered upward so a rejected
	// herd does not re-arrive in lockstep.
	CongestionRetryAfter time.Duration
	// AckWindow caps how many frames the drainer publishes ahead of the
	// acknowledged floor. Default 64.
	AckWindow int
	// RedeliverAfter: when no acknowledgement progress happens for this
	// long while published frames are pending, the drainer rewinds and
	// republishes them (covering lost acks and translator restarts).
	// Default 10 s.
	RedeliverAfter time.Duration
	// ReconnectMinDelay / ReconnectMaxDelay bound the drainer's
	// exponential reconnect backoff. Defaults 250 ms and 10 s. Each sleep
	// is jittered uniformly over [d/2, d] so a fleet of edge clients that
	// lost the same broker or translator does not reconnect in lockstep.
	ReconnectMinDelay time.Duration
	ReconnectMaxDelay time.Duration
	// DialConn, when set, supplies a fresh packet socket for each broker
	// session the spool drainer establishes (reconnects open new
	// sessions). Used by tests to interpose netem-shaped links; takes
	// precedence over Conn.
	DialConn func() (net.PacketConn, error)
	// WindowSize bounds how many publish handshakes the async sender keeps
	// in flight at once. At QoS 2 each frame costs two round trips; the
	// window overlaps those handshakes so throughput is no longer capped at
	// 1/(2*RTT) frames/s on high-latency edge links. 1 restores the
	// stop-and-wait behaviour (one frame fully acknowledged before the
	// next is sent); frames are always *submitted* in capture order, but
	// with WindowSize > 1 they may complete (and be routed by the broker)
	// out of order. Default 16.
	WindowSize int
	// KeepAlive, RetryInterval, MaxRetries tune the MQTT-SN session.
	KeepAlive     time.Duration
	RetryInterval time.Duration
	MaxRetries    int
	// Conn optionally supplies the UDP socket (e.g. netem-shaped).
	Conn net.PacketConn
	// Transport dials the broker over an alternate packet substrate
	// (in-process loopback, TCP stream — see internal/transport); nil
	// means UDP. DialConn and Conn take precedence when set.
	Transport transport.Transport
	// OnError receives asynchronous transmission errors. Default: drop.
	//
	// Serialization contract: invocations are serialized — the callback is
	// never called concurrently with itself, even with WindowSize > 1
	// handshakes failing near-simultaneously — so implementations need no
	// internal locking. The callback runs on a transmission goroutine and
	// must not block: a slow OnError stalls error collection (though never
	// the capture path itself). Calling methods of the originating Client
	// from inside the callback risks deadlock.
	OnError func(error)
	// Metrics, when set, registers this client's counters (labeled
	// client=<ClientID>) and the capture→publish stage latency histogram
	// with the registry. Export happens at scrape time from the same
	// atomics behind StatsSnapshot, so the capture hot path pays nothing.
	Metrics *obs.Registry
	// DisableTrace turns off the per-frame capture timestamp (flagTrace).
	// Traced frames cost ~9 bytes and one clock read each and let every
	// downstream stage (broker, cluster link, translator, store) export
	// cumulative e2e latency histograms; leave tracing on unless an
	// ablation needs byte-identical frames.
	DisableTrace bool
}

// Stats counts client activity. Values are a point-in-time snapshot taken
// by StatsSnapshot; read fields from the returned copy, never from shared
// storage.
type Stats struct {
	RecordsCaptured  uint64
	FramesPublished  uint64
	BytesPublished   uint64
	FramesCompressed uint64
	RecordsGrouped   uint64
	AsyncErrors      uint64
	// QueueFull counts frames dropped because the transmit queue was full
	// (no spool configured); each drop also returned ErrQueueFull.
	QueueFull uint64
	// Spool counters (zero without SpoolDir). FramesSpooled counts frames
	// appended to the WAL; SpoolAcked is the contiguously acknowledged
	// floor; SpoolPending is how many spooled frames still await
	// end-to-end acknowledgement; SpoolRedeliveries counts rewind passes
	// after ack stalls; SpoolReconnects counts broker sessions
	// established by the drainer (the first connect included).
	FramesSpooled     uint64
	SpoolAcked        uint64
	SpoolPending      uint64
	SpoolRedeliveries uint64
	SpoolReconnects   uint64
	// StaleAcks counts end-to-end acknowledgements dropped because they
	// carried a replication term lower than the highest this client has
	// seen — acks from a zombie translator still feeding a deposed
	// primary after a failover. AckTerm is that highest seen term.
	StaleAcks uint64
	AckTerm   uint64
	// Reconnect backoff state (spool mode). ReconnectAttempts counts
	// every dial the drainer made (successful or not);
	// ReconnectConsecFailures is the current failure streak (0 while
	// connected); NextRetryUnixNano is when the next dial is scheduled
	// (0 when connected or not waiting). Together they answer "is this
	// client connected, and if not, when will it try again?".
	ReconnectAttempts       uint64
	ReconnectConsecFailures uint64
	NextRetryUnixNano       int64
	// FramesShed counts capture frames intentionally dropped by the
	// spool's degradation policy (vs stored or stalled).
	FramesShed uint64
	// Spool degradation + durability health (zero-valued without
	// SpoolDir; see spool.Stats for field semantics).
	SpoolUsedBytes            int64
	SpoolQuotaBytes           int64
	SpoolDegraded             bool
	SpoolDegradedEvents       uint64
	SpoolShedQoS0             uint64
	SpoolShedHigher           uint64
	SpoolBlockedAppends       uint64
	SpoolMarkPersistErrors    uint64
	SpoolLastMarkPersistError string
	SpoolWALSyncErrors        uint64
	SpoolLastWALSyncError     string
}

// Client is the ProvLight capture library handle. Create with NewClient,
// instrument code via NewWorkflow, and Close when done.
type Client struct {
	cfg   Config
	mqtt  *mqttsn.Client
	topic string
	enc   wire.Encoder

	mu    sync.Mutex // guards group
	group []*provdm.Record

	// txMu serializes encode+enqueue so frames enter sendQ in capture
	// order. Callers that decide what to transmit under c.mu acquire txMu
	// *before* releasing c.mu (a lock handoff); this keeps a cut group
	// batch ordered against any capture that follows it. txMu is never
	// held while acquiring c.mu, so the ordering is deadlock-free.
	txMu sync.Mutex

	// errMu serializes OnError callbacks: with WindowSize > 1 several
	// handshakes can fail near-simultaneously on different collector
	// goroutines, but the callback keeps the pre-windowing one-at-a-time
	// contract.
	errMu sync.Mutex

	ctr    counters
	closed atomic.Bool

	// stageCapture is the capture→publish latency histogram (nil without
	// Config.Metrics — all obs instruments are nil-safe).
	stageCapture *obs.Histogram

	sendQ chan *[]byte
	wg    sync.WaitGroup // sender goroutine
	inFly sync.WaitGroup // outstanding frames

	// Spool mode (Config.SpoolDir): the drainer owns the broker session
	// lifecycle; c.mqtt is nil and sendQ is unused.
	spool     *spool.Spool
	drainStop chan struct{} // graceful stop (after drain or deadline)
	drainKill chan struct{} // hard stop (Abort: simulate a crash)
	drainWG   sync.WaitGroup
	sessMu    sync.Mutex
	sess      *mqttsn.Client // current drainer session, nil when down
}

// framePool recycles encoded frame buffers. A frame is leased in
// transmitOrdered and returned once its publish handshake has fully
// completed (the transport does not retain the payload after the flow's
// error is delivered), so the steady-state capture path allocates nothing
// per frame.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// counters are the lock-free internals behind Stats.
type counters struct {
	recordsCaptured  atomic.Uint64
	framesPublished  atomic.Uint64
	bytesPublished   atomic.Uint64
	framesCompressed atomic.Uint64
	recordsGrouped   atomic.Uint64
	asyncErrors      atomic.Uint64
	queueFull        atomic.Uint64
	framesSpooled    atomic.Uint64
	redeliveries     atomic.Uint64
	reconnects       atomic.Uint64
	staleAcks        atomic.Uint64
	ackTerm          atomic.Uint64
	framesShed       atomic.Uint64
	// Reconnect backoff state (spool-mode drainer).
	reconnectAttempts atomic.Uint64
	consecFailures    atomic.Uint64
	nextRetryNano     atomic.Int64
}

// NewClient connects to the broker and returns a ready capture client.
// ctx bounds the connect and topic-registration handshakes (a nil or
// background context means the transport's own retry budget applies); it
// does not govern the client's lifetime — use Shutdown/Close for that.
//
// With Config.SpoolDir set, NewClient opens the spool and returns without
// requiring the broker to be reachable: the drainer connects (and keeps
// reconnecting) in the background while captures land on disk.
func NewClient(ctx context.Context, cfg Config) (*Client, error) {
	if cfg.ClientID == "" {
		return nil, fmt.Errorf("provlight: ClientID required")
	}
	if cfg.Topic == "" {
		cfg.Topic = DefaultTopic(cfg.ClientID)
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 16
	}
	if cfg.QoS == 0 {
		// The seed shipped with the zero value silently meaning QoS 0 while
		// documenting QoS 2 as the default; the capture pipeline (Table VI)
		// is exactly-once, so make the zero value mean that.
		cfg.QoS = mqttsn.QoS2
	}
	if cfg.SpoolDir != "" {
		return newSpoolClient(cfg)
	}
	mc, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:       cfg.ClientID,
		Gateway:        cfg.Broker,
		Conn:           cfg.Conn,
		Transport:      cfg.Transport,
		KeepAlive:      cfg.KeepAlive,
		RetryInterval:  cfg.RetryInterval,
		MaxRetries:     cfg.MaxRetries,
		InflightWindow: cfg.WindowSize,
		CleanSession:   true,
	})
	if err != nil {
		return nil, err
	}
	if err := mc.WithContext(ctx, func() error {
		if err := mc.Connect(); err != nil {
			return fmt.Errorf("provlight: connect broker %s: %w", cfg.Broker, err)
		}
		// Register the topic once up front: the long-lived connection and
		// pre-registered topic are part of why per-event cost stays low
		// (§VII-A: "keeps the connection to the remote server open").
		if _, err := mc.RegisterTopic(cfg.Topic); err != nil {
			return fmt.Errorf("provlight: register topic %q: %w", cfg.Topic, err)
		}
		return nil
	}); err != nil {
		mc.Close()
		return nil, err
	}
	c := &Client{
		cfg:   cfg,
		mqtt:  mc,
		topic: cfg.Topic,
		enc:   wire.Encoder{DisableCompression: cfg.DisableCompression},
		sendQ: make(chan *[]byte, cfg.QueueCapacity),
	}
	c.initMetrics()
	if !cfg.Synchronous {
		c.wg.Add(1)
		go c.sender()
	}
	return c, nil
}

// captureNow returns the trace timestamp to stamp into the next frame, or
// 0 when tracing is disabled.
func (c *Client) captureNow() int64 {
	if c.cfg.DisableTrace {
		return 0
	}
	return time.Now().UnixNano()
}

// initMetrics wires the client into Config.Metrics: the capture→publish
// stage histogram plus a scrape-time collector exporting the counters
// behind StatsSnapshot labeled client=<ClientID>. No-op without a
// registry.
func (c *Client) initMetrics() {
	r := c.cfg.Metrics
	if r == nil {
		return
	}
	c.stageCapture = obs.StageLatency(r).With(obs.StageCapturePublish)
	id := c.cfg.ClientID
	r.Collect(func(e *obs.Emitter) {
		if c.closed.Load() {
			return
		}
		st := c.StatsSnapshot()
		lbl := []string{"client", id}
		e.Counter("provlight_client_records_captured_total", "Records captured by the client library.", float64(st.RecordsCaptured), lbl...)
		e.Counter("provlight_client_frames_published_total", "Frames handed to the transport (or spooled).", float64(st.FramesPublished+st.FramesSpooled), lbl...)
		e.Counter("provlight_client_bytes_published_total", "Encoded frame bytes published or spooled.", float64(st.BytesPublished), lbl...)
		e.Counter("provlight_client_async_errors_total", "Asynchronous publish errors.", float64(st.AsyncErrors), lbl...)
		e.Counter("provlight_client_queue_full_total", "Frames dropped on a full transmit queue.", float64(st.QueueFull), lbl...)
		e.Counter("provlight_client_frames_shed_total", "Frames shed by the spool degradation policy.", float64(st.FramesShed), lbl...)
		e.Counter("provlight_client_reconnects_total", "Broker sessions established by the spool drainer.", float64(st.SpoolReconnects), lbl...)
		e.Counter("provlight_client_redeliveries_total", "Spool rewind/redelivery passes after ack stalls.", float64(st.SpoolRedeliveries), lbl...)
		e.Counter("provlight_client_stale_acks_total", "Acks dropped for carrying a stale replication term.", float64(st.StaleAcks), lbl...)
		mst := c.MQTTStats()
		e.Counter("provlight_client_retransmissions_total", "MQTT-SN packet retransmissions (current session).", float64(mst.Retransmissions), lbl...)
		if mc := c.sessionForMetrics(); mc != nil {
			inFly, capWin := mc.WindowOccupancy()
			e.Gauge("provlight_client_window_inflight", "Publish handshakes currently in flight.", float64(inFly), lbl...)
			e.Gauge("provlight_client_window_capacity", "Configured in-flight publish window.", float64(capWin), lbl...)
		}
		if c.spool != nil {
			e.Gauge("provlight_client_spool_pending", "Spooled frames awaiting end-to-end acknowledgement.", float64(st.SpoolPending), lbl...)
			e.Gauge("provlight_client_spool_used_bytes", "Spool bytes on disk.", float64(st.SpoolUsedBytes), lbl...)
			degraded := 0.0
			if st.SpoolDegraded {
				degraded = 1
			}
			e.Gauge("provlight_client_spool_degraded", "1 while the spool quota degradation policy is active.", degraded, lbl...)
			e.Counter("provlight_client_spool_wal_sync_errors_total", "Spool WAL fsync failures (disk-health alarm).", float64(st.SpoolWALSyncErrors), lbl...)
			e.Counter("provlight_client_spool_mark_persist_errors_total", "Failures persisting the spool ack floor.", float64(st.SpoolMarkPersistErrors), lbl...)
			e.Counter("provlight_client_spool_blocked_appends_total", "Captures stalled by the spool Block policy.", float64(st.SpoolBlockedAppends), lbl...)
		}
	})
}

// sessionForMetrics returns the transport session to sample window
// occupancy from: the fixed session in direct mode, the drainer's current
// one in spool mode (nil while disconnected).
func (c *Client) sessionForMetrics() *mqttsn.Client {
	if c.spool != nil {
		return c.currentSession()
	}
	return c.mqtt
}

// StatsSnapshot returns a race-safe snapshot of the capture counters: each
// counter is loaded atomically, so the snapshot can be taken while capture
// runs on other goroutines. Counters are loaded individually, so a
// snapshot taken mid-burst may observe a frame whose byte count lands in
// the next snapshot; every counter is monotonically consistent.
func (c *Client) StatsSnapshot() Stats {
	st := Stats{
		RecordsCaptured:   c.ctr.recordsCaptured.Load(),
		FramesPublished:   c.ctr.framesPublished.Load(),
		BytesPublished:    c.ctr.bytesPublished.Load(),
		FramesCompressed:  c.ctr.framesCompressed.Load(),
		RecordsGrouped:    c.ctr.recordsGrouped.Load(),
		AsyncErrors:       c.ctr.asyncErrors.Load(),
		QueueFull:         c.ctr.queueFull.Load(),
		FramesSpooled:     c.ctr.framesSpooled.Load(),
		SpoolRedeliveries: c.ctr.redeliveries.Load(),
		SpoolReconnects:   c.ctr.reconnects.Load(),
		StaleAcks:         c.ctr.staleAcks.Load(),
		AckTerm:           c.ctr.ackTerm.Load(),

		ReconnectAttempts:       c.ctr.reconnectAttempts.Load(),
		ReconnectConsecFailures: c.ctr.consecFailures.Load(),
		NextRetryUnixNano:       c.ctr.nextRetryNano.Load(),
		FramesShed:              c.ctr.framesShed.Load(),
	}
	if c.spool != nil {
		st.SpoolAcked = c.spool.Floor()
		st.SpoolPending = c.spool.Pending()
		sp := c.spool.Stats()
		st.SpoolUsedBytes = sp.UsedBytes
		st.SpoolQuotaBytes = sp.QuotaBytes
		st.SpoolDegraded = sp.Degraded
		st.SpoolDegradedEvents = sp.DegradedEvents
		st.SpoolShedQoS0 = sp.ShedQoS0
		st.SpoolShedHigher = sp.ShedHigher
		st.SpoolBlockedAppends = sp.BlockedAppends
		st.SpoolMarkPersistErrors = sp.MarkPersistErrors
		st.SpoolLastMarkPersistError = sp.LastMarkPersistError
		st.SpoolWALSyncErrors = sp.WALSyncErrors
		st.SpoolLastWALSyncError = sp.LastWALSyncError
	}
	return st
}

// Stats returns a snapshot of capture counters.
//
// Deprecated: use StatsSnapshot, which documents the atomicity contract.
func (c *Client) Stats() Stats { return c.StatsSnapshot() }

// MQTTStats exposes the underlying transport counters. In spool mode the
// counters are those of the drainer's *current* broker session (zero
// while disconnected); they reset on reconnect.
func (c *Client) MQTTStats() mqttsn.ClientStats {
	if c.spool != nil {
		if mc := c.currentSession(); mc != nil {
			return mc.Stats()
		}
		return mqttsn.ClientStats{}
	}
	return c.mqtt.Stats()
}

// sender keeps the publish window full: it submits each queued frame as an
// asynchronous handshake and only blocks when WindowSize handshakes are
// already in flight, instead of waiting out the full QoS 2 double round
// trip per frame. Completion (and error accounting) happens on a small
// per-frame collector; Flush/Close observe it through the inFly group.
func (c *Client) sender() {
	defer c.wg.Done()
	for bufp := range c.sendQ {
		if c.stageCapture != nil {
			if ns, ok := wire.FrameCaptureNS(*bufp); ok {
				obs.ObserveSince(c.stageCapture, ns)
			}
		}
		errc := c.mqtt.PublishAsync(c.topic, *bufp, c.cfg.QoS)
		go func() {
			if err := <-errc; err != nil {
				c.ctr.asyncErrors.Add(1)
				if cb := c.cfg.OnError; cb != nil {
					c.errMu.Lock()
					cb(err)
					c.errMu.Unlock()
				}
			}
			framePool.Put(bufp)
			c.inFly.Done()
		}()
	}
}

// Capture implements the capture.Client interface: encodes and transmits
// one provenance record, honouring the grouping configuration.
func (c *Client) Capture(rec *provdm.Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	if c.closed.Load() {
		return fmt.Errorf("provlight: client closed")
	}
	c.ctr.recordsCaptured.Add(1)
	groupable := c.cfg.GroupSize > 0 &&
		(c.cfg.GroupAll || rec.Event == provdm.EventTaskEnd || rec.Event == provdm.EventWorkflowEnd)
	if groupable {
		c.mu.Lock()
		cp := *rec
		c.group = append(c.group, &cp)
		c.ctr.recordsGrouped.Add(1)
		full := len(c.group) >= c.cfg.GroupSize
		flush := rec.Event == provdm.EventWorkflowEnd // end of workflow drains the group
		if !full && !flush {
			c.mu.Unlock()
			return nil
		}
		batch := c.group
		c.group = nil
		// Lock handoff: take txMu before releasing c.mu so no capture that
		// observes the emptied group can enqueue its frame ahead of this
		// batch.
		c.txMu.Lock()
		c.mu.Unlock()
		defer c.txMu.Unlock()
		return c.transmitOrdered(batch...)
	}
	c.txMu.Lock()
	defer c.txMu.Unlock()
	return c.transmitOrdered(rec)
}

// flushGroup transmits any buffered group without waiting for in-flight
// frames. ctx bounds the enqueue: when the transmit queue is full (e.g.
// the broker is unreachable) and ctx expires, the group frame is dropped
// and counted as an async error instead of blocking indefinitely. A nil
// or background ctx blocks like Capture does.
func (c *Client) flushGroup(ctx context.Context) error {
	c.mu.Lock()
	batch := c.group
	c.group = nil
	if len(batch) == 0 {
		c.mu.Unlock()
		return nil
	}
	c.txMu.Lock() // handoff, as in Capture
	c.mu.Unlock()
	err := c.transmitOrderedCtx(ctx, batch...)
	c.txMu.Unlock()
	return err
}

// Flush transmits any buffered group and waits for in-flight frames. In
// spool mode it waits until every spooled frame is acknowledged end to
// end — which blocks for as long as the broker stays unreachable; use
// Shutdown with a deadline to stop without waiting out a partition.
func (c *Client) Flush() error {
	err := c.flushGroup(context.Background())
	if c.spool != nil {
		if werr := c.waitDrained(context.Background()); werr != nil && err == nil {
			err = werr
		}
		return err
	}
	c.inFly.Wait()
	return err
}

// Close flushes, disconnects, and releases the client, draining in-flight
// windows without a deadline (equivalent to Shutdown with a background
// context).
func (c *Client) Close() error { return c.Shutdown(context.Background()) }

// Shutdown flushes buffered records and drains the in-flight publish
// windows, bounded by ctx: if the context expires before every handshake
// completes (e.g. the broker is unreachable and retries are still running),
// the remaining frames are abandoned — the transport is force-closed, each
// abandoned or dropped frame is accounted as an AsyncError, and the
// context error is returned. On a clean drain the session ends with the
// protocol goodbye, exactly like Close. Calling Shutdown (or Close) again
// while a previous call is still draining waits for that drain under the
// new ctx rather than returning early.
func (c *Client) Shutdown(ctx context.Context) error {
	if c.spool != nil {
		return c.shutdownSpool(ctx)
	}
	// Flush the buffered group before claiming the shutdown, so the
	// closed-client check in the transmit path doesn't reject our own
	// group frame. In synchronous mode the flush publishes inline through
	// the retry budget; WithContext bounds it by force-closing the
	// transport when ctx expires.
	var err error
	if c.cfg.Synchronous {
		err = c.mqtt.WithContext(ctx, func() error { return c.flushGroup(nil) })
	} else {
		err = c.flushGroup(ctx)
	}
	if !c.closed.CompareAndSwap(false, true) {
		// Another Shutdown/Close owns the teardown: honour this call's
		// drain contract by waiting for that teardown under our ctx
		// instead of returning early.
		if !c.cfg.Synchronous {
			if werr := ctxutil.Wait(ctx, func() { c.wg.Wait(); c.inFly.Wait() }); werr != nil && err == nil {
				err = werr
			}
		}
		return err
	}
	if c.cfg.Synchronous {
		if derr := c.mqtt.Disconnect(); derr != nil && err == nil {
			err = derr
		}
		return err
	}
	// Wait out any transmit that was already past the closed check, then
	// close the queue, drain the sender, and wait for the last handshakes
	// before the protocol goodbye.
	c.txMu.Lock()
	c.txMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	close(c.sendQ)
	if werr := ctxutil.Wait(ctx, func() { c.wg.Wait(); c.inFly.Wait() }); werr != nil {
		// Force-close the transport: pending handshakes fail with
		// ErrClosed, their collectors count AsyncErrors and release the
		// in-flight slots, so the abandoned waiter goroutine (and the
		// sender, once its queue drains) finishes shortly after.
		c.mqtt.Close()
		if err == nil {
			err = werr
		}
		return err
	}
	if derr := c.mqtt.Disconnect(); derr != nil && err == nil {
		err = derr
	}
	return err
}

// transmitOrdered encodes records into one frame and enqueues (or, in
// synchronous mode, publishes) it. Callers must hold c.txMu, which makes
// the encode+enqueue atomic with respect to other transmits and so
// preserves capture order in sendQ.
func (c *Client) transmitOrdered(records ...*provdm.Record) error {
	return c.transmitOrderedCtx(nil, records...)
}

// transmitOrderedCtx is transmitOrdered with a context bound on the
// enqueue (used by Shutdown's group flush): when the transmit queue stays
// full past ctx, the frame is dropped and counted as an async error. With
// a nil or background ctx a full queue drops the frame immediately
// (ErrQueueFull + StatsSnapshot.QueueFull) — capture never blocks the
// instrumented workload. In spool mode the frame goes to disk instead.
func (c *Client) transmitOrderedCtx(ctx context.Context, records ...*provdm.Record) error {
	if c.spool != nil {
		return c.spoolAppend(records...)
	}
	bufp := framePool.Get().(*[]byte)
	frame, err := c.enc.AppendFrameSeqCapture((*bufp)[:0], 0, c.captureNow(), records...)
	if err != nil {
		framePool.Put(bufp)
		return err
	}
	*bufp = frame
	// Counted only once the frame is actually handed to the transport (or
	// enqueued), so StatsSnapshot never reports a frame that was dropped
	// before leaving the client. Sized up front: after the enqueue the
	// sender may already have recycled the buffer.
	size := uint64(len(frame))
	compressed := wire.IsCompressed(frame)
	countPublished := func() {
		c.ctr.framesPublished.Add(1)
		c.ctr.bytesPublished.Add(size)
		if compressed {
			c.ctr.framesCompressed.Add(1)
		}
	}
	if c.cfg.Synchronous {
		countPublished()
		if ns, ok := wire.FrameCaptureNS(frame); ok {
			obs.ObserveSince(c.stageCapture, ns)
		}
		err := c.mqtt.Publish(c.topic, frame, c.cfg.QoS)
		framePool.Put(bufp)
		return err
	}
	if c.closed.Load() {
		framePool.Put(bufp)
		return fmt.Errorf("provlight: client closed")
	}
	c.inFly.Add(1)
	if ctx == nil || ctx.Done() == nil {
		// Never block the capture path: a full queue (broker slower than
		// capture, or unreachable) drops the frame and tells the caller.
		select {
		case c.sendQ <- bufp:
			countPublished()
			return nil
		default:
			c.inFly.Done()
			framePool.Put(bufp)
			c.ctr.queueFull.Add(1)
			return ErrQueueFull
		}
	}
	select {
	case c.sendQ <- bufp:
		countPublished()
		return nil
	case <-ctx.Done():
		c.inFly.Done()
		framePool.Put(bufp)
		c.ctr.asyncErrors.Add(1)
		return ctx.Err()
	}
}

// Attrs builds an ordered attribute list from a map (sorted by name for
// deterministic encoding).
func Attrs(m map[string]any) []provdm.Attribute {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]provdm.Attribute, 0, len(m))
	for _, k := range names {
		out = append(out, provdm.Attribute{Name: k, Value: m[k]})
	}
	return out
}
