package core

import (
	"context"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/resilience"
	"github.com/provlight/provlight/internal/wire"
)

// TestReconnectJitterBounds pins the reconnect jitter contract the
// drainer inherits from the shared resilience schedule: sleeps are
// spread uniformly over [d/2, d] so a fleet's backoffs decorrelate after
// a shared outage, and the per-client worst case never exceeds d.
func TestReconnectJitterBounds(t *testing.T) {
	const d = 800 * time.Millisecond
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		bo := resilience.Backoff{Min: d, Max: d, Rand: func() float64 { return u }}
		got := bo.Delay(0)
		if got < d/2 || got > d {
			t.Fatalf("Delay with u=%v = %v, outside [%v, %v]", u, got, d/2, d)
		}
	}
	bo := resilience.Backoff{Min: d, Max: d, Rand: func() float64 { return 0 }}
	if got := bo.Delay(0); got != d/2 {
		t.Fatalf("Delay(u=0) = %v, want %v", got, d/2)
	}
}

// TestStaleAckTermFencing drives the ack handler directly with crafted
// payloads: term-stamped acks from the highest seen term (and unfenced
// version-1 acks) advance the spool floor, while acks from a lower term
// — a zombie translator still feeding a deposed primary — are dropped
// whole and counted.
func TestStaleAckTermFencing(t *testing.T) {
	client, err := NewClient(context.Background(), Config{
		Broker:            "127.0.0.1:9", // no broker: spool only
		ClientID:          "fence-device",
		SpoolDir:          t.TempDir(),
		RetryInterval:     50 * time.Millisecond,
		MaxRetries:        1,
		ReconnectMinDelay: time.Hour, // keep the drainer out of the way
		ReconnectMaxDelay: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Abort()

	for i := 0; i < 2; i++ {
		captureTask(t, client, "wf", i) // 2 frames each: seqs 1..4
	}
	deadline := time.Now().Add(5 * time.Second)
	for client.StatsSnapshot().FramesSpooled < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("frames not spooled: %+v", client.StatsSnapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	ack := func(term uint64, seqs ...uint64) {
		client.onAck("", wire.AppendAckPayload(nil, term, seqs))
	}

	ack(5, 1)
	st := client.StatsSnapshot()
	if st.SpoolAcked != 1 || st.AckTerm != 5 || st.StaleAcks != 0 {
		t.Fatalf("after term-5 ack: %+v", st)
	}

	// Lower term: the whole ack is ignored, floor stays put.
	ack(3, 2)
	st = client.StatsSnapshot()
	if st.SpoolAcked != 1 || st.StaleAcks != 1 || st.AckTerm != 5 {
		t.Fatalf("after stale term-3 ack: %+v", st)
	}

	// Unfenced version-1 ack (term 0) is always accepted.
	ack(0, 2)
	if st = client.StatsSnapshot(); st.SpoolAcked != 2 || st.AckTerm != 5 {
		t.Fatalf("after unfenced ack: %+v", st)
	}

	// Higher term advances the fence and acks normally.
	ack(7, 3, 4)
	st = client.StatsSnapshot()
	if st.SpoolAcked != 4 || st.AckTerm != 7 || st.StaleAcks != 1 {
		t.Fatalf("after term-7 ack: %+v", st)
	}
}
