package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/chaos"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/spool"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/wal"
)

// deadBrokerAddr reserves a UDP address and closes it, so a client's
// drainer spools everything locally until a real broker appears there.
func deadBrokerAddr(t *testing.T) string {
	t.Helper()
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	b.Close()
	return addr
}

func enospcClient(t *testing.T, addr string, policy spool.DegradePolicy) *Client {
	t.Helper()
	client, err := NewClient(context.Background(), Config{
		Broker:            addr,
		ClientID:          "enospc-" + policy.String(),
		SpoolDir:          t.TempDir(),
		SpoolSegmentSize:  256, // several sealed segments from a small stream
		SpoolPolicy:       policy,
		RetryInterval:     100 * time.Millisecond,
		MaxRetries:        3,
		RedeliverAfter:    500 * time.Millisecond,
		ReconnectMinDelay: 20 * time.Millisecond,
		ReconnectMaxDelay: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return client
}

// captureOne sends a single workflow-begin record (one spool frame).
func captureOne(c *Client, i int) error {
	return c.Capture(&provdm.Record{
		Event:      provdm.EventWorkflowBegin,
		WorkflowID: fmt.Sprintf("wf%d", i),
		Time:       time.Now(),
	})
}

// drainAndCount frees the quota fault, brings a broker+translator up on
// addr, shuts the client down (draining the spool), and returns the
// record count that reached the target.
func drainAndCount(t *testing.T, client *Client, addr string) (Stats, int) {
	t.Helper()
	mem := translate.NewMemoryTarget()
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr:          addr,
		Targets:       []translate.Target{mem},
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v (stats %+v)", err, client.StatsSnapshot())
	}
	srv.Drain()
	return client.StatsSnapshot(), mem.Len()
}

// TestENOSPCBlockStallsThenDrains: with the Block policy, exhausting the
// spool quota mid-stream makes Capture fail with a retryable full error
// — no frame is shed — and freeing space lets capture resume and the
// spool drain cleanly with every admitted frame delivered exactly once.
func TestENOSPCBlockStallsThenDrains(t *testing.T) {
	addr := deadBrokerAddr(t)
	client := enospcClient(t, addr, spool.Block)

	const before = 20
	for i := 0; i < before; i++ {
		if err := captureOne(client, i); err != nil {
			t.Fatalf("capture %d with space: %v", i, err)
		}
	}

	dq := chaos.NewDiskQuota(client.spool)
	dq.Fill()
	var stalled int
	for i := 0; i < 5; i++ {
		err := captureOne(client, before+i)
		if err == nil {
			t.Fatalf("capture %d succeeded with the quota exhausted", before+i)
		}
		if !errors.Is(err, wal.ErrNoSpace) {
			t.Fatalf("capture under ENOSPC: %v, want wal.ErrNoSpace", err)
		}
		stalled++
	}
	st := client.StatsSnapshot()
	if st.SpoolBlockedAppends == 0 || st.FramesShed != 0 {
		t.Fatalf("blocked=%d shed=%d, want blocked>0 shed=0", st.SpoolBlockedAppends, st.FramesShed)
	}

	dq.Free()
	if err := captureOne(client, 99); err != nil {
		t.Fatalf("capture after freeing space: %v", err)
	}

	st, got := drainAndCount(t, client, addr)
	want := before + 1 // the stalled captures were rejected, not queued
	if got != want {
		t.Fatalf("target has %d records, want %d", got, want)
	}
	if st.SpoolAcked != uint64(want) {
		t.Fatalf("acked %d frames, want %d", st.SpoolAcked, want)
	}
}

// TestENOSPCMetricsSurfaceSpoolFailures: the registry must turn the
// spool's quiet failure counters — blocked appends under ENOSPC and
// ack-mark persist failures — into non-zero scrapeable series, because a
// client embedded in a soak or daemon has no other way to page on them.
// Detection must not break recovery: after the faults heal, every
// admitted frame still drains exactly once.
func TestENOSPCMetricsSurfaceSpoolFailures(t *testing.T) {
	addr := deadBrokerAddr(t)
	reg := obs.NewRegistry()
	dir := t.TempDir()
	client, err := NewClient(context.Background(), Config{
		Broker:            addr,
		ClientID:          "enospc-metrics",
		SpoolDir:          dir,
		SpoolSegmentSize:  256,
		SpoolPolicy:       spool.Block,
		RetryInterval:     100 * time.Millisecond,
		MaxRetries:        3,
		RedeliverAfter:    500 * time.Millisecond,
		ReconnectMinDelay: 20 * time.Millisecond,
		ReconnectMaxDelay: 100 * time.Millisecond,
		Metrics:           reg,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}

	const before = 20
	for i := 0; i < before; i++ {
		if err := captureOne(client, i); err != nil {
			t.Fatalf("capture %d with space: %v", i, err)
		}
	}

	// Fault 1: disk full. Block-policy captures fail and are counted.
	dq := chaos.NewDiskQuota(client.spool)
	dq.Fill()
	for i := 0; i < 3; i++ {
		if err := captureOne(client, before+i); err == nil {
			t.Fatalf("capture %d succeeded with the quota exhausted", before+i)
		}
	}

	// Fault 2: the ack-mark path becomes unwritable — a directory sits
	// where the mark file goes, so the atomic rename fails the way a
	// corrupted or permission-broken state directory would.
	markPath := filepath.Join(dir, "ack.mark")
	if err := os.RemoveAll(markPath); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(markPath, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := client.spool.SyncMark(); err == nil {
		t.Fatalf("SyncMark succeeded with a directory squatting on the mark path")
	}

	scrape := func() *obs.Scrape {
		t.Helper()
		var buf bytes.Buffer
		if _, err := reg.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		sc, err := obs.ParseText(&buf)
		if err != nil {
			t.Fatalf("exposition does not parse: %v", err)
		}
		return sc
	}
	sc := scrape()
	if v, ok := sc.Value("provlight_client_spool_blocked_appends_total", "client", "enospc-metrics"); !ok || v <= 0 {
		t.Errorf("spool_blocked_appends_total = %v (present=%v), want > 0", v, ok)
	}
	if v, ok := sc.Value("provlight_client_spool_mark_persist_errors_total", "client", "enospc-metrics"); !ok || v <= 0 {
		t.Errorf("spool_mark_persist_errors_total = %v (present=%v), want > 0", v, ok)
	}
	// The fsync-failure alarm must be exported even while zero — an
	// absent series can't be alerted on.
	if _, ok := sc.Value("provlight_client_spool_wal_sync_errors_total", "client", "enospc-metrics"); !ok {
		t.Errorf("spool_wal_sync_errors_total missing from exposition")
	}

	// Heal both faults; the stream must still drain exactly once.
	dq.Free()
	if err := os.Remove(markPath); err != nil {
		t.Fatal(err)
	}
	st, got := drainAndCount(t, client, addr)
	if got != before {
		t.Fatalf("target has %d records, want %d", got, before)
	}
	if st.SpoolAcked != before {
		t.Fatalf("acked %d frames, want %d", st.SpoolAcked, before)
	}
}

// TestENOSPCDropNewShedsAndCounts: with the DropNew policy a full spool
// sheds arriving frames (Capture reports success; the policy chose the
// loss) and counts them; surviving frames drain exactly once.
func TestENOSPCDropNewShedsAndCounts(t *testing.T) {
	addr := deadBrokerAddr(t)
	client := enospcClient(t, addr, spool.DropNew)

	const before = 20
	for i := 0; i < before; i++ {
		if err := captureOne(client, i); err != nil {
			t.Fatalf("capture %d with space: %v", i, err)
		}
	}

	dq := chaos.NewDiskQuota(client.spool)
	dq.Fill()
	const during = 5
	for i := 0; i < during; i++ {
		if err := captureOne(client, before+i); err != nil {
			t.Fatalf("capture %d under DropNew: %v (want silent shed)", before+i, err)
		}
	}
	st := client.StatsSnapshot()
	if st.FramesShed != during {
		t.Fatalf("FramesShed = %d, want %d", st.FramesShed, during)
	}

	dq.Free()
	if err := captureOne(client, 99); err != nil {
		t.Fatalf("capture after freeing space: %v", err)
	}

	st, got := drainAndCount(t, client, addr)
	want := before + 1
	if got != want {
		t.Fatalf("target has %d records, want %d (shed frames must not reappear)", got, want)
	}
	if st.SpoolAcked != uint64(want) {
		t.Fatalf("acked %d frames, want %d", st.SpoolAcked, want)
	}
}

// TestENOSPCDropOldestShedsPrefix: with the DropOldestUnacked policy a
// full spool sheds its oldest sealed segments to admit new frames: the
// floor only ever advances, sheds are counted by class, and after space
// returns the surviving tail drains cleanly.
func TestENOSPCDropOldestShedsPrefix(t *testing.T) {
	addr := deadBrokerAddr(t)
	client := enospcClient(t, addr, spool.DropOldestUnacked)

	const before = 60 // enough to seal several 2 KiB segments
	for i := 0; i < before; i++ {
		if err := captureOne(client, i); err != nil {
			t.Fatalf("capture %d with space: %v", i, err)
		}
	}

	dq := chaos.NewDiskQuota(client.spool)
	dq.Fill()
	if err := captureOne(client, before); err != nil {
		t.Fatalf("capture under DropOldestUnacked: %v (want shed-to-admit)", err)
	}
	st := client.StatsSnapshot()
	shed := st.SpoolShedHigher + st.SpoolShedQoS0
	if shed == 0 {
		t.Fatalf("nothing shed: %+v", st)
	}
	floorAfterShed := client.spool.Floor()
	if floorAfterShed != shed {
		// Nothing was acked yet, so the advanced floor must equal the shed
		// count exactly — anything else means acked bookkeeping drifted.
		t.Fatalf("floor %d != shed %d with nothing acked", floorAfterShed, shed)
	}

	dq.Free()
	st, got := drainAndCount(t, client, addr)
	if client.spool.Floor() < floorAfterShed {
		t.Fatalf("floor regressed %d -> %d", floorAfterShed, client.spool.Floor())
	}
	want := int(st.FramesSpooled - shed)
	if got != want {
		t.Fatalf("target has %d records, want %d (spooled %d - shed %d)",
			got, want, st.FramesSpooled, shed)
	}
	// The floor covers acked *or shed* frames; after a clean drain it
	// reaches the last spooled sequence.
	if st.SpoolAcked != st.FramesSpooled {
		t.Fatalf("floor at %d after drain, want %d", st.SpoolAcked, st.FramesSpooled)
	}
}
