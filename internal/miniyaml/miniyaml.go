// Package miniyaml implements the YAML subset used by E2Clab-style
// configuration files (paper Listing 2): indentation-nested mappings,
// "- " sequences, and scalar values (string, bool, int, float). It exists
// because this repository is stdlib-only; it is not a general YAML parser
// (no anchors, multi-line scalars, flow collections, or tags).
package miniyaml

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a parsed YAML node: map[string]Value, []Value, or a scalar
// (string, bool, int64, float64, nil).
type Value any

// Parse parses a document into a Value.
func Parse(src string) (Value, error) {
	p := &parser{}
	for _, raw := range strings.Split(src, "\n") {
		// Strip comments (naive: '#' outside quotes) and trailing space.
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("miniyaml: tabs are not allowed for indentation")
		}
		p.lines = append(p.lines, parsedLine{indent: indent, text: strings.TrimSpace(line)})
	}
	if len(p.lines) == 0 {
		return map[string]Value{}, nil
	}
	v, next, err := p.parseBlock(0, p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(p.lines) {
		return nil, fmt.Errorf("miniyaml: unexpected content at line %d: %q", next+1, p.lines[next].text)
	}
	return v, nil
}

func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i, r := range line {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || line[i-1] == ' ') {
				return line[:i]
			}
		}
	}
	return line
}

type parsedLine struct {
	indent int
	text   string
}

type parser struct {
	lines []parsedLine
}

// parseBlock parses lines starting at index i with the given indentation,
// returning the value and the index of the first unconsumed line.
func (p *parser) parseBlock(i, indent int) (Value, int, error) {
	if i >= len(p.lines) {
		return nil, i, fmt.Errorf("miniyaml: unexpected end of input")
	}
	if strings.HasPrefix(p.lines[i].text, "- ") || p.lines[i].text == "-" {
		return p.parseSequence(i, indent)
	}
	return p.parseMapping(i, indent)
}

func (p *parser) parseSequence(i, indent int) (Value, int, error) {
	var seq []Value
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent || (!strings.HasPrefix(ln.text, "- ") && ln.text != "-") {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// Nested block follows.
			v, next, err := p.parseBlock(i+1, p.childIndent(i, indent))
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i = next
			continue
		}
		if k, v, isKV := splitKeyValue(rest); isKV {
			// "- key: value" starts an inline mapping; subsequent deeper
			// lines extend it.
			m := map[string]Value{}
			if v != "" {
				m[k] = scalar(v)
			} else if i+1 < len(p.lines) && p.lines[i+1].indent > indent+2 {
				sub, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
				if err != nil {
					return nil, i, err
				}
				m[k] = sub
				i = next - 1
			} else {
				m[k] = nil
			}
			// Continuation keys aligned under the first key.
			contIndent := indent + 2
			j := i + 1
			for j < len(p.lines) && p.lines[j].indent == contIndent &&
				!strings.HasPrefix(p.lines[j].text, "- ") {
				ck, cv, ok := splitKeyValue(p.lines[j].text)
				if !ok {
					break
				}
				if cv != "" {
					m[ck] = scalar(cv)
					j++
					continue
				}
				if j+1 < len(p.lines) && p.lines[j+1].indent > contIndent {
					sub, next, err := p.parseBlock(j+1, p.lines[j+1].indent)
					if err != nil {
						return nil, j, err
					}
					m[ck] = sub
					j = next
					continue
				}
				m[ck] = nil
				j++
			}
			seq = append(seq, m)
			i = j
			continue
		}
		seq = append(seq, scalar(rest))
		i++
	}
	return seq, i, nil
}

func (p *parser) childIndent(i, parent int) int {
	if i+1 < len(p.lines) && p.lines[i+1].indent > parent {
		return p.lines[i+1].indent
	}
	return parent + 2
}

func (p *parser) parseMapping(i, indent int) (Value, int, error) {
	m := map[string]Value{}
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, i, fmt.Errorf("miniyaml: unexpected indent at %q", ln.text)
			}
			break
		}
		if strings.HasPrefix(ln.text, "- ") {
			break
		}
		k, v, ok := splitKeyValue(ln.text)
		if !ok {
			return nil, i, fmt.Errorf("miniyaml: expected 'key: value', got %q", ln.text)
		}
		if _, dup := m[k]; dup {
			return nil, i, fmt.Errorf("miniyaml: duplicate key %q", k)
		}
		if v != "" {
			m[k] = scalar(v)
			i++
			continue
		}
		// Value is a nested block (or null).
		if i+1 < len(p.lines) && p.lines[i+1].indent > indent {
			sub, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
			if err != nil {
				return nil, i, err
			}
			m[k] = sub
			i = next
			continue
		}
		m[k] = nil
		i++
	}
	return m, i, nil
}

// splitKeyValue splits "key: value" / "key:" lines, honouring quoted keys.
func splitKeyValue(s string) (key, value string, ok bool) {
	idx := strings.Index(s, ":")
	if idx < 0 {
		return "", "", false
	}
	// "key:value" (no space) is only a key-value split if the colon is
	// followed by space or end of line.
	if idx+1 < len(s) && s[idx+1] != ' ' {
		// Allow URLs etc. only in values, not keys.
		return "", "", false
	}
	key = strings.TrimSpace(s[:idx])
	value = strings.TrimSpace(s[idx+1:])
	return key, value, key != ""
}

// scalar converts a scalar token to bool/int64/float64/string.
func scalar(s string) Value {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "true", "True", "yes":
		return true
	case "false", "False", "no":
		return false
	case "null", "~":
		return nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// Map returns v as a mapping, or nil.
func Map(v Value) map[string]Value {
	m, _ := v.(map[string]Value)
	return m
}

// Seq returns v as a sequence, or nil.
func Seq(v Value) []Value {
	s, _ := v.([]Value)
	return s
}

// Str returns the string at key in mapping v ("" if absent).
func Str(v Value, key string) string {
	if m := Map(v); m != nil {
		if s, ok := m[key].(string); ok {
			return s
		}
	}
	return ""
}

// Int returns the integer at key in mapping v (0 if absent).
func Int(v Value, key string) int64 {
	if m := Map(v); m != nil {
		switch x := m[key].(type) {
		case int64:
			return x
		case float64:
			return int64(x)
		}
	}
	return 0
}

// Float returns the float at key in mapping v (0 if absent).
func Float(v Value, key string) float64 {
	if m := Map(v); m != nil {
		switch x := m[key].(type) {
		case float64:
			return x
		case int64:
			return float64(x)
		}
	}
	return 0
}
