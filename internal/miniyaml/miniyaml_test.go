package miniyaml

import (
	"testing"
	"testing/quick"
)

const listing2 = `
environment:
  g5k: cluster-gros
  iotlab: cluster-grenoble
  provenance: ProvenanceManager
layers:
  - name: cloud
    services:
      - name: Server
        environment: g5k
        quantity: 1
  - name: edge
    services:
      - name: Client
        environment: iotlab
        arch: a8
        quantity: 64
`

func TestParseListing2(t *testing.T) {
	v, err := Parse(listing2)
	if err != nil {
		t.Fatal(err)
	}
	env := Map(Map(v)["environment"])
	if env["provenance"] != "ProvenanceManager" {
		t.Errorf("provenance = %v", env["provenance"])
	}
	layers := Seq(Map(v)["layers"])
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	if Str(layers[0], "name") != "cloud" || Str(layers[1], "name") != "edge" {
		t.Errorf("layer names wrong: %v", layers)
	}
	services := Seq(Map(layers[1])["services"])
	if len(services) != 1 {
		t.Fatalf("edge services = %d, want 1", len(services))
	}
	if Str(services[0], "name") != "Client" || Int(services[0], "quantity") != 64 ||
		Str(services[0], "arch") != "a8" {
		t.Errorf("client service = %v", services[0])
	}
}

func TestScalars(t *testing.T) {
	v, err := Parse(`
a: 42
b: 3.14
c: true
d: hello world
e: "quoted: string"
f: null
g: no
`)
	if err != nil {
		t.Fatal(err)
	}
	m := Map(v)
	if m["a"] != int64(42) || m["b"] != 3.14 || m["c"] != true {
		t.Errorf("scalars = %v", m)
	}
	if m["d"] != "hello world" || m["e"] != "quoted: string" {
		t.Errorf("strings = %v", m)
	}
	if m["f"] != nil || m["g"] != false {
		t.Errorf("null/bool = %v", m)
	}
}

func TestComments(t *testing.T) {
	v, err := Parse(`
# full-line comment
key: value # trailing comment
url: "http://example.com#frag"
`)
	if err != nil {
		t.Fatal(err)
	}
	m := Map(v)
	if m["key"] != "value" {
		t.Errorf("key = %v", m["key"])
	}
	if m["url"] != "http://example.com#frag" {
		t.Errorf("url = %v", m["url"])
	}
}

func TestScalarSequence(t *testing.T) {
	v, err := Parse(`
items:
  - one
  - 2
  - true
`)
	if err != nil {
		t.Fatal(err)
	}
	items := Seq(Map(v)["items"])
	if len(items) != 3 || items[0] != "one" || items[1] != int64(2) || items[2] != true {
		t.Errorf("items = %v", items)
	}
}

func TestNestedMaps(t *testing.T) {
	v, err := Parse(`
network:
  edge_to_cloud:
    bandwidth: 25000
    delay_ms: 23
`)
	if err != nil {
		t.Fatal(err)
	}
	net := Map(Map(v)["network"])
	e2c := Map(net["edge_to_cloud"])
	if e2c["bandwidth"] != int64(25000) || e2c["delay_ms"] != int64(23) {
		t.Errorf("e2c = %v", e2c)
	}
	if Int(net["edge_to_cloud"], "bandwidth") != 25000 {
		t.Error("Int helper failed")
	}
	if Float(net["edge_to_cloud"], "delay_ms") != 23 {
		t.Error("Float helper failed")
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"\tkey: value",       // tab indentation
		"key: value\nkey: v", // duplicate key
		"just a bare scalar line",
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail: %q", i, src)
		}
	}
}

func TestEmpty(t *testing.T) {
	v, err := Parse("\n# only a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if m := Map(v); m == nil || len(m) != 0 {
		t.Errorf("empty doc = %v", v)
	}
}

// Property: Parse never panics on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
