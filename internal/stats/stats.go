// Package stats provides the summary statistics used throughout the
// ProvLight evaluation: sample mean, standard deviation, 95% confidence
// intervals, and relative differences (the paper's "capture time overhead").
//
// The paper reports "the mean followed by the 95% confidence interval" over
// 10 repetitions (§III-A), so the confidence interval uses Student's t
// critical values for small samples rather than the normal approximation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two samples are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// tCritical95 holds two-sided 95% Student's t critical values indexed by
// degrees of freedom (1..30). Beyond 30 degrees of freedom the normal
// approximation (1.96) is used.
var tCritical95 = [...]float64{
	math.NaN(), // df = 0 is undefined
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student's t critical value for the
// given degrees of freedom. It falls back to the normal z value (1.96) for
// df > 30 and returns NaN for df < 1.
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return math.NaN()
	case df <= 30:
		return tCritical95[df]
	default:
		return 1.96
	}
}

// CI95 returns the half-width of the two-sided 95% confidence interval for
// the mean of xs. With fewer than two samples the interval is zero.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return TCritical95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// RelDiff returns the relative difference (a-b)/b. This is the paper's
// "capture time overhead": a is the execution time with capture enabled and
// b without. It returns 0 when b is 0 to keep callers total.
func RelDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b
}

// Summary aggregates repeated measurements of one experiment cell.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI     float64 // 95% confidence half-width
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), CI: CI95(xs)}
	for i, x := range xs {
		if i == 0 || x < s.Min {
			s.Min = x
		}
		if i == 0 || x > s.Max {
			s.Max = x
		}
	}
	return s
}

// PercentString renders the summary as "12.34% ±0.56" the way the paper's
// tables present overheads (mean as a percentage with CI half-width).
func (s Summary) PercentString() string {
	return fmt.Sprintf("%.2f%% ±%.2f", s.Mean*100, s.CI*100)
}

// String renders the summary as "mean ±ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ±%.2g", s.Mean, s.CI)
}
