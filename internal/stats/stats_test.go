package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: sum sq dev = 32, / 7.
	wantVar := 32.0 / 7.0
	if got := Variance(xs); math.Abs(got-wantVar) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, wantVar)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(wantVar)) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(wantVar))
	}
	if Variance([]float64{42}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestTCritical95(t *testing.T) {
	if got := TCritical95(9); got != 2.262 {
		t.Errorf("TCritical95(9) = %v, want 2.262 (paper uses n=10 runs)", got)
	}
	if got := TCritical95(1000); got != 1.96 {
		t.Errorf("TCritical95(1000) = %v, want 1.96", got)
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("TCritical95(0) should be NaN")
	}
}

func TestCI95(t *testing.T) {
	// Ten identical samples have zero CI.
	same := make([]float64, 10)
	for i := range same {
		same[i] = 3.3
	}
	if got := CI95(same); got != 0 {
		t.Errorf("CI95 of constant series = %v, want 0", got)
	}
	// Known small case: {1,2,3}, sd=1, n=3, df=2 -> 4.303/sqrt(3).
	want := 4.303 / math.Sqrt(3)
	if got := CI95([]float64{1, 2, 3}); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of single sample should be 0")
	}
}

func TestRelDiff(t *testing.T) {
	if got := RelDiff(1.5, 1.0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RelDiff(1.5,1) = %v, want 0.5", got)
	}
	if got := RelDiff(1.0, 0); got != 0 {
		t.Errorf("RelDiff with zero base = %v, want 0", got)
	}
	if got := RelDiff(0.9, 1.0); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("RelDiff(0.9,1) = %v, want -0.1", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.CI <= 0 {
		t.Error("CI should be positive for non-constant samples")
	}
	if got := s.PercentString(); !strings.Contains(got, "250.00%") {
		t.Errorf("PercentString = %q", got)
	}
}

// Property: mean is bounded by min and max; variance is non-negative;
// shifting all samples by a constant shifts the mean and preserves variance.
func TestStatsProperties(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) < 2 {
			return true
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e9 {
			shift = 1
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-6 || s.Mean > s.Max+1e-6 {
			return false
		}
		if Variance(xs) < 0 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		scale := math.Max(1, math.Abs(s.Mean))
		if math.Abs(Mean(shifted)-(s.Mean+shift)) > 1e-6*scale {
			return false
		}
		v0, v1 := Variance(xs), Variance(shifted)
		return math.Abs(v0-v1) <= 1e-5*math.Max(1, v0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("Demo", "a", "bee", "c")
	tab.AddRow("1", "2", "3")
	tab.AddRow("10", "20", "30")
	out := tab.String()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("want 5 lines, got %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "bee") {
		t.Errorf("header line = %q", lines[1])
	}
}
