package stats

import (
	"fmt"
	"strings"
)

// Table is a minimal fixed-column text table used by the benchmark harness
// to print the paper's tables with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from Sprintf-formatted cells.
func (t *Table) AddRowf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	_ = format // reserved for future per-cell formats
	t.Rows = append(t.Rows, parts)
}

// String renders the table with columns padded to their widest cell.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
