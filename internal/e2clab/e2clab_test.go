package e2clab

import (
	"testing"
	"time"
)

const layersSrc = `
environment:
  g5k: gros
  iotlab: grenoble
  provenance: ProvenanceManager
layers:
  - name: cloud
    services:
      - name: Server
        environment: g5k
        quantity: 1
  - name: edge
    services:
      - name: Client
        environment: iotlab
        arch: a8
        quantity: 4
        group_size: 5
`

const networkSrc = `
networks:
  - src: edge
    dst: cloud
    bandwidth_bps: 0
    delay_ms: 0
`

const workflowSrc = `
workflow:
  transformations: 3
  tasks: 6
  attributes_per_task: 10
  task_duration_ms: 5
  time_scale: 1.0
`

func TestParseConfigs(t *testing.T) {
	cfg, err := ParseLayersServices(layersSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Provenance {
		t.Error("provenance manager not detected")
	}
	if cfg.Environment["g5k"] != "gros" || cfg.Environment["iotlab"] != "grenoble" {
		t.Errorf("environment = %v", cfg.Environment)
	}
	if len(cfg.Layers) != 2 || cfg.Layers[1].Services[0].Quantity != 4 {
		t.Errorf("layers = %+v", cfg.Layers)
	}
	if cfg.Layers[1].Services[0].GroupSize != 5 {
		t.Errorf("group size = %d", cfg.Layers[1].Services[0].GroupSize)
	}
	if err := cfg.ParseNetwork(networkSrc); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Network) != 1 || cfg.Network[0].From != "edge" {
		t.Errorf("network = %+v", cfg.Network)
	}
	if err := cfg.ParseWorkflow(workflowSrc); err != nil {
		t.Fatal(err)
	}
	if cfg.Workflow.Tasks != 6 || cfg.Workflow.TaskDuration != 5*time.Millisecond {
		t.Errorf("workflow = %+v", cfg.Workflow)
	}
	if cfg.EdgeClients() != 4 {
		t.Errorf("edge clients = %d, want 4", cfg.EdgeClients())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseLayersServices("layers:\n  - services:\n      - name: X\n"); err == nil {
		t.Error("layer without name should fail")
	}
	if _, err := ParseLayersServices("environment:\n  g5k: a\n"); err == nil {
		t.Error("config without layers should fail")
	}
	cfg := &Config{}
	if err := cfg.ParseWorkflow("workflow:\n  tasks: 0\n"); err == nil {
		t.Error("zero tasks should fail")
	}
	if err := cfg.ParseNetwork("networks:\n  - src: a\n"); err == nil {
		t.Error("network rule without dst should fail")
	}
}

func TestDeployAndRunWorkflow(t *testing.T) {
	cfg, err := ParseLayersServices(layersSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.ParseNetwork(networkSrc); err != nil {
		t.Fatal(err)
	}
	if err := cfg.ParseWorkflow(workflowSrc); err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if len(dep.Clients) != 4 {
		t.Fatalf("deployed %d clients, want 4", len(dep.Clients))
	}
	rep, err := dep.RunWorkflow()
	if err != nil {
		t.Fatal(err)
	}
	wantRecords := 4 * (2 + 2*6)
	if rep.RecordsCaptured != wantRecords {
		t.Errorf("captured %d records, want %d", rep.RecordsCaptured, wantRecords)
	}
	// DfAnalyzer stored the tasks of all devices.
	if rep.RecordsStored != 4*6 {
		t.Errorf("stored %d tasks, want %d", rep.RecordsStored, 4*6)
	}
}

func TestDeployRequiresProvenance(t *testing.T) {
	cfg, err := ParseLayersServices("layers:\n  - name: edge\n    services:\n      - name: C\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(cfg); err == nil {
		t.Error("deploy without provenance manager should fail")
	}
}
