// Package e2clab re-implements the E2Clab experiment methodology the paper
// extends (§V): declarative layers-and-services, network, and workflow
// configurations drive an automatic deployment whose Provenance Manager
// wires ProvLight capture across the Edge-to-Cloud continuum.
//
// Deployments here are in-process: "cloud" services run as local servers
// (broker, translators, DfAnalyzer), "edge" services run as ProvLight
// clients whose sockets are shaped by netem according to the network
// configuration — the same substitution DESIGN.md documents for the
// Grid'5000 / FIT IoT-LAB testbeds.
package e2clab

import (
	"fmt"
	"time"

	"github.com/provlight/provlight/internal/miniyaml"
)

// Service is one service entry of a layer (Listing 2).
type Service struct {
	Name        string
	Environment string
	Arch        string
	Quantity    int
	// GroupSize configures ProvLight grouping for client services.
	GroupSize int
}

// Layer is one layer of the experiment environment (cloud, fog, edge).
type Layer struct {
	Name     string
	Services []Service
}

// NetworkRule constrains the path between two layers.
type NetworkRule struct {
	From         string
	To           string
	BandwidthBps int64
	Delay        time.Duration
	LossRate     float64
}

// WorkflowSpec describes the synthetic workload to run on edge clients.
type WorkflowSpec struct {
	Transformations int
	Tasks           int
	Attributes      int
	TaskDuration    time.Duration
	// TimeScale scales task sleeps for fast test runs (1.0 = real time).
	TimeScale float64
}

// Config is a full experiment definition.
type Config struct {
	// Environment maps testbed aliases to cluster names.
	Environment map[string]string
	// Provenance is set when the environment requests the
	// ProvenanceManager service.
	Provenance bool
	Layers     []Layer
	Network    []NetworkRule
	Workflow   WorkflowSpec
}

// ParseLayersServices parses the layers_services.yaml document.
func ParseLayersServices(src string) (*Config, error) {
	v, err := miniyaml.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("e2clab: layers_services: %w", err)
	}
	root := miniyaml.Map(v)
	if root == nil {
		return nil, fmt.Errorf("e2clab: layers_services must be a mapping")
	}
	cfg := &Config{Environment: map[string]string{}}
	for k, ev := range miniyaml.Map(root["environment"]) {
		if k == "provenance" {
			cfg.Provenance = true
			continue
		}
		if s, ok := ev.(string); ok {
			cfg.Environment[k] = s
		}
	}
	for _, lv := range miniyaml.Seq(root["layers"]) {
		layer := Layer{Name: miniyaml.Str(lv, "name")}
		if layer.Name == "" {
			return nil, fmt.Errorf("e2clab: layer without name")
		}
		for _, sv := range miniyaml.Seq(miniyaml.Map(lv)["services"]) {
			svc := Service{
				Name:        miniyaml.Str(sv, "name"),
				Environment: miniyaml.Str(sv, "environment"),
				Arch:        miniyaml.Str(sv, "arch"),
				Quantity:    int(miniyaml.Int(sv, "quantity")),
				GroupSize:   int(miniyaml.Int(sv, "group_size")),
			}
			if svc.Name == "" {
				return nil, fmt.Errorf("e2clab: service without name in layer %q", layer.Name)
			}
			if svc.Quantity <= 0 {
				svc.Quantity = 1
			}
			layer.Services = append(layer.Services, svc)
		}
		cfg.Layers = append(cfg.Layers, layer)
	}
	if len(cfg.Layers) == 0 {
		return nil, fmt.Errorf("e2clab: no layers defined")
	}
	return cfg, nil
}

// ParseNetwork parses the network.yaml document into cfg.
func (cfg *Config) ParseNetwork(src string) error {
	v, err := miniyaml.Parse(src)
	if err != nil {
		return fmt.Errorf("e2clab: network: %w", err)
	}
	for _, rv := range miniyaml.Seq(miniyaml.Map(v)["networks"]) {
		rule := NetworkRule{
			From:         miniyaml.Str(rv, "src"),
			To:           miniyaml.Str(rv, "dst"),
			BandwidthBps: miniyaml.Int(rv, "bandwidth_bps"),
			Delay:        time.Duration(miniyaml.Float(rv, "delay_ms") * float64(time.Millisecond)),
			LossRate:     miniyaml.Float(rv, "loss"),
		}
		if rule.From == "" || rule.To == "" {
			return fmt.Errorf("e2clab: network rule requires src and dst")
		}
		cfg.Network = append(cfg.Network, rule)
	}
	return nil
}

// ParseWorkflow parses the workflow.yaml document into cfg.
func (cfg *Config) ParseWorkflow(src string) error {
	v, err := miniyaml.Parse(src)
	if err != nil {
		return fmt.Errorf("e2clab: workflow: %w", err)
	}
	w := miniyaml.Map(v)["workflow"]
	if w == nil {
		return fmt.Errorf("e2clab: missing workflow section")
	}
	cfg.Workflow = WorkflowSpec{
		Transformations: int(miniyaml.Int(w, "transformations")),
		Tasks:           int(miniyaml.Int(w, "tasks")),
		Attributes:      int(miniyaml.Int(w, "attributes_per_task")),
		TaskDuration:    time.Duration(miniyaml.Float(w, "task_duration_ms") * float64(time.Millisecond)),
		TimeScale:       miniyaml.Float(w, "time_scale"),
	}
	if cfg.Workflow.Tasks <= 0 {
		return fmt.Errorf("e2clab: workflow.tasks must be positive")
	}
	if cfg.Workflow.Transformations <= 0 {
		cfg.Workflow.Transformations = 1
	}
	return nil
}

// RuleFor returns the network rule from one layer to another, if any.
func (cfg *Config) RuleFor(from, to string) (NetworkRule, bool) {
	for _, r := range cfg.Network {
		if r.From == from && r.To == to {
			return r, true
		}
	}
	return NetworkRule{}, false
}

// EdgeClients counts the client service instances across non-cloud layers.
func (cfg *Config) EdgeClients() int {
	n := 0
	for _, l := range cfg.Layers {
		if l.Name == "cloud" {
			continue
		}
		for _, s := range l.Services {
			n += s.Quantity
		}
	}
	return n
}
