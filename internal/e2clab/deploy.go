package e2clab

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/core"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/workload"
)

// ProvenanceManager bundles the provenance services the extended E2Clab
// deploys (paper Fig. 4): the ProvLight server (MQTT-SN broker +
// translators) and the DfAnalyzer storage/query backend.
type ProvenanceManager struct {
	Server     *core.Server
	DfAnalyzer *dfanalyzer.Server
	Memory     *translate.MemoryTarget
}

// Close stops all provenance services.
func (pm *ProvenanceManager) Close() {
	if pm.Server != nil {
		pm.Server.Close()
	}
	if pm.DfAnalyzer != nil {
		pm.DfAnalyzer.Close()
	}
}

// Deployment is a running in-process experiment.
type Deployment struct {
	Config     *Config
	Provenance *ProvenanceManager
	Clients    []*core.Client

	closed bool
}

// Deploy realizes the configuration: it starts the Provenance Manager (if
// requested) and one ProvLight client per edge service instance, shaping
// each client socket with the configured network rule.
func Deploy(cfg *Config) (*Deployment, error) {
	d := &Deployment{Config: cfg}
	if !cfg.Provenance {
		return nil, fmt.Errorf("e2clab: this deployment requires the ProvenanceManager service")
	}
	pm := &ProvenanceManager{Memory: translate.NewMemoryTarget()}
	pm.DfAnalyzer = dfanalyzer.NewServer(nil)
	if err := pm.DfAnalyzer.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	dfaTarget := translate.NewDfAnalyzerTarget(
		dfanalyzer.NewClient("http://"+pm.DfAnalyzer.Addr()), "e2clab")
	srv, err := core.StartServer(context.Background(), core.ServerConfig{
		Addr:          "127.0.0.1:0",
		Targets:       []translate.Target{pm.Memory, dfaTarget},
		RetryInterval: 200 * time.Millisecond,
	})
	if err != nil {
		pm.DfAnalyzer.Close()
		return nil, err
	}
	pm.Server = srv
	d.Provenance = pm

	// One ProvLight client per edge service instance.
	for _, layer := range cfg.Layers {
		if layer.Name == "cloud" {
			continue
		}
		rule, hasRule := cfg.RuleFor(layer.Name, "cloud")
		for _, svc := range layer.Services {
			for i := 0; i < svc.Quantity; i++ {
				clientID := fmt.Sprintf("%s-%s-%d", layer.Name, svc.Name, i)
				ccfg := core.Config{
					Broker:        srv.Addr(),
					ClientID:      clientID,
					GroupSize:     svc.GroupSize,
					RetryInterval: 200 * time.Millisecond,
					MaxRetries:    15,
				}
				if hasRule {
					raw, err := net.ListenPacket("udp", "127.0.0.1:0")
					if err != nil {
						d.Close()
						return nil, err
					}
					ccfg.Conn = netem.WrapPacketConn(raw, netem.Profile{
						BandwidthBps: rule.BandwidthBps,
						Delay:        rule.Delay,
						LossRate:     rule.LossRate,
						Seed:         int64(i + 1),
					})
				}
				client, err := core.NewClient(context.Background(), ccfg)
				if err != nil {
					d.Close()
					return nil, fmt.Errorf("e2clab: start client %s: %w", clientID, err)
				}
				d.Clients = append(d.Clients, client)
			}
		}
	}
	if len(d.Clients) == 0 {
		d.Close()
		return nil, fmt.Errorf("e2clab: no edge client services defined")
	}
	return d, nil
}

// Report summarizes a workflow run.
type Report struct {
	Devices         int
	RecordsCaptured int
	RecordsStored   int           // in the DfAnalyzer backend (task count)
	Elapsed         time.Duration // wall time of the slowest device
}

// RunWorkflow executes the configured synthetic workflow on every edge
// client in parallel (the Workflow Manager's role), waits for the
// provenance pipeline to drain, and reports.
func (d *Deployment) RunWorkflow() (*Report, error) {
	spec := d.Config.Workflow
	wcfg := workload.Config{
		ChainedTransformations: spec.Transformations,
		Tasks:                  spec.Tasks,
		AttributesPerTask:      spec.Attributes,
		TaskDuration:           spec.TaskDuration,
	}
	var wg sync.WaitGroup
	errs := make([]error, len(d.Clients))
	times := make([]time.Duration, len(d.Clients))
	start := time.Now()
	for i, client := range d.Clients {
		wg.Add(1)
		go func(i int, client *core.Client) {
			defer wg.Done()
			wf := fmt.Sprintf("wf-%d", i)
			times[i], errs[i] = wcfg.Run(client, wf, spec.TimeScale)
		}(i, client)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Wait for the capture pipeline (client queues, broker, translators).
	for _, c := range d.Clients {
		if err := c.Flush(); err != nil {
			return nil, err
		}
	}
	expected := len(d.Clients) * wcfg.Events()
	deadline := time.Now().Add(30 * time.Second)
	for d.Provenance.Memory.Len() < expected {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("e2clab: pipeline drained %d/%d records",
				d.Provenance.Memory.Len(), expected)
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.Provenance.Server.Drain()

	rep := &Report{
		Devices:         len(d.Clients),
		RecordsCaptured: d.Provenance.Memory.Len(),
		Elapsed:         time.Since(start),
	}
	for i := range d.Clients {
		rep.RecordsStored += d.Provenance.DfAnalyzer.Store().TaskCount("e2clab")
		_ = times[i]
		break
	}
	return rep, nil
}

// Close tears the deployment down.
func (d *Deployment) Close() {
	if d.closed {
		return
	}
	d.closed = true
	for _, c := range d.Clients {
		c.Close()
	}
	if d.Provenance != nil {
		d.Provenance.Close()
	}
}
