// Package spool implements the edge-side store-and-forward queue: a
// disk-backed buffer of encoded capture frames that survives client
// crashes and long network partitions.
//
// Captured frames are appended to a segmented WAL (internal/wal) before
// transmission; a drainer reads them back in order and publishes them,
// and *end-to-end* acknowledgements — not mere broker receipt — advance a
// persisted low-water mark ("floor"). Everything at or below the floor is
// durably applied on the server, so fully-acked segments are reclaimed.
// Acks may arrive out of order (the publish window completes handshakes
// concurrently, and the server batches deliveries): the spool keeps the
// floor plus a sparse set of acked sequence numbers above it, advancing
// the floor whenever the run above it becomes contiguous.
//
// Crash recovery: on Open the WAL replays its surviving tail, the floor
// is restored from the mark file, and every unacked frame above the floor
// is redelivered. Frames that were applied server-side but whose ack was
// lost (or not yet persisted) are redelivered too — the durable frame ids
// stamped into each frame (wire.AppendFrameSeq) let the server
// deduplicate them, which is what turns at-least-once redelivery into
// exactly-once ingestion.
package spool

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/wal"
)

// Options configures a Spool. Only Dir is required.
type Options struct {
	// Dir is the spool directory (created if missing).
	Dir string
	// Sync is the WAL fsync policy. Default wal.SyncInterval: appends stay
	// at memory speed and a crash loses at most SyncInterval of frames
	// from the *page cache flush* point of view — a process crash loses
	// nothing, a power loss at most that window.
	Sync wal.SyncPolicy
	// SyncInterval is the background fsync period. Default 100 ms.
	SyncInterval time.Duration
	// SegmentSize is the WAL segment rotation size. Default 8 MiB.
	SegmentSize int64
	// PersistEvery persists the ack mark after this many floor advances
	// (and always on Close). Default 64. Redelivery after a crash covers
	// the frames acked since the last persist; deduplication absorbs them.
	PersistEvery int
}

const markFile = "ack.mark"

// Spool is a disk-backed frame queue. All methods are safe for concurrent
// use.
type Spool struct {
	log          *wal.Log
	markPath     string
	persistEvery int
	sync         wal.SyncPolicy

	mu          sync.Mutex
	floor       uint64 // every seq <= floor is acked
	acked       map[uint64]struct{}
	lastPersist uint64
	syncedUpTo  uint64 // highest seq known fsynced (publish barrier)
	closed      bool

	ackCh chan struct{} // coalesced ack-progress signal
}

// Open opens (or creates) the spool in opts.Dir, recovering WAL and ack
// mark state.
func Open(opts Options) (*Spool, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("spool: Dir required")
	}
	if opts.PersistEvery <= 0 {
		opts.PersistEvery = 64
	}
	l, err := wal.Open(filepath.Join(opts.Dir, "wal"), wal.Options{
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
		SegmentSize:  opts.SegmentSize,
	})
	if err != nil {
		return nil, err
	}
	s := &Spool{
		log:          l,
		markPath:     filepath.Join(opts.Dir, markFile),
		persistEvery: opts.PersistEvery,
		sync:         opts.Sync,
		acked:        map[uint64]struct{}{},
		ackCh:        make(chan struct{}, 1),
	}
	floor, err := readMark(s.markPath)
	if err != nil {
		l.Close()
		return nil, err
	}
	s.floor = floor
	// Segments are only reclaimed after the mark covering them persisted,
	// but a crash can still leave the mark behind a truncated front (the
	// reverse is prevented by persist-before-truncate). Trust whichever is
	// further along.
	if first := l.FirstSeq(); first > 0 && first-1 > s.floor {
		s.floor = first - 1
	}
	s.lastPersist = s.floor
	// Never reuse a frame id: if the mark outran a lossy log tail, push
	// the sequence space past everything possibly already published.
	l.Reserve(s.floor)
	return s, nil
}

func readMark(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("spool: read mark: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spool: parse mark %q: %w", data, err)
	}
	return v, nil
}

// persistMarkLocked writes the floor atomically. Callers hold s.mu.
func (s *Spool) persistMarkLocked() error {
	floor := s.floor
	err := wal.WriteFileAtomic(s.markPath, func(w io.Writer) error {
		_, werr := fmt.Fprintf(w, "%d\n", floor)
		return werr
	})
	if err != nil {
		return fmt.Errorf("spool: persist mark: %w", err)
	}
	s.lastPersist = floor
	return nil
}

// AppendWith appends one frame built by build, which receives the durable
// sequence number the frame will carry (stamp it into the frame with
// wire.AppendFrameSeq). The append is atomic with the sequence
// assignment.
func (s *Spool) AppendWith(build func(seq uint64) ([]byte, error)) (uint64, error) {
	return s.log.AppendWith(build)
}

// Ack marks one frame as durably applied end-to-end. When the run above
// the floor becomes contiguous the floor advances, the mark is persisted
// every PersistEvery advances, and fully-acked segments are reclaimed.
func (s *Spool) Ack(seq uint64) error {
	s.mu.Lock()
	if s.closed || seq <= s.floor {
		s.mu.Unlock()
		return nil
	}
	if _, dup := s.acked[seq]; dup {
		s.mu.Unlock()
		return nil
	}
	s.acked[seq] = struct{}{}
	advanced := false
	for {
		if _, ok := s.acked[s.floor+1]; !ok {
			break
		}
		delete(s.acked, s.floor+1)
		s.floor++
		advanced = true
	}
	var err error
	var reclaimTo uint64
	if advanced && s.floor-s.lastPersist >= uint64(s.persistEvery) {
		// Persist before reclaiming: the mark must always cover every
		// truncated segment, or a crash would leave the floor pointing at
		// deleted frames.
		if err = s.persistMarkLocked(); err == nil {
			reclaimTo = s.floor
		}
	}
	s.mu.Unlock()
	if reclaimTo > 0 {
		if terr := s.log.TruncateFront(reclaimTo); err == nil {
			err = terr
		}
	}
	if advanced {
		select {
		case s.ackCh <- struct{}{}:
		default:
		}
	}
	return err
}

// EnsureSynced is the publish barrier: it guarantees the frame with the
// given sequence number is on stable storage before the caller transmits
// it. Without it, a power loss could drop an unsynced WAL tail whose
// frames were already published (and dedup-marked server-side); their
// sequence numbers would then be reassigned to new frames on reopen, and
// the server would silently swallow those as redeliveries. With the
// barrier, every published sequence number is durable, so the persisted
// ack mark can never outrun the log and sequence reuse is impossible.
//
// No-op under wal.SyncOff: that policy explicitly trades power-loss
// safety away. Under SyncEach the data is already durable and the call
// is nearly free; under SyncInterval it fsyncs only when the drainer
// outruns the background syncer.
func (s *Spool) EnsureSynced(seq uint64) error {
	if s.sync == wal.SyncOff {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.syncedUpTo {
		return nil
	}
	last := s.log.LastSeq() // everything appended so far is covered by Sync
	if err := s.log.Sync(); err != nil {
		return err
	}
	s.syncedUpTo = last
	return nil
}

// Acked reports whether seq is already acknowledged.
func (s *Spool) Acked(seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.floor {
		return true
	}
	_, ok := s.acked[seq]
	return ok
}

// Floor returns the highest contiguously acknowledged sequence number.
func (s *Spool) Floor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floor
}

// LastSeq returns the last appended sequence number.
func (s *Spool) LastSeq() uint64 { return s.log.LastSeq() }

// Pending returns how many appended frames await acknowledgement.
func (s *Spool) Pending() uint64 {
	last := s.log.LastSeq()
	s.mu.Lock()
	defer s.mu.Unlock()
	if last <= s.floor {
		return 0
	}
	return last - s.floor - uint64(len(s.acked))
}

// Drained reports whether every appended frame is acknowledged.
func (s *Spool) Drained() bool { return s.Pending() == 0 }

// Notify signals appended frames (coalesced); AckSignal signals floor
// advances. Drain loops sleep on these instead of polling.
func (s *Spool) Notify() <-chan struct{}    { return s.log.Notify() }
func (s *Spool) AckSignal() <-chan struct{} { return s.ackCh }

// SyncMark persists the ack mark now (used on clean shutdown).
func (s *Spool) SyncMark() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.persistMarkLocked()
}

// Close persists the mark, syncs the WAL, and releases the spool. Spooled
// but unacked frames stay on disk for the next Open.
func (s *Spool) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.persistMarkLocked()
	s.closed = true
	s.mu.Unlock()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the spool without persisting the ack mark — the
// process-crash path used by recovery tests and Client.Abort. State on
// disk is exactly what a SIGKILL would have left.
func (s *Spool) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.log.Close()
}

// Reader iterates unacknowledged frames in sequence order, starting at
// the floor when created (or Reset). Frames acked while the reader was
// behind are skipped.
type Reader struct {
	s *Spool
	r *wal.Reader
}

// NewReader returns a reader positioned at the first unacked frame.
func (s *Spool) NewReader() *Reader {
	return &Reader{s: s, r: s.log.ReadFrom(s.Floor() + 1)}
}

// Reset repositions the reader at the first unacked frame — the
// redelivery path after a reconnect or an ack timeout.
func (r *Reader) Reset() { r.r.Seek(r.s.Floor() + 1) }

// Next appends the next unacked frame to buf and returns it with its
// sequence number; ok is false when the reader has caught up with the
// appended tail (sleep on Notify/AckSignal and retry).
func (r *Reader) Next(buf []byte) (seq uint64, frame []byte, ok bool, err error) {
	for {
		seq, frame, ok, err = r.r.Next(buf)
		if err != nil || !ok {
			return 0, frame, false, err
		}
		if r.s.Acked(seq) {
			buf = frame[:len(buf)]
			continue
		}
		return seq, frame, true, nil
	}
}

// Close releases the reader.
func (r *Reader) Close() { r.r.Close() }
