// Package spool implements the edge-side store-and-forward queue: a
// disk-backed buffer of encoded capture frames that survives client
// crashes and long network partitions.
//
// Captured frames are appended to a segmented WAL (internal/wal) before
// transmission; a drainer reads them back in order and publishes them,
// and *end-to-end* acknowledgements — not mere broker receipt — advance a
// persisted low-water mark ("floor"). Everything at or below the floor is
// durably applied on the server, so fully-acked segments are reclaimed.
// Acks may arrive out of order (the publish window completes handshakes
// concurrently, and the server batches deliveries): the spool keeps the
// floor plus a sparse set of acked sequence numbers above it, advancing
// the floor whenever the run above it becomes contiguous.
//
// Crash recovery: on Open the WAL replays its surviving tail, the floor
// is restored from the mark file, and every unacked frame above the floor
// is redelivered. Frames that were applied server-side but whose ack was
// lost (or not yet persisted) are redelivered too — the durable frame ids
// stamped into each frame (wire.AppendFrameSeq) let the server
// deduplicate them, which is what turns at-least-once redelivery into
// exactly-once ingestion.
package spool

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/wal"
)

// DegradePolicy selects what the spool does when its byte quota crosses
// the high watermark: a constrained edge device with a small flash
// partition must pick which invariant to sacrifice when the network
// outage outlasts the disk.
type DegradePolicy int

const (
	// Block refuses new appends (ErrSpoolFull) until the drain brings
	// usage back under the low watermark. Nothing is lost; capture
	// stalls. The default: safest, and correct for QoS >= 1 data.
	Block DegradePolicy = iota
	// DropNew sheds arriving frames instead of storing them: QoS 0
	// frames are shed as soon as the high watermark trips, QoS >= 1
	// frames only when the hard quota itself is hit. Old data (already
	// spooled, possibly mid-flight) is preserved.
	DropNew
	// DropOldestUnacked reclaims the oldest spooled frames to make room
	// for new ones — freshest-data-wins, the right choice for telemetry
	// where the latest reading supersedes stale ones. Reclaim is
	// prefix-only (whole sealed WAL segments), so the shed prefix can
	// contain both QoS classes; sheds are counted per class and
	// acknowledged frames in the prefix are never data loss (they were
	// already applied server-side). The floor only ever advances.
	DropOldestUnacked
)

// String returns the flag-style name ("block", "drop-new", "drop-oldest").
func (p DegradePolicy) String() string {
	switch p {
	case DropNew:
		return "drop-new"
	case DropOldestUnacked:
		return "drop-oldest"
	default:
		return "block"
	}
}

// ParseDegradePolicy parses the flag-style names.
func ParseDegradePolicy(s string) (DegradePolicy, error) {
	switch strings.ToLower(s) {
	case "block", "":
		return Block, nil
	case "drop-new", "dropnew":
		return DropNew, nil
	case "drop-oldest", "drop-oldest-unacked", "dropoldest":
		return DropOldestUnacked, nil
	}
	return Block, fmt.Errorf("spool: unknown degrade policy %q (want block|drop-new|drop-oldest)", s)
}

// ErrSpoolFull is returned by appends rejected under the Block policy (or
// when no space can be reclaimed under DropOldestUnacked). It matches
// wal.IsNoSpace: retryable-degraded, not fatal — capture should stall and
// retry, not crash.
var ErrSpoolFull = fmt.Errorf("spool: full: %w", wal.ErrNoSpace)

// ErrShed is returned when a frame was intentionally dropped by the
// degradation policy instead of stored. Callers count it and move on; it
// is not a failure of the spool.
var ErrShed = errors.New("spool: frame shed by degradation policy")

// Options configures a Spool. Only Dir is required.
type Options struct {
	// Dir is the spool directory (created if missing).
	Dir string
	// Sync is the WAL fsync policy. Default wal.SyncInterval: appends stay
	// at memory speed and a crash loses at most SyncInterval of frames
	// from the *page cache flush* point of view — a process crash loses
	// nothing, a power loss at most that window.
	Sync wal.SyncPolicy
	// SyncInterval is the background fsync period. Default 100 ms.
	SyncInterval time.Duration
	// SegmentSize is the WAL segment rotation size. Default 8 MiB.
	SegmentSize int64
	// PersistEvery persists the ack mark after this many floor advances
	// (and always on Close). Default 64. Redelivery after a crash covers
	// the frames acked since the last persist; deduplication absorbs them.
	PersistEvery int
	// Quota caps the spool's on-disk bytes (0 = unlimited). Crossing
	// HighWatermark×Quota enters degraded mode (Policy applies) until
	// usage falls back under LowWatermark×Quota.
	Quota int64
	// HighWatermark and LowWatermark are fractions of Quota bounding the
	// degraded-mode hysteresis. Defaults 0.9 and 0.7.
	HighWatermark float64
	LowWatermark  float64
	// Policy selects degraded-mode behavior. Default Block.
	Policy DegradePolicy
}

const markFile = "ack.mark"

// Spool is a disk-backed frame queue. All methods are safe for concurrent
// use.
type Spool struct {
	log          *wal.Log
	markPath     string
	persistEvery int
	sync         wal.SyncPolicy

	mu          sync.Mutex
	floor       uint64 // every seq <= floor is acked (or shed)
	acked       map[uint64]struct{}
	lowPrio     map[uint64]struct{} // QoS 0 frames above the floor (shed accounting)
	lastPersist uint64
	syncedUpTo  uint64 // highest seq known fsynced (publish barrier)
	closed      bool

	// Degradation state (quota > 0 only).
	quota    int64
	hiBytes  int64
	loBytes  int64
	policy   DegradePolicy
	degraded bool

	// Degradation + durability observability (guarded by mu).
	degradedEvents  uint64
	shedQoS0        uint64
	shedHigher      uint64
	blockedAppends  uint64
	markPersistErrs uint64
	lastMarkErr     error

	ackCh chan struct{} // coalesced ack-progress signal
}

// Stats is a snapshot of the spool's degradation and durability health.
type Stats struct {
	UsedBytes  int64 `json:"used_bytes"`
	QuotaBytes int64 `json:"quota_bytes,omitempty"`
	// Degraded is true while usage sits between the watermarks with the
	// policy active.
	Degraded bool   `json:"degraded"`
	Policy   string `json:"policy"`
	// DegradedEvents counts high-watermark crossings.
	DegradedEvents uint64 `json:"degraded_events"`
	// ShedQoS0/ShedHigher count frames dropped by policy, per QoS class.
	ShedQoS0   uint64 `json:"shed_qos0"`
	ShedHigher uint64 `json:"shed_higher"`
	// BlockedAppends counts appends rejected with ErrSpoolFull.
	BlockedAppends uint64 `json:"blocked_appends"`
	// MarkPersistErrors/LastMarkPersistError surface ack-mark write
	// failures (degraded durability: redelivery windows grow).
	MarkPersistErrors    uint64 `json:"mark_persist_errors"`
	LastMarkPersistError string `json:"last_mark_persist_error,omitempty"`
	// WALSyncErrors/LastWALSyncError surface background fsync failures.
	WALSyncErrors    uint64 `json:"wal_sync_errors"`
	LastWALSyncError string `json:"last_wal_sync_error,omitempty"`
}

// Stats snapshots degradation and durability counters.
func (s *Spool) Stats() Stats {
	used := s.log.UsedBytes()
	syncErrs, lastSync := s.log.SyncErrors()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		UsedBytes:         used,
		QuotaBytes:        s.quota,
		Degraded:          s.degraded,
		Policy:            s.policy.String(),
		DegradedEvents:    s.degradedEvents,
		ShedQoS0:          s.shedQoS0,
		ShedHigher:        s.shedHigher,
		BlockedAppends:    s.blockedAppends,
		MarkPersistErrors: s.markPersistErrs,
		WALSyncErrors:     syncErrs,
		LastWALSyncError:  lastSync,
	}
	if s.lastMarkErr != nil {
		st.LastMarkPersistError = s.lastMarkErr.Error()
	}
	return st
}

// Open opens (or creates) the spool in opts.Dir, recovering WAL and ack
// mark state.
func Open(opts Options) (*Spool, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("spool: Dir required")
	}
	if opts.PersistEvery <= 0 {
		opts.PersistEvery = 64
	}
	if opts.HighWatermark <= 0 || opts.HighWatermark > 1 {
		opts.HighWatermark = 0.9
	}
	if opts.LowWatermark <= 0 || opts.LowWatermark >= opts.HighWatermark {
		opts.LowWatermark = opts.HighWatermark * 7 / 9
	}
	l, err := wal.Open(filepath.Join(opts.Dir, "wal"), wal.Options{
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
		SegmentSize:  opts.SegmentSize,
		Quota:        opts.Quota,
	})
	if err != nil {
		return nil, err
	}
	s := &Spool{
		log:          l,
		markPath:     filepath.Join(opts.Dir, markFile),
		persistEvery: opts.PersistEvery,
		sync:         opts.Sync,
		acked:        map[uint64]struct{}{},
		lowPrio:      map[uint64]struct{}{},
		policy:       opts.Policy,
		ackCh:        make(chan struct{}, 1),
	}
	s.setQuotaLocked(opts.Quota, opts.HighWatermark, opts.LowWatermark)
	floor, err := readMark(s.markPath)
	if err != nil {
		l.Close()
		return nil, err
	}
	s.floor = floor
	// Segments are only reclaimed after the mark covering them persisted,
	// but a crash can still leave the mark behind a truncated front (the
	// reverse is prevented by persist-before-truncate). Trust whichever is
	// further along.
	if first := l.FirstSeq(); first > 0 && first-1 > s.floor {
		s.floor = first - 1
	}
	s.lastPersist = s.floor
	// Never reuse a frame id: if the mark outran a lossy log tail, push
	// the sequence space past everything possibly already published.
	l.Reserve(s.floor)
	return s, nil
}

func readMark(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("spool: read mark: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spool: parse mark %q: %w", data, err)
	}
	return v, nil
}

// setQuotaLocked installs a quota and derives watermark byte bounds.
// Callers must not hold s.mu (it takes it).
func (s *Spool) setQuotaLocked(quota int64, hi, lo float64) {
	s.mu.Lock()
	s.quota = quota
	s.hiBytes = int64(float64(quota) * hi)
	s.loBytes = int64(float64(quota) * lo)
	s.mu.Unlock()
	s.log.SetQuota(quota)
}

// SetQuota adjusts the byte quota at runtime with default watermarks —
// the knob the chaos quota injector turns to simulate a partition filling
// up and being freed.
func (s *Spool) SetQuota(bytes int64) { s.setQuotaLocked(bytes, 0.9, 0.7) }

// UsedBytes reports the spool's current on-disk usage.
func (s *Spool) UsedBytes() int64 { return s.log.UsedBytes() }

// Quota reports the current byte quota (0 = unlimited).
func (s *Spool) Quota() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quota
}

// persistMarkLocked writes the floor atomically. Callers hold s.mu.
// Failures are counted (see Stats) so a broken mark file — which silently
// widens the crash-redelivery window — is observable.
func (s *Spool) persistMarkLocked() error {
	floor := s.floor
	err := wal.WriteFileAtomic(s.markPath, func(w io.Writer) error {
		_, werr := fmt.Fprintf(w, "%d\n", floor)
		return werr
	})
	if err != nil {
		s.markPersistErrs++
		s.lastMarkErr = err
		return fmt.Errorf("spool: persist mark: %w", err)
	}
	s.lastPersist = floor
	s.lastMarkErr = nil
	return nil
}

// AppendWith appends one frame built by build, which receives the durable
// sequence number the frame will carry (stamp it into the frame with
// wire.AppendFrameSeq). The append is atomic with the sequence
// assignment. Equivalent to AppendFrame with qos0=false: the frame is
// treated as precious under the degradation policies.
func (s *Spool) AppendWith(build func(seq uint64) ([]byte, error)) (uint64, error) {
	return s.AppendFrame(false, build)
}

// AppendFrame appends one frame, applying the degradation policy when the
// spool is over its quota watermarks. qos0 marks the frame sheddable
// first: under DropNew a degraded spool sheds QoS 0 frames at the high
// watermark while still admitting QoS >= 1 frames until the hard quota.
//
// Returns ErrShed when the policy dropped the frame (count it, move on),
// ErrSpoolFull (or another wal.IsNoSpace error) when the caller should
// stall and retry — both retryable-degraded, never fatal.
func (s *Spool) AppendFrame(qos0 bool, build func(seq uint64) ([]byte, error)) (uint64, error) {
	if err := s.admit(qos0); err != nil {
		return 0, err
	}
	seq, err := s.log.AppendWith(build)
	if err != nil && wal.IsNoSpace(err) {
		s.mu.Lock()
		policy := s.policy
		s.mu.Unlock()
		switch policy {
		case DropNew:
			s.countShed(qos0, 1)
			return 0, ErrShed
		case DropOldestUnacked:
			// Reclaim the oldest sealed segments and retry once; if the
			// log still cannot take the frame (everything lives in the
			// active segment) degrade to stalling.
			s.shedOldest()
			seq, err = s.log.AppendWith(build)
			if err != nil && wal.IsNoSpace(err) {
				s.noteBlocked()
				return 0, fmt.Errorf("%w (nothing left to shed)", ErrSpoolFull)
			}
		default: // Block
			s.noteBlocked()
			return 0, err
		}
	}
	if err == nil && qos0 {
		s.mu.Lock()
		if seq > s.floor {
			s.lowPrio[seq] = struct{}{}
		}
		s.mu.Unlock()
	}
	return seq, err
}

// admit applies watermark hysteresis and the policy's admission decision
// before the frame touches the WAL.
func (s *Spool) admit(qos0 bool) error {
	s.mu.Lock()
	if s.quota <= 0 {
		s.mu.Unlock()
		return nil
	}
	hi, lo := s.hiBytes, s.loBytes
	s.mu.Unlock()
	used := s.log.UsedBytes()
	s.mu.Lock()
	if !s.degraded && used >= hi {
		s.degraded = true
		s.degradedEvents++
	} else if s.degraded && used <= lo {
		s.degraded = false
	}
	if !s.degraded {
		s.mu.Unlock()
		return nil
	}
	policy := s.policy
	switch policy {
	case Block:
		s.blockedAppends++
		s.mu.Unlock()
		return ErrSpoolFull
	case DropNew:
		if qos0 {
			s.shedQoS0++
			s.mu.Unlock()
			return ErrShed
		}
		s.mu.Unlock()
		return nil
	case DropOldestUnacked:
		s.mu.Unlock()
		s.shedOldest()
		return nil
	}
	s.mu.Unlock()
	return nil
}

func (s *Spool) countShed(qos0 bool, n uint64) {
	s.mu.Lock()
	if qos0 {
		s.shedQoS0 += n
	} else {
		s.shedHigher += n
	}
	s.mu.Unlock()
}

func (s *Spool) noteBlocked() {
	s.mu.Lock()
	s.blockedAppends++
	s.mu.Unlock()
}

// shedOldest advances the floor over whole sealed WAL segments — the only
// reclaimable unit — until usage falls to the low watermark or only the
// active segment remains. Acked frames in the shed prefix are not loss
// (already applied server-side); unacked ones are counted per QoS class.
// The mark is persisted before each truncation (the persist-before-
// truncate invariant), and the floor only ever advances, so an acked
// frame can never reappear as unacked after a crash.
func (s *Spool) shedOldest() {
	for {
		if s.log.UsedBytes() <= s.loBytesNow() {
			return
		}
		first, last, ok := s.log.OldestSealed()
		if !ok {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		if s.floor < last {
			start := s.floor + 1
			if start < first {
				start = first // quarantine gap: nothing stored below first
			}
			for seq := start; seq <= last; seq++ {
				if _, acked := s.acked[seq]; acked {
					delete(s.acked, seq)
				} else if _, low := s.lowPrio[seq]; low {
					s.shedQoS0++
				} else {
					s.shedHigher++
				}
				delete(s.lowPrio, seq)
			}
			s.floor = last
		}
		err := s.persistMarkLocked()
		s.mu.Unlock()
		if err != nil {
			// Without a persisted mark covering the truncation, deleting
			// segments would violate persist-before-truncate; stop here.
			return
		}
		if terr := s.log.TruncateFront(last); terr != nil {
			return
		}
		select {
		case s.ackCh <- struct{}{}:
		default:
		}
	}
}

func (s *Spool) loBytesNow() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loBytes
}

// Ack marks one frame as durably applied end-to-end. When the run above
// the floor becomes contiguous the floor advances, the mark is persisted
// every PersistEvery advances, and fully-acked segments are reclaimed.
func (s *Spool) Ack(seq uint64) error {
	s.mu.Lock()
	if s.closed || seq <= s.floor {
		s.mu.Unlock()
		return nil
	}
	if _, dup := s.acked[seq]; dup {
		s.mu.Unlock()
		return nil
	}
	s.acked[seq] = struct{}{}
	advanced := false
	for {
		if _, ok := s.acked[s.floor+1]; !ok {
			break
		}
		delete(s.acked, s.floor+1)
		s.floor++
		delete(s.lowPrio, s.floor)
		advanced = true
	}
	var err error
	var reclaimTo uint64
	if advanced && s.floor-s.lastPersist >= uint64(s.persistEvery) {
		// Persist before reclaiming: the mark must always cover every
		// truncated segment, or a crash would leave the floor pointing at
		// deleted frames.
		if err = s.persistMarkLocked(); err == nil {
			reclaimTo = s.floor
		}
	}
	s.mu.Unlock()
	if reclaimTo > 0 {
		if terr := s.log.TruncateFront(reclaimTo); err == nil {
			err = terr
		}
	}
	if advanced {
		select {
		case s.ackCh <- struct{}{}:
		default:
		}
	}
	return err
}

// EnsureSynced is the publish barrier: it guarantees the frame with the
// given sequence number is on stable storage before the caller transmits
// it. Without it, a power loss could drop an unsynced WAL tail whose
// frames were already published (and dedup-marked server-side); their
// sequence numbers would then be reassigned to new frames on reopen, and
// the server would silently swallow those as redeliveries. With the
// barrier, every published sequence number is durable, so the persisted
// ack mark can never outrun the log and sequence reuse is impossible.
//
// No-op under wal.SyncOff: that policy explicitly trades power-loss
// safety away. Under SyncEach the data is already durable and the call
// is nearly free; under SyncInterval it fsyncs only when the drainer
// outruns the background syncer.
func (s *Spool) EnsureSynced(seq uint64) error {
	if s.sync == wal.SyncOff {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.syncedUpTo {
		return nil
	}
	last := s.log.LastSeq() // everything appended so far is covered by Sync
	if err := s.log.Sync(); err != nil {
		return err
	}
	s.syncedUpTo = last
	return nil
}

// Acked reports whether seq is already acknowledged.
func (s *Spool) Acked(seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.floor {
		return true
	}
	_, ok := s.acked[seq]
	return ok
}

// Floor returns the highest contiguously acknowledged sequence number.
func (s *Spool) Floor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floor
}

// LastSeq returns the last appended sequence number.
func (s *Spool) LastSeq() uint64 { return s.log.LastSeq() }

// Pending returns how many appended frames await acknowledgement.
func (s *Spool) Pending() uint64 {
	last := s.log.LastSeq()
	s.mu.Lock()
	defer s.mu.Unlock()
	if last <= s.floor {
		return 0
	}
	return last - s.floor - uint64(len(s.acked))
}

// Drained reports whether every appended frame is acknowledged.
func (s *Spool) Drained() bool { return s.Pending() == 0 }

// Notify signals appended frames (coalesced); AckSignal signals floor
// advances. Drain loops sleep on these instead of polling.
func (s *Spool) Notify() <-chan struct{}    { return s.log.Notify() }
func (s *Spool) AckSignal() <-chan struct{} { return s.ackCh }

// SyncMark persists the ack mark now (used on clean shutdown).
func (s *Spool) SyncMark() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.persistMarkLocked()
}

// Close persists the mark, syncs the WAL, and releases the spool. Spooled
// but unacked frames stay on disk for the next Open.
func (s *Spool) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.persistMarkLocked()
	s.closed = true
	s.mu.Unlock()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the spool without persisting the ack mark — the
// process-crash path used by recovery tests and Client.Abort. State on
// disk is exactly what a SIGKILL would have left.
func (s *Spool) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.log.Close()
}

// Reader iterates unacknowledged frames in sequence order, starting at
// the floor when created (or Reset). Frames acked while the reader was
// behind are skipped.
type Reader struct {
	s *Spool
	r *wal.Reader
}

// NewReader returns a reader positioned at the first unacked frame.
func (s *Spool) NewReader() *Reader {
	return &Reader{s: s, r: s.log.ReadFrom(s.Floor() + 1)}
}

// Reset repositions the reader at the first unacked frame — the
// redelivery path after a reconnect or an ack timeout.
func (r *Reader) Reset() { r.r.Seek(r.s.Floor() + 1) }

// Next appends the next unacked frame to buf and returns it with its
// sequence number; ok is false when the reader has caught up with the
// appended tail (sleep on Notify/AckSignal and retry).
func (r *Reader) Next(buf []byte) (seq uint64, frame []byte, ok bool, err error) {
	for {
		seq, frame, ok, err = r.r.Next(buf)
		if err != nil || !ok {
			return 0, frame, false, err
		}
		if r.s.Acked(seq) {
			buf = frame[:len(buf)]
			continue
		}
		return seq, frame, true, nil
	}
}

// Close releases the reader.
func (r *Reader) Close() { r.r.Close() }
