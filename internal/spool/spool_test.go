package spool

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/wal"
)

func appendFrames(t testing.TB, s *Spool, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		payload := fmt.Sprintf("frame-%05d", i)
		seq, err := s.AppendWith(func(seq uint64) ([]byte, error) {
			return []byte(fmt.Sprintf("%s@%d", payload, seq)), nil
		})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, want)
		}
	}
}

func drainAll(t testing.TB, s *Spool) map[uint64]string {
	t.Helper()
	r := s.NewReader()
	defer r.Close()
	out := map[uint64]string{}
	var buf []byte
	for {
		seq, frame, ok, err := r.Next(buf[:0])
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if !ok {
			return out
		}
		buf = frame
		out[seq] = string(frame)
	}
}

func TestSpoolAppendDrainAck(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendFrames(t, s, 0, 50)
	got := drainAll(t, s)
	if len(got) != 50 {
		t.Fatalf("drained %d frames, want 50", len(got))
	}
	if got[1] != "frame-00000@1" {
		t.Fatalf("frame 1 = %q", got[1])
	}
	for seq := uint64(1); seq <= 50; seq++ {
		if err := s.Ack(seq); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Drained() || s.Floor() != 50 {
		t.Fatalf("after full ack: drained=%v floor=%d", s.Drained(), s.Floor())
	}
}

func TestOutOfOrderAcksAdvanceFloorContiguously(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendFrames(t, s, 0, 10)
	for _, seq := range []uint64{3, 2, 5, 10} {
		if err := s.Ack(seq); err != nil {
			t.Fatal(err)
		}
	}
	if s.Floor() != 0 {
		t.Fatalf("floor = %d before seq 1 acked", s.Floor())
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", s.Pending())
	}
	if err := s.Ack(1); err != nil {
		t.Fatal(err)
	}
	if s.Floor() != 3 {
		t.Fatalf("floor = %d after 1..3 contiguous, want 3", s.Floor())
	}
	if err := s.Ack(4); err != nil {
		t.Fatal(err)
	}
	if s.Floor() != 5 {
		t.Fatalf("floor = %d, want 5", s.Floor())
	}
	// The reader skips acked frames (10) and yields only 6..9.
	got := drainAll(t, s)
	if len(got) != 4 {
		t.Fatalf("reader yielded %d frames, want 4: %v", len(got), got)
	}
	for _, seq := range []uint64{6, 7, 8, 9} {
		if _, ok := got[seq]; !ok {
			t.Fatalf("unacked frame %d not yielded", seq)
		}
	}
}

func TestReopenResumesAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendFrames(t, s, 0, 20)
	for seq := uint64(1); seq <= 12; seq++ {
		_ = s.Ack(seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Floor() != 12 {
		t.Fatalf("floor after reopen = %d, want 12", s2.Floor())
	}
	got := drainAll(t, s2)
	if len(got) != 8 {
		t.Fatalf("redelivery count = %d, want 8 (13..20)", len(got))
	}
	appendFrames(t, s2, 20, 5) // numbering resumes at 21
}

// TestCrashRedeliversUnpersistedAcks simulates a SIGKILL: acks beyond the
// last persisted mark are forgotten, so those frames are redelivered (the
// server's dedup absorbs them). Nothing below the persisted mark is.
func TestCrashRedeliversUnpersistedAcks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: wal.SyncOff, PersistEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	appendFrames(t, s, 0, 20)
	for seq := uint64(1); seq <= 8; seq++ {
		_ = s.Ack(seq) // mark persisted at floor 5 (PersistEvery), 6..8 volatile
	}
	s.Crash()

	s2, err := Open(Options{Dir: dir, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Floor() != 5 {
		t.Fatalf("floor after crash = %d, want 5 (last persisted)", s2.Floor())
	}
	got := drainAll(t, s2)
	if len(got) != 15 {
		t.Fatalf("redelivery count = %d, want 15 (6..20)", len(got))
	}
	if _, ok := got[6]; !ok {
		t.Fatal("frame 6 (acked but not persisted) must be redelivered")
	}
}

func TestSegmentReclaimBehindFloor(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: wal.SyncOff, SegmentSize: 256, PersistEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendFrames(t, s, 0, 200)
	before, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	for seq := uint64(1); seq <= 190; seq++ {
		if err := s.Ack(seq); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if len(after) >= len(before) {
		t.Fatalf("reclaim removed nothing: %d -> %d segments", len(before), len(after))
	}
	if got := drainAll(t, s); len(got) != 10 {
		t.Fatalf("pending after reclaim = %d, want 10", len(got))
	}
}

func TestSeqNeverReusedWhenMarkOutrunsWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: wal.SyncOff, PersistEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendFrames(t, s, 0, 10)
	for seq := uint64(1); seq <= 10; seq++ {
		_ = s.Ack(seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a lossy tail: delete the WAL entirely, keep the mark.
	files, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	for _, f := range files {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(Options{Dir: dir, Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	seq, err := s2.AppendWith(func(seq uint64) ([]byte, error) { return []byte("x"), nil })
	if err != nil {
		t.Fatal(err)
	}
	if seq <= 10 {
		t.Fatalf("sequence %d reused after WAL loss (would be deduped server-side)", seq)
	}
}

func TestAckSignalAndNotify(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendFrames(t, s, 0, 1)
	select {
	case <-s.Notify():
	case <-time.After(time.Second):
		t.Fatal("no append notification")
	}
	_ = s.Ack(1)
	select {
	case <-s.AckSignal():
	case <-time.After(time.Second):
		t.Fatal("no ack signal")
	}
}

// BenchmarkSpoolDrain measures the full disk round trip: append N frames,
// then read + ack (with mark persistence and segment reclaim) at the
// drain loop's cadence.
func BenchmarkSpoolDrain(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), Sync: wal.SyncInterval, SegmentSize: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := s.AppendWith(func(uint64) ([]byte, error) { return payload, nil }); err != nil {
			b.Fatal(err)
		}
	}
	r := s.NewReader()
	defer r.Close()
	var buf []byte
	for {
		seq, frame, ok, err := r.Next(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
		buf = frame
		if err := s.Ack(seq); err != nil {
			b.Fatal(err)
		}
	}
	if !s.Drained() {
		b.Fatal("not drained")
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "frames/s")
}
