// Package ctxutil holds small context helpers shared by the lifecycle
// paths (client/server/translator shutdown).
package ctxutil

import "context"

// Wait runs the blocking wait (typically a WaitGroup.Wait) and returns
// early with the context error if ctx expires first. With a nil or
// background context the wait runs inline with no extra goroutine; on
// early return the spawned waiter goroutine exits when the wait
// eventually completes.
func Wait(ctx context.Context, wait func()) error {
	if ctx == nil || ctx.Done() == nil {
		wait()
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() { wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
