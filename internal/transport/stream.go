package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxStreamFrame bounds a single MQTT-SN packet carried over a stream.
// The MQTT-SN 3-byte length format tops out at 64 KiB; a 1 MiB cap
// leaves headroom without letting a corrupt length prefix allocate
// unbounded memory.
const maxStreamFrame = 1 << 20

// TCP carries each MQTT-SN packet as a 4-byte big-endian
// length-prefixed frame over a TCP stream, presenting the familiar
// net.PacketConn face to broker and client. The listener side
// multiplexes all accepted connections into one PacketConn whose
// ReadFrom tags packets with the remote address and whose WriteTo
// routes to the matching connection — exactly the addressing model the
// broker already uses for UDP. Use it where datagrams are filtered or
// the underlay is lossy enough that kernel retransmission below the
// MQTT-SN QoS machinery is worth the head-of-line cost.
type TCP struct{}

// Listen implements Transport.
func (TCP) Listen(addr string) (net.PacketConn, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &streamListener{
		ln:         ln,
		inbox:      make(chan streamPacket, 4096),
		conns:      make(map[string]*serverConn),
		done:       make(chan struct{}),
		deadlineCh: make(chan struct{}),
	}
	go l.acceptLoop()
	return l, nil
}

// Dial implements Transport.
func (TCP) Dial(addr string) (net.PacketConn, net.Addr, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	sc := &streamClientConn{conn: c}
	return sc, c.RemoteAddr(), nil
}

type streamPacket struct {
	data []byte
	from net.Addr
}

// streamListener adapts a TCP listener plus its accepted connections to
// a single net.PacketConn.
type streamListener struct {
	ln    net.Listener
	inbox chan streamPacket

	mu         sync.Mutex
	conns      map[string]*serverConn
	closed     bool
	deadline   time.Time
	deadlineCh chan struct{}
	done       chan struct{}
}

func (l *streamListener) acceptLoop() {
	for {
		raw, err := l.ln.Accept()
		if err != nil {
			return
		}
		c := &serverConn{Conn: raw}
		key := raw.RemoteAddr().String()
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			raw.Close()
			return
		}
		l.conns[key] = c
		l.mu.Unlock()
		go l.readLoop(c, key)
	}
}

func (l *streamListener) readLoop(c *serverConn, key string) {
	defer func() {
		l.mu.Lock()
		if l.conns[key] == c {
			delete(l.conns, key)
		}
		l.mu.Unlock()
		c.Close()
	}()
	from := c.RemoteAddr()
	for {
		data, err := readFrame(c)
		if err != nil {
			return
		}
		select {
		case l.inbox <- streamPacket{data: data, from: from}:
		case <-l.done:
			return
		}
	}
}

func (l *streamListener) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return 0, nil, net.ErrClosed
		}
		deadline := l.deadline
		deadlineCh := l.deadlineCh
		l.mu.Unlock()

		var timer *time.Timer
		var timeout <-chan time.Time
		if !deadline.IsZero() {
			d := time.Until(deadline)
			if d <= 0 {
				select {
				case pkt := <-l.inbox:
					return copy(p, pkt.data), pkt.from, nil
				default:
					return 0, nil, errDeadline()
				}
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		select {
		case pkt := <-l.inbox:
			if timer != nil {
				timer.Stop()
			}
			return copy(p, pkt.data), pkt.from, nil
		case <-timeout:
			return 0, nil, errDeadline()
		case <-deadlineCh:
			if timer != nil {
				timer.Stop()
			}
		case <-l.done:
			if timer != nil {
				timer.Stop()
			}
			return 0, nil, net.ErrClosed
		}
	}
}

func (l *streamListener) WriteTo(p []byte, addr net.Addr) (int, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, net.ErrClosed
	}
	c := l.conns[addr.String()]
	l.mu.Unlock()
	if c == nil {
		// The peer hung up: swallow the packet like UDP to a dead port.
		return len(p), nil
	}
	c.wmu.Lock()
	err := writeFrame(c, p)
	c.wmu.Unlock()
	if err != nil {
		l.mu.Lock()
		if l.conns[addr.String()] == c {
			delete(l.conns, addr.String())
		}
		l.mu.Unlock()
		c.Close()
		return len(p), nil
	}
	return len(p), nil
}

func (l *streamListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.done)
	conns := make([]*serverConn, 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = map[string]*serverConn{}
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return l.ln.Close()
}

func (l *streamListener) LocalAddr() net.Addr { return l.ln.Addr() }

func (l *streamListener) SetDeadline(t time.Time) error { return l.SetReadDeadline(t) }

func (l *streamListener) SetReadDeadline(t time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return net.ErrClosed
	}
	l.deadline = t
	close(l.deadlineCh)
	l.deadlineCh = make(chan struct{})
	return nil
}

func (l *streamListener) SetWriteDeadline(t time.Time) error { return nil }

// serverConn pairs an accepted connection with a write mutex so
// concurrent broker goroutines can't interleave frame bytes.
type serverConn struct {
	net.Conn
	wmu sync.Mutex
}

// streamClientConn adapts one dialed TCP connection to a
// net.PacketConn. ReadFrom reports the gateway's address; WriteTo
// ignores its address argument (there is only one peer).
type streamClientConn struct {
	conn    net.Conn
	writeMu sync.Mutex
}

func (c *streamClientConn) ReadFrom(p []byte) (int, net.Addr, error) {
	data, err := readFrame(c.conn)
	if err != nil {
		return 0, nil, err
	}
	return copy(p, data), c.conn.RemoteAddr(), nil
}

func (c *streamClientConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := writeFrame(c.conn, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (c *streamClientConn) Close() error                       { return c.conn.Close() }
func (c *streamClientConn) LocalAddr() net.Addr                { return c.conn.LocalAddr() }
func (c *streamClientConn) SetDeadline(t time.Time) error      { return c.conn.SetDeadline(t) }
func (c *streamClientConn) SetReadDeadline(t time.Time) error  { return c.conn.SetReadDeadline(t) }
func (c *streamClientConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

func errDeadline() error { return deadlineErr }

var deadlineErr net.Error = &streamTimeout{}

type streamTimeout struct{}

func (*streamTimeout) Error() string   { return "transport: i/o timeout" }
func (*streamTimeout) Timeout() bool   { return true }
func (*streamTimeout) Temporary() bool { return true }

func writeFrame(w io.Writer, p []byte) error {
	buf := make([]byte, 4+len(p))
	binary.BigEndian.PutUint32(buf, uint32(len(p)))
	copy(buf[4:], p)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxStreamFrame {
		return nil, fmt.Errorf("transport: stream frame of %d bytes exceeds %d", n, maxStreamFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
