package transport

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Loopback is an in-process packet substrate: endpoints are registered
// in a shared table and datagrams are delivered over bounded channels.
// It mimics UDP semantics — unreliable (a full inbox drops the packet),
// unordered across senders, message-oriented — so broker and client
// retry machinery is exercised exactly as on the wire, but with zero
// syscalls and deterministic addressing. Create one per test or cluster
// with NewLoopback; endpoints from different Loopbacks cannot reach
// each other.
type Loopback struct {
	mu     sync.Mutex
	eps    map[string]*loopEndpoint
	nextID int
	// InboxDepth bounds each endpoint's receive queue (default 1024).
	// Writes to a full inbox are dropped, like UDP under pressure.
	InboxDepth int

	overflow atomic.Uint64
	deadDst  atomic.Uint64
}

// Drops reports how many datagrams the network discarded: overflow is
// writes to a full inbox, dead is writes to an endpoint that does not
// (or no longer) exists. Useful when a test needs to distinguish "the
// protocol reordered" from "the network lost packets and retransmission
// reordered".
func (l *Loopback) Drops() (overflow, dead uint64) {
	return l.overflow.Load(), l.deadDst.Load()
}

// NewLoopback creates an empty in-process packet network.
func NewLoopback() *Loopback {
	return &Loopback{eps: make(map[string]*loopEndpoint)}
}

type loopAddr string

func (a loopAddr) Network() string { return "loop" }
func (a loopAddr) String() string  { return string(a) }

type loopPacket struct {
	data []byte
	from net.Addr
}

type loopEndpoint struct {
	net  *Loopback
	addr loopAddr

	inbox chan loopPacket

	mu       sync.Mutex
	closed   bool
	deadline time.Time
	// deadlineCh is closed (and replaced) whenever the deadline moves,
	// waking blocked readers so they re-arm their timers.
	deadlineCh chan struct{}
	done       chan struct{}
}

// Listen implements Transport. An empty addr auto-generates a unique
// name ("loop-N").
func (l *Loopback) Listen(addr string) (net.PacketConn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if addr == "" {
		l.nextID++
		addr = fmt.Sprintf("loop-%d", l.nextID)
	}
	if _, ok := l.eps[addr]; ok {
		return nil, fmt.Errorf("transport: loopback address %q in use", addr)
	}
	ep := l.newEndpointLocked(addr)
	return ep, nil
}

// Dial implements Transport. The returned conn gets its own
// auto-generated address; addr must name a live listener (checked again
// on every write, so a listener may come up later or go away).
func (l *Loopback) Dial(addr string) (net.PacketConn, net.Addr, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	ep := l.newEndpointLocked(fmt.Sprintf("loop-%d", l.nextID))
	return ep, loopAddr(addr), nil
}

func (l *Loopback) newEndpointLocked(addr string) *loopEndpoint {
	depth := l.InboxDepth
	if depth <= 0 {
		depth = 1024
	}
	ep := &loopEndpoint{
		net:        l,
		addr:       loopAddr(addr),
		inbox:      make(chan loopPacket, depth),
		deadlineCh: make(chan struct{}),
		done:       make(chan struct{}),
	}
	l.eps[addr] = ep
	return ep
}

func (l *Loopback) lookup(addr string) *loopEndpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eps[addr]
}

func (l *Loopback) drop(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.eps, addr)
}

func (e *loopEndpoint) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return 0, nil, net.ErrClosed
		}
		deadline := e.deadline
		deadlineCh := e.deadlineCh
		e.mu.Unlock()

		var timer *time.Timer
		var timeout <-chan time.Time
		if !deadline.IsZero() {
			d := time.Until(deadline)
			if d <= 0 {
				// Drain a ready packet even at the deadline edge, like
				// the UDP stack does.
				select {
				case pkt := <-e.inbox:
					return copy(p, pkt.data), pkt.from, nil
				default:
					return 0, nil, os.ErrDeadlineExceeded
				}
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		select {
		case pkt := <-e.inbox:
			if timer != nil {
				timer.Stop()
			}
			return copy(p, pkt.data), pkt.from, nil
		case <-timeout:
			return 0, nil, os.ErrDeadlineExceeded
		case <-deadlineCh:
			// Deadline changed; loop and re-arm.
			if timer != nil {
				timer.Stop()
			}
		case <-e.done:
			if timer != nil {
				timer.Stop()
			}
			return 0, nil, net.ErrClosed
		}
	}
}

func (e *loopEndpoint) WriteTo(p []byte, addr net.Addr) (int, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	dst := e.net.lookup(addr.String())
	if dst == nil {
		// No such endpoint: silently dropped, as UDP to a dead port is
		// from the sender's point of view.
		e.net.deadDst.Add(1)
		return len(p), nil
	}
	pkt := loopPacket{data: append([]byte(nil), p...), from: e.addr}
	select {
	case dst.inbox <- pkt:
	default:
		// Full inbox behaves like a full socket buffer: drop.
		e.net.overflow.Add(1)
	}
	return len(p), nil
}

func (e *loopEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	e.mu.Unlock()
	e.net.drop(string(e.addr))
	return nil
}

func (e *loopEndpoint) LocalAddr() net.Addr { return e.addr }

func (e *loopEndpoint) SetDeadline(t time.Time) error { return e.SetReadDeadline(t) }

func (e *loopEndpoint) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return net.ErrClosed
	}
	e.deadline = t
	close(e.deadlineCh)
	e.deadlineCh = make(chan struct{})
	return nil
}

func (e *loopEndpoint) SetWriteDeadline(t time.Time) error { return nil }
