package transport_test

import (
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/transport"
)

// transports under test: every entry must carry a full broker+client
// QoS 2 session indistinguishably from UDP.
func testTransports(t *testing.T) map[string]transport.Transport {
	t.Helper()
	return map[string]transport.Transport{
		"udp":      transport.UDP{},
		"loopback": transport.NewLoopback(),
		"tcp":      transport.TCP{},
	}
}

// TestBrokerClientOverTransports runs subscribe + QoS 0/1/2 publish
// through a real broker over each transport.
func TestBrokerClientOverTransports(t *testing.T) {
	for name, tr := range testTransports(t) {
		tr := tr
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := broker.New(broker.Config{Transport: tr, RetryInterval: 200 * time.Millisecond})
			if err != nil {
				t.Fatalf("broker.New: %v", err)
			}
			defer b.Close()

			sub, err := mqttsn.NewClient(mqttsn.ClientConfig{
				ClientID: "sub", Gateway: b.Addr(), Transport: tr,
				RetryInterval: 200 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("sub client: %v", err)
			}
			defer sub.Close()
			if err := sub.Connect(); err != nil {
				t.Fatalf("sub connect: %v", err)
			}
			got := make(chan string, 16)
			if err := sub.Subscribe("prov/+/records", mqttsn.QoS2, func(topic string, payload []byte) {
				got <- topic + "=" + string(payload)
			}); err != nil {
				t.Fatalf("subscribe: %v", err)
			}

			pub, err := mqttsn.NewClient(mqttsn.ClientConfig{
				ClientID: "pub", Gateway: b.Addr(), Transport: tr,
				RetryInterval: 200 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("pub client: %v", err)
			}
			defer pub.Close()
			if err := pub.Connect(); err != nil {
				t.Fatalf("pub connect: %v", err)
			}
			for i, qos := range []mqttsn.QoS{mqttsn.QoS0, mqttsn.QoS1, mqttsn.QoS2} {
				if err := pub.Publish("prov/w1/records", []byte(fmt.Sprintf("p%d", i)), qos); err != nil {
					t.Fatalf("publish qos %d: %v", qos, err)
				}
			}
			for i := 0; i < 3; i++ {
				select {
				case m := <-got:
					want := "prov/w1/records=p" + fmt.Sprint(i)
					if m != want {
						t.Fatalf("message %d: got %q, want %q", i, m, want)
					}
				case <-time.After(5 * time.Second):
					t.Fatalf("timed out waiting for message %d", i)
				}
			}
		})
	}
}

// TestLoopbackSemantics pins the UDP-like behaviors the protocol
// machinery depends on: read deadlines, close unblocking reads, and
// silent drops to dead addresses.
func TestLoopbackSemantics(t *testing.T) {
	lb := transport.NewLoopback()
	srv, err := lb.Listen("")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	cli, gw, err := lb.Dial(srv.LocalAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	// Deadline in the past times out instead of blocking.
	if err := cli.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatalf("set deadline: %v", err)
	}
	buf := make([]byte, 64)
	if _, _, err := cli.ReadFrom(buf); err == nil {
		t.Fatal("expected deadline error, got packet")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("expected timeout net.Error, got %v", err)
	}
	if err := cli.SetReadDeadline(time.Time{}); err != nil {
		t.Fatalf("clear deadline: %v", err)
	}

	// Round trip client -> server -> client, with source addresses intact.
	if _, err := cli.WriteTo([]byte("ping"), gw); err != nil {
		t.Fatalf("write: %v", err)
	}
	n, from, err := srv.ReadFrom(buf)
	if err != nil {
		t.Fatalf("server read: %v", err)
	}
	if string(buf[:n]) != "ping" {
		t.Fatalf("server got %q", buf[:n])
	}
	if _, err := srv.WriteTo([]byte("pong"), from); err != nil {
		t.Fatalf("server write: %v", err)
	}
	n, from, err = cli.ReadFrom(buf)
	if err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(buf[:n]) != "pong" || from.String() != gw.String() {
		t.Fatalf("client got %q from %v (want pong from %v)", buf[:n], from, gw)
	}

	// Writing to a dead address reports success and drops, like UDP.
	srv.Close()
	if _, err := cli.WriteTo([]byte("lost"), gw); err != nil {
		t.Fatalf("write to closed listener: %v", err)
	}

	// Close unblocks a blocked reader.
	done := make(chan error, 1)
	go func() {
		_, _, err := cli.ReadFrom(buf)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cli.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error from read after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock ReadFrom")
	}
}

// TestStreamFraming pushes packets big enough to span several TCP
// segments and checks the framing keeps packet boundaries.
func TestStreamFraming(t *testing.T) {
	srv, err := transport.TCP{}.Listen("")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	cli, gw, err := transport.TCP{}.Dial(srv.LocalAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()

	payload := make([]byte, 200_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 3; i++ {
		if _, err := cli.WriteTo(payload, gw); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	buf := make([]byte, len(payload)+1)
	for i := 0; i < 3; i++ {
		n, _, err := srv.ReadFrom(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if n != len(payload) {
			t.Fatalf("read %d: got %d bytes, want %d", i, n, len(payload))
		}
		for j := 0; j < n; j++ {
			if buf[j] != byte(j) {
				t.Fatalf("read %d: corrupt byte at %d", i, j)
			}
		}
	}
}

// TestWrapTransportDelay checks netem shaping composes with a
// non-UDP transport: a dialed loopback conn sees the configured delay.
func TestWrapTransportDelay(t *testing.T) {
	if os.Getenv("CI") != "" && testing.Short() {
		t.Skip("timing-sensitive")
	}
	lb := transport.NewLoopback()
	shaped := netem.WrapTransport(lb, netem.Profile{Delay: 50 * time.Millisecond})
	srv, err := shaped.Listen("")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	cli, gw, err := shaped.Dial(srv.LocalAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cli.Close()
	start := time.Now()
	if _, err := cli.WriteTo([]byte("x"), gw); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 8)
	if _, _, err := srv.ReadFrom(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("delay not applied: packet arrived after %v", elapsed)
	}
}
