// Package transport abstracts the packet substrate the MQTT-SN broker
// and client speak over. Both sides of the protocol are written against
// net.PacketConn, so a Transport only has to produce listening and
// dialed PacketConns plus the address book that connects them:
//
//   - UDP is the production path (one datagram per MQTT-SN packet),
//   - Loopback is an in-process channel-backed substrate for fast,
//     deterministic tests and single-binary multi-node clusters,
//   - TCP carries each MQTT-SN packet as a length-prefixed frame over a
//     stream, for deployments where UDP is filtered or unreliable paths
//     need kernel retransmission underneath the MQTT-SN QoS machinery.
//
// Transports compose with netem.WrapTransport for shaped links and are
// interchangeable across internal/broker, internal/mqttsn,
// internal/cluster, and internal/translate.
package transport

import (
	"fmt"
	"net"
)

// Transport produces the packet endpoints a broker listens on and a
// client dials. Implementations must return PacketConns whose ReadFrom
// unblocks with an error after Close, and whose SetReadDeadline works
// (the mqttsn client's Close path depends on both).
type Transport interface {
	// Listen opens a server endpoint. An empty addr picks a transport
	// default (UDP/TCP: 127.0.0.1 with an ephemeral port; loopback: an
	// auto-generated name). The returned conn's LocalAddr().String() is
	// the address clients Dial.
	Listen(addr string) (net.PacketConn, error)

	// Dial opens a client endpoint talking to the listener at addr and
	// returns it together with the resolved gateway address packets
	// should be written to (and will appear to arrive from).
	Dial(addr string) (net.PacketConn, net.Addr, error)
}

// UDP is the default transport: plain datagrams, one per MQTT-SN
// packet. It preserves the exact pre-cluster behavior of the broker and
// client.
type UDP struct{}

// Listen implements Transport.
func (UDP) Listen(addr string) (net.PacketConn, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.ListenPacket("udp", addr)
}

// Dial implements Transport.
func (UDP) Dial(addr string) (net.PacketConn, net.Addr, error) {
	gw, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenPacket("udp", ":0")
	if err != nil {
		return nil, nil, err
	}
	return conn, gw, nil
}
