package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBackoffDelayDoublesAndCaps(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: 800 * time.Millisecond, Rand: func() float64 { return 1 - 1e-12 }}
	// With Rand ~1 the jitter returns ~d, so we can check the schedule.
	want := []time.Duration{100, 200, 400, 800, 800, 800}
	for i, w := range want {
		got := b.Delay(i)
		w *= time.Millisecond
		if got < w/2 || got > w {
			t.Fatalf("Delay(%d) = %v, want in [%v, %v]", i, got, w/2, w)
		}
	}
}

func TestBackoffJitterRange(t *testing.T) {
	b := Backoff{Min: time.Second, Max: time.Second}
	for i := 0; i < 100; i++ {
		d := b.Delay(0)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("jittered delay %v outside [500ms, 1s]", d)
		}
	}
}

func TestRetrySucceedsWithinBudget(t *testing.T) {
	calls := 0
	r := Retry{Budget: 5, Backoff: Backoff{Min: time.Microsecond, Max: time.Microsecond}}
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	r := Retry{Budget: 3, Backoff: Backoff{Min: time.Microsecond, Max: time.Microsecond}}
	err := r.Do(context.Background(), func(context.Context) error { calls++; return boom })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (budget is attempts, not retries)", calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	r := Retry{Budget: 10, Backoff: Backoff{Min: time.Microsecond, Max: time.Microsecond}}
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(errors.New("diverged"))
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !IsPermanent(err) {
		t.Fatalf("err %v not marked permanent", err)
	}
}

func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retry{Backoff: Backoff{Min: time.Hour, Max: time.Hour}}
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, func(context.Context) error { return errors.New("transient") })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not honor cancellation")
	}
}

func TestRetryHonorsRetryAfterFloor(t *testing.T) {
	var sleeps []time.Duration
	r := Retry{
		Budget:  2,
		Backoff: Backoff{Min: time.Microsecond, Max: time.Microsecond},
		OnRetry: func(_ int, _ error, sleep time.Duration) { sleeps = append(sleeps, sleep) },
	}
	after := 5 * time.Millisecond
	_ = r.Do(context.Background(), func(context.Context) error {
		return &RetryAfterError{After: after, Err: errors.New("congestion")}
	})
	if len(sleeps) != 1 {
		t.Fatalf("sleeps = %v, want one scheduled retry", sleeps)
	}
	if sleeps[0] < after {
		t.Fatalf("sleep %v below server retry-after floor %v", sleeps[0], after)
	}
}

func TestBreakerOpensAtThresholdAndProbes(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 3, Cooldown: time.Minute, now: func() time.Time { return now }}
	boom := errors.New("down")
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(boom)
	}
	if b.State() != Open {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("breaker did not admit probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second concurrent probe")
	}

	// Failed probe re-opens and restarts the cooldown.
	b.Record(boom)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker admitted a call right after a failed probe")
	}

	// Successful probe closes.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a call")
	}
	st := b.Stats()
	if st.Trips != 2 {
		t.Fatalf("trips = %d, want 2", st.Trips)
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := &Breaker{Threshold: 2, Cooldown: time.Millisecond}
	boom := errors.New("down")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if j%3 == 0 {
						b.Record(boom)
					} else {
						b.Record(nil)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	_ = b.Stats()
}

func TestRetryWithBreakerSkipsWhileOpen(t *testing.T) {
	b := &Breaker{Threshold: 1, Cooldown: time.Hour}
	calls := 0
	r := Retry{Budget: 4, Backoff: Backoff{Min: time.Microsecond, Max: time.Microsecond}, Breaker: b}
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return errors.New("down")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (breaker should fail fast after first failure)", calls)
	}
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want budget exhausted wrapping ErrOpen", err)
	}
}
