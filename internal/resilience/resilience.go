// Package resilience provides the retry/backoff/circuit-breaker policies
// shared by every component that talks to something that can fail: the
// edge spool drainer reconnecting to the broker, the replica follower
// reconnecting to the primary, and the DfAnalyzer HTTP target posting to
// the store. Before this package each of those hand-rolled its own
// backoff with subtly different jitter and reset semantics; unifying them
// makes degraded-mode behavior predictable and testable in one place.
//
// Three pieces compose:
//
//   - Backoff: jittered exponential delay schedule, pure (no state).
//   - Retry: a budgeted retry loop around an operation, sleeping the
//     backoff schedule between attempts and honoring context cancel.
//   - Breaker: a three-state circuit breaker (closed / open / half-open
//     probe) that stops hammering a dead dependency and cheaply detects
//     recovery with a single probe.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Backoff computes jittered exponential delays. The zero value is not
// useful; fill Min and Max. Delay(attempt) grows Min·2^attempt capped at
// Max, then jitters uniformly over [d/2, d] — the same "decorrelated
// half-window" jitter the spool drainer always used, which keeps a herd
// of reconnecting devices spread over half the nominal delay.
type Backoff struct {
	Min time.Duration // first-retry delay (required)
	Max time.Duration // cap on the doubled delay (required)

	// Rand optionally overrides the jitter source with a deterministic
	// one for tests. It must return a value in [0, 1).
	Rand func() float64
}

// Delay returns the jittered sleep before retry number attempt (0-based:
// attempt 0 is the delay after the first failure).
func (b Backoff) Delay(attempt int) time.Duration {
	d := b.Min
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	max := b.Max
	if max < d {
		max = d
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max || d <= 0 { // d <= 0 guards overflow
			d = max
			break
		}
	}
	return b.jitter(d)
}

// jitter maps d to a uniform value in [d/2, d].
func (b Backoff) jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	u := b.Rand
	if u == nil {
		u = rand.Float64
	}
	half := d / 2
	return half + time.Duration(u()*float64(d-half))
}

// Permanent wraps err to mark it non-retryable: Retry.Do returns it
// immediately instead of burning budget on an error that cannot heal
// (e.g. a replica rejected as diverged, or a 4xx other than 409/429).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryAfterError carries a server-suggested delay (e.g. a broker CONNACK
// congestion rejection). Retry.Do sleeps at least this long — jittered up,
// never down, so a herd told "come back in 2s" does not return in
// lockstep — before the next attempt.
type RetryAfterError struct {
	After time.Duration
	Err   error
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}
func (e *RetryAfterError) Unwrap() error { return e.Err }

// ErrBudgetExhausted wraps the last attempt's error when a bounded Retry
// runs out of attempts.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// Retry runs an operation with budgeted, backoff-spaced attempts.
type Retry struct {
	// Budget bounds total attempts (not retries): Budget 3 means the op
	// runs at most 3 times. 0 or negative means retry until the context
	// is canceled.
	Budget  int
	Backoff Backoff
	// Breaker, when set, gates every attempt: while the breaker is open
	// the attempt is skipped and counted as a failed (retryable) try,
	// and every real attempt's outcome is recorded into the breaker.
	Breaker *Breaker
	// OnRetry, when set, observes each scheduled retry: the attempt
	// number just failed (0-based), its error, and the sleep chosen.
	// Used to surface backoff state in stats.
	OnRetry func(attempt int, err error, sleep time.Duration)
}

// Do runs op until it succeeds, returns a Permanent error, the budget is
// exhausted, or ctx is done. The error returned is the operation's last
// error (wrapped in ErrBudgetExhausted when the budget ran out), or
// ctx.Err() on cancellation.
func (r Retry) Do(ctx context.Context, op func(ctx context.Context) error) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		if r.Breaker != nil && !r.Breaker.Allow() {
			err = ErrOpen
		} else {
			err = op(ctx)
			if r.Breaker != nil {
				r.Breaker.Record(err)
			}
		}
		if err == nil {
			return nil
		}
		if IsPermanent(err) {
			return err
		}
		if r.Budget > 0 && attempt+1 >= r.Budget {
			return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, r.Budget, err)
		}
		sleep := r.Backoff.Delay(attempt)
		var ra *RetryAfterError
		if errors.As(err, &ra) && ra.After > 0 {
			// Honor the server's ask as a floor, with upward jitter of
			// half the window so rejected clients don't re-arrive at once.
			min := ra.After + r.Backoff.jitter(ra.After) - ra.After/2
			if sleep < min {
				sleep = min
			}
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt, err, sleep)
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// Breaker states.
type State int32

const (
	Closed   State = iota // normal operation
	Open                  // failing fast; dependency presumed down
	HalfOpen              // cooldown elapsed; one probe in flight
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// ErrOpen is returned (or recorded as the attempt error) when the breaker
// is open and the call was not attempted.
var ErrOpen = errors.New("resilience: circuit breaker open")

// Breaker is a three-state circuit breaker. Closed counts consecutive
// failures; at Threshold it opens. Open fails fast until Cooldown
// elapses, then admits exactly one probe (half-open). A successful probe
// closes the breaker; a failed one re-opens it and restarts the cooldown.
// All methods are safe for concurrent use.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	// Defaults to 5.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// probe. Defaults to 5s.
	Cooldown time.Duration
	// now is stubbed in tests.
	now func() time.Time

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool

	// lifetime counters for stats
	trips     uint64
	rejected  uint64
	lastError error
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 5 * time.Second
}

// Allow reports whether a call may proceed now. In the open state it
// returns false until the cooldown has elapsed, then transitions to
// half-open and admits a single probe; further callers are rejected until
// that probe's outcome is recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			b.rejected++
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			b.rejected++
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Record reports the outcome of a call previously admitted by Allow.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = Closed
		b.failures = 0
		b.probing = false
		b.lastError = nil
		return
	}
	b.lastError = err
	switch b.state {
	case HalfOpen:
		// Failed probe: back to open, restart the cooldown.
		b.state = Open
		b.openedAt = b.clock()
		b.probing = false
		b.trips++
	case Closed:
		b.failures++
		if b.failures >= b.threshold() {
			b.state = Open
			b.openedAt = b.clock()
			b.trips++
		}
	case Open:
		// A straggler call admitted before the trip finished; stay open.
	}
}

// State returns the breaker's current state (open may lazily report
// half-open only on the next Allow; State is a diagnostic snapshot).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats is a snapshot of breaker activity for observability surfaces.
type BreakerStats struct {
	State    string `json:"state"`
	Failures int    `json:"consecutive_failures"`
	Trips    uint64 `json:"trips"`
	Rejected uint64 `json:"rejected"`
	LastErr  string `json:"last_error,omitempty"`
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerStats{
		State:    b.state.String(),
		Failures: b.failures,
		Trips:    b.trips,
		Rejected: b.rejected,
	}
	if b.lastError != nil {
		s.LastErr = b.lastError.Error()
	}
	return s
}
