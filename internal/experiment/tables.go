package experiment

import (
	"fmt"
	"time"

	"github.com/provlight/provlight/internal/device"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/stats"
	"github.com/provlight/provlight/internal/workload"
)

// durations is the Table I task-duration axis.
var durations = []time.Duration{
	500 * time.Millisecond, time.Second, 3500 * time.Millisecond, 5 * time.Second,
}

// groupSizes is the Tables III/VIII grouping axis.
var groupSizes = []int{0, 10, 20, 50}

func wl(attrs int, dur time.Duration) workload.Config {
	return workload.Config{
		ChainedTransformations: 5,
		Tasks:                  100,
		AttributesPerTask:      attrs,
		TaskDuration:           dur,
	}
}

// TableResult is one regenerated table or figure: the formatted text plus
// the structured cells for programmatic checks.
type TableResult struct {
	ID    string
	Table *stats.Table
	Cells []Result
}

// edgeRun builds the default edge-device run config.
func edgeRun(sys System, w workload.Config) RunConfig {
	return RunConfig{
		System: sys, Workload: w,
		Device: device.A8M3, Link: netem.GigabitEdge,
		Repetitions: 10, Seed: 42,
	}
}

// TableII reproduces "Capture overhead of ProvLake and DfAnalyzer" on the
// edge: {10,100} attributes x {0.5,1,3.5,5} s task durations.
func TableII() TableResult {
	res := TableResult{ID: "Table II"}
	res.Table = stats.NewTable(
		"Table II: Capture overhead of ProvLake and DfAnalyzer (IoT/Edge, 1 Gbit)",
		"attrs/task", "system", "0.5s", "1s", "3.5s", "5s")
	for _, attrs := range []int{10, 100} {
		for _, sys := range []System{ProvLake, DfAnalyzer} {
			row := []string{fmt.Sprint(attrs), string(sys)}
			for _, d := range durations {
				r := Run(edgeRun(sys, wl(attrs, d)))
				res.Cells = append(res.Cells, r)
				row = append(row, r.Overhead.PercentString())
			}
			res.Table.AddRow(row...)
		}
	}
	return res
}

// TableIII reproduces "ProvLake: impact of bandwidth and grouping strategy
// on the capture overhead".
func TableIII() TableResult {
	return groupingTable("Table III", ProvLake)
}

// TableVIII reproduces "ProvLight: impact of bandwidth and grouping
// strategy on the capture overhead".
func TableVIII() TableResult {
	return groupingTable("Table VIII", ProvLight)
}

func groupingTable(id string, sys System) TableResult {
	res := TableResult{ID: id}
	res.Table = stats.NewTable(
		fmt.Sprintf("%s: %s, impact of bandwidth and grouping (100 attrs)", id, sys),
		"# grouped", "1Gbit 0.5s", "1Gbit 1s", "25Kbit 0.5s", "25Kbit 1s")
	for _, g := range groupSizes {
		row := []string{fmt.Sprint(g)}
		for _, link := range []netem.Link{netem.GigabitEdge, netem.Constrained25Kbit} {
			for _, d := range []time.Duration{500 * time.Millisecond, time.Second} {
				cfg := edgeRun(sys, wl(100, d))
				cfg.Link = link
				cfg.GroupSize = g
				r := Run(cfg)
				res.Cells = append(res.Cells, r)
				row = append(row, r.Overhead.PercentString())
			}
		}
		// Reorder: the paper groups by bandwidth first.
		res.Table.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	return res
}

// TableVII reproduces "ProvLight: capture overhead in IoT/Edge devices".
func TableVII() TableResult {
	res := TableResult{ID: "Table VII"}
	res.Table = stats.NewTable(
		"Table VII: ProvLight capture overhead (IoT/Edge, 1 Gbit)",
		"attrs/task", "0.5s", "1s", "3.5s", "5s")
	for _, attrs := range []int{10, 100} {
		row := []string{fmt.Sprint(attrs)}
		for _, d := range durations {
			r := Run(edgeRun(ProvLight, wl(attrs, d)))
			res.Cells = append(res.Cells, r)
			row = append(row, r.Overhead.PercentString())
		}
		res.Table.AddRow(row...)
	}
	return res
}

// TableIX reproduces the ProvLight scalability analysis: 8..64 devices
// capturing in parallel (0.5 s tasks, 100 attributes).
func TableIX() TableResult {
	res := TableResult{ID: "Table IX"}
	res.Table = stats.NewTable(
		"Table IX: ProvLight scalability analysis (0.5s tasks, 100 attrs)",
		"# devices", "capture overhead")
	for _, n := range []int{8, 16, 32, 64} {
		cfg := edgeRun(ProvLight, wl(100, 500*time.Millisecond))
		cfg.Devices = n
		cfg.Repetitions = 5 // 10x64 devices is slow; 5 reps keep CI tight
		r := Run(cfg)
		res.Cells = append(res.Cells, r)
		res.Table.AddRow(fmt.Sprint(n), r.Overhead.PercentString())
	}
	return res
}

// TableX reproduces "Capture overhead in Cloud servers" (100 attributes).
func TableX() TableResult {
	res := TableResult{ID: "Table X"}
	res.Table = stats.NewTable(
		"Table X: Capture overhead in Cloud servers (100 attrs)",
		"system", "0.5s", "1s", "3.5s", "5s")
	for _, sys := range AllSystems {
		row := []string{string(sys)}
		for _, d := range durations {
			cfg := edgeRun(sys, wl(100, d))
			cfg.Device = device.CloudServer
			cfg.Link = netem.CloudLAN
			r := Run(cfg)
			res.Cells = append(res.Cells, r)
			row = append(row, r.Overhead.PercentString())
		}
		res.Table.AddRow(row...)
	}
	return res
}

// Figure6 reproduces the four resource-overhead bar charts (CPU, memory,
// network, power) for the reference workload (0.5 s tasks, 100 attrs).
func Figure6() TableResult {
	res := TableResult{ID: "Figure 6"}
	res.Table = stats.NewTable(
		"Figure 6: resource overheads (0.5s tasks, 100 attrs, IoT/Edge)",
		"system", "CPU %", "memory %", "network KB/s", "power W", "power overhead %")
	for _, sys := range AllSystems {
		r := Run(edgeRun(sys, wl(100, 500*time.Millisecond)))
		res.Cells = append(res.Cells, r)
		res.Table.AddRow(string(sys),
			fmt.Sprintf("%.1f", r.CPUPercent),
			fmt.Sprintf("%.1f", r.MemPercent),
			fmt.Sprintf("%.2f", r.NetKBps),
			fmt.Sprintf("%.3f", r.PowerW),
			fmt.Sprintf("%.2f", r.PowerOverheadPct),
		)
	}
	return res
}

// Ablations quantifies the §VII-A design choices: asynchronous MQTT-SN/UDP
// transport, payload compression, grouping, the simplified data model, and
// the QoS level.
func Ablations() TableResult {
	res := TableResult{ID: "Ablations"}
	res.Table = stats.NewTable(
		"Ablations: ProvLight design choices (0.5s tasks, 100 attrs, IoT/Edge)",
		"variant", "overhead", "CPU %", "network KB/s", "power overhead %")
	base := edgeRun(ProvLight, wl(100, 500*time.Millisecond))
	variants := []struct {
		name string
		mod  func(*RunConfig)
	}{
		{"ProvLight (paper defaults)", func(*RunConfig) {}},
		{"blocking HTTP/TCP transport", func(c *RunConfig) { c.ForceBlocking = true }},
		{"no payload compression", func(c *RunConfig) { c.DisableCompression = true }},
		{"grouping 10 ended tasks", func(c *RunConfig) { c.GroupSize = 10 }},
		{"grouping 50 ended tasks", func(c *RunConfig) { c.GroupSize = 50 }},
		{"full PROV-DM payloads", func(c *RunConfig) { c.FullProvDM = true }},
		{"QoS 0 (at most once)", func(c *RunConfig) { c.QoS = -1 }},
		{"QoS 1 (at least once)", func(c *RunConfig) { c.QoS = 1 }},
	}
	for _, v := range variants {
		cfg := base
		v.mod(&cfg)
		r := Run(cfg)
		res.Cells = append(res.Cells, r)
		res.Table.AddRow(v.name,
			r.Overhead.PercentString(),
			fmt.Sprintf("%.2f", r.CPUPercent),
			fmt.Sprintf("%.2f", r.NetKBps),
			fmt.Sprintf("%.2f", r.PowerOverheadPct),
		)
	}
	return res
}

// AllTables regenerates every table and figure in presentation order.
func AllTables() []TableResult {
	return []TableResult{
		TableII(), TableIII(), TableVII(), TableVIII(),
		TableIX(), TableX(), Figure6(), Ablations(),
	}
}
