package experiment

import (
	"testing"
	"time"

	"github.com/provlight/provlight/internal/device"
	"github.com/provlight/provlight/internal/netem"
)

// These tests assert the reproduction bands from DESIGN.md §4: the *shape*
// of every paper table/figure (who wins, by roughly what factor, where the
// crossovers fall), not the exact decimals.

func TestTableIIBaselinesHaveHighOverheadOnEdge(t *testing.T) {
	res := TableII()
	if len(res.Cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Overhead.Mean <= 0.03 {
			t.Errorf("%s %v: overhead %.2f%% should exceed the 3%% threshold (paper: high overhead everywhere)",
				c.Config.System, c.Config.Workload, c.Overhead.Mean*100)
		}
	}
	// 0.5s cells: ProvLake ~57%, DfAnalyzer ~40%.
	for _, c := range res.Cells {
		if c.Config.Workload.TaskDuration != 500*time.Millisecond {
			continue
		}
		switch c.Config.System {
		case ProvLake:
			if c.Overhead.Mean < 0.45 || c.Overhead.Mean > 0.70 {
				t.Errorf("ProvLake 0.5s overhead %.1f%%, want ~57%%", c.Overhead.Mean*100)
			}
		case DfAnalyzer:
			if c.Overhead.Mean < 0.30 || c.Overhead.Mean > 0.52 {
				t.Errorf("DfAnalyzer 0.5s overhead %.1f%%, want ~40%%", c.Overhead.Mean*100)
			}
		}
	}
}

func TestTableVIIProvLightLowOverheadEverywhere(t *testing.T) {
	res := TableVII()
	if len(res.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Overhead.Mean >= 0.03 {
			t.Errorf("ProvLight %v overhead %.2f%% should be < 3%%", c.Config.Workload, c.Overhead.Mean*100)
		}
		if c.Config.Workload.TaskDuration >= 3500*time.Millisecond && c.Overhead.Mean >= 0.005 {
			t.Errorf("ProvLight %v overhead %.2f%% should be < 0.5%% for long tasks",
				c.Config.Workload, c.Overhead.Mean*100)
		}
	}
}

func TestHeadlineSpeedups(t *testing.T) {
	// Paper abstract: ProvLight is 26-37x faster to capture and transmit.
	w := wl(100, 500*time.Millisecond)
	pl := Run(edgeRun(ProvLight, w)).Overhead.Mean
	plake := Run(edgeRun(ProvLake, w)).Overhead.Mean
	dfa := Run(edgeRun(DfAnalyzer, w)).Overhead.Mean
	if r := plake / pl; r < 26 || r > 50 {
		t.Errorf("ProvLake/ProvLight speedup = %.1fx, want ~37x (band 26-50)", r)
	}
	if r := dfa / pl; r < 18 || r > 37 {
		t.Errorf("DfAnalyzer/ProvLight speedup = %.1fx, want ~26x (band 18-37)", r)
	}
}

func TestTableIIIGroupingHelpsOnFastLinkOnly(t *testing.T) {
	res := TableIII()
	// Row layout: 4 group sizes x 4 columns (1Gbit 0.5s/1s, 25Kbit 0.5s/1s).
	byKey := map[[2]any]float64{}
	for _, c := range res.Cells {
		byKey[[2]any{c.Config.GroupSize, c.Config.Link.BandwidthBps}] = c.Overhead.Mean
	}
	// On 1 Gbit, grouping 50 brings ProvLake below 3%.
	if v := byKey[[2]any{50, int64(1e9)}]; v >= 0.03 {
		t.Errorf("ProvLake grouped-50 on 1Gbit = %.2f%%, want < 3%%", v*100)
	}
	// On 25 Kbit, every configuration stays above 43% (the paper's
	// takeaway motivating ProvLight).
	for _, g := range groupSizes {
		if v := byKey[[2]any{g, int64(25e3)}]; v <= 0.43 {
			t.Errorf("ProvLake group=%d on 25Kbit = %.1f%%, want > 43%%", g, v*100)
		}
	}
	// Grouping is monotone beneficial on the fast link.
	prev := 10.0
	for _, g := range groupSizes {
		v := byKey[[2]any{g, int64(1e9)}]
		if v > prev {
			t.Errorf("grouping %d increased overhead on 1Gbit: %.2f%% > %.2f%%", g, v*100, prev*100)
		}
		prev = v
	}
}

func TestTableVIIIProvLightImmuneToBandwidth(t *testing.T) {
	res := TableVIII()
	for _, c := range res.Cells {
		if c.Overhead.Mean >= 0.02 {
			t.Errorf("ProvLight group=%d bw=%d: %.2f%%, want < 2%%",
				c.Config.GroupSize, c.Config.Link.BandwidthBps, c.Overhead.Mean*100)
		}
	}
	// 25 Kbit within 0.3 points of 1 Gbit for matching cells.
	byKey := map[[3]any]float64{}
	for _, c := range res.Cells {
		byKey[[3]any{c.Config.GroupSize, c.Config.Link.BandwidthBps, c.Config.Workload.TaskDuration}] = c.Overhead.Mean
	}
	for _, g := range groupSizes {
		for _, d := range []time.Duration{500 * time.Millisecond, time.Second} {
			fast := byKey[[3]any{g, int64(1e9), d}]
			slow := byKey[[3]any{g, int64(25e3), d}]
			if diff := slow - fast; diff > 0.003 || diff < -0.003 {
				t.Errorf("group=%d dur=%v: 25Kbit %.2f%% vs 1Gbit %.2f%% differ too much",
					g, d, slow*100, fast*100)
			}
		}
	}
}

func TestTableIXScalabilityFlat(t *testing.T) {
	res := TableIX()
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	lo, hi := 1.0, 0.0
	for _, c := range res.Cells {
		v := c.Overhead.Mean
		if v >= 0.03 {
			t.Errorf("%d devices: overhead %.2f%% should stay < 3%%", c.Config.Devices, v*100)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 0.005 {
		t.Errorf("scalability spread %.2f points, want flat (< 0.5)", (hi-lo)*100)
	}
}

func TestTableXCloudAllLowProvLightFastest(t *testing.T) {
	res := TableX()
	means := map[System][]float64{}
	for _, c := range res.Cells {
		if c.Overhead.Mean >= 0.035 {
			t.Errorf("cloud %s %v: %.2f%%, want < 3.5%%", c.Config.System, c.Config.Workload, c.Overhead.Mean*100)
		}
		means[c.Config.System] = append(means[c.Config.System], c.Overhead.Mean)
	}
	for i := range means[ProvLight] {
		if means[ProvLight][i] >= means[DfAnalyzer][i] || means[ProvLight][i] >= means[ProvLake][i] {
			t.Errorf("cloud col %d: ProvLight %.2f%% not fastest (dfa %.2f%%, plake %.2f%%)",
				i, means[ProvLight][i]*100, means[DfAnalyzer][i]*100, means[ProvLake][i]*100)
		}
	}
	// Paper: ProvLight 7x / 5x faster than ProvLake / DfAnalyzer on cloud.
	if r := means[ProvLake][0] / means[ProvLight][0]; r < 4 || r > 10 {
		t.Errorf("cloud ProvLake/ProvLight = %.1fx, want ~7x", r)
	}
	if r := means[DfAnalyzer][0] / means[ProvLight][0]; r < 3.5 || r > 8 {
		t.Errorf("cloud DfAnalyzer/ProvLight = %.1fx, want ~5x", r)
	}
}

func TestFigure6ResourceBands(t *testing.T) {
	res := Figure6()
	by := map[System]Result{}
	for _, c := range res.Cells {
		by[c.Config.System] = c
	}
	pl, plake, dfa := by[ProvLight], by[ProvLake], by[DfAnalyzer]

	// Fig 6a: 5x / 7x less CPU.
	if r := plake.CPUPercent / pl.CPUPercent; r < 5 || r > 10 {
		t.Errorf("CPU ratio ProvLake/ProvLight = %.1fx, want ~7x", r)
	}
	if r := dfa.CPUPercent / pl.CPUPercent; r < 3.5 || r > 8 {
		t.Errorf("CPU ratio DfAnalyzer/ProvLight = %.1fx, want ~5x", r)
	}
	// Fig 6b: ~2x less memory, ProvLight < 4%.
	if pl.MemPercent >= 4 {
		t.Errorf("ProvLight memory %.1f%%, want < 4%%", pl.MemPercent)
	}
	if r := plake.MemPercent / pl.MemPercent; r < 1.6 || r > 2.6 {
		t.Errorf("memory ratio = %.2fx, want ~2x", r)
	}
	// Fig 6c: at least ~2x less network traffic.
	if r := plake.NetKBps / pl.NetKBps; r < 1.8 {
		t.Errorf("network ratio ProvLake/ProvLight = %.1fx, want >= 1.8x", r)
	}
	if r := dfa.NetKBps / pl.NetKBps; r < 1.8 {
		t.Errorf("network ratio DfAnalyzer/ProvLight = %.1fx, want >= 1.8x", r)
	}
	// Fig 6d: ProvLight < 3% power overhead; DfAnalyzer > ProvLake > ProvLight;
	// factors ~2.1x / 2.6x.
	if pl.PowerOverheadPct >= 3 {
		t.Errorf("ProvLight power overhead %.2f%%, want < 3%%", pl.PowerOverheadPct)
	}
	if !(dfa.PowerOverheadPct > plake.PowerOverheadPct && plake.PowerOverheadPct > pl.PowerOverheadPct) {
		t.Errorf("power order wrong: dfa %.2f, plake %.2f, pl %.2f",
			dfa.PowerOverheadPct, plake.PowerOverheadPct, pl.PowerOverheadPct)
	}
	if r := plake.PowerOverheadPct / pl.PowerOverheadPct; r < 1.6 || r > 3.0 {
		t.Errorf("power ratio ProvLake/ProvLight = %.1fx, want ~2.1x", r)
	}
	if r := dfa.PowerOverheadPct / pl.PowerOverheadPct; r < 1.8 || r > 3.5 {
		t.Errorf("power ratio DfAnalyzer/ProvLight = %.1fx, want ~2.6x", r)
	}
}

func TestAblations(t *testing.T) {
	res := Ablations()
	by := map[string]Result{}
	for i, c := range res.Cells {
		_ = i
		by[res.Table.Rows[len(by)][0]] = c
	}
	base := by["ProvLight (paper defaults)"]
	blocking := by["blocking HTTP/TCP transport"]
	noComp := by["no payload compression"]
	grouped := by["grouping 50 ended tasks"]
	fullDM := by["full PROV-DM payloads"]
	qos0 := by["QoS 0 (at most once)"]

	// §VII-A: the async protocol has the major impact.
	if blocking.Overhead.Mean < 4*base.Overhead.Mean {
		t.Errorf("blocking transport %.2f%% should be >> async %.2f%%",
			blocking.Overhead.Mean*100, base.Overhead.Mean*100)
	}
	// Compression reduces transmitted bytes.
	if noComp.NetKBps <= base.NetKBps {
		t.Errorf("disabling compression should increase traffic: %.2f <= %.2f",
			noComp.NetKBps, base.NetKBps)
	}
	// Grouping reduces overhead and power.
	if grouped.Overhead.Mean >= base.Overhead.Mean {
		t.Errorf("grouping should lower overhead: %.2f%% >= %.2f%%",
			grouped.Overhead.Mean*100, base.Overhead.Mean*100)
	}
	// The simplified model beats full PROV-DM payloads on bytes and time.
	if fullDM.NetKBps <= base.NetKBps || fullDM.Overhead.Mean <= base.Overhead.Mean {
		t.Errorf("full PROV-DM should cost more: net %.2f vs %.2f, ovh %.2f%% vs %.2f%%",
			fullDM.NetKBps, base.NetKBps, fullDM.Overhead.Mean*100, base.Overhead.Mean*100)
	}
	// QoS 0 transmits less than QoS 2 (no handshake).
	if qos0.NetKBps >= base.NetKBps {
		t.Errorf("QoS 0 should transmit less than QoS 2: %.2f >= %.2f", qos0.NetKBps, base.NetKBps)
	}
}

func TestOverheadMonotoneInTaskDuration(t *testing.T) {
	for _, sys := range AllSystems {
		prev := 10.0
		for _, d := range durations {
			v := Run(edgeRun(sys, wl(100, d))).Overhead.Mean
			if v > prev {
				t.Errorf("%s: overhead increased with task duration at %v", sys, d)
			}
			prev = v
		}
	}
}

func TestRunDeterministicForSameSeed(t *testing.T) {
	cfg := edgeRun(ProvLight, wl(100, 500*time.Millisecond))
	a := Run(cfg)
	b := Run(cfg)
	if a.Overhead.Mean != b.Overhead.Mean || a.PowerW != b.PowerW {
		t.Error("same seed produced different results")
	}
	cfg.Seed = 99
	c := Run(cfg)
	if a.Overhead.Mean == c.Overhead.Mean {
		t.Error("different seed produced identical overhead (noise not applied)")
	}
}

func TestMeasurePayloadsSanity(t *testing.T) {
	p := MeasurePayloads(wl(100, 500*time.Millisecond))
	if p.WireEnd <= 0 || p.JSONEnd <= 0 || p.WireRaw <= 0 || p.PROVJSONEnd <= 0 {
		t.Fatalf("payloads not measured: %+v", p)
	}
	if p.WireEnd >= p.JSONEnd {
		t.Errorf("wire frame %dB should be smaller than JSON %dB", p.WireEnd, p.JSONEnd)
	}
	if p.PROVJSONEnd <= p.JSONEnd {
		t.Errorf("PROV-JSON %dB should be the most verbose (JSON %dB)", p.PROVJSONEnd, p.JSONEnd)
	}
	// Group frames are sublinear thanks to shared compression.
	if g := p.WireGroup(50); g >= 50*p.WireEnd {
		t.Errorf("group of 50 = %dB, want < %dB", g, 50*p.WireEnd)
	}
	// More attributes, bigger payloads.
	small := MeasurePayloads(wl(10, 500*time.Millisecond))
	if small.JSONEnd >= p.JSONEnd || small.WireRaw >= p.WireRaw {
		t.Error("payload sizes should grow with attribute count")
	}
}

func TestScaleAnchors(t *testing.T) {
	r := &runner{cfg: RunConfig{Device: device.A8M3}, model: Models[ProvLake]}
	if got := r.scale(time.Second); got != time.Second {
		t.Errorf("edge scale = %v, want 1s", got)
	}
	r.cfg.Device = device.CloudServer
	got := r.scale(51 * time.Second)
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Errorf("cloud scale of 51s = %v, want ~1s (ratio 51)", got)
	}
}

func TestRadioQueueSaturationBackpressure(t *testing.T) {
	// A pathological configuration: huge uncompressed frames on a 25 Kbit
	// link with very short tasks must saturate the radio queue and push
	// overhead up, not lose data silently.
	w := wl(100, 500*time.Millisecond)
	w.Tasks = 50
	cfg := RunConfig{
		System: ProvLight, Workload: w,
		Device:      device.A8M3,
		Link:        netem.Link{BandwidthBps: 2000, Delay: 11500 * time.Microsecond, OverheadBytes: 40, MTU: 1460},
		Repetitions: 2, Seed: 7,
		DisableCompression: true,
		FullProvDM:         true,
	}
	r := Run(cfg)
	if r.Overhead.Mean < 0.10 {
		t.Errorf("saturated radio should inflate overhead, got %.2f%%", r.Overhead.Mean*100)
	}
}
