// Package experiment reproduces the paper's evaluation (§III and §VI):
// it runs the Table I synthetic workloads against modeled ProvLight,
// ProvLake, and DfAnalyzer capture paths on modeled A8-M3 edge devices and
// Grid'5000 cloud servers, and regenerates every table and figure.
//
// The capture cost model charges each event CPU serialization work
// (scaled by the platform's CPU speed factor), protocol-dependent blocking
// network time, and energy. Model *structure* (blocking request/response
// vs. asynchronous publish, per-transmission amortization under grouping,
// bandwidth-dependent transfer time) produces the crossovers; the
// calibration constants below were fitted once against a handful of the
// paper's own cells (noted per constant) and then held fixed for all other
// cells, tables, and figures.
package experiment

import (
	"encoding/json"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/wire"
	"github.com/provlight/provlight/internal/workload"
)

// System identifies a capture system under test.
type System string

// The three systems of the evaluation.
const (
	ProvLight  System = "ProvLight"
	ProvLake   System = "ProvLake"
	DfAnalyzer System = "DfAnalyzer"
)

// AllSystems lists the systems in the paper's presentation order.
var AllSystems = []System{ProvLake, DfAnalyzer, ProvLight}

// CostModel holds per-system capture-path constants. CPU durations are
// expressed on the A8-M3 edge board (where they were calibrated) and are
// rescaled via device.Profile.CPUSpeedFactor for other platforms.
type CostModel struct {
	// PerEventCPU is fixed library work per captured event (building the
	// record structure). Calibrated: Table III grouping asymptote.
	PerEventCPU time.Duration
	// EncodeCPUPerByte is serialization cost per payload byte.
	EncodeCPUPerByte time.Duration
	// TransmitCPU is per-transmission library work: the HTTP request
	// machinery for the baselines (calibrated: Table II, 0.5 s column),
	// or the QoS 2 publish bookkeeping for ProvLight (Table VII).
	TransmitCPU time.Duration
	// TransmitCPUShare is the fraction of TransmitCPU that is actual CPU
	// (vs. io-wait inside the library); drives CPU% and energy but not
	// blocking time. Calibrated: Fig. 6a ratios.
	TransmitCPUShare float64
	// KernelFixed is non-scaling per-transmission kernel/NIC time.
	KernelFixed time.Duration
	// BackgroundCPUPerTx is CPU spent outside the capture path per
	// transmission (ProvLight's QoS 2 PUBREC/PUBREL/PUBCOMP handling).
	BackgroundCPUPerTx time.Duration

	// Blocking marks request/response systems: the task waits for the
	// full network exchange (HTTP 1.1 over TCP). ProvLight is
	// asynchronous: the task only pays CPU + enqueue.
	Blocking bool
	// KeepAlive marks connection reuse across requests. DfAnalyzer's
	// capture library reconnects per request, paying an extra RTT and
	// TCP handshake bursts (this is what makes it draw the most power in
	// Fig. 6d despite using less CPU than ProvLake).
	KeepAlive bool
	// HeaderBytes / RespBytes model HTTP envelope sizes.
	HeaderBytes int
	RespBytes   int
	// ServerProc is server-side processing per request (blocks the
	// client in request/response mode). Not CPU-scaled: the server is
	// always the cloud machine.
	ServerProc time.Duration

	// EdgeCloudCPURatio is how much slower this system's capture CPU work
	// runs on the A8-M3 than on the Grid'5000 reference server. The three
	// stacks scale differently on the in-order 600 MHz ARM (CPython for
	// ProvLake, C++/Python mix for DfAnalyzer, the compact binary path
	// for ProvLight); each ratio is calibrated from the paper's own
	// Table II vs Table X cells.
	EdgeCloudCPURatio float64

	// FootprintBytes is the capture library's resident memory (Fig. 6b):
	// the simplified ProvLight library vs. the heavier Python stacks.
	FootprintBytes int64
	// PerBufferedRecordBytes is added per record held in a grouping
	// buffer.
	PerBufferedRecordBytes int64
}

// Models holds the calibrated constants (see package comment; all CPU
// numbers are A8-M3 values).
var Models = map[System]CostModel{
	ProvLight: {
		PerEventCPU:            2500 * time.Microsecond,
		EncodeCPUPerByte:       600 * time.Nanosecond,
		TransmitCPU:            850 * time.Microsecond,
		TransmitCPUShare:       1.0,
		KernelFixed:            300 * time.Microsecond,
		BackgroundCPUPerTx:     400 * time.Microsecond,
		Blocking:               false,
		KeepAlive:              true,
		EdgeCloudCPURatio:      11.5,
		FootprintBytes:         9_500_000,
		PerBufferedRecordBytes: 1200,
	},
	ProvLake: {
		PerEventCPU:            2 * time.Millisecond,
		EncodeCPUPerByte:       3 * time.Microsecond,
		TransmitCPU:            110500 * time.Microsecond,
		TransmitCPUShare:       0.385,
		KernelFixed:            300 * time.Microsecond,
		Blocking:               true,
		KeepAlive:              true,
		HeaderBytes:            550,
		RespBytes:              170,
		EdgeCloudCPURatio:      51,
		ServerProc:             1500 * time.Microsecond,
		FootprintBytes:         19_500_000,
		PerBufferedRecordBytes: 2600,
	},
	DfAnalyzer: {
		PerEventCPU:            2 * time.Millisecond,
		EncodeCPUPerByte:       2 * time.Microsecond,
		TransmitCPU:            49 * time.Millisecond,
		TransmitCPUShare:       0.54,
		KernelFixed:            300 * time.Microsecond,
		Blocking:               true,
		KeepAlive:              false,
		HeaderBytes:            550,
		RespBytes:              170,
		EdgeCloudCPURatio:      56,
		ServerProc:             1500 * time.Microsecond,
		FootprintBytes:         18_200_000,
		PerBufferedRecordBytes: 0, // DfAnalyzer has no grouping (Table IV)
	},
}

// Payloads holds real measured payload sizes for one workload
// configuration: the simulator charges transmission of the bytes the
// actual codecs produce, not hard-coded estimates.
type Payloads struct {
	// WireBegin/WireEnd are ProvLight frame sizes (binary, compressed).
	WireBegin, WireEnd int
	// WireRawBegin/WireRaw are the uncompressed frame sizes (compression
	// ablation; WireRaw is also the CPU encode basis).
	WireRawBegin, WireRaw int
	// JSONBegin/JSONEnd are the baseline JSON body sizes per event.
	JSONBegin, JSONEnd int
	// PROVJSONBegin/PROVJSONEnd are verbose W3C PROV-JSON renderings of
	// the same events (full-data-model ablation).
	PROVJSONBegin, PROVJSONEnd int

	beginRec, endRec provdm.Record
}

// MeasurePayloads encodes representative records of the workload with the
// real codecs and returns their sizes.
func MeasurePayloads(w workload.Config) Payloads {
	begin, end := w.SampleTaskRecords("1")
	var p Payloads
	p.beginRec, p.endRec = begin, end

	enc := wire.Encoder{}
	if f, err := enc.EncodeFrame(&begin); err == nil {
		p.WireBegin = len(f)
	}
	if f, err := enc.EncodeFrame(&end); err == nil {
		p.WireEnd = len(f)
	}
	rawEnc := wire.Encoder{DisableCompression: true}
	if f, err := rawEnc.EncodeFrame(&end); err == nil {
		p.WireRaw = len(f)
	}
	if f, err := rawEnc.EncodeFrame(&begin); err == nil {
		p.WireRawBegin = len(f)
	}
	if doc, err := provdm.BuildDocument([]provdm.Record{begin}); err == nil {
		if b, err := provdm.MarshalPROVJSON(doc); err == nil {
			p.PROVJSONBegin = len(b)
		}
	}
	if doc, err := provdm.BuildDocument([]provdm.Record{end}); err == nil {
		if b, err := provdm.MarshalPROVJSON(doc); err == nil {
			p.PROVJSONEnd = len(b)
		}
	}

	// Baseline JSON sizes: the mean of the two representations the real
	// systems ship (DfAnalyzer task message, ProvLake prov request).
	if msg, ok := dfanalyzer.RecordToTaskMsg("wf", &end); ok {
		if b, err := json.Marshal(msg); err == nil {
			p.JSONEnd = len(b)
		}
	}
	if msg, ok := dfanalyzer.RecordToTaskMsg("wf", &begin); ok {
		if b, err := json.Marshal(msg); err == nil {
			p.JSONBegin = len(b)
		}
	}
	if pr, err := provlake.FromRecord(&end); err == nil {
		if b, err := json.Marshal([]*provlake.ProvRequest{pr}); err == nil {
			p.JSONEnd = (p.JSONEnd + len(b)) / 2
		}
	}
	if pr, err := provlake.FromRecord(&begin); err == nil {
		if b, err := json.Marshal([]*provlake.ProvRequest{pr}); err == nil {
			p.JSONBegin = (p.JSONBegin + len(b)) / 2
		}
	}
	return p
}

// WireGroup returns the size of a ProvLight group frame of n end-records
// (shared compression makes it sublinear).
func (p Payloads) WireGroup(n int) int {
	if n <= 0 {
		return 0
	}
	recs := make([]*provdm.Record, n)
	for i := range recs {
		r := p.endRec
		recs[i] = &r
	}
	enc := wire.Encoder{}
	f, err := enc.EncodeFrame(recs...)
	if err != nil {
		return n * p.WireEnd
	}
	return len(f)
}

// JSONGroup returns the size of a ProvLake grouped request of n messages.
func (p Payloads) JSONGroup(n int) int {
	if n <= 0 {
		return 0
	}
	pr, err := provlake.FromRecord(&p.endRec)
	if err != nil {
		return n * p.JSONEnd
	}
	batch := make([]*provlake.ProvRequest, n)
	for i := range batch {
		batch[i] = pr
	}
	b, err := json.Marshal(batch)
	if err != nil {
		return n * p.JSONEnd
	}
	return len(b)
}
