package experiment

import (
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/device"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/workload"
)

// TestCalibrationPrint dumps the key cells for manual calibration review.
func TestCalibrationPrint(t *testing.T) {
	wl := workload.Config{ChainedTransformations: 5, Tasks: 100, AttributesPerTask: 100, TaskDuration: 500 * time.Millisecond}
	p := MeasurePayloads(wl)
	t.Logf("payloads: wireBegin=%d wireEnd=%d wireRaw=%d jsonBegin=%d jsonEnd=%d group10=%d wiregroup50=%d",
		p.WireBegin, p.WireEnd, p.WireRaw, p.JSONBegin, p.JSONEnd, p.JSONGroup(10), p.WireGroup(50))
	for _, sys := range AllSystems {
		for _, dur := range []time.Duration{500 * time.Millisecond, time.Second, 3500 * time.Millisecond, 5 * time.Second} {
			w := wl
			w.TaskDuration = dur
			res := Run(RunConfig{System: sys, Workload: w, Device: device.A8M3, Link: netem.GigabitEdge, Repetitions: 3, Seed: 1})
			t.Logf("%-10s dur=%.1fs overhead=%s cpu=%.1f%% mem=%.1f%% net=%.2fKB/s power=%.3fW (+%.2f%%)",
				sys, dur.Seconds(), res.Overhead.PercentString(), res.CPUPercent, res.MemPercent, res.NetKBps, res.PowerW, res.PowerOverheadPct)
		}
	}
	// Grouping x bandwidth (Tables III/VIII), 0.5s 100 attrs.
	for _, sys := range []System{ProvLake, ProvLight} {
		for _, link := range []netem.Link{netem.GigabitEdge, netem.Constrained25Kbit} {
			for _, g := range []int{0, 10, 20, 50} {
				res := Run(RunConfig{System: sys, Workload: wl, Device: device.A8M3, Link: link, GroupSize: g, Repetitions: 3, Seed: 1})
				t.Logf("%-10s bw=%9d group=%2d overhead=%s", sys, link.BandwidthBps, g, res.Overhead.PercentString())
			}
		}
	}
	// Cloud (Table X).
	for _, sys := range AllSystems {
		res := Run(RunConfig{System: sys, Workload: wl, Device: device.CloudServer, Link: netem.CloudLAN, Repetitions: 3, Seed: 1})
		t.Logf("CLOUD %-10s overhead=%s", sys, res.Overhead.PercentString())
	}
	fmt.Println()
}
