package experiment

import (
	"math"
	"math/rand"
	"time"

	"github.com/provlight/provlight/internal/device"
	"github.com/provlight/provlight/internal/netem"
	"github.com/provlight/provlight/internal/simulation"
	"github.com/provlight/provlight/internal/stats"
	"github.com/provlight/provlight/internal/workload"
)

// RunConfig describes one experiment cell.
type RunConfig struct {
	System   System
	Workload workload.Config
	Device   device.Profile
	Link     netem.Link
	// GroupSize groups captured messages per transmission (0 = off).
	GroupSize int
	// Devices runs this many devices in parallel against one broker
	// (Table IX); 0 or 1 means a single device.
	Devices int
	// Repetitions defaults to 10 (the paper's setup).
	Repetitions int
	// Seed makes the run deterministic.
	Seed int64

	// Ablation knobs (§VII-A design-choice analysis); all default off.

	// DisableCompression transmits uncompressed wire frames.
	DisableCompression bool
	// FullProvDM transmits verbose PROV-JSON payloads instead of the
	// simplified Workflow/Task/Data exchange model.
	FullProvDM bool
	// ForceBlocking runs ProvLight's capture path over a blocking
	// HTTP/TCP-style request/response exchange (isolates the impact of
	// the asynchronous MQTT-SN/UDP transport).
	ForceBlocking bool
	// QoS selects the MQTT-SN quality of service: 0 means the paper's
	// default (QoS 2); use 1 for QoS 1 and -1 for QoS 0.
	QoS int
}

// Result aggregates one cell over all repetitions.
type Result struct {
	Config           RunConfig
	Overhead         stats.Summary // capture-time overhead (relative difference)
	BaselineTime     time.Duration
	CaptureTime      time.Duration // mean
	CPUPercent       float64       // capture CPU utilization, % of one core
	MemPercent       float64       // capture library memory, % of device RAM
	NetKBps          float64       // transmitted KB/s during capture
	PowerW           float64       // mean device power with capture
	BaselinePowerW   float64
	PowerOverheadPct float64
}

// protocol overhead constants (bytes on the wire).
const (
	udpIPOverhead   = 28 // IPv4 + UDP headers
	mqttsnPubHeader = 9  // MQTT-SN PUBLISH fixed part
	mqttsnAck       = 43 // MQTT-SN PUBREL + UDP/IP headers
	tcpAck          = 40 // empty TCP ACK segment
	tcpSyn          = 44 // SYN with MSS option
	tcpFin          = 40 // FIN segment
)

// Run executes one experiment cell: Repetitions simulated runs of the
// workload with capture, against the analytic no-capture baseline.
func Run(cfg RunConfig) Result {
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = 10
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 1
	}
	model := Models[cfg.System]
	if cfg.ForceBlocking && !model.Blocking {
		// Protocol ablation: same client costs, but each transmission
		// becomes a blocking request/response over TCP.
		model.Blocking = true
		model.HeaderBytes = 550
		model.RespBytes = 170
		model.ServerProc = 1500 * time.Microsecond
	}
	if cfg.QoS == 0 {
		cfg.QoS = 2
	}
	payloads := MeasurePayloads(cfg.Workload)
	baseline := cfg.Workload.TotalDuration()

	var overheads []float64
	var captureSum time.Duration
	var cpuSum, memSum, netSum, powerSum float64
	for rep := 0; rep < cfg.Repetitions; rep++ {
		r := &runner{
			cfg:      cfg,
			model:    model,
			payloads: payloads,
			rng:      rand.New(rand.NewSource(cfg.Seed*1000 + int64(rep))),
		}
		capTime, meters := r.simulate()
		overheads = append(overheads, stats.RelDiff(capTime.Seconds(), baseline.Seconds()))
		captureSum += capTime
		// Aggregate metrics over devices (they are symmetric).
		var cpu, net, power float64
		for _, m := range meters {
			m.Elapsed = capTime
			cpu += m.CPUUtilization()
			net += m.NetworkRate()
			power += m.AvgPowerWatts()
		}
		n := float64(len(meters))
		cpuSum += cpu / n
		netSum += net / n
		powerSum += power / n
		memSum += r.memoryBytes()
	}
	reps := float64(cfg.Repetitions)
	res := Result{
		Config:         cfg,
		Overhead:       stats.Summarize(overheads),
		BaselineTime:   baseline,
		CaptureTime:    captureSum / time.Duration(cfg.Repetitions),
		CPUPercent:     cpuSum / reps * 100,
		MemPercent:     memSum / reps / float64(cfg.Device.MemoryBytes) * 100,
		NetKBps:        netSum / reps / 1024,
		PowerW:         powerSum / reps,
		BaselinePowerW: cfg.Device.IdleWatts,
	}
	if res.BaselinePowerW > 0 {
		res.PowerOverheadPct = (res.PowerW - res.BaselinePowerW) / res.BaselinePowerW * 100
	}
	return res
}

// runner simulates one repetition.
type runner struct {
	cfg      RunConfig
	model    CostModel
	payloads Payloads
	rng      *rand.Rand
}

// scale converts A8-M3-calibrated CPU work to the configured device. The
// per-system edge:cloud ratio (CostModel.EdgeCloudCPURatio) anchors the
// two measured platforms; other platforms interpolate in log space of the
// generic device speed factor.
func (r *runner) scale(d time.Duration) time.Duration {
	edge, dev := device.A8M3.CPUSpeedFactor, r.cfg.Device.CPUSpeedFactor
	if dev == edge {
		return d
	}
	ratio := r.model.EdgeCloudCPURatio
	if ratio <= 0 {
		ratio = edge / dev
	}
	// t = 1 on the edge board, 0 on the cloud reference.
	t := math.Log(dev) / math.Log(edge)
	return time.Duration(float64(d) * math.Pow(ratio, t) / ratio)
}

// noise applies +-1.5% run-to-run jitter (the source of the paper's small
// confidence intervals).
func (r *runner) noise(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (1 + (r.rng.Float64()-0.5)*0.03))
}

func (r *runner) memoryBytes() float64 {
	return float64(r.model.FootprintBytes) +
		float64(r.cfg.GroupSize)*float64(r.model.PerBufferedRecordBytes)
}

// frameBegin/frameEnd/frameGroup select the transmitted payload sizes,
// honouring the compression and data-model ablations.
func (r *runner) frameBegin() int {
	switch {
	case r.cfg.FullProvDM:
		return r.payloads.PROVJSONBegin
	case r.cfg.DisableCompression:
		return r.payloads.WireRawBegin
	default:
		return r.payloads.WireBegin
	}
}

func (r *runner) frameEnd() int {
	switch {
	case r.cfg.FullProvDM:
		return r.payloads.PROVJSONEnd
	case r.cfg.DisableCompression:
		return r.payloads.WireRaw
	default:
		return r.payloads.WireEnd
	}
}

func (r *runner) frameGroup(n int) int {
	switch {
	case r.cfg.FullProvDM:
		return n * r.payloads.PROVJSONEnd
	case r.cfg.DisableCompression:
		return n * r.payloads.WireRaw
	default:
		return r.payloads.WireGroup(n)
	}
}

// encodeBasis is the byte count that drives client-side serialization CPU.
func (r *runner) encodeBasis() int {
	if r.cfg.FullProvDM {
		return r.payloads.PROVJSONEnd
	}
	return r.payloads.WireRaw
}

// drainRate is the effective radio drain bandwidth: the device interface
// in series with the backhaul link.
func (r *runner) drainTx(bytes int) time.Duration {
	linkT := r.cfg.Link.TxTime(bytes)
	radioT := r.cfg.Device.TimeOnAir(int64(bytes))
	if radioT > linkT {
		return radioT
	}
	return linkT
}

// simulate runs all devices of one repetition in a single engine and
// returns the mean capture time and per-device meters.
func (r *runner) simulate() (time.Duration, []*device.EnergyMeter) {
	eng := simulation.NewEngine()
	n := r.cfg.Devices
	meters := make([]*device.EnergyMeter, n)
	times := make([]time.Duration, n)
	for d := 0; d < n; d++ {
		meters[d] = device.NewEnergyMeter(r.cfg.Device)
		d := d
		if r.model.Blocking {
			r.blockingDevice(eng, meters[d], &times[d])
		} else {
			r.provlightDevice(eng, meters[d], &times[d])
		}
	}
	eng.Run()
	var sum time.Duration
	for _, t := range times {
		sum += t
	}
	return sum / time.Duration(n), meters
}

// blockingDevice models the HTTP request/response capture path of
// ProvLake and DfAnalyzer (and of the ForceBlocking protocol ablation):
// every transmission blocks the task.
func (r *runner) blockingDevice(eng *simulation.Engine, meter *device.EnergyMeter, out *time.Duration) {
	m, cfg := r.model, r.cfg
	beginBytes, endBytes := r.payloads.JSONBegin, r.payloads.JSONEnd
	groupBytes := r.payloads.JSONGroup
	if cfg.System == ProvLight {
		beginBytes, endBytes = r.frameBegin(), r.frameEnd()
		groupBytes = r.frameGroup
	}
	buffered := 0
	transmit := func(proc *simulation.Proc, events int, jsonBytes int) {
		// CPU: encode the whole payload + request library work.
		encCPU := r.scale(time.Duration(jsonBytes) * m.EncodeCPUPerByte)
		txCPU := r.scale(m.TransmitCPU)
		reqBytes := jsonBytes + m.HeaderBytes
		rr := cfg.Link.RequestResponseTime(reqBytes, m.RespBytes)
		if !m.KeepAlive {
			rr += cfg.Link.RTT() // fresh TCP connection per request
		}
		blocking := encCPU + txCPU + m.KernelFixed + rr + m.ServerProc
		proc.Sleep(r.noise(blocking))
		meter.AddCPU(encCPU + time.Duration(float64(txCPU)*m.TransmitCPUShare) + m.KernelFixed)
		// Wire accounting: request segments + ACK (+ handshake bursts).
		wireBytes := cfg.Link.WireBytes(reqBytes)
		segments := (reqBytes + cfg.Link.MTU - 1) / max(1, cfg.Link.MTU)
		for s := 0; s < max(1, segments); s++ {
			meter.AddTx(wireBytes / max(1, segments))
		}
		meter.AddTx(tcpAck) // ACK of the response
		if !m.KeepAlive {
			meter.AddTx(tcpSyn)
			meter.AddTx(tcpAck)
			meter.AddTx(tcpFin)
		}
		meter.AddRx(cfg.Link.WireBytes(m.RespBytes))
	}
	event := func(proc *simulation.Proc, jsonBytes int) {
		perEvent := r.scale(m.PerEventCPU)
		proc.Sleep(r.noise(perEvent))
		meter.AddCPU(perEvent)
		if cfg.GroupSize > 0 {
			buffered++
			if buffered >= cfg.GroupSize {
				transmit(proc, buffered, groupBytes(buffered))
				buffered = 0
			}
			return
		}
		transmit(proc, 1, jsonBytes)
	}
	eng.Go("device", func(proc *simulation.Proc) {
		event(proc, beginBytes/4) // workflow begin (small message)
		for t := 0; t < cfg.Workload.Tasks; t++ {
			event(proc, beginBytes) // task begin
			proc.Sleep(cfg.Workload.TaskDuration)
			event(proc, endBytes) // task end
		}
		event(proc, endBytes/4) // workflow end
		if buffered > 0 {
			transmit(proc, buffered, groupBytes(buffered))
			buffered = 0
		}
		*out = proc.Now()
	})
}

// provlightDevice models the asynchronous MQTT-SN capture path: the task
// pays only CPU + enqueue; a radio process drains the transmit queue in
// the background and only exerts backpressure when saturated.
func (r *runner) provlightDevice(eng *simulation.Engine, meter *device.EnergyMeter, out *time.Duration) {
	m, cfg := r.model, r.cfg
	qos := 2
	switch cfg.QoS {
	case 1:
		qos = 1
	case -1:
		qos = 0
	}
	radioQ := simulation.NewQueue[int](64)
	eng.Go("radio", func(proc *simulation.Proc) {
		for {
			frame, ok := radioQ.Get(proc)
			if !ok {
				return
			}
			pubBytes := frame + mqttsnPubHeader + udpIPOverhead
			proc.Sleep(r.drainTx(pubBytes))
			meter.AddTx(pubBytes)
			switch qos {
			case 2:
				// Exactly once: PUBREC in, PUBREL out, PUBCOMP in.
				proc.Sleep(r.drainTx(mqttsnAck))
				meter.AddTx(mqttsnAck)
				meter.AddRx(2 * mqttsnAck)
			case 1:
				meter.AddRx(mqttsnAck) // PUBACK in
			}
		}
	})
	bufferedEnds := 0
	enqueue := func(proc *simulation.Proc, frameBytes int) {
		txCPU := r.scale(m.TransmitCPU)
		proc.Sleep(r.noise(txCPU + m.KernelFixed))
		meter.AddCPU(txCPU + m.KernelFixed + r.scale(m.BackgroundCPUPerTx))
		radioQ.Put(proc, frameBytes) // blocks only when the radio queue is full
	}
	event := func(proc *simulation.Proc, frameBytes int, groupable bool) {
		perEvent := r.scale(m.PerEventCPU + time.Duration(r.encodeBasis())*m.EncodeCPUPerByte)
		proc.Sleep(r.noise(perEvent))
		meter.AddCPU(perEvent)
		if cfg.GroupSize > 0 && groupable {
			bufferedEnds++
			if bufferedEnds >= cfg.GroupSize {
				enqueue(proc, r.frameGroup(bufferedEnds))
				bufferedEnds = 0
			}
			return
		}
		enqueue(proc, frameBytes)
	}
	eng.Go("device", func(proc *simulation.Proc) {
		event(proc, r.frameBegin()/4, false) // workflow begin
		for t := 0; t < cfg.Workload.Tasks; t++ {
			event(proc, r.frameBegin(), false) // task begin: never grouped (§IV-C2)
			proc.Sleep(cfg.Workload.TaskDuration)
			event(proc, r.frameEnd(), true) // task end: groupable
		}
		event(proc, r.frameEnd()/4, true) // workflow end joins the last group
		if bufferedEnds > 0 {
			enqueue(proc, r.frameGroup(bufferedEnds))
			bufferedEnds = 0
		}
		*out = proc.Now()
		radioQ.Close()
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
