package dfanalyzer

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is the MonetDB-like backend: an in-memory column store holding one
// table per (dataflow, set) pair plus the task catalog.
type Store struct {
	mu        sync.RWMutex
	dataflows map[string]*Dataflow
	tables    map[string]*Table // key: dataflow + "\x00" + set tag
	tasks     map[string]*TaskMsg
	taskOrder []string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		dataflows: map[string]*Dataflow{},
		tables:    map[string]*Table{},
		tasks:     map[string]*TaskMsg{},
	}
}

// Table is one columnar table: each attribute is a dense column slice.
type Table struct {
	Schema SetSchema
	// numeric columns hold float64, text/file columns hold string.
	numCols  map[string][]float64
	textCols map[string][]string
	// taskIDs indexes each row back to the producing task.
	taskIDs []string
	rows    int
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

func tableKey(dataflow, set string) string { return dataflow + "\x00" + set }

// RegisterDataflow validates and installs a dataflow spec, creating empty
// tables for every set.
func (s *Store) RegisterDataflow(df *Dataflow) error {
	if err := df.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dataflows[df.Tag] = df
	for _, tr := range df.Transformations {
		for _, set := range append(append([]SetSchema{}, tr.Input...), tr.Output...) {
			key := tableKey(df.Tag, set.Tag)
			if _, ok := s.tables[key]; ok {
				continue
			}
			t := &Table{Schema: set, numCols: map[string][]float64{}, textCols: map[string][]string{}}
			for _, a := range set.Attributes {
				if a.Type == Numeric {
					t.numCols[a.Name] = nil
				} else {
					t.textCols[a.Name] = nil
				}
			}
			s.tables[key] = t
		}
	}
	return nil
}

// Dataflow returns a registered specification.
func (s *Store) Dataflow(tag string) (*Dataflow, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	df, ok := s.dataflows[tag]
	return df, ok
}

// Dataflows lists registered dataflow tags, sorted.
func (s *Store) Dataflows() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tags := make([]string, 0, len(s.dataflows))
	for t := range s.dataflows {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// IngestTask stores a task message, appending its set elements to the
// corresponding tables. begin/end messages for the same task id merge.
func (s *Store) IngestTask(m *TaskMsg) error {
	if err := m.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dataflows[m.Dataflow]; !ok {
		return fmt.Errorf("dfanalyzer: unknown dataflow %q", m.Dataflow)
	}
	tkey := m.Dataflow + "\x00" + m.ID
	if existing, ok := s.tasks[tkey]; ok {
		existing.Status = m.Status
		if m.EndTime != nil {
			existing.EndTime = m.EndTime
		}
		if m.StartTime != nil && existing.StartTime == nil {
			existing.StartTime = m.StartTime
		}
		existing.Dependencies = append(existing.Dependencies, m.Dependencies...)
	} else {
		cp := *m
		cp.Sets = nil
		s.tasks[tkey] = &cp
		s.taskOrder = append(s.taskOrder, tkey)
	}
	for _, set := range m.Sets {
		table, ok := s.tables[tableKey(m.Dataflow, set.Tag)]
		if !ok {
			return fmt.Errorf("dfanalyzer: unknown set %q in dataflow %q", set.Tag, m.Dataflow)
		}
		for _, el := range set.Elements {
			if len(el) != len(table.Schema.Attributes) {
				return fmt.Errorf("dfanalyzer: element arity %d != schema %d for set %q",
					len(el), len(table.Schema.Attributes), set.Tag)
			}
			for i, a := range table.Schema.Attributes {
				if a.Type == Numeric {
					f, ok := toFloat(el[i])
					if !ok {
						return fmt.Errorf("dfanalyzer: attribute %q expects numeric, got %T", a.Name, el[i])
					}
					table.numCols[a.Name] = append(table.numCols[a.Name], f)
				} else {
					table.textCols[a.Name] = append(table.textCols[a.Name], fmt.Sprint(el[i]))
				}
			}
			table.taskIDs = append(table.taskIDs, m.ID)
			table.rows++
		}
	}
	return nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	case float32:
		return float64(x), true
	default:
		return 0, false
	}
}

// Task returns the catalog entry for a task id.
func (s *Store) Task(dataflow, id string) (*TaskMsg, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[dataflow+"\x00"+id]
	return t, ok
}

// Tasks returns all task entries of a dataflow in ingestion order.
func (s *Store) Tasks(dataflow string) []*TaskMsg {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*TaskMsg
	for _, key := range s.taskOrder {
		if strings.HasPrefix(key, dataflow+"\x00") {
			out = append(out, s.tasks[key])
		}
	}
	return out
}

// TaskCount returns the number of distinct tasks ingested for a dataflow.
func (s *Store) TaskCount(dataflow string) int {
	return len(s.Tasks(dataflow))
}

// Op is a comparison operator in a query predicate.
type Op string

// Predicate operators.
const (
	Eq Op = "="
	Ne Op = "!="
	Lt Op = "<"
	Le Op = "<="
	Gt Op = ">"
	Ge Op = ">="
)

// Pred filters rows on one attribute.
type Pred struct {
	Attr  string `json:"attr"`
	Op    Op     `json:"op"`
	Value any    `json:"value"`
}

// Query selects rows from one set of a dataflow: WHERE predicates are
// conjunctive; OrderBy/Desc/Limit give top-k behaviour.
type Query struct {
	Dataflow string   `json:"dataflow"`
	Set      string   `json:"set"`
	Where    []Pred   `json:"where,omitempty"`
	Project  []string `json:"project,omitempty"`
	OrderBy  string   `json:"order_by,omitempty"`
	Desc     bool     `json:"desc,omitempty"`
	Limit    int      `json:"limit,omitempty"`
}

// Row is one query result with attribute values plus the producing task id
// under "task_id".
type Row map[string]any

// Select runs a query against the store.
func (s *Store) Select(q Query) ([]Row, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	table, ok := s.tables[tableKey(q.Dataflow, q.Set)]
	if !ok {
		return nil, fmt.Errorf("dfanalyzer: unknown set %q in dataflow %q", q.Set, q.Dataflow)
	}
	colType := map[string]AttrType{}
	for _, a := range table.Schema.Attributes {
		colType[a.Name] = a.Type
	}
	for _, p := range q.Where {
		if _, ok := colType[p.Attr]; !ok {
			return nil, fmt.Errorf("dfanalyzer: unknown attribute %q", p.Attr)
		}
	}
	if q.OrderBy != "" {
		if _, ok := colType[q.OrderBy]; !ok {
			return nil, fmt.Errorf("dfanalyzer: unknown order attribute %q", q.OrderBy)
		}
	}
	project := q.Project
	if len(project) == 0 {
		for _, a := range table.Schema.Attributes {
			project = append(project, a.Name)
		}
	} else {
		for _, name := range project {
			if _, ok := colType[name]; !ok && name != "task_id" {
				return nil, fmt.Errorf("dfanalyzer: unknown projected attribute %q", name)
			}
		}
	}

	matches := make([]int, 0, table.rows)
scan:
	for i := 0; i < table.rows; i++ {
		for _, p := range q.Where {
			if !table.match(i, p, colType[p.Attr]) {
				continue scan
			}
		}
		matches = append(matches, i)
	}
	if q.OrderBy != "" {
		t := colType[q.OrderBy]
		sort.SliceStable(matches, func(a, b int) bool {
			var less bool
			if t == Numeric {
				col := table.numCols[q.OrderBy]
				less = col[matches[a]] < col[matches[b]]
			} else {
				col := table.textCols[q.OrderBy]
				less = col[matches[a]] < col[matches[b]]
			}
			if q.Desc {
				return !less
			}
			return less
		})
	}
	if q.Limit > 0 && len(matches) > q.Limit {
		matches = matches[:q.Limit]
	}
	rows := make([]Row, 0, len(matches))
	for _, i := range matches {
		row := Row{"task_id": table.taskIDs[i]}
		for _, name := range project {
			if name == "task_id" {
				continue
			}
			if colType[name] == Numeric {
				row[name] = table.numCols[name][i]
			} else {
				row[name] = table.textCols[name][i]
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (t *Table) match(i int, p Pred, typ AttrType) bool {
	if typ == Numeric {
		want, ok := toFloat(p.Value)
		if !ok {
			return false
		}
		v := t.numCols[p.Attr][i]
		switch p.Op {
		case Eq:
			return v == want
		case Ne:
			return v != want
		case Lt:
			return v < want
		case Le:
			return v <= want
		case Gt:
			return v > want
		case Ge:
			return v >= want
		}
		return false
	}
	v := t.textCols[p.Attr][i]
	want := fmt.Sprint(p.Value)
	switch p.Op {
	case Eq:
		return v == want
	case Ne:
		return v != want
	case Lt:
		return v < want
	case Le:
		return v <= want
	case Gt:
		return v > want
	case Ge:
		return v >= want
	}
	return false
}
