package dfanalyzer

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/provlight/provlight/internal/source"
)

// Store is the MonetDB-like backend: an in-memory column store holding one
// table per (dataflow, set) pair plus the task catalog. Storage is sharded
// by dataflow: every dataflow owns its own lock, tables, and task catalog,
// so ingestion and queries for different dataflows never contend, and
// readers of one dataflow only block on writers of the same dataflow
// (paper §IV-B1: the server components "may be parallelized to scale the
// data capture").
type Store struct {
	mu     sync.RWMutex // guards the shard map only, not shard contents
	shards map[string]*dataflowShard

	// commitMu serializes durable mutations (WAL append + apply) so that
	// replay order equals apply order, and guards the dedup table. It is
	// uncontended for in-memory stores outside IngestFrames.
	commitMu sync.Mutex
	// dedup tracks applied (origin, frame seq) pairs for exactly-once
	// ingestion of redelivered spool frames. Guarded by commitMu.
	dedup *dedupTable
	// dur is the durability state (WAL + snapshots); nil for a purely
	// in-memory store from NewStore.
	dur *durability
	// repl is the replication role/term state (see replication.go).
	// Mutated under commitMu, read lock-free by the write guard.
	repl replState
}

// dataflowShard holds everything belonging to one dataflow.
type dataflowShard struct {
	mu        sync.RWMutex
	spec      *Dataflow
	tables    map[string]*Table   // set tag -> table
	tasks     map[string]*TaskMsg // task id -> merged catalog entry
	taskOrder []string            // ids in first-ingestion order
}

// NewStore returns an empty in-memory store. For a crash-durable store
// backed by a WAL and snapshots, use OpenStore.
func NewStore() *Store {
	return &Store{shards: map[string]*dataflowShard{}, dedup: newDedupTable()}
}

// shard returns the shard for a dataflow, or nil.
func (s *Store) shard(dataflow string) *dataflowShard {
	s.mu.RLock()
	sh := s.shards[dataflow]
	s.mu.RUnlock()
	return sh
}

// ensureShard returns the shard for a dataflow, creating it if needed.
func (s *Store) ensureShard(dataflow string) *dataflowShard {
	if sh := s.shard(dataflow); sh != nil {
		return sh
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[dataflow]
	if !ok {
		sh = &dataflowShard{tables: map[string]*Table{}, tasks: map[string]*TaskMsg{}}
		s.shards[dataflow] = sh
	}
	return sh
}

// column is one typed attribute column of a table, indexed positionally by
// the set schema so the append path needs no per-element name lookups.
type column struct {
	name string
	typ  AttrType
	nums []float64 // populated when typ == Numeric
	strs []string  // populated otherwise (TEXT/FILE)
}

// Table is one columnar table: each attribute is a dense column slice.
type Table struct {
	Schema SetSchema
	cols   []column
	// taskIDs indexes each row back to the producing task.
	taskIDs []string
	rows    int
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// col returns the column named name, or nil.
func (t *Table) col(name string) *column {
	for i := range t.cols {
		if t.cols[i].name == name {
			return &t.cols[i]
		}
	}
	return nil
}

func newTable(schema SetSchema) *Table {
	t := &Table{Schema: schema, cols: make([]column, len(schema.Attributes))}
	for i, a := range schema.Attributes {
		t.cols[i] = column{name: a.Name, typ: a.Type}
	}
	return t
}

// upgrade grows an existing table to a wider schema (new attributes
// appended by an incremental spec registration): new columns are
// backfilled with zero values for rows ingested before the attribute was
// first observed.
func (t *Table) upgrade(schema SetSchema) {
	if len(schema.Attributes) <= len(t.cols) {
		return
	}
	for _, a := range schema.Attributes[len(t.cols):] {
		c := column{name: a.Name, typ: a.Type}
		if a.Type == Numeric {
			c.nums = make([]float64, t.rows)
		} else {
			c.strs = make([]string, t.rows)
		}
		t.cols = append(t.cols, c)
	}
	t.Schema = schema
}

// RegisterDataflow validates and installs a dataflow spec, creating empty
// tables for every set. Re-registering a grown spec (the translator's
// incremental schema tracker does this when new attributes appear) widens
// existing tables in place. On a durable store the registration is
// write-ahead logged before it is applied.
func (s *Store) RegisterDataflow(df *Dataflow) error {
	if err := s.CheckWriteTerm(0); err != nil {
		return err
	}
	if err := df.Validate(); err != nil {
		return err
	}
	if s.dur != nil {
		s.commitMu.Lock()
		defer s.commitMu.Unlock()
		if err := s.logOp(&walOp{Op: "register", Dataflow: df}); err != nil {
			return err
		}
		if err := s.registerDataflowApply(df); err != nil {
			return err
		}
		return s.maybeSnapshotLocked()
	}
	return s.registerDataflowApply(df)
}

// registerDataflowApply installs an already-validated, already-logged
// spec.
func (s *Store) registerDataflowApply(df *Dataflow) error {
	if err := df.Validate(); err != nil {
		return err
	}
	sh := s.ensureShard(df.Tag)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.spec = df
	for _, tr := range df.Transformations {
		for _, set := range append(append([]SetSchema{}, tr.Input...), tr.Output...) {
			if t, ok := sh.tables[set.Tag]; ok {
				t.upgrade(set)
				continue
			}
			sh.tables[set.Tag] = newTable(set)
		}
	}
	return nil
}

// Dataflow returns a registered specification.
func (s *Store) Dataflow(tag string) (*Dataflow, bool) {
	sh := s.shard(tag)
	if sh == nil {
		return nil, false
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.spec, sh.spec != nil
}

// Dataflows lists registered dataflow tags, sorted.
func (s *Store) Dataflows() []string {
	s.mu.RLock()
	tags := make([]string, 0, len(s.shards))
	for tag, sh := range s.shards {
		sh.mu.RLock()
		registered := sh.spec != nil
		sh.mu.RUnlock()
		if registered {
			tags = append(tags, tag)
		}
	}
	s.mu.RUnlock()
	sort.Strings(tags)
	return tags
}

// IngestTask stores a task message, appending its set elements to the
// corresponding tables. begin/end messages for the same task id merge.
func (s *Store) IngestTask(m *TaskMsg) error {
	return s.IngestTasks([]*TaskMsg{m})
}

// IngestTasks stores a batch of task messages under one lock acquisition
// per run of same-dataflow messages (the batch endpoint's fast path).
// On error, messages before the failing one remain ingested. On a durable
// store the batch is validated, write-ahead logged, then applied.
func (s *Store) IngestTasks(msgs []*TaskMsg) error {
	if err := s.CheckWriteTerm(0); err != nil {
		return err
	}
	if s.dur == nil {
		return s.ingestTasksApply(msgs)
	}
	if err := s.validateBatch(msgs); err != nil {
		return err
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.logOp(&walOp{Op: "ingest", Tasks: msgs}); err != nil {
		return err
	}
	if err := s.ingestTasksApply(msgs); err != nil {
		return err
	}
	return s.maybeSnapshotLocked()
}

// validateBatch rejects batches the apply path would reject, so invalid
// input never reaches the WAL.
func (s *Store) validateBatch(msgs []*TaskMsg) error {
	for _, m := range msgs {
		if m == nil {
			return fmt.Errorf("dfanalyzer: nil task message in batch")
		}
		if err := m.Validate(); err != nil {
			return err
		}
		if sh := s.shard(m.Dataflow); sh == nil || !sh.registered() {
			return fmt.Errorf("dfanalyzer: unknown dataflow %q", m.Dataflow)
		}
	}
	return nil
}

// IngestFrames ingests decoded capture frames with their provenance
// identities, deduplicating redeliveries: a frame whose (origin, seq) was
// already applied is skipped entirely. Returns how many frames were newly
// applied. This is the exactly-once ingestion path used by spooling
// clients; frames without a durable id (Seq == 0) are always applied.
//
// Poison frames: a frame that passes validation but still fails to apply
// (e.g. an element whose type conflicts with the schema a later
// registration grew) is dedup-marked *before* the apply, deliberately.
// Such a frame can never succeed, so redelivering it forever would wedge
// the client's spool; instead the failure surfaces once through the
// returned error (the translator counts it and withholds the batch ack),
// and the eventual redelivery is absorbed as a duplicate. WAL replay
// after a crash applies the same rule, so live and recovered stores
// agree.
func (s *Store) IngestFrames(frames []FrameMsg) (applied int, err error) {
	return s.IngestFramesTerm(0, frames)
}

// IngestFramesTerm is IngestFrames with fenced-write semantics: the
// writer's replication term is checked against the store's before
// anything is logged or applied (see CheckWriteTerm). Term 0 skips the
// term check (but not the replica-role check) for single-node
// deployments that never adopted a term.
func (s *Store) IngestFramesTerm(term uint64, frames []FrameMsg) (applied int, err error) {
	if err := s.CheckWriteTerm(term); err != nil {
		return 0, err
	}
	for i := range frames {
		if err := s.validateBatch(frames[i].Tasks); err != nil {
			return 0, err
		}
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	// Re-check under the commit lock: a promotion or demotion that landed
	// between the entry check and here must fence this batch too.
	if err := s.CheckWriteTerm(term); err != nil {
		return 0, err
	}
	fresh := make([]FrameMsg, 0, len(frames))
	for _, f := range frames {
		if f.Origin != "" && f.Seq > 0 && s.dedup.applied(f.Origin, f.Seq) {
			continue
		}
		fresh = append(fresh, f)
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	if s.dur != nil {
		if err := s.logOp(&walOp{Op: "frames", Frames: fresh}); err != nil {
			return 0, err
		}
	}
	for _, f := range fresh {
		if f.Origin != "" && f.Seq > 0 {
			s.dedup.mark(f.Origin, f.Seq)
		}
		if err := s.ingestTasksApply(f.Tasks); err != nil {
			return applied, err
		}
		applied++
	}
	if s.dur != nil {
		return applied, s.maybeSnapshotLocked()
	}
	return applied, nil
}

// AppliedFrameCount returns how many distinct frames the store has
// applied from origin — the exactly-once ledger behind IngestFrames.
// Soak and chaos harnesses compare it against what the origin's spool
// admitted to prove no acknowledged frame was lost or double-applied.
func (s *Store) AppliedFrameCount(origin string) uint64 {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	st, ok := s.dedup.origins[origin]
	if !ok {
		return 0
	}
	return st.floor + uint64(len(st.seen))
}

// ingestTasksApply is the in-memory apply path (the historical
// IngestTasks body).
func (s *Store) ingestTasksApply(msgs []*TaskMsg) error {
	for i := 0; i < len(msgs); {
		m := msgs[i]
		if m == nil {
			return fmt.Errorf("dfanalyzer: nil task message in batch")
		}
		if err := m.Validate(); err != nil {
			return err
		}
		sh := s.shard(m.Dataflow)
		if sh == nil || !sh.registered() {
			return fmt.Errorf("dfanalyzer: unknown dataflow %q", m.Dataflow)
		}
		// Extend over the run of consecutive messages for the same
		// dataflow so a homogeneous batch locks its shard exactly once.
		// A nil message ends the run and is rejected by the next outer
		// iteration.
		j := i + 1
		for j < len(msgs) && msgs[j] != nil && msgs[j].Dataflow == m.Dataflow {
			if err := msgs[j].Validate(); err != nil {
				return err
			}
			j++
		}
		sh.mu.Lock()
		for _, mm := range msgs[i:j] {
			if err := sh.ingestLocked(mm); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
		i = j
	}
	return nil
}

func (sh *dataflowShard) registered() bool {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.spec != nil
}

func (sh *dataflowShard) ingestLocked(m *TaskMsg) error {
	if existing, ok := sh.tasks[m.ID]; ok {
		existing.Status = m.Status
		if m.EndTime != nil {
			existing.EndTime = m.EndTime
		}
		if m.StartTime != nil && existing.StartTime == nil {
			existing.StartTime = m.StartTime
		}
		// Merge dependencies without duplicating edges already recorded
		// (begin and end messages usually repeat the same list).
		for _, dep := range m.Dependencies {
			if !containsStr(existing.Dependencies, dep) {
				existing.Dependencies = append(existing.Dependencies, dep)
			}
		}
	} else {
		cp := *m
		cp.Sets = nil
		sh.tasks[m.ID] = &cp
		sh.taskOrder = append(sh.taskOrder, m.ID)
	}
	for _, set := range m.Sets {
		table, ok := sh.tables[set.Tag]
		if !ok {
			return fmt.Errorf("dfanalyzer: unknown set %q in dataflow %q", set.Tag, m.Dataflow)
		}
		if err := table.appendElements(m.ID, set.Elements); err != nil {
			return err
		}
	}
	return nil
}

// appendElements bulk-appends rows: columns are resolved positionally, so
// the inner loop touches slices only.
func (t *Table) appendElements(taskID string, elements []Element) error {
	for _, el := range elements {
		if len(el) != len(t.cols) {
			return fmt.Errorf("dfanalyzer: element arity %d != schema %d for set %q",
				len(el), len(t.cols), t.Schema.Tag)
		}
		for i := range t.cols {
			c := &t.cols[i]
			if c.typ == Numeric {
				f, ok := toFloat(el[i])
				if !ok {
					return fmt.Errorf("dfanalyzer: attribute %q expects numeric, got %T", c.name, el[i])
				}
				c.nums = append(c.nums, f)
			} else {
				c.strs = append(c.strs, toText(el[i]))
			}
		}
		t.taskIDs = append(t.taskIDs, taskID)
		t.rows++
	}
	return nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	case float32:
		return float64(x), true
	default:
		return 0, false
	}
}

// toText renders a text/file attribute value without the fmt machinery for
// the overwhelmingly common string case.
func toText(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprint(v)
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TaskEntry returns the native catalog entry for a task id. The returned
// message is shared with the store; treat it as read-only. Most callers
// want Task, the backend-agnostic Source accessor, instead.
func (s *Store) TaskEntry(dataflow, id string) (*TaskMsg, bool) {
	sh := s.shard(dataflow)
	if sh == nil {
		return nil, false
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.tasks[id]
	return t, ok
}

// Task implements source.Source: the catalog entry for one task id as a
// backend-agnostic TaskInfo, copied out under the shard lock.
func (s *Store) Task(ctx context.Context, dataflow, id string) (*source.TaskInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh := s.shard(dataflow)
	if sh == nil {
		return nil, fmt.Errorf("dfanalyzer: dataflow %q: %w", dataflow, source.ErrNotFound)
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.tasks[id]
	if !ok {
		return nil, fmt.Errorf("dfanalyzer: task %q in dataflow %q: %w", id, dataflow, source.ErrNotFound)
	}
	return taskInfo(t), nil
}

// taskInfo copies a catalog entry into the Source task shape. Callers must
// hold the shard lock (or own the message).
func taskInfo(t *TaskMsg) *source.TaskInfo {
	info := &source.TaskInfo{
		ID:             t.ID,
		Transformation: t.Transformation,
		Status:         string(t.Status),
		Dependencies:   append([]string(nil), t.Dependencies...),
	}
	if t.StartTime != nil {
		ts := *t.StartTime
		info.StartTime = &ts
	}
	if t.EndTime != nil {
		ts := *t.EndTime
		info.EndTime = &ts
	}
	return info
}

// Workflows implements source.Source: the registered dataflow tags.
func (s *Store) Workflows(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Dataflows(), nil
}

// Tasks implements source.Source: all task entries of a dataflow in
// ingestion order, copied out under the shard lock.
func (s *Store) Tasks(ctx context.Context, dataflow string) ([]source.TaskInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh := s.shard(dataflow)
	if sh == nil {
		return nil, nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]source.TaskInfo, 0, len(sh.taskOrder))
	for _, id := range sh.taskOrder {
		out = append(out, *taskInfo(sh.tasks[id]))
	}
	return out, nil
}

// TaskCount returns the number of distinct tasks ingested for a dataflow.
func (s *Store) TaskCount(dataflow string) int {
	sh := s.shard(dataflow)
	if sh == nil {
		return 0
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.taskOrder)
}

// The query vocabulary is the shared Source vocabulary: aliases keep the
// historical dfanalyzer.Query/Row/Pred names (and their JSON wire shapes)
// pointing at the one canonical definition in internal/source.
type (
	// Op is a comparison operator in a query predicate.
	Op = source.Op
	// Pred filters rows on one attribute.
	Pred = source.Pred
	// Query selects rows from one set of a dataflow.
	Query = source.Query
	// Row is one query result plus the producing "task_id".
	Row = source.Row
)

// Predicate operators.
const (
	Eq = source.Eq
	Ne = source.Ne
	Lt = source.Lt
	Le = source.Le
	Gt = source.Gt
	Ge = source.Ge
)

// Store implements the backend-agnostic read interface.
var _ source.Source = (*Store)(nil)

// Select runs a query against the store, implementing source.Source.
// Predicates are evaluated column at a time over the typed column slices
// (the predicate value is converted once per query, not once per row), and
// OrderBy+Limit queries keep a bounded top-k heap instead of sorting every
// match.
func (s *Store) Select(ctx context.Context, q Query) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh := s.shard(q.Dataflow)
	if sh == nil {
		return nil, fmt.Errorf("dfanalyzer: unknown set %q in dataflow %q", q.Set, q.Dataflow)
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	table, ok := sh.tables[q.Set]
	if !ok {
		return nil, fmt.Errorf("dfanalyzer: unknown set %q in dataflow %q", q.Set, q.Dataflow)
	}
	for _, p := range q.Where {
		if table.col(p.Attr) == nil {
			return nil, fmt.Errorf("dfanalyzer: unknown attribute %q", p.Attr)
		}
	}
	var orderCol *column
	if q.OrderBy != "" {
		if orderCol = table.col(q.OrderBy); orderCol == nil {
			return nil, fmt.Errorf("dfanalyzer: unknown order attribute %q", q.OrderBy)
		}
	}
	// Resolve projected columns once; nil means the task_id pseudo-column.
	var project []*column
	var projectNames []string
	if len(q.Project) == 0 {
		for i := range table.cols {
			project = append(project, &table.cols[i])
			projectNames = append(projectNames, table.cols[i].name)
		}
	} else {
		for _, name := range q.Project {
			c := table.col(name)
			if c == nil && name != "task_id" {
				return nil, fmt.Errorf("dfanalyzer: unknown projected attribute %q", name)
			}
			if c != nil {
				project = append(project, c)
				projectNames = append(projectNames, name)
			}
		}
	}

	matches := table.filter(q.Where)
	if orderCol != nil {
		if q.Limit > 0 && q.Limit < len(matches) {
			matches = topK(matches, orderCol, q.Desc, q.Limit)
		} else {
			sortMatches(matches, orderCol, q.Desc)
		}
	}
	if q.Limit > 0 && len(matches) > q.Limit {
		matches = matches[:q.Limit]
	}
	rows := make([]Row, 0, len(matches))
	for _, i := range matches {
		row := make(Row, len(project)+1)
		row["task_id"] = table.taskIDs[i]
		for p, c := range project {
			if c.typ == Numeric {
				row[projectNames[p]] = c.nums[i]
			} else {
				row[projectNames[p]] = c.strs[i]
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// filter returns the indices of rows satisfying every predicate. The first
// predicate scans its column; the rest narrow the selection vector in
// place, so each predicate touches exactly one column.
func (t *Table) filter(preds []Pred) []int {
	if len(preds) == 0 {
		all := make([]int, t.rows)
		for i := range all {
			all[i] = i
		}
		return all
	}
	matches := t.col(preds[0].Attr).scan(preds[0], nil)
	for _, p := range preds[1:] {
		if len(matches) == 0 {
			break
		}
		matches = t.col(p.Attr).scan(p, matches)
	}
	return matches
}

// scan evaluates one predicate over the column. With sel == nil it scans
// every row and returns the matching indices; otherwise it filters sel in
// place.
func (c *column) scan(p Pred, sel []int) []int {
	if c.typ == Numeric {
		want, ok := toFloat(p.Value)
		if !ok {
			return sel[:0] // non-numeric comparison value matches nothing
		}
		cmp := func(v float64) bool { return cmpOrdered(v, want, p.Op) }
		if sel == nil {
			out := make([]int, 0, len(c.nums))
			for i, v := range c.nums {
				if cmp(v) {
					out = append(out, i)
				}
			}
			return out
		}
		out := sel[:0]
		for _, i := range sel {
			if cmp(c.nums[i]) {
				out = append(out, i)
			}
		}
		return out
	}
	want := toText(p.Value)
	cmp := func(v string) bool { return cmpOrdered(v, want, p.Op) }
	if sel == nil {
		out := make([]int, 0, len(c.strs))
		for i, v := range c.strs {
			if cmp(v) {
				out = append(out, i)
			}
		}
		return out
	}
	out := sel[:0]
	for _, i := range sel {
		if cmp(c.strs[i]) {
			out = append(out, i)
		}
	}
	return out
}

func cmpOrdered[T float64 | string](v, want T, op Op) bool {
	switch op {
	case Eq:
		return v == want
	case Ne:
		return v != want
	case Lt:
		return v < want
	case Le:
		return v <= want
	case Gt:
		return v > want
	case Ge:
		return v >= want
	}
	return false
}

// better reports whether row a sorts strictly before row b for the given
// order column and direction, breaking key ties by row index so results
// are identical to a stable sort of the match list.
func (c *column) better(a, b int, desc bool) bool {
	if c.typ == Numeric {
		if c.nums[a] != c.nums[b] {
			return (c.nums[a] < c.nums[b]) != desc
		}
	} else {
		if c.strs[a] != c.strs[b] {
			return (c.strs[a] < c.strs[b]) != desc
		}
	}
	return a < b
}

func sortMatches(matches []int, c *column, desc bool) {
	sort.Slice(matches, func(i, j int) bool { return c.better(matches[i], matches[j], desc) })
}

// topK keeps the k best rows of matches using a bounded heap whose root is
// the worst kept row, then sorts the survivors: O(n log k) instead of the
// O(n log n) full sort, and k allocations instead of n.
func topK(matches []int, c *column, desc bool, k int) []int {
	heap := make([]int, k)
	copy(heap, matches[:k])
	// The heap is a max-heap under better: the root is the row that every
	// other kept row sorts before, i.e. the worst of the kept k.
	lt := func(a, b int) bool { return c.better(a, b, desc) }
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(heap, i, lt)
	}
	for _, m := range matches[k:] {
		if !c.better(m, heap[0], desc) {
			continue // not better than the worst kept row
		}
		heap[0] = m
		siftDown(heap, 0, lt)
	}
	sortMatches(heap, c, desc)
	return heap
}

// siftDown restores the heap property at root i, where less orders the
// heap (root = maximum under less).
func siftDown(h []int, i int, less func(a, b int) bool) {
	for {
		left, right := 2*i+1, 2*i+2
		largest := i
		if left < len(h) && less(h[largest], h[left]) {
			largest = left
		}
		if right < len(h) && less(h[largest], h[right]) {
			largest = right
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
