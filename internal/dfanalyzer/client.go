package dfanalyzer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/resilience"
	"github.com/provlight/provlight/internal/source"
)

// Client is the DfAnalyzer capture library: every task event performs a
// blocking HTTP 1.1 request/response to the server, exactly like the
// original Python/C++ libraries (paper Table VI: "HTTP 1.1, TCP,
// request/response"). The connection is kept alive between requests.
type Client struct {
	base string
	hc   *http.Client
	// term, when non-zero, is stamped into every mutating request via
	// TermHeader so a server on a different replication term rejects the
	// write (fenced failover; see replication.go).
	term atomic.Uint64
	// retry, when set via WithRetry, wraps every mutating POST in the
	// shared resilience policy: budgeted jittered-backoff retries gated
	// by a circuit breaker. Server rejections (4xx, including the 409
	// term fence) are permanent; 5xx and transport errors retry.
	retry   *resilience.Retry
	breaker *resilience.Breaker
}

// NewClient returns a capture client for the server at baseURL
// (e.g. "http://127.0.0.1:22000").
func NewClient(baseURL string) *Client {
	return &Client{
		base: baseURL,
		hc: &http.Client{
			Timeout: 30 * time.Second,
		},
	}
}

// WithRetry enables budgeted retries on the mutating POST paths:
// budget total attempts with jittered exponential backoff between min
// and max, gated by a circuit breaker that opens after repeated
// failures (so a down server costs one fast rejection per delivery
// instead of a full backoff ladder). Rejections the server will repeat
// (4xx, including the 409 term fence) are never retried. Returns c for
// chaining; call before the first request.
func (c *Client) WithRetry(budget int, min, max time.Duration) *Client {
	c.breaker = &resilience.Breaker{}
	c.retry = &resilience.Retry{
		Budget:  budget,
		Backoff: resilience.Backoff{Min: min, Max: max},
		Breaker: c.breaker,
	}
	return c
}

// BreakerStats reports the retry circuit breaker's state; zero-valued
// when WithRetry was not enabled.
func (c *Client) BreakerStats() resilience.BreakerStats {
	if c.breaker == nil {
		return resilience.BreakerStats{}
	}
	return c.breaker.Stats()
}

// SetTerm sets the replication term stamped into subsequent writes
// (0 disables the header — the unfenced single-node default).
func (c *Client) SetTerm(term uint64) { c.term.Store(term) }

// Term returns the replication term currently stamped into writes.
func (c *Client) Term() uint64 { return c.term.Load() }

func (c *Client) post(path string, body any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	if c.retry == nil {
		return c.postOnce(path, data)
	}
	return c.retry.Do(context.Background(), func(context.Context) error {
		return c.postOnce(path, data)
	})
}

// postOnce performs one POST attempt. Failures the server will repeat on
// a retry of the same request (4xx, including the 409 term fence after a
// failover) are marked permanent; transport errors and 5xx are left
// retryable for the resilience policy.
func (c *Client) postOnce(path string, data []byte) error {
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if term := c.term.Load(); term > 0 {
		req.Header.Set(TermHeader, strconv.FormatUint(term, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("dfanalyzer: %s returned %s: %s", path, resp.Status, msg)
		if resp.StatusCode < 500 {
			return resilience.Permanent(err)
		}
		return err
	}
	// Drain so the connection is reused.
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// RegisterDataflow registers the dataflow specification.
func (c *Client) RegisterDataflow(df *Dataflow) error {
	return c.post("/dataflow", df)
}

// SendTask ships one task event (blocking request/response).
func (c *Client) SendTask(msg *TaskMsg) error {
	return c.post("/task", msg)
}

// SendTasks ships a batch of task events in one request/response round
// trip (POST /tasks): one JSON marshal and one HTTP exchange per batch
// instead of one per task, the server-side counterpart of the capture
// library's message grouping.
func (c *Client) SendTasks(msgs []*TaskMsg) error {
	if len(msgs) == 0 {
		return nil
	}
	if len(msgs) == 1 {
		return c.SendTask(msgs[0])
	}
	return c.post("/tasks", msgs)
}

// SendFrames ships a batch of decoded capture frames with their durable
// identities to POST /frames: the server deduplicates redeliveries by
// (origin, seq), making this the exactly-once counterpart of SendTasks
// for spooling clients.
func (c *Client) SendFrames(frames []FrameMsg) error {
	if len(frames) == 0 {
		return nil
	}
	return c.post("/frames", frames)
}

// Client implements the backend-agnostic read interface remotely: queries
// written against source.Source run against a DfAnalyzer server over HTTP
// exactly as they run against a local Store.
var _ source.Source = (*Client)(nil)

// Select implements source.Source over POST /query; ctx bounds the request.
func (c *Client) Select(ctx context.Context, q Query) ([]Row, error) {
	data, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("dfanalyzer: query returned %s: %s", resp.Status, msg)
	}
	var rows []Row
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// Query runs a query on the server.
//
// Deprecated: use Select, which takes a context for request deadlines.
func (c *Client) Query(q Query) ([]Row, error) {
	return c.Select(context.Background(), q)
}

// getJSON GETs path (already query-encoded) and decodes the JSON response
// into out. A 404 is reported as errNotFound when non-nil, so callers can
// map it onto source.ErrNotFound with their own context.
func (c *Client) getJSON(ctx context.Context, path, what string, out any, errNotFound error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && errNotFound != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return errNotFound
	}
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("dfanalyzer: %s returned %s: %s", what, resp.Status, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Task implements source.Source over GET /task?dataflow=...&id=...; a 404
// maps to source.ErrNotFound.
func (c *Client) Task(ctx context.Context, dataflow, id string) (*source.TaskInfo, error) {
	var info source.TaskInfo
	path := "/task?dataflow=" + url.QueryEscape(dataflow) + "&id=" + url.QueryEscape(id)
	notFound := fmt.Errorf("dfanalyzer: task %q in dataflow %q: %w", id, dataflow, source.ErrNotFound)
	if err := c.getJSON(ctx, path, "task lookup", &info, notFound); err != nil {
		return nil, err
	}
	return &info, nil
}

// Tasks implements source.Source over GET /tasks?dataflow=...: the whole
// catalog in one round trip.
func (c *Client) Tasks(ctx context.Context, dataflow string) ([]source.TaskInfo, error) {
	var infos []source.TaskInfo
	path := "/tasks?dataflow=" + url.QueryEscape(dataflow)
	if err := c.getJSON(ctx, path, "tasks listing", &infos, nil); err != nil {
		return nil, err
	}
	return infos, nil
}

// Stats fetches the server's replication-aware health snapshot from
// GET /stats.
func (c *Client) Stats(ctx context.Context) (*StoreStats, error) {
	var st StoreStats
	if err := c.getJSON(ctx, "/stats", "stats", &st, nil); err != nil {
		return nil, err
	}
	return &st, nil
}

// Workflows implements source.Source over GET /dataflow (the registered
// dataflow tags, sorted by the server).
func (c *Client) Workflows(ctx context.Context) ([]string, error) {
	var tags []string
	if err := c.getJSON(ctx, "/dataflow", "workflows", &tags, nil); err != nil {
		return nil, err
	}
	return tags, nil
}

// Capturer adapts the client to the capture.Client interface, translating
// ProvLight exchange records into DfAnalyzer task messages.
type Capturer struct {
	client   *Client
	dataflow string
}

// NewCapturer wraps c as a capture.Client for the given dataflow tag.
func NewCapturer(c *Client, dataflow string) *Capturer {
	return &Capturer{client: c, dataflow: dataflow}
}

// RecordToTaskMsg converts one exchange record into a DfAnalyzer task
// message (shared with the translator).
func RecordToTaskMsg(dataflow string, rec *provdm.Record) (*TaskMsg, bool) {
	if rec.Event != provdm.EventTaskBegin && rec.Event != provdm.EventTaskEnd {
		return nil, false // DfAnalyzer has no workflow lifecycle messages
	}
	// Task ids are namespaced by workflow so that multiple devices feeding
	// the same dataflow (Fig. 5: 64 clients, one provenance system) do not
	// collide.
	msg := &TaskMsg{
		Dataflow:       dataflow,
		Transformation: rec.Transformation,
		ID:             rec.WorkflowID + "/" + rec.TaskID,
		Dependencies:   rec.Dependencies,
	}
	ts := rec.Time
	if rec.Event == provdm.EventTaskBegin {
		msg.Status = StatusRunning
		msg.StartTime = &ts
	} else {
		msg.Status = StatusFinished
		msg.EndTime = &ts
	}
	side := "_input"
	if rec.Event == provdm.EventTaskEnd {
		side = "_output"
	}
	if len(rec.Data) > 0 {
		set := SetData{Tag: rec.Transformation + side}
		for _, d := range rec.Data {
			el := make(Element, 0, len(d.Attributes))
			for _, a := range d.Attributes {
				el = append(el, a.Value)
			}
			set.Elements = append(set.Elements, el)
		}
		msg.Sets = []SetData{set}
	}
	return msg, true
}

// Capture implements capture.Client.
func (cp *Capturer) Capture(rec *provdm.Record) error {
	msg, ok := RecordToTaskMsg(cp.dataflow, rec)
	if !ok {
		return nil
	}
	return cp.client.SendTask(msg)
}

// Flush implements capture.Client (DfAnalyzer has no buffering).
func (cp *Capturer) Flush() error { return nil }

// Close implements capture.Client.
func (cp *Capturer) Close() error { return nil }
