// Package dfanalyzer re-implements the DfAnalyzer runtime dataflow
// analysis tool (Silva et al., SoftwareX 2020): the baseline provenance
// system the paper compares against (§III) and the storage/query backend
// the E2Clab Provenance Manager uses (§V).
//
// Three components are provided, mirroring the original architecture:
//
//   - a dataflow model (dataflows, transformations, attribute-typed sets,
//     tasks, dependencies);
//   - an HTTP 1.1 ingestion server backed by a MonetDB-like in-memory
//     column store with a small query engine;
//   - a capture client that, like the original Python library, performs a
//     blocking HTTP request/response per task event — the design property
//     responsible for its high capture overhead on edge devices (Table II).
package dfanalyzer

import (
	"fmt"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

// AttrType is a column type in a set schema.
type AttrType string

// Supported attribute types (the original tool's TEXT/NUMERIC/FILE).
const (
	Text    AttrType = "TEXT"
	Numeric AttrType = "NUMERIC"
	File    AttrType = "FILE"
)

// Attribute is one typed column of a set schema.
type Attribute struct {
	Name string   `json:"name"`
	Type AttrType `json:"type"`
}

// SetSchema describes one dataset (input or output of a transformation).
type SetSchema struct {
	Tag        string      `json:"tag"`
	Attributes []Attribute `json:"attributes"`
}

// Transformation is one processing step of a dataflow.
type Transformation struct {
	Tag    string      `json:"tag"`
	Input  []SetSchema `json:"input"`
	Output []SetSchema `json:"output"`
}

// Dataflow is the dataflow specification registered before execution.
type Dataflow struct {
	Tag             string           `json:"tag"`
	Transformations []Transformation `json:"transformations"`
}

// Validate checks the specification for emptiness and duplicate tags.
func (d *Dataflow) Validate() error {
	if d.Tag == "" {
		return fmt.Errorf("dfanalyzer: dataflow tag required")
	}
	seenT := map[string]bool{}
	seenS := map[string]bool{}
	for _, tr := range d.Transformations {
		if tr.Tag == "" {
			return fmt.Errorf("dfanalyzer: transformation tag required in %q", d.Tag)
		}
		if seenT[tr.Tag] {
			return fmt.Errorf("dfanalyzer: duplicate transformation %q", tr.Tag)
		}
		seenT[tr.Tag] = true
		for _, s := range append(append([]SetSchema{}, tr.Input...), tr.Output...) {
			if s.Tag == "" {
				return fmt.Errorf("dfanalyzer: set tag required in %q", tr.Tag)
			}
			if seenS[s.Tag] {
				continue // sets may be shared between transformations
			}
			seenS[s.Tag] = true
			names := map[string]bool{}
			for _, a := range s.Attributes {
				if a.Name == "" {
					return fmt.Errorf("dfanalyzer: attribute name required in set %q", s.Tag)
				}
				if names[a.Name] {
					return fmt.Errorf("dfanalyzer: duplicate attribute %q in set %q", a.Name, s.Tag)
				}
				names[a.Name] = true
				switch a.Type {
				case Text, Numeric, File:
				default:
					return fmt.Errorf("dfanalyzer: unknown attribute type %q", a.Type)
				}
			}
		}
	}
	return nil
}

// Status mirrors the original tool's task statuses.
type Status string

// Task statuses.
const (
	StatusRunning  Status = "RUNNING"
	StatusFinished Status = "FINISHED"
)

// Element is one row of attribute values, positionally matching the set
// schema.
type Element []any

// SetData carries rows for one set of a task message.
type SetData struct {
	Tag      string    `json:"tag"`
	Elements []Element `json:"elements"`
}

// TaskMsg is the ingestion unit: one POST /task per task event, exactly
// like the original RESTful capture protocol.
type TaskMsg struct {
	Dataflow       string     `json:"dataflow"`
	Transformation string     `json:"transformation"`
	ID             string     `json:"id"`
	Status         Status     `json:"status"`
	Dependencies   []string   `json:"dependencies,omitempty"`
	Sets           []SetData  `json:"sets,omitempty"`
	StartTime      *time.Time `json:"start_time,omitempty"`
	EndTime        *time.Time `json:"end_time,omitempty"`
}

// Validate checks the message shape.
func (m *TaskMsg) Validate() error {
	if m.Dataflow == "" || m.Transformation == "" || m.ID == "" {
		return fmt.Errorf("dfanalyzer: task message requires dataflow, transformation, and id")
	}
	switch m.Status {
	case StatusRunning, StatusFinished:
	default:
		return fmt.Errorf("dfanalyzer: bad status %q", m.Status)
	}
	return nil
}

// SchemaTracker incrementally derives a dataflow specification from
// ProvLight capture records: each transformation gets one input set
// "<tag>_input" and one output set "<tag>_output" whose columns are the
// union of attribute names observed so far. Unlike re-deriving from the
// full record history, the tracker's memory is bounded by the schema size
// (transformations x attributes), not by the number of records observed.
type SchemaTracker struct {
	tag        string
	transforms []string
	seenT      map[string]bool
	sets       map[string]*trackedSet // set tag -> columns
}

type trackedSet struct {
	order []string
	types map[string]AttrType
}

// NewSchemaTracker returns an empty tracker for the given dataflow tag.
func NewSchemaTracker(tag string) *SchemaTracker {
	return &SchemaTracker{tag: tag, seenT: map[string]bool{}, sets: map[string]*trackedSet{}}
}

// Observe folds records into the tracked schema and reports whether it
// grew (a new transformation, set, or attribute appeared), i.e. whether
// the spec needs re-registration.
func (st *SchemaTracker) Observe(records []provdm.Record) bool {
	grew := false
	for i := range records {
		r := &records[i]
		if r.Transformation == "" {
			continue
		}
		if !st.seenT[r.Transformation] {
			st.seenT[r.Transformation] = true
			st.transforms = append(st.transforms, r.Transformation)
			grew = true
		}
		var setTag string
		if r.Event == provdm.EventTaskBegin {
			setTag = r.Transformation + "_input"
		} else {
			setTag = r.Transformation + "_output"
		}
		acc, ok := st.sets[setTag]
		if !ok {
			acc = &trackedSet{types: map[string]AttrType{}}
			st.sets[setTag] = acc
			grew = true
		}
		for _, d := range r.Data {
			for _, a := range d.Attributes {
				if _, ok := acc.types[a.Name]; ok {
					continue
				}
				t := Text
				switch a.Value.(type) {
				case int64, float64:
					t = Numeric
				}
				acc.types[a.Name] = t
				acc.order = append(acc.order, a.Name)
				grew = true
			}
		}
	}
	return grew
}

// Dataflow builds the specification for everything observed so far.
func (st *SchemaTracker) Dataflow() *Dataflow {
	df := &Dataflow{Tag: st.tag}
	for _, tr := range st.transforms {
		t := Transformation{Tag: tr}
		for _, side := range []string{"_input", "_output"} {
			if acc, ok := st.sets[tr+side]; ok {
				s := SetSchema{Tag: tr + side}
				for _, name := range acc.order {
					s.Attributes = append(s.Attributes, Attribute{Name: name, Type: acc.types[name]})
				}
				if side == "_input" {
					t.Input = append(t.Input, s)
				} else {
					t.Output = append(t.Output, s)
				}
			}
		}
		df.Transformations = append(df.Transformations, t)
	}
	return df
}

// DataflowFromRecords derives a dataflow specification from ProvLight
// capture records in one shot (used by tests and the simulator; the
// translator uses a SchemaTracker to do the same incrementally).
func DataflowFromRecords(tag string, records []provdm.Record) *Dataflow {
	st := NewSchemaTracker(tag)
	st.Observe(records)
	return st.Dataflow()
}
