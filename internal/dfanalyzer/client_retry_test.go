package dfanalyzer

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetryTransient: 5xx responses are retried under the budget
// and the delivery succeeds once the server recovers.
func TestClientRetryTransient(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	cl := NewClient(srv.URL).WithRetry(5, time.Millisecond, 5*time.Millisecond)
	if err := cl.SendTask(&TaskMsg{Dataflow: "df", Transformation: "t", ID: "wf/1", Status: StatusRunning}); err != nil {
		t.Fatalf("SendTask after transient 503s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestClientRetryPermanent: a 4xx (here the 409 term fence) is never
// retried — the server would reject the identical request again.
func TestClientRetryPermanent(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "stale term", http.StatusConflict)
	}))
	defer srv.Close()

	cl := NewClient(srv.URL).WithRetry(5, time.Millisecond, 5*time.Millisecond)
	err := cl.SendTask(&TaskMsg{Dataflow: "df", Transformation: "t", ID: "wf/1", Status: StatusRunning})
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("want 409 error, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (permanent)", got)
	}
}
