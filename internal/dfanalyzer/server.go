package dfanalyzer

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/obs"
)

// TermHeader carries the writer's replication term on mutating requests.
// A server whose store has a different current term rejects the write
// with 409 Conflict, fencing deposed primaries and stale translators (see
// replication.go). Absent or zero means an unfenced legacy writer.
const TermHeader = "X-Provlight-Term"

// Server exposes the store over the original tool's HTTP 1.1
// request/response interface (uWSGI-style, Fig. 5 of the paper).
type Server struct {
	store *Store
	http  *http.Server
	lis   net.Listener

	// ProcessingDelay adds artificial per-request server work, used by
	// integration tests that emulate the slower Python/uWSGI backend.
	ProcessingDelay time.Duration

	// OnStats, when set, decorates the /stats response with the
	// replication layer's half (follower lag on a primary, staleness on a
	// replica) before it is served. Set before Start.
	OnStats func(*StoreStats)

	// ReadyMaxLag bounds how many records a read replica may trail its
	// primary and still report ready on /readyz. 0 means any connected
	// replica is ready regardless of lag. Set before Start.
	ReadyMaxLag uint64

	// Metrics, when set before Start, mounts GET /metrics on the API
	// listener and registers a scrape-time collector exporting the store's
	// role/term/WAL health, per-follower replication lag (primary), and
	// applied-seq/staleness (replica).
	Metrics *obs.Registry

	// EnablePProf mounts net/http/pprof under /debug/pprof/ (opt-in; set
	// before Start).
	EnablePProf bool

	requests atomic.Uint64
}

// NewServer creates a server around the given store (a fresh one if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{store: store}
}

// Store returns the backing store.
func (s *Server) Store() *Store { return s.store }

// Requests returns the number of HTTP requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Close.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dfanalyzer: listen %s: %w", addr, err)
	}
	s.lis = lis
	mux := http.NewServeMux()
	mux.HandleFunc("/dataflow", s.handleDataflow)
	mux.HandleFunc("/dataflow/", s.handleDataflowGet)
	mux.HandleFunc("/task", s.handleTask)
	mux.HandleFunc("/tasks", s.handleTasks)
	mux.HandleFunc("/frames", s.handleFrames)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	// Liveness comes from the shared obs wiring; /stats and /readyz stay
	// local because they carry store semantics (OnStats decoration,
	// replica-lag readiness) the generic handlers do not know.
	mux.Handle("/healthz", obs.HealthHandler())
	mux.HandleFunc("/readyz", s.handleReadyz)
	if s.Metrics != nil {
		mux.Handle("/metrics", obs.MetricsHandler(s.Metrics))
		s.registerMetrics(s.Metrics)
	}
	if s.EnablePProf {
		obs.AttachPProf(mux)
	}
	s.http = &http.Server{Handler: s.count(mux)}
	go s.http.Serve(lis)
	return nil
}

// registerMetrics installs the server's scrape-time collector: store
// catalog sizes, WAL health, and both sides of the replication picture —
// per-follower lag labeled follower=<id> on a primary, applied/staleness
// on a replica.
func (s *Server) registerMetrics(r *obs.Registry) {
	r.Collect(func(e *obs.Emitter) {
		st := s.statsDoc()
		e.Counter("provlight_store_http_requests_total", "API requests served.", float64(s.requests.Load()))
		e.Gauge("provlight_store_dataflows", "Dataflows in the catalog.", float64(st.Dataflows))
		e.Gauge("provlight_store_tasks", "Tasks in the catalog.", float64(st.Tasks))
		e.Gauge("provlight_store_term", "Current replication term.", float64(st.Term))
		primary := 0.0
		if st.Role == RolePrimary.String() || st.Role == RoleStandalone.String() {
			primary = 1
		}
		e.Gauge("provlight_store_writable", "1 when this store accepts writes (primary or standalone).", primary)
		e.Gauge("provlight_store_wal_last_seq", "Highest WAL sequence appended (0 for in-memory stores).", float64(st.WALLastSeq))
		e.Gauge("provlight_store_snapshot_seq", "WAL sequence of the last compaction snapshot.", float64(st.SnapshotSeq))
		e.Counter("provlight_store_wal_sync_errors_total", "Background WAL fsync failures — silent durability degradation.", float64(st.WALSyncErrors))
		if st.Replication != nil {
			e.Gauge("provlight_store_min_sync_followers", "Followers required durable before acks release.", float64(st.Replication.MinSync))
			for _, f := range st.Replication.Followers {
				lbl := []string{"follower", f.ID}
				e.Gauge("provlight_store_follower_acked_seq", "Highest WAL sequence the follower confirmed durable.", float64(f.AckedSeq), lbl...)
				e.Gauge("provlight_store_follower_lag_records", "Records the follower trails the primary's WAL tail.", float64(f.LagRecords), lbl...)
				e.Gauge("provlight_store_follower_lag_bytes", "Bytes sent to the follower but not yet acknowledged.", float64(f.LagBytes), lbl...)
			}
		}
		if st.Replica != nil {
			connected := 0.0
			if st.Replica.Connected {
				connected = 1
			}
			e.Gauge("provlight_store_replica_connected", "1 while the replication stream to the primary is live.", connected)
			e.Gauge("provlight_store_replica_applied_seq", "Last WAL sequence replayed locally.", float64(st.Replica.AppliedSeq))
			e.Gauge("provlight_store_replica_lag_records", "Records this replica trails its primary.", float64(st.Replica.LagRecords))
			e.Gauge("provlight_store_replica_staleness_seconds", "Time since the last record or heartbeat from the primary.", float64(st.Replica.StalenessMillis)/1000)
		}
	})
}

// statsDoc builds the replication-decorated stats snapshot served by
// /stats and /readyz and exported by the metrics collector.
func (s *Server) statsDoc() StoreStats {
	st := s.store.Stats()
	if s.OnStats != nil {
		s.OnStats(&st)
	}
	return st
}

// Addr returns the listen address.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if d := s.ProcessingDelay; d > 0 {
			time.Sleep(d)
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeIngestErr maps store errors onto status codes: fencing rejections
// (replica role, stale term) are 409 Conflict so clients can tell "you
// are talking to the wrong node" from a malformed request.
func writeIngestErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrStaleTerm) {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeErr(w, http.StatusBadRequest, err)
}

// requestTerm extracts the writer's replication term from TermHeader
// (0 when absent or unparseable — the unfenced legacy writer).
func requestTerm(r *http.Request) uint64 {
	h := r.Header.Get(TermHeader)
	if h == "" {
		return 0
	}
	term, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0
	}
	return term
}

func (s *Server) handleDataflow(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		var df Dataflow
		if err := json.NewDecoder(r.Body).Decode(&df); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.store.CheckWriteTerm(requestTerm(r)); err != nil {
			writeIngestErr(w, err)
			return
		}
		if err := s.store.RegisterDataflow(&df); err != nil {
			writeIngestErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "registered", "tag": df.Tag})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.store.Dataflows())
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleDataflowGet(w http.ResponseWriter, r *http.Request) {
	tag := strings.TrimPrefix(r.URL.Path, "/dataflow/")
	df, ok := s.store.Dataflow(tag)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataflow %q not found", tag))
		return
	}
	writeJSON(w, http.StatusOK, df)
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		// Catalog lookup: GET /task?dataflow=...&id=... serves the remote
		// half of the Source interface's Task accessor. The store copies
		// the entry out under its shard lock, so serialization here never
		// races with a concurrent begin/end merge.
		dataflow := r.URL.Query().Get("dataflow")
		id := r.URL.Query().Get("id")
		info, err := s.store.Task(r.Context(), dataflow, id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var msg TaskMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.CheckWriteTerm(requestTerm(r)); err != nil {
		writeIngestErr(w, err)
		return
	}
	if err := s.store.IngestTask(&msg); err != nil {
		writeIngestErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		// Catalog listing: GET /tasks?dataflow=... serves the remote half
		// of Source.Tasks — the whole catalog in one round trip.
		// A nil catalog (unknown dataflow) serializes as JSON null, which
		// the client decodes back to nil — symmetric with the local store.
		infos, err := s.store.Tasks(r.Context(), r.URL.Query().Get("dataflow"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, infos)
		return
	}
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var msgs []*TaskMsg
	if err := json.NewDecoder(r.Body).Decode(&msgs); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.CheckWriteTerm(requestTerm(r)); err != nil {
		writeIngestErr(w, err)
		return
	}
	if err := s.store.IngestTasks(msgs); err != nil {
		writeIngestErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "ingested": len(msgs)})
}

// handleFrames is the exactly-once ingestion endpoint: a batch of decoded
// capture frames with their (origin, seq) identities, deduplicated by the
// store. The response reports how many frames were newly applied versus
// skipped as redeliveries.
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var frames []FrameMsg
	if err := json.NewDecoder(r.Body).Decode(&frames); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	applied, err := s.store.IngestFramesTerm(requestTerm(r), frames)
	if err != nil {
		writeIngestErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "applied": applied, "deduplicated": len(frames) - applied,
	})
}

// handleStats serves the replication-aware health snapshot: role, term,
// WAL bounds, catalog sizes, plus whatever half the replication layer
// fills in through OnStats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.statsDoc())
}

// readyzResponse is the /readyz body: whether this node should receive
// traffic, and why not when it shouldn't.
type readyzResponse struct {
	Ready  bool   `json:"ready"`
	Role   string `json:"role"`
	Reason string `json:"reason,omitempty"`
	// LagRecords is how far a replica trails its primary (replica only).
	LagRecords uint64 `json:"lag_records,omitempty"`
}

// handleReadyz is traffic readiness: recovery is complete (implied by
// serving), and a read replica is connected to its primary and — when
// ReadyMaxLag is set — trailing by no more than that many records. A
// standalone or primary store that is serving is always ready.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.statsDoc()
	resp := readyzResponse{Ready: true, Role: st.Role}
	if st.Role == RoleReplica.String() {
		switch {
		case st.Replica == nil:
			resp.Ready, resp.Reason = false, "replication stream not attached"
		case !st.Replica.Connected:
			resp.Ready, resp.Reason = false, "disconnected from primary"
		case s.ReadyMaxLag > 0 && st.Replica.LagRecords > s.ReadyMaxLag:
			resp.Ready = false
			resp.Reason = fmt.Sprintf("replica lag %d records exceeds threshold %d",
				st.Replica.LagRecords, s.ReadyMaxLag)
		}
		if st.Replica != nil {
			resp.LagRecords = st.Replica.LagRecords
		}
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var q Query
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rows, err := s.store.Select(r.Context(), q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rows)
}
