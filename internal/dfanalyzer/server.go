package dfanalyzer

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Server exposes the store over the original tool's HTTP 1.1
// request/response interface (uWSGI-style, Fig. 5 of the paper).
type Server struct {
	store *Store
	http  *http.Server
	lis   net.Listener

	// ProcessingDelay adds artificial per-request server work, used by
	// integration tests that emulate the slower Python/uWSGI backend.
	ProcessingDelay time.Duration

	requests atomic.Uint64
}

// NewServer creates a server around the given store (a fresh one if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{store: store}
}

// Store returns the backing store.
func (s *Server) Store() *Store { return s.store }

// Requests returns the number of HTTP requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Close.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dfanalyzer: listen %s: %w", addr, err)
	}
	s.lis = lis
	mux := http.NewServeMux()
	mux.HandleFunc("/dataflow", s.handleDataflow)
	mux.HandleFunc("/dataflow/", s.handleDataflowGet)
	mux.HandleFunc("/task", s.handleTask)
	mux.HandleFunc("/tasks", s.handleTasks)
	mux.HandleFunc("/frames", s.handleFrames)
	mux.HandleFunc("/query", s.handleQuery)
	s.http = &http.Server{Handler: s.count(mux)}
	go s.http.Serve(lis)
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if d := s.ProcessingDelay; d > 0 {
			time.Sleep(d)
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleDataflow(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		var df Dataflow
		if err := json.NewDecoder(r.Body).Decode(&df); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.store.RegisterDataflow(&df); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "registered", "tag": df.Tag})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.store.Dataflows())
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleDataflowGet(w http.ResponseWriter, r *http.Request) {
	tag := strings.TrimPrefix(r.URL.Path, "/dataflow/")
	df, ok := s.store.Dataflow(tag)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("dataflow %q not found", tag))
		return
	}
	writeJSON(w, http.StatusOK, df)
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		// Catalog lookup: GET /task?dataflow=...&id=... serves the remote
		// half of the Source interface's Task accessor. The store copies
		// the entry out under its shard lock, so serialization here never
		// races with a concurrent begin/end merge.
		dataflow := r.URL.Query().Get("dataflow")
		id := r.URL.Query().Get("id")
		info, err := s.store.Task(r.Context(), dataflow, id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var msg TaskMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.IngestTask(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		// Catalog listing: GET /tasks?dataflow=... serves the remote half
		// of Source.Tasks — the whole catalog in one round trip.
		// A nil catalog (unknown dataflow) serializes as JSON null, which
		// the client decodes back to nil — symmetric with the local store.
		infos, err := s.store.Tasks(r.Context(), r.URL.Query().Get("dataflow"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, infos)
		return
	}
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var msgs []*TaskMsg
	if err := json.NewDecoder(r.Body).Decode(&msgs); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store.IngestTasks(msgs); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "ingested": len(msgs)})
}

// handleFrames is the exactly-once ingestion endpoint: a batch of decoded
// capture frames with their (origin, seq) identities, deduplicated by the
// store. The response reports how many frames were newly applied versus
// skipped as redeliveries.
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var frames []FrameMsg
	if err := json.NewDecoder(r.Body).Decode(&frames); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	applied, err := s.store.IngestFrames(frames)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "applied": applied, "deduplicated": len(frames) - applied,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var q Query
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rows, err := s.store.Select(r.Context(), q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rows)
}
