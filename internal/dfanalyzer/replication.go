package dfanalyzer

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"github.com/provlight/provlight/internal/wal"
)

// This file is the store side of WAL-shipping replication (internal/
// replica drives the wire protocol): role and term state, the fenced
// write guard, the follower apply path that mirrors the primary's WAL
// byte for byte, and snapshot install/export for follower bootstrap.
//
// The fencing model is a single monotonic *term*, Raft-style but without
// elections — promotion is an explicit operator (or harness) action:
//
//   - every store has a current term, persisted as a WAL record and in
//     snapshots, so it survives restarts and ships to followers through
//     the ordinary replication stream;
//   - promotion bumps the term by one and records the WAL position where
//     the new term began (TermStart);
//   - writers (translators, HTTP clients) stamp the term they believe is
//     current into each write; the store rejects mismatches, so a
//     translator still feeding a deposed primary — or a deposed primary
//     accepting writes after the cluster moved on — cannot silently
//     swallow frames that the client's spool will then discard on ack;
//   - a rejoining follower whose WAL extends past the promotion point of
//     a newer term has *diverged* (its tail was never replicated and the
//     new lineage wrote different records there); the primary refuses it
//     until its data directory is reset.

// Role is a store's replication role.
type Role int32

const (
	// RoleStandalone is the default: a single-node store, no fencing.
	RoleStandalone Role = iota
	// RolePrimary accepts writes and ships its WAL to followers.
	RolePrimary
	// RoleReplica replays a primary's WAL and serves reads; every
	// external write path is rejected with ErrNotPrimary.
	RoleReplica
)

// String returns "standalone", "primary", or "replica".
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	default:
		return "standalone"
	}
}

// Errors of the fenced write path. Match with errors.Is.
var (
	// ErrNotPrimary reports a write sent to a read replica.
	ErrNotPrimary = errors.New("dfanalyzer: store is a read replica, not the primary")
	// ErrStaleTerm reports a write whose replication term does not match
	// the store's current term (a deposed primary, or a writer that has
	// not yet learned of a promotion).
	ErrStaleTerm = errors.New("dfanalyzer: replication term mismatch")
	// ErrDiverged reports a follower whose WAL is not a prefix of the
	// primary's lineage; its data directory must be reset before it can
	// follow again.
	ErrDiverged = errors.New("dfanalyzer: follower log diverged from primary lineage")
)

// replState is the atomically-readable replication state of a Store.
// Mutations happen under the store's commitMu; reads (the write guard,
// stats) are lock-free.
type replState struct {
	role      atomic.Int32
	term      atomic.Uint64
	termStart atomic.Uint64 // WAL seq at which the current term began
	// applied is the replica apply cursor: the highest replicated WAL
	// sequence whose in-memory effects are visible to queries. It trails
	// the WAL tail inside a batched apply (records are logged in one write
	// before their ops run), which is exactly why it exists — "caught up"
	// for read routing and follower acks must mean applied, not just
	// logged. Zero until the first replicated apply; see Store.AppliedSeq.
	applied atomic.Uint64
}

// Role returns the store's replication role.
func (s *Store) Role() Role { return Role(s.repl.role.Load()) }

// CurrentTerm returns the store's replication term (0 until a term is
// adopted — the unfenced single-node state).
func (s *Store) CurrentTerm() uint64 { return s.repl.term.Load() }

// TermStartSeq returns the WAL sequence number at which the current term
// began (the promotion point; 0 for term 0).
func (s *Store) TermStartSeq() uint64 { return s.repl.termStart.Load() }

// CheckWriteTerm is the fenced write guard: it rejects writes to a read
// replica, and — when the writer stamped a non-zero term — writes whose
// term does not match the store's. Term 0 writers (legacy, single-node)
// pass the term check unconditionally.
func (s *Store) CheckWriteTerm(term uint64) error {
	if s.Role() == RoleReplica {
		return ErrNotPrimary
	}
	if cur := s.repl.term.Load(); term != 0 && term != cur {
		return fmt.Errorf("%w: writer term %d, store term %d", ErrStaleTerm, term, cur)
	}
	return nil
}

// AdoptTerm raises the store's term to term, write-ahead logging the
// change on durable stores so it survives restarts and replicates to
// followers. Adopting a term at or below the current one is a no-op
// (terms are monotonic). The store's role is unchanged.
func (s *Store) AdoptTerm(term uint64) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.adoptTermLocked(term)
}

func (s *Store) adoptTermLocked(term uint64) error {
	if term <= s.repl.term.Load() {
		return nil
	}
	start := uint64(0)
	if s.dur != nil {
		_, err := s.dur.log.AppendWith(func(seq uint64) ([]byte, error) {
			start = seq
			return json.Marshal(&walOp{Op: "term", Term: term, TermStart: seq})
		})
		if err != nil {
			return fmt.Errorf("dfanalyzer: log term record: %w", err)
		}
		s.dur.opsSinceSnap++
	}
	s.setTermState(term, start)
	return nil
}

// setTermState installs a term transition (live adoption, WAL replay, or
// snapshot restore).
func (s *Store) setTermState(term, start uint64) {
	s.repl.term.Store(term)
	s.repl.termStart.Store(start)
}

// Promote makes the store the primary of a new term: term+1 is adopted
// (and WAL-logged, marking the promotion point) and the role flips to
// primary. Returns the new term. The caller must have stopped any
// replication stream into this store first (replica.Follower.Promote
// handles the ordering).
func (s *Store) Promote() (uint64, error) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	next := s.repl.term.Load() + 1
	if err := s.adoptTermLocked(next); err != nil {
		return 0, err
	}
	s.repl.role.Store(int32(RolePrimary))
	return next, nil
}

// BecomePrimary marks the store primary without changing its term,
// adopting term 1 if no term was ever adopted (the fresh-cluster case).
func (s *Store) BecomePrimary() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.repl.term.Load() == 0 {
		if err := s.adoptTermLocked(1); err != nil {
			return err
		}
	}
	s.repl.role.Store(int32(RolePrimary))
	return nil
}

// BeginFollowing marks the store a read replica: every external write
// path is rejected with ErrNotPrimary until Promote.
func (s *Store) BeginFollowing() {
	s.repl.role.Store(int32(RoleReplica))
}

// ReplicationWAL exposes the store's write-ahead log for WAL shipping
// (nil for an in-memory store, which cannot replicate).
func (s *Store) ReplicationWAL() *wal.Log {
	if s.dur == nil {
		return nil
	}
	return s.dur.log
}

// WALSeqs returns the store's retained WAL bounds (0, 0 when in-memory
// or empty). On a follower, last is the last replicated-and-applied
// sequence number, the resumable offset.
func (s *Store) WALSeqs() (first, last uint64) {
	if s.dur == nil {
		return 0, 0
	}
	return s.dur.log.FirstSeq(), s.dur.log.LastSeq()
}

// AppliedSeq returns the highest WAL sequence whose effects are visible
// to queries on this store. On a replica it is the apply cursor (which
// can trail the WAL tail mid-batch); elsewhere — and on a freshly
// recovered replica that has not applied a replicated record yet — it is
// the WAL tail, since recovery replays everything it retains.
func (s *Store) AppliedSeq() uint64 {
	if a := s.repl.applied.Load(); a > 0 {
		return a
	}
	_, last := s.WALSeqs()
	return last
}

// SnapshotSeq returns the WAL sequence covered by the latest on-disk
// snapshot (0 when none has been taken).
func (s *Store) SnapshotSeq() uint64 {
	if s.dur == nil {
		return 0
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.dur.snapSeq
}

// SnapshotBytes returns the on-disk snapshot document and the WAL
// sequence it covers, taking a fresh snapshot first when none exists —
// the bootstrap payload for a follower too far behind the retained WAL.
func (s *Store) SnapshotBytes() ([]byte, uint64, error) {
	if s.dur == nil {
		return nil, 0, fmt.Errorf("dfanalyzer: in-memory store has no snapshot")
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if _, err := os.Stat(s.dur.snapPath); os.IsNotExist(err) {
		if err := s.snapshotLocked(); err != nil {
			return nil, 0, err
		}
	}
	data, err := os.ReadFile(s.dur.snapPath)
	if err != nil {
		return nil, 0, err
	}
	return data, s.dur.snapSeq, nil
}

// ApplyReplicated appends one record shipped from the primary to the
// follower's own WAL — byte-identical, at the same sequence number — and
// applies it, reusing the recovery replay path (applyOp), so a promoted
// follower's state and dedup table are exactly what the primary's
// recovery would have produced. Sequence numbers below the follower's
// tail are duplicates of already-applied records (a resumed stream
// overlapping) and are ignored; a gap above the tail (a quarantined
// segment on the primary) is skipped with Reserve so numbering stays
// aligned.
func (s *Store) ApplyReplicated(seq uint64, payload []byte) error {
	return s.ApplyReplicatedBatch([]ReplRecord{{Seq: seq, Payload: payload}})
}

// ReplRecord is one primary WAL record in flight to a follower: the
// primary-side sequence number and the raw record payload.
type ReplRecord struct {
	Seq     uint64
	Payload []byte
}

// ApplyReplicatedBatch applies a run of shipped records under one commit
// lock acquisition, mirroring each contiguous run into the local WAL with
// a single batched append (wal.Log.AppendBatch) — the difference between
// a follower that keeps up with a 10k frames/s primary and one that
// drowns in per-record write(2) calls. Semantics are identical to calling
// ApplyReplicated per record: duplicates below the local tail are
// skipped, gaps are Reserved, and a sequence-skew between the primary's
// numbering and the local append aborts the batch.
func (s *Store) ApplyReplicatedBatch(recs []ReplRecord) error {
	if s.dur == nil {
		return fmt.Errorf("dfanalyzer: in-memory store cannot replicate")
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.repl.applied.Load() == 0 {
		// First replicated apply since open: everything the recovery
		// replayed is applied, so the cursor starts at the current tail.
		s.repl.applied.Store(s.dur.log.LastSeq())
	}
	for i := 0; i < len(recs); {
		last := s.dur.log.LastSeq()
		if recs[i].Seq <= last {
			i++ // already replicated and applied
			continue
		}
		if recs[i].Seq > last+1 {
			s.dur.log.Reserve(recs[i].Seq - 1)
		}
		// Extend to the contiguous run starting here; it lands in one
		// batched append.
		j := i + 1
		for j < len(recs) && recs[j].Seq == recs[j-1].Seq+1 {
			j++
		}
		payloads := make([][]byte, j-i)
		for k := i; k < j; k++ {
			payloads[k-i] = recs[k].Payload
		}
		appended, err := s.dur.log.AppendBatch(payloads)
		if err != nil {
			return err
		}
		if appended != recs[j-1].Seq {
			return fmt.Errorf("dfanalyzer: replication seq skew: primary %d, local %d",
				recs[j-1].Seq, appended)
		}
		for k := i; k < j; k++ {
			s.dur.opsSinceSnap++
			var op walOp
			if err := json.Unmarshal(recs[k].Payload, &op); err != nil {
				return fmt.Errorf("dfanalyzer: corrupt replicated op at seq %d: %w", recs[k].Seq, err)
			}
			if op.Op == "term" {
				// Replicated term records carry their primary-side position;
				// trust it rather than the local append (they are equal by
				// construction, but the payload is the authority).
				s.setTermState(op.Term, op.TermStart)
				continue
			}
			if err := s.applyOp(&op); err != nil {
				return err
			}
		}
		s.repl.applied.Store(recs[j-1].Seq)
		i = j
	}
	return s.maybeSnapshotLocked()
}

// InstallSnapshot resets the store to a primary's snapshot: the in-memory
// state is discarded, the snapshot is loaded and persisted locally, and
// the WAL is advanced past the covered sequence so replication resumes at
// snapSeq+1. Only a follower whose log is *behind* the snapshot may
// install it (bootstrap or catch-up past a truncation gap); a log ahead
// of the snapshot means divergence, which the replication handshake
// rejects before it gets here.
func (s *Store) InstallSnapshot(data []byte) (uint64, error) {
	if s.dur == nil {
		return 0, fmt.Errorf("dfanalyzer: in-memory store cannot install snapshots")
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	var snap snapFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("dfanalyzer: corrupt replication snapshot: %w", err)
	}
	if last := s.dur.log.LastSeq(); last > snap.WalSeq {
		return 0, fmt.Errorf("%w: local log at %d, snapshot covers %d", ErrDiverged, last, snap.WalSeq)
	}
	// Reset and reload: shards and dedup state are replaced wholesale.
	s.mu.Lock()
	s.shards = map[string]*dataflowShard{}
	s.mu.Unlock()
	s.dedup = newDedupTable()
	s.installSnapshotState(&snap)
	if err := wal.WriteFileAtomic(s.dur.snapPath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return 0, err
	}
	s.dur.snapSeq = snap.WalSeq
	s.dur.opsSinceSnap = 0
	s.dur.log.Reserve(snap.WalSeq)
	if err := s.dur.log.TruncateFront(snap.WalSeq); err != nil {
		return 0, err
	}
	s.repl.applied.Store(snap.WalSeq)
	return snap.WalSeq, nil
}

// StoreStats is the replication-aware health snapshot served by the HTTP
// /stats endpoint. The core fields come from Store.Stats; the Replication
// and Replica halves are filled in by the replication layer (internal/
// replica) through Server.OnStats — whichever side this store is on.
type StoreStats struct {
	Role      string `json:"role"`
	Term      uint64 `json:"term"`
	TermStart uint64 `json:"term_start,omitempty"`
	Dataflows int    `json:"dataflows"`
	Tasks     int    `json:"tasks"`
	// WAL bounds and snapshot position (0 for in-memory stores).
	WALFirstSeq uint64 `json:"wal_first_seq,omitempty"`
	WALLastSeq  uint64 `json:"wal_last_seq,omitempty"`
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	// Background WAL sync failures: silent durability degradation an
	// operator must see (zero/empty when healthy or in-memory).
	WALSyncErrors    uint64 `json:"wal_sync_errors,omitempty"`
	LastWALSyncError string `json:"last_wal_sync_error,omitempty"`
	// Replication is the primary-side view (nil unless this store ships
	// its WAL to followers).
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Replica is the follower-side view (nil unless this store replays a
	// primary's WAL).
	Replica *ReplicaStats `json:"replica,omitempty"`
}

// ReplicationStats is the primary's view of its followers.
type ReplicationStats struct {
	Listen    string          `json:"listen"`
	MinSync   int             `json:"min_sync"`
	Followers []FollowerStats `json:"followers"`
}

// FollowerStats is one follower's replication health as seen from the
// primary.
type FollowerStats struct {
	ID string `json:"id"`
	// AckedSeq is the highest WAL sequence the follower has confirmed
	// durable; SentSeq is the highest streamed to it.
	AckedSeq uint64 `json:"acked_seq"`
	SentSeq  uint64 `json:"sent_seq"`
	// LagRecords/LagBytes measure how far the follower trails the
	// primary's WAL tail: records behind the last appended sequence, and
	// bytes sent but not yet acknowledged.
	LagRecords uint64 `json:"lag_records"`
	LagBytes   uint64 `json:"lag_bytes"`
}

// ReplicaStats is the follower's view of its primary.
type ReplicaStats struct {
	Primary string `json:"primary"`
	// AppliedSeq is the last WAL sequence replayed locally; PrimarySeq is
	// the primary's tail as of the last record or heartbeat received.
	AppliedSeq uint64 `json:"applied_seq"`
	PrimarySeq uint64 `json:"primary_seq"`
	LagRecords uint64 `json:"lag_records"`
	// StalenessMillis is how long ago the last record or heartbeat
	// arrived — the read-routing staleness bound's input.
	StalenessMillis int64 `json:"staleness_ms"`
	Connected       bool  `json:"connected"`
}

// Stats returns the store-local half of StoreStats (role, term, WAL
// bounds, catalog sizes). The server's /stats handler merges in the
// replication layer's half via Server.OnStats.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Role:      s.Role().String(),
		Term:      s.CurrentTerm(),
		TermStart: s.TermStartSeq(),
	}
	tags := s.Dataflows()
	st.Dataflows = len(tags)
	for _, tag := range tags {
		st.Tasks += s.TaskCount(tag)
	}
	if s.dur != nil {
		st.WALFirstSeq, st.WALLastSeq = s.WALSeqs()
		st.SnapshotSeq = s.SnapshotSeq()
		st.WALSyncErrors, st.LastWALSyncError = s.dur.log.SyncErrors()
	}
	return st
}
