package dfanalyzer

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/provlight/provlight/internal/wal"
)

// This file adds crash durability to Store: a write-ahead log of every
// mutating operation (registration, task ingestion), periodic snapshots
// written with the atomic temp+rename pattern, recovery-on-open that loads
// the latest snapshot and replays the WAL tail, and a persistent
// per-origin frame-deduplication table that makes redelivered spool
// frames idempotent (exactly-once ingestion across client, translator,
// and server restarts).
//
// A Store from NewStore stays purely in-memory (the historical behaviour,
// zero overhead); OpenStore returns a durable one. The ingestion fast
// path is unchanged for in-memory stores; durable stores serialize
// mutations through the WAL so that replay order equals apply order.

// StoreOptions configures a durable store.
type StoreOptions struct {
	// Dir is the data directory (created if missing): WAL segments under
	// "wal/", snapshots as "snapshot.json".
	Dir string
	// Sync is the WAL fsync policy (wal.SyncEach / SyncInterval / SyncOff).
	// Default SyncInterval.
	Sync wal.SyncPolicy
	// SyncInterval is the background fsync period. Default 100 ms.
	SyncInterval time.Duration
	// SnapshotEvery snapshots after this many WAL-logged operations, then
	// reclaims the WAL behind the snapshot. Default 4096; negative
	// disables periodic snapshots (the WAL grows until Snapshot is called).
	SnapshotEvery int
	// SegmentSize is the WAL segment rotation size. Default 8 MiB.
	SegmentSize int64
}

// durability is the persistent half of a durable Store.
type durability struct {
	log           *wal.Log
	snapPath      string
	snapshotEvery int

	// opsSinceSnap counts WAL appends since the last snapshot. Guarded by
	// the store's commit lock (Store.commitMu).
	opsSinceSnap int
	snapSeq      uint64 // WAL seq covered by the latest snapshot
}

// walOp is one logged mutation, JSON-encoded into a WAL record.
type walOp struct {
	Op       string     `json:"op"` // "register" | "ingest" | "frames" | "term"
	Dataflow *Dataflow  `json:"dataflow,omitempty"`
	Tasks    []*TaskMsg `json:"tasks,omitempty"`
	Frames   []FrameMsg `json:"frames,omitempty"`
	// Term/TermStart record a replication term adoption (Op == "term"):
	// the new term and the WAL position where it began. Logging the term
	// makes fencing survive restarts and ship to followers through the
	// ordinary replication stream (see replication.go).
	Term      uint64 `json:"term,omitempty"`
	TermStart uint64 `json:"term_start,omitempty"`
}

// FrameMsg is one decoded capture frame with its provenance identity: the
// origin topic the frame arrived on and the durable sequence number the
// spooling client stamped into it. Seq 0 means "no durable id" (a
// non-spooling client); such frames are ingested without deduplication.
type FrameMsg struct {
	Origin string     `json:"origin,omitempty"`
	Seq    uint64     `json:"seq,omitempty"`
	Tasks  []*TaskMsg `json:"tasks"`
}

// OpenStore opens a durable store in opts.Dir, recovering the latest
// snapshot plus the WAL tail. The returned store behaves exactly like an
// in-memory one, with every mutation write-ahead logged.
func OpenStore(opts StoreOptions) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("dfanalyzer: StoreOptions.Dir required")
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 4096
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("dfanalyzer: create data dir: %w", err)
	}
	s := NewStore()
	s.dedup = newDedupTable()
	snapPath := filepath.Join(opts.Dir, "snapshot.json")
	snapSeq, err := s.loadSnapshot(snapPath)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(opts.Dir, "wal"), wal.Options{
		Sync:         opts.Sync,
		SyncInterval: opts.SyncInterval,
		SegmentSize:  opts.SegmentSize,
	})
	if err != nil {
		return nil, err
	}
	// Replay the tail: every op after the snapshot point, in append order.
	err = log.Replay(snapSeq+1, func(seq uint64, payload []byte) error {
		var op walOp
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("dfanalyzer: corrupt WAL op at seq %d: %w", seq, err)
		}
		return s.applyOp(&op)
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	s.dur = &durability{
		log:           log,
		snapPath:      snapPath,
		snapshotEvery: opts.SnapshotEvery,
		snapSeq:       snapSeq,
	}
	return s, nil
}

// applyOp applies one recovered WAL operation to the in-memory state,
// including the dedup table (so recovery rebuilds exactly the applied
// set). Best effort on ingest errors: a record the live path accepted
// cannot fail replay, but quarantined-gap WALs may reference a dataflow
// whose registration was lost — those ops are skipped rather than fatal.
// Frames are dedup-marked before the best-effort apply, matching the
// live path's poison-frame rule (see Store.IngestFrames): a frame that
// cannot apply is counted as handled rather than redelivered forever.
func (s *Store) applyOp(op *walOp) error {
	switch op.Op {
	case "register":
		if op.Dataflow == nil {
			return nil
		}
		return s.registerDataflowApply(op.Dataflow)
	case "ingest":
		_ = s.ingestTasksApply(op.Tasks)
		return nil
	case "frames":
		for i := range op.Frames {
			f := &op.Frames[i]
			if f.Origin != "" && f.Seq > 0 && !s.dedup.mark(f.Origin, f.Seq) {
				continue // already applied before the snapshot
			}
			_ = s.ingestTasksApply(f.Tasks)
		}
		return nil
	case "term":
		s.setTermState(op.Term, op.TermStart)
		return nil
	default:
		return fmt.Errorf("dfanalyzer: unknown WAL op %q", op.Op)
	}
}

// logOp appends a mutation to the WAL (write-ahead: callers apply only
// after this returns). Callers hold s.commitMu.
func (s *Store) logOp(op *walOp) error {
	payload, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("dfanalyzer: encode WAL op: %w", err)
	}
	if _, err := s.dur.log.Append(payload); err != nil {
		return err
	}
	s.dur.opsSinceSnap++
	return nil
}

// maybeSnapshotLocked snapshots when SnapshotEvery ops accumulated. It
// must run only *after* the logged op was applied — a snapshot cut
// between log and apply would claim a WAL position ahead of the state it
// captured, silently dropping that op on recovery. Callers hold
// s.commitMu.
func (s *Store) maybeSnapshotLocked() error {
	if s.dur.snapshotEvery > 0 && s.dur.opsSinceSnap >= s.dur.snapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			return fmt.Errorf("dfanalyzer: periodic snapshot: %w", err)
		}
	}
	return nil
}

// Snapshot writes a point-in-time snapshot (atomic temp+rename) and
// reclaims the WAL behind it. No-op for in-memory stores.
func (s *Store) Snapshot() error {
	if s.dur == nil {
		return nil
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.snapshotLocked()
}

// Close syncs the WAL and releases the durable resources; the store
// remains readable. No-op for in-memory stores.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.dur.log.Close()
}

// ---- snapshot format ----

// snapFile is the on-disk snapshot document.
type snapFile struct {
	// WalSeq is the WAL sequence number the snapshot covers: recovery
	// replays strictly after it.
	WalSeq uint64                `json:"wal_seq"`
	Dedup  map[string]originSnap `json:"dedup,omitempty"`
	Shards map[string]shardSnap  `json:"shards"`
	// Term/TermStart carry the replication term the snapshot was cut
	// under, so fencing state survives WAL truncation behind the snapshot.
	Term      uint64 `json:"term,omitempty"`
	TermStart uint64 `json:"term_start,omitempty"`
}

type shardSnap struct {
	Spec   *Dataflow            `json:"spec,omitempty"`
	Tasks  []*TaskMsg           `json:"tasks,omitempty"` // in taskOrder
	Tables map[string]tableSnap `json:"tables,omitempty"`
}

type tableSnap struct {
	Schema  SetSchema `json:"schema"`
	TaskIDs []string  `json:"task_ids,omitempty"`
	Cols    []colSnap `json:"cols,omitempty"`
}

type colSnap struct {
	Name string    `json:"name"`
	Type AttrType  `json:"type"`
	Nums []float64 `json:"nums,omitempty"`
	Strs []string  `json:"strs,omitempty"`
}

// snapshotLocked marshals the whole store under its shard locks and
// writes it atomically. Callers hold s.commitMu, which excludes every
// durable mutation, so the cut is consistent with the WAL position.
func (s *Store) snapshotLocked() error {
	snap := snapFile{
		WalSeq:    s.dur.log.LastSeq(),
		Dedup:     s.dedup.snapshot(),
		Shards:    map[string]shardSnap{},
		Term:      s.repl.term.Load(),
		TermStart: s.repl.termStart.Load(),
	}
	s.mu.RLock()
	tags := make([]string, 0, len(s.shards))
	for tag := range s.shards {
		tags = append(tags, tag)
	}
	s.mu.RUnlock()
	sort.Strings(tags)
	for _, tag := range tags {
		sh := s.shard(tag)
		if sh == nil {
			continue
		}
		sh.mu.RLock()
		ss := shardSnap{Spec: sh.spec, Tables: map[string]tableSnap{}}
		for _, id := range sh.taskOrder {
			cp := *sh.tasks[id]
			cp.Dependencies = append([]string(nil), cp.Dependencies...)
			ss.Tasks = append(ss.Tasks, &cp)
		}
		for setTag, table := range sh.tables {
			ts := tableSnap{Schema: table.Schema, TaskIDs: append([]string(nil), table.taskIDs...)}
			for i := range table.cols {
				c := &table.cols[i]
				ts.Cols = append(ts.Cols, colSnap{
					Name: c.name, Type: c.typ,
					Nums: append([]float64(nil), c.nums...),
					Strs: append([]string(nil), c.strs...),
				})
			}
			ss.Tables[setTag] = ts
		}
		sh.mu.RUnlock()
		snap.Shards[tag] = ss
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(s.dur.snapPath, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		return err
	}
	s.dur.snapSeq = snap.WalSeq
	s.dur.opsSinceSnap = 0
	// The snapshot covers everything up to WalSeq; older WAL segments are
	// dead weight now.
	return s.dur.log.TruncateFront(snap.WalSeq)
}

// loadSnapshot restores the store from the latest snapshot, returning the
// WAL sequence it covers (0 when no snapshot exists).
func (s *Store) loadSnapshot(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("dfanalyzer: read snapshot: %w", err)
	}
	var snap snapFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("dfanalyzer: corrupt snapshot %s: %w", path, err)
	}
	s.installSnapshotState(&snap)
	return snap.WalSeq, nil
}

// installSnapshotState loads a parsed snapshot into the in-memory state
// (recovery-on-open, and InstallSnapshot on a bootstrapping follower).
func (s *Store) installSnapshotState(snap *snapFile) {
	s.dedup.restore(snap.Dedup)
	s.setTermState(snap.Term, snap.TermStart)
	for tag, ss := range snap.Shards {
		sh := s.ensureShard(tag)
		sh.mu.Lock()
		sh.spec = ss.Spec
		for setTag, ts := range ss.Tables {
			table := &Table{
				Schema:  ts.Schema,
				taskIDs: ts.TaskIDs,
				rows:    len(ts.TaskIDs),
				cols:    make([]column, len(ts.Cols)),
			}
			for i, cs := range ts.Cols {
				table.cols[i] = column{name: cs.Name, typ: cs.Type, nums: cs.Nums, strs: cs.Strs}
				// JSON round trips nil and empty slices loosely; rows is
				// authoritative via taskIDs.
			}
			sh.tables[setTag] = table
		}
		for _, task := range ss.Tasks {
			sh.tasks[task.ID] = task
			sh.taskOrder = append(sh.taskOrder, task.ID)
		}
		sh.mu.Unlock()
	}
}

// ---- frame deduplication ----

// dedupTable tracks, per origin topic, which durable frame ids have been
// applied: a floor (everything at or below it applied) plus a sparse set
// above it, mirroring the spool's ack bookkeeping on the client side.
type dedupTable struct {
	origins map[string]*originState
}

type originState struct {
	floor uint64
	seen  map[uint64]struct{}
}

type originSnap struct {
	Floor uint64   `json:"floor"`
	Seen  []uint64 `json:"seen,omitempty"`
}

func newDedupTable() *dedupTable {
	return &dedupTable{origins: map[string]*originState{}}
}

// mark records (origin, seq) as applied, reporting false when it already
// was (the duplicate-detection hit). Callers serialize access (the
// store's commit lock, or recovery's single goroutine).
func (d *dedupTable) mark(origin string, seq uint64) bool {
	st, ok := d.origins[origin]
	if !ok {
		st = &originState{seen: map[uint64]struct{}{}}
		d.origins[origin] = st
	}
	if seq <= st.floor {
		return false
	}
	if _, dup := st.seen[seq]; dup {
		return false
	}
	st.seen[seq] = struct{}{}
	for {
		if _, ok := st.seen[st.floor+1]; !ok {
			break
		}
		delete(st.seen, st.floor+1)
		st.floor++
	}
	return true
}

func (d *dedupTable) applied(origin string, seq uint64) bool {
	st, ok := d.origins[origin]
	if !ok {
		return false
	}
	if seq <= st.floor {
		return true
	}
	_, dup := st.seen[seq]
	return dup
}

func (d *dedupTable) snapshot() map[string]originSnap {
	if d == nil || len(d.origins) == 0 {
		return nil
	}
	out := make(map[string]originSnap, len(d.origins))
	for origin, st := range d.origins {
		seen := make([]uint64, 0, len(st.seen))
		for s := range st.seen {
			seen = append(seen, s)
		}
		sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
		out[origin] = originSnap{Floor: st.floor, Seen: seen}
	}
	return out
}

func (d *dedupTable) restore(snap map[string]originSnap) {
	for origin, os := range snap {
		st := &originState{floor: os.Floor, seen: map[uint64]struct{}{}}
		for _, s := range os.Seen {
			st.seen[s] = struct{}{}
		}
		d.origins[origin] = st
	}
}
