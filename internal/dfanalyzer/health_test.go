package dfanalyzer

import (
	"encoding/json"
	"net/http"
	"testing"
)

func getJSONStatus(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestHealthEndpointsStandalone: a serving standalone store is live and
// ready.
func TestHealthEndpointsStandalone(t *testing.T) {
	srv := NewServer(NewStore())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code := getJSONStatus(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	var ready readyzResponse
	if code := getJSONStatus(t, base+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if !ready.Ready || ready.Role != "standalone" {
		t.Fatalf("readyz = %+v, want ready standalone", ready)
	}
}

// TestHealthEndpointsReplica: a replica's readiness tracks its
// replication stream — attached and under the lag threshold.
func TestHealthEndpointsReplica(t *testing.T) {
	store := NewStore()
	store.BeginFollowing()
	srv := NewServer(store)
	srv.ReadyMaxLag = 10

	// The replication layer's half of /stats, as replica.Follower's
	// AttachStats would fill it in.
	replica := &ReplicaStats{Connected: true, LagRecords: 3}
	srv.OnStats = func(st *StoreStats) { st.Replica = replica }

	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var ready readyzResponse
	if code := getJSONStatus(t, base+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("connected replica under threshold: /readyz = %d, want 200", code)
	}
	if !ready.Ready || ready.LagRecords != 3 {
		t.Fatalf("readyz = %+v, want ready with lag 3", ready)
	}

	replica.LagRecords = 11
	if code := getJSONStatus(t, base+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("lagging replica: /readyz = %d, want 503", code)
	}
	if ready.Ready || ready.Reason == "" {
		t.Fatalf("readyz = %+v, want not ready with reason", ready)
	}

	replica.LagRecords = 3
	replica.Connected = false
	if code := getJSONStatus(t, base+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("disconnected replica: /readyz = %d, want 503", code)
	}
}
