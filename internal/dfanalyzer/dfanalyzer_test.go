package dfanalyzer

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

func trainingDataflow() *Dataflow {
	return &Dataflow{
		Tag: "fltraining",
		Transformations: []Transformation{
			{
				Tag: "training",
				Input: []SetSchema{{Tag: "training_input", Attributes: []Attribute{
					{Name: "lr", Type: Numeric},
					{Name: "batch", Type: Numeric},
					{Name: "optimizer", Type: Text},
				}}},
				Output: []SetSchema{{Tag: "training_output", Attributes: []Attribute{
					{Name: "epoch", Type: Numeric},
					{Name: "loss", Type: Numeric},
					{Name: "accuracy", Type: Numeric},
				}}},
			},
		},
	}
}

func TestDataflowValidate(t *testing.T) {
	if err := trainingDataflow().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Dataflow{
		{},
		{Tag: "x", Transformations: []Transformation{{}}},
		{Tag: "x", Transformations: []Transformation{{Tag: "a"}, {Tag: "a"}}},
		{Tag: "x", Transformations: []Transformation{{Tag: "a", Input: []SetSchema{{Tag: "s",
			Attributes: []Attribute{{Name: "v", Type: "WEIRD"}}}}}}},
		{Tag: "x", Transformations: []Transformation{{Tag: "a", Input: []SetSchema{{Tag: "s",
			Attributes: []Attribute{{Name: "v", Type: Numeric}, {Name: "v", Type: Text}}}}}}},
	}
	for i, df := range bad {
		if err := df.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func ingestEpochs(t *testing.T, store *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		start := time.Now()
		begin := &TaskMsg{
			Dataflow: "fltraining", Transformation: "training",
			ID: fmt.Sprintf("epoch-%d", i), Status: StatusRunning, StartTime: &start,
			Sets: []SetData{{Tag: "training_input", Elements: []Element{
				{0.01 * float64(i+1), float64(32), "sgd"},
			}}},
		}
		if err := store.IngestTask(begin); err != nil {
			t.Fatal(err)
		}
		end := time.Now()
		fin := &TaskMsg{
			Dataflow: "fltraining", Transformation: "training",
			ID: fmt.Sprintf("epoch-%d", i), Status: StatusFinished, EndTime: &end,
			Sets: []SetData{{Tag: "training_output", Elements: []Element{
				{float64(i), 1.0 / float64(i+1), 0.5 + float64(i)*0.01},
			}}},
		}
		if err := store.IngestTask(fin); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreIngestAndSelect(t *testing.T) {
	store := NewStore()
	if err := store.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	ingestEpochs(t, store, 20)

	if got := store.TaskCount("fltraining"); got != 20 {
		t.Errorf("task count = %d, want 20", got)
	}
	// Paper §I query (ii): top-3 accuracy values.
	rows, err := store.Select(Query{
		Dataflow: "fltraining", Set: "training_output",
		OrderBy: "accuracy", Desc: true, Limit: 3,
		Project: []string{"epoch", "accuracy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0]["accuracy"].(float64) < rows[1]["accuracy"].(float64) {
		t.Error("rows not sorted descending")
	}
	if rows[0]["epoch"].(float64) != 19 {
		t.Errorf("best epoch = %v, want 19", rows[0]["epoch"])
	}
	// Filtered query: loss below threshold.
	rows, err = store.Select(Query{
		Dataflow: "fltraining", Set: "training_output",
		Where: []Pred{{Attr: "loss", Op: Lt, Value: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r["loss"].(float64) >= 0.1 {
			t.Errorf("predicate failed: %v", r)
		}
	}
	if len(rows) != 10 { // 1/(i+1) < 0.1 for i=10..19
		t.Errorf("filtered rows = %d, want 10", len(rows))
	}
	// Text predicate.
	rows, err = store.Select(Query{
		Dataflow: "fltraining", Set: "training_input",
		Where: []Pred{{Attr: "optimizer", Op: Eq, Value: "sgd"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Errorf("text filter rows = %d, want 20", len(rows))
	}
}

func TestStoreErrors(t *testing.T) {
	store := NewStore()
	if err := store.IngestTask(&TaskMsg{Dataflow: "nope", Transformation: "t", ID: "1", Status: StatusRunning}); err == nil {
		t.Error("unknown dataflow should fail")
	}
	if err := store.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	bad := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "1", Status: StatusRunning,
		Sets: []SetData{{Tag: "missing_set", Elements: []Element{{1.0}}}}}
	if err := store.IngestTask(bad); err == nil {
		t.Error("unknown set should fail")
	}
	arity := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "1", Status: StatusRunning,
		Sets: []SetData{{Tag: "training_input", Elements: []Element{{1.0}}}}}
	if err := store.IngestTask(arity); err == nil {
		t.Error("wrong arity should fail")
	}
	typeErr := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "1", Status: StatusRunning,
		Sets: []SetData{{Tag: "training_input", Elements: []Element{{"notnum", 1.0, "sgd"}}}}}
	if err := store.IngestTask(typeErr); err == nil {
		t.Error("type mismatch should fail")
	}
	if _, err := store.Select(Query{Dataflow: "fltraining", Set: "training_output", Where: []Pred{{Attr: "ghost", Op: Eq, Value: 1}}}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestServerEndToEnd(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient("http://" + srv.Addr())

	if err := client.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	msg := &TaskMsg{
		Dataflow: "fltraining", Transformation: "training", ID: "e0",
		Status: StatusRunning, StartTime: &start,
		Sets: []SetData{{Tag: "training_input", Elements: []Element{{0.1, 16.0, "adam"}}}},
	}
	if err := client.SendTask(msg); err != nil {
		t.Fatal(err)
	}
	end := time.Now()
	fin := &TaskMsg{
		Dataflow: "fltraining", Transformation: "training", ID: "e0",
		Status: StatusFinished, EndTime: &end,
		Sets: []SetData{{Tag: "training_output", Elements: []Element{{0.0, 0.4, 0.88}}}},
	}
	if err := client.SendTask(fin); err != nil {
		t.Fatal(err)
	}
	rows, err := client.Query(Query{Dataflow: "fltraining", Set: "training_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["accuracy"].(float64) != 0.88 {
		t.Errorf("rows = %v", rows)
	}
	// Merged task catalog entry has both times and final status.
	task, ok := srv.Store().Task("fltraining", "e0")
	if !ok {
		t.Fatal("task e0 not found")
	}
	if task.Status != StatusFinished || task.StartTime == nil || task.EndTime == nil {
		t.Errorf("merged task = %+v", task)
	}
	if srv.Requests() < 4 {
		t.Errorf("requests = %d, want >= 4", srv.Requests())
	}
}

func TestCapturerTranslatesRecords(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient("http://" + srv.Addr())

	records := []provdm.Record{
		{Event: provdm.EventWorkflowBegin, WorkflowID: "wf", Time: time.Now()},
		{Event: provdm.EventTaskBegin, WorkflowID: "wf", TaskID: "t1", Transformation: "training",
			Status: provdm.StatusRunning, Time: time.Now(),
			Data: []provdm.DataRef{{ID: "in", Attributes: []provdm.Attribute{
				{Name: "lr", Value: 0.05}, {Name: "batch", Value: int64(8)}, {Name: "optimizer", Value: "sgd"},
			}}}},
		{Event: provdm.EventTaskEnd, WorkflowID: "wf", TaskID: "t1", Transformation: "training",
			Status: provdm.StatusFinished, Time: time.Now(),
			Data: []provdm.DataRef{{ID: "out", Attributes: []provdm.Attribute{
				{Name: "epoch", Value: int64(1)}, {Name: "loss", Value: 0.2}, {Name: "accuracy", Value: 0.9},
			}}}},
	}
	df := DataflowFromRecords("wf", records)
	if err := client.RegisterDataflow(df); err != nil {
		t.Fatal(err)
	}
	cap := NewCapturer(client, "wf")
	for i := range records {
		if err := cap.Capture(&records[i]); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	rows, err := client.Query(Query{Dataflow: "wf", Set: "training_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["accuracy"].(float64) != 0.9 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDataflowFromRecords(t *testing.T) {
	records := []provdm.Record{
		{Event: provdm.EventTaskBegin, WorkflowID: "w", TaskID: "a", Transformation: "prep",
			Data: []provdm.DataRef{{ID: "d1", Attributes: []provdm.Attribute{
				{Name: "path", Value: "x.csv"}, {Name: "rows", Value: int64(10)}}}},
			Time: time.Now()},
		{Event: provdm.EventTaskEnd, WorkflowID: "w", TaskID: "a", Transformation: "prep",
			Status: provdm.StatusFinished,
			Data: []provdm.DataRef{{ID: "d2", Attributes: []provdm.Attribute{
				{Name: "clean_rows", Value: int64(9)}}}},
			Time: time.Now()},
	}
	df := DataflowFromRecords("w", records)
	if err := df.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(df.Transformations) != 1 || df.Transformations[0].Tag != "prep" {
		t.Fatalf("df = %+v", df)
	}
	in := df.Transformations[0].Input[0]
	if in.Tag != "prep_input" || len(in.Attributes) != 2 {
		t.Errorf("input set = %+v", in)
	}
	if in.Attributes[0].Name != "path" || in.Attributes[0].Type != Text {
		t.Errorf("path attr = %+v", in.Attributes[0])
	}
	if in.Attributes[1].Type != Numeric {
		t.Errorf("rows attr = %+v", in.Attributes[1])
	}
}

// Property: ingesting N single-element tasks yields N rows and Select with
// no predicates returns them all.
func TestIngestCountProperty(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n % 40)
		store := NewStore()
		if err := store.RegisterDataflow(trainingDataflow()); err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			msg := &TaskMsg{Dataflow: "fltraining", Transformation: "training",
				ID: fmt.Sprintf("t%d", i), Status: StatusFinished,
				Sets: []SetData{{Tag: "training_output", Elements: []Element{
					{float64(i), 0.5, 0.5}}}}}
			if err := store.IngestTask(msg); err != nil {
				return false
			}
		}
		rows, err := store.Select(Query{Dataflow: "fltraining", Set: "training_output"})
		return err == nil && len(rows) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
