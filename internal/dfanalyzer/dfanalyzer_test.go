package dfanalyzer

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

func trainingDataflow() *Dataflow {
	return &Dataflow{
		Tag: "fltraining",
		Transformations: []Transformation{
			{
				Tag: "training",
				Input: []SetSchema{{Tag: "training_input", Attributes: []Attribute{
					{Name: "lr", Type: Numeric},
					{Name: "batch", Type: Numeric},
					{Name: "optimizer", Type: Text},
				}}},
				Output: []SetSchema{{Tag: "training_output", Attributes: []Attribute{
					{Name: "epoch", Type: Numeric},
					{Name: "loss", Type: Numeric},
					{Name: "accuracy", Type: Numeric},
				}}},
			},
		},
	}
}

func TestDataflowValidate(t *testing.T) {
	if err := trainingDataflow().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Dataflow{
		{},
		{Tag: "x", Transformations: []Transformation{{}}},
		{Tag: "x", Transformations: []Transformation{{Tag: "a"}, {Tag: "a"}}},
		{Tag: "x", Transformations: []Transformation{{Tag: "a", Input: []SetSchema{{Tag: "s",
			Attributes: []Attribute{{Name: "v", Type: "WEIRD"}}}}}}},
		{Tag: "x", Transformations: []Transformation{{Tag: "a", Input: []SetSchema{{Tag: "s",
			Attributes: []Attribute{{Name: "v", Type: Numeric}, {Name: "v", Type: Text}}}}}}},
	}
	for i, df := range bad {
		if err := df.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func ingestEpochs(t *testing.T, store *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		start := time.Now()
		begin := &TaskMsg{
			Dataflow: "fltraining", Transformation: "training",
			ID: fmt.Sprintf("epoch-%d", i), Status: StatusRunning, StartTime: &start,
			Sets: []SetData{{Tag: "training_input", Elements: []Element{
				{0.01 * float64(i+1), float64(32), "sgd"},
			}}},
		}
		if err := store.IngestTask(begin); err != nil {
			t.Fatal(err)
		}
		end := time.Now()
		fin := &TaskMsg{
			Dataflow: "fltraining", Transformation: "training",
			ID: fmt.Sprintf("epoch-%d", i), Status: StatusFinished, EndTime: &end,
			Sets: []SetData{{Tag: "training_output", Elements: []Element{
				{float64(i), 1.0 / float64(i+1), 0.5 + float64(i)*0.01},
			}}},
		}
		if err := store.IngestTask(fin); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreIngestAndSelect(t *testing.T) {
	store := NewStore()
	if err := store.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	ingestEpochs(t, store, 20)

	if got := store.TaskCount("fltraining"); got != 20 {
		t.Errorf("task count = %d, want 20", got)
	}
	// Paper §I query (ii): top-3 accuracy values.
	rows, err := store.Select(context.Background(), Query{
		Dataflow: "fltraining", Set: "training_output",
		OrderBy: "accuracy", Desc: true, Limit: 3,
		Project: []string{"epoch", "accuracy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0]["accuracy"].(float64) < rows[1]["accuracy"].(float64) {
		t.Error("rows not sorted descending")
	}
	if rows[0]["epoch"].(float64) != 19 {
		t.Errorf("best epoch = %v, want 19", rows[0]["epoch"])
	}
	// Filtered query: loss below threshold.
	rows, err = store.Select(context.Background(), Query{
		Dataflow: "fltraining", Set: "training_output",
		Where: []Pred{{Attr: "loss", Op: Lt, Value: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r["loss"].(float64) >= 0.1 {
			t.Errorf("predicate failed: %v", r)
		}
	}
	if len(rows) != 10 { // 1/(i+1) < 0.1 for i=10..19
		t.Errorf("filtered rows = %d, want 10", len(rows))
	}
	// Text predicate.
	rows, err = store.Select(context.Background(), Query{
		Dataflow: "fltraining", Set: "training_input",
		Where: []Pred{{Attr: "optimizer", Op: Eq, Value: "sgd"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Errorf("text filter rows = %d, want 20", len(rows))
	}
}

func TestStoreErrors(t *testing.T) {
	store := NewStore()
	if err := store.IngestTask(&TaskMsg{Dataflow: "nope", Transformation: "t", ID: "1", Status: StatusRunning}); err == nil {
		t.Error("unknown dataflow should fail")
	}
	if err := store.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	bad := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "1", Status: StatusRunning,
		Sets: []SetData{{Tag: "missing_set", Elements: []Element{{1.0}}}}}
	if err := store.IngestTask(bad); err == nil {
		t.Error("unknown set should fail")
	}
	arity := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "1", Status: StatusRunning,
		Sets: []SetData{{Tag: "training_input", Elements: []Element{{1.0}}}}}
	if err := store.IngestTask(arity); err == nil {
		t.Error("wrong arity should fail")
	}
	typeErr := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "1", Status: StatusRunning,
		Sets: []SetData{{Tag: "training_input", Elements: []Element{{"notnum", 1.0, "sgd"}}}}}
	if err := store.IngestTask(typeErr); err == nil {
		t.Error("type mismatch should fail")
	}
	if _, err := store.Select(context.Background(), Query{Dataflow: "fltraining", Set: "training_output", Where: []Pred{{Attr: "ghost", Op: Eq, Value: 1}}}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestServerEndToEnd(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient("http://" + srv.Addr())

	if err := client.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	msg := &TaskMsg{
		Dataflow: "fltraining", Transformation: "training", ID: "e0",
		Status: StatusRunning, StartTime: &start,
		Sets: []SetData{{Tag: "training_input", Elements: []Element{{0.1, 16.0, "adam"}}}},
	}
	if err := client.SendTask(msg); err != nil {
		t.Fatal(err)
	}
	end := time.Now()
	fin := &TaskMsg{
		Dataflow: "fltraining", Transformation: "training", ID: "e0",
		Status: StatusFinished, EndTime: &end,
		Sets: []SetData{{Tag: "training_output", Elements: []Element{{0.0, 0.4, 0.88}}}},
	}
	if err := client.SendTask(fin); err != nil {
		t.Fatal(err)
	}
	rows, err := client.Select(context.Background(), Query{Dataflow: "fltraining", Set: "training_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["accuracy"].(float64) != 0.88 {
		t.Errorf("rows = %v", rows)
	}
	// Merged task catalog entry has both times and final status.
	task, ok := srv.Store().TaskEntry("fltraining", "e0")
	if !ok {
		t.Fatal("task e0 not found")
	}
	if task.Status != StatusFinished || task.StartTime == nil || task.EndTime == nil {
		t.Errorf("merged task = %+v", task)
	}
	if srv.Requests() < 4 {
		t.Errorf("requests = %d, want >= 4", srv.Requests())
	}
}

func TestCapturerTranslatesRecords(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient("http://" + srv.Addr())

	records := []provdm.Record{
		{Event: provdm.EventWorkflowBegin, WorkflowID: "wf", Time: time.Now()},
		{Event: provdm.EventTaskBegin, WorkflowID: "wf", TaskID: "t1", Transformation: "training",
			Status: provdm.StatusRunning, Time: time.Now(),
			Data: []provdm.DataRef{{ID: "in", Attributes: []provdm.Attribute{
				{Name: "lr", Value: 0.05}, {Name: "batch", Value: int64(8)}, {Name: "optimizer", Value: "sgd"},
			}}}},
		{Event: provdm.EventTaskEnd, WorkflowID: "wf", TaskID: "t1", Transformation: "training",
			Status: provdm.StatusFinished, Time: time.Now(),
			Data: []provdm.DataRef{{ID: "out", Attributes: []provdm.Attribute{
				{Name: "epoch", Value: int64(1)}, {Name: "loss", Value: 0.2}, {Name: "accuracy", Value: 0.9},
			}}}},
	}
	df := DataflowFromRecords("wf", records)
	if err := client.RegisterDataflow(df); err != nil {
		t.Fatal(err)
	}
	cap := NewCapturer(client, "wf")
	for i := range records {
		if err := cap.Capture(&records[i]); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	rows, err := client.Select(context.Background(), Query{Dataflow: "wf", Set: "training_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["accuracy"].(float64) != 0.9 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDataflowFromRecords(t *testing.T) {
	records := []provdm.Record{
		{Event: provdm.EventTaskBegin, WorkflowID: "w", TaskID: "a", Transformation: "prep",
			Data: []provdm.DataRef{{ID: "d1", Attributes: []provdm.Attribute{
				{Name: "path", Value: "x.csv"}, {Name: "rows", Value: int64(10)}}}},
			Time: time.Now()},
		{Event: provdm.EventTaskEnd, WorkflowID: "w", TaskID: "a", Transformation: "prep",
			Status: provdm.StatusFinished,
			Data: []provdm.DataRef{{ID: "d2", Attributes: []provdm.Attribute{
				{Name: "clean_rows", Value: int64(9)}}}},
			Time: time.Now()},
	}
	df := DataflowFromRecords("w", records)
	if err := df.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(df.Transformations) != 1 || df.Transformations[0].Tag != "prep" {
		t.Fatalf("df = %+v", df)
	}
	in := df.Transformations[0].Input[0]
	if in.Tag != "prep_input" || len(in.Attributes) != 2 {
		t.Errorf("input set = %+v", in)
	}
	if in.Attributes[0].Name != "path" || in.Attributes[0].Type != Text {
		t.Errorf("path attr = %+v", in.Attributes[0])
	}
	if in.Attributes[1].Type != Numeric {
		t.Errorf("rows attr = %+v", in.Attributes[1])
	}
}

// Property: ingesting N single-element tasks yields N rows and Select with
// no predicates returns them all.
func TestIngestCountProperty(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n % 40)
		store := NewStore()
		if err := store.RegisterDataflow(trainingDataflow()); err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			msg := &TaskMsg{Dataflow: "fltraining", Transformation: "training",
				ID: fmt.Sprintf("t%d", i), Status: StatusFinished,
				Sets: []SetData{{Tag: "training_output", Elements: []Element{
					{float64(i), 0.5, 0.5}}}}}
			if err := store.IngestTask(msg); err != nil {
				return false
			}
		}
		rows, err := store.Select(context.Background(), Query{Dataflow: "fltraining", Set: "training_output"})
		return err == nil && len(rows) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIngestTasksBatch(t *testing.T) {
	store := NewStore()
	if err := store.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	msgs := make([]*TaskMsg, 0, 32)
	for i := 0; i < 16; i++ {
		msgs = append(msgs, &TaskMsg{
			Dataflow: "fltraining", Transformation: "training",
			ID: fmt.Sprintf("b%d", i), Status: StatusFinished,
			Sets: []SetData{{Tag: "training_output", Elements: []Element{
				{float64(i), 1.0 / float64(i+1), 0.5 + 0.01*float64(i)},
			}}},
		})
	}
	if err := store.IngestTasks(msgs); err != nil {
		t.Fatal(err)
	}
	if got := store.TaskCount("fltraining"); got != 16 {
		t.Errorf("task count = %d, want 16", got)
	}
	rows, err := store.Select(context.Background(), Query{Dataflow: "fltraining", Set: "training_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Errorf("rows = %d, want 16", len(rows))
	}
	if err := store.IngestTasks(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if err := store.IngestTasks([]*TaskMsg{{Dataflow: "ghost", Transformation: "t", ID: "1", Status: StatusRunning}}); err == nil {
		t.Error("unknown dataflow in batch should fail")
	}
}

func TestIngestTaskMergeDedupsDependencies(t *testing.T) {
	store := NewStore()
	if err := store.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	begin := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "t0",
		Status: StatusRunning, Dependencies: []string{"a", "b"}}
	end := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "t0",
		Status: StatusFinished, Dependencies: []string{"b", "c"}}
	if err := store.IngestTasks([]*TaskMsg{begin, end}); err != nil {
		t.Fatal(err)
	}
	task, ok := store.TaskEntry("fltraining", "t0")
	if !ok {
		t.Fatal("task t0 not found")
	}
	want := []string{"a", "b", "c"}
	if len(task.Dependencies) != len(want) {
		t.Fatalf("dependencies = %v, want %v", task.Dependencies, want)
	}
	for i, dep := range want {
		if task.Dependencies[i] != dep {
			t.Fatalf("dependencies = %v, want %v", task.Dependencies, want)
		}
	}
}

// TestStoreConcurrentIngestSelect exercises parallel batched writers and
// readers (run under -race): different dataflows never contend, the same
// dataflow serializes correctly.
func TestStoreConcurrentIngestSelect(t *testing.T) {
	store := NewStore()
	dataflows := []string{"fltraining", "fltraining2"}
	for _, tag := range dataflows {
		df := trainingDataflow()
		df.Tag = tag
		if err := store.RegisterDataflow(df); err != nil {
			t.Fatal(err)
		}
	}
	const writers, batches, batchSize = 4, 25, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag := dataflows[w%len(dataflows)]
			for b := 0; b < batches; b++ {
				msgs := make([]*TaskMsg, 0, batchSize)
				for i := 0; i < batchSize; i++ {
					msgs = append(msgs, &TaskMsg{
						Dataflow: tag, Transformation: "training",
						ID: fmt.Sprintf("w%d-b%d-i%d", w, b, i), Status: StatusFinished,
						Sets: []SetData{{Tag: "training_output", Elements: []Element{
							{float64(i), 0.5, 0.5 + 0.01*float64(i)},
						}}},
					})
				}
				if err := store.IngestTasks(msgs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tag := dataflows[r%len(dataflows)]
			for i := 0; i < 50; i++ {
				rows, err := store.Select(context.Background(), Query{
					Dataflow: tag, Set: "training_output",
					Where:   []Pred{{Attr: "accuracy", Op: Ge, Value: 0.5}},
					OrderBy: "accuracy", Desc: true, Limit: 5,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(rows) > 5 {
					t.Errorf("limit exceeded: %d rows", len(rows))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	perDataflow := writers / len(dataflows) * batches * batchSize
	for _, tag := range dataflows {
		if got := store.TaskCount(tag); got != perDataflow {
			t.Errorf("%s task count = %d, want %d", tag, got, perDataflow)
		}
		rows, err := store.Select(context.Background(), Query{Dataflow: tag, Set: "training_output"})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != perDataflow {
			t.Errorf("%s rows = %d, want %d", tag, len(rows), perDataflow)
		}
	}
}

func TestSendTasksBatchEndpoint(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient("http://" + srv.Addr())
	if err := client.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	msgs := make([]*TaskMsg, 0, 10)
	for i := 0; i < 10; i++ {
		msgs = append(msgs, &TaskMsg{
			Dataflow: "fltraining", Transformation: "training",
			ID: fmt.Sprintf("e%d", i), Status: StatusFinished,
			Sets: []SetData{{Tag: "training_output", Elements: []Element{
				{float64(i), 0.3, 0.9},
			}}},
		})
	}
	before := srv.Requests()
	if err := client.SendTasks(msgs); err != nil {
		t.Fatal(err)
	}
	if got := srv.Requests() - before; got != 1 {
		t.Errorf("batch send used %d requests, want 1", got)
	}
	if got := srv.Store().TaskCount("fltraining"); got != 10 {
		t.Errorf("task count = %d, want 10", got)
	}
	// A bad message inside a batch surfaces as an HTTP error.
	bad := []*TaskMsg{
		{Dataflow: "fltraining", Transformation: "training", ID: "ok", Status: StatusFinished},
		{Dataflow: "fltraining", Transformation: "training", ID: "bad", Status: "NOPE"},
	}
	if err := client.SendTasks(bad); err == nil {
		t.Error("invalid message in batch should fail")
	}
}

func TestSchemaTrackerIncremental(t *testing.T) {
	records := []provdm.Record{
		{Event: provdm.EventTaskBegin, WorkflowID: "w", TaskID: "a", Transformation: "prep",
			Data: []provdm.DataRef{{ID: "d1", Attributes: []provdm.Attribute{
				{Name: "path", Value: "x.csv"}, {Name: "rows", Value: int64(10)}}}},
			Time: time.Now()},
		{Event: provdm.EventTaskEnd, WorkflowID: "w", TaskID: "a", Transformation: "prep",
			Status: provdm.StatusFinished,
			Data: []provdm.DataRef{{ID: "d2", Attributes: []provdm.Attribute{
				{Name: "clean_rows", Value: int64(9)}}}},
			Time: time.Now()},
	}
	st := NewSchemaTracker("w")
	if !st.Observe(records) {
		t.Error("first observation should grow the schema")
	}
	if st.Observe(records) {
		t.Error("re-observing the same records should not grow the schema")
	}
	// The incremental spec matches the one-shot derivation.
	got, want := st.Dataflow(), DataflowFromRecords("w", records)
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Errorf("incremental spec %+v != one-shot %+v", got, want)
	}
	// A new attribute on a known set grows the schema again.
	more := []provdm.Record{{Event: provdm.EventTaskEnd, WorkflowID: "w", TaskID: "b",
		Transformation: "prep", Status: provdm.StatusFinished,
		Data: []provdm.DataRef{{ID: "d3", Attributes: []provdm.Attribute{
			{Name: "outliers", Value: int64(1)}}}},
		Time: time.Now()}}
	if !st.Observe(more) {
		t.Error("new attribute should grow the schema")
	}
	df := st.Dataflow()
	if err := df.Validate(); err != nil {
		t.Fatal(err)
	}
	out := df.Transformations[0].Output[0]
	if len(out.Attributes) != 2 || out.Attributes[1].Name != "outliers" {
		t.Errorf("grown output set = %+v", out)
	}
}

// TestRegisterGrownSpecWidensTables: re-registering a wider spec (what the
// translator does when new attributes appear) backfills existing rows.
func TestRegisterGrownSpecWidensTables(t *testing.T) {
	store := NewStore()
	df := trainingDataflow()
	if err := store.RegisterDataflow(df); err != nil {
		t.Fatal(err)
	}
	ingestEpochs(t, store, 3)
	wider := trainingDataflow()
	wider.Transformations[0].Output[0].Attributes = append(
		wider.Transformations[0].Output[0].Attributes, Attribute{Name: "f1", Type: Numeric})
	if err := store.RegisterDataflow(wider); err != nil {
		t.Fatal(err)
	}
	msg := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "wide",
		Status: StatusFinished,
		Sets:   []SetData{{Tag: "training_output", Elements: []Element{{3.0, 0.2, 0.91, 0.88}}}}}
	if err := store.IngestTask(msg); err != nil {
		t.Fatal(err)
	}
	rows, err := store.Select(context.Background(), Query{Dataflow: "fltraining", Set: "training_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if rows[0]["f1"].(float64) != 0 {
		t.Errorf("backfilled f1 = %v, want 0", rows[0]["f1"])
	}
}

// Property: the top-k heap path returns exactly the first k rows of the
// fully sorted result, including stable tie order.
func TestSelectTopKMatchesFullSort(t *testing.T) {
	f := func(seed uint8, desc bool) bool {
		n := 50 + int(seed)%50
		store := NewStore()
		if err := store.RegisterDataflow(trainingDataflow()); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			// Coarse quantization forces plenty of key ties.
			acc := float64((int(seed)+i*7)%10) / 10
			msg := &TaskMsg{Dataflow: "fltraining", Transformation: "training",
				ID: fmt.Sprintf("t%d", i), Status: StatusFinished,
				Sets: []SetData{{Tag: "training_output", Elements: []Element{
					{float64(i), 0.5, acc}}}}}
			if err := store.IngestTask(msg); err != nil {
				return false
			}
		}
		const k = 7
		topk, err := store.Select(context.Background(), Query{Dataflow: "fltraining", Set: "training_output",
			OrderBy: "accuracy", Desc: desc, Limit: k})
		if err != nil {
			return false
		}
		all, err := store.Select(context.Background(), Query{Dataflow: "fltraining", Set: "training_output",
			OrderBy: "accuracy", Desc: desc})
		if err != nil || len(topk) != k {
			return false
		}
		for i := range topk {
			if topk[i]["epoch"] != all[i]["epoch"] || topk[i]["accuracy"] != all[i]["accuracy"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// A nil element in a batch (e.g. "[null]" posted to /tasks) must be a
// clean error, not a panic.
func TestIngestTasksNilMessage(t *testing.T) {
	store := NewStore()
	if err := store.RegisterDataflow(trainingDataflow()); err != nil {
		t.Fatal(err)
	}
	if err := store.IngestTasks([]*TaskMsg{nil}); err == nil {
		t.Error("nil message should fail")
	}
	ok := &TaskMsg{Dataflow: "fltraining", Transformation: "training", ID: "n0", Status: StatusFinished}
	if err := store.IngestTasks([]*TaskMsg{ok, nil}); err == nil {
		t.Error("nil message after a valid one should fail")
	}
	srv := NewServer(store)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Post("http://"+srv.Addr()+"/tasks", "application/json", strings.NewReader("[null]"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %s, want 400", resp.Status)
	}
}
