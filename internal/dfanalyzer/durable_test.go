package dfanalyzer

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/wal"
)

func testSpec(tag string) *Dataflow {
	return &Dataflow{
		Tag: tag,
		Transformations: []Transformation{{
			Tag: "train",
			Input: []SetSchema{{Tag: "train_input", Attributes: []Attribute{
				{Name: "lr", Type: Numeric},
			}}},
			Output: []SetSchema{{Tag: "train_output", Attributes: []Attribute{
				{Name: "accuracy", Type: Numeric}, {Name: "model", Type: Text},
			}}},
		}},
	}
}

func taskPair(dataflow string, i int) []*TaskMsg {
	start := time.Unix(int64(1700000000+i), 0).UTC()
	end := start.Add(time.Second)
	return []*TaskMsg{
		{
			Dataflow: dataflow, Transformation: "train", ID: fmt.Sprintf("t%d", i),
			Status: StatusRunning, StartTime: &start,
			Sets: []SetData{{Tag: "train_input", Elements: []Element{{float64(i) / 100}}}},
		},
		{
			Dataflow: dataflow, Transformation: "train", ID: fmt.Sprintf("t%d", i),
			Status: StatusFinished, EndTime: &end,
			Sets: []SetData{{Tag: "train_output", Elements: []Element{{float64(i), fmt.Sprintf("m%d", i)}}}},
		},
	}
}

func mustOpen(t testing.TB, dir string, every int) *Store {
	t.Helper()
	s, err := OpenStore(StoreOptions{Dir: dir, Sync: wal.SyncOff, SnapshotEvery: every})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func checkRows(t *testing.T, s *Store, dataflow string, tasks int) {
	t.Helper()
	if got := s.TaskCount(dataflow); got != tasks {
		t.Fatalf("TaskCount = %d, want %d", got, tasks)
	}
	for _, set := range []string{"train_input", "train_output"} {
		rows, err := s.Select(context.Background(), Query{Dataflow: dataflow, Set: set})
		if err != nil {
			t.Fatalf("select %s: %v", set, err)
		}
		if len(rows) != tasks {
			t.Fatalf("%s has %d rows, want %d (lost or duplicated)", set, len(rows), tasks)
		}
	}
}

// TestDurableStoreRecoversFromWALOnly replays a WAL with no snapshot.
func TestDurableStoreRecoversFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1) // no periodic snapshots
	if err := s.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.IngestTasks(taskPair("df", i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate the crash (the WAL is the only persistent state).
	s2 := mustOpen(t, dir, -1)
	defer s2.Close()
	checkRows(t, s2, "df", 20)
	// The recovered store keeps working.
	if err := s2.IngestTasks(taskPair("df", 20)); err != nil {
		t.Fatal(err)
	}
	checkRows(t, s2, "df", 21)
}

// TestDurableStoreSnapshotPlusTailReplay crashes after a snapshot plus
// more appends: recovery must load the snapshot and replay only the tail.
func TestDurableStoreSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	if err := s.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.IngestTasks(taskPair("df", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := s.IngestTasks(taskPair("df", i)); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, dir, -1)
	defer s2.Close()
	checkRows(t, s2, "df", 15)
	// Ordering must survive: rows come back in ingestion order.
	rows, err := s2.Select(context.Background(), Query{Dataflow: "df", Set: "train_output", OrderBy: "accuracy"})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if row["model"] != fmt.Sprintf("m%d", i) {
			t.Fatalf("row %d model = %v, want m%d", i, row["model"], i)
		}
	}
}

// TestPeriodicSnapshotReclaimsWAL checks the SnapshotEvery trigger and
// that the WAL shrinks behind it.
func TestPeriodicSnapshotReclaimsWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, Sync: wal.SyncOff, SnapshotEvery: 10, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.IngestTasks(taskPair("df", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	// 201 ops at ~200 B each would be ~10 segments unreclaimed; the
	// snapshot should keep only the live tail.
	if len(segs) > 4 {
		t.Fatalf("WAL not reclaimed behind snapshots: %d segments", len(segs))
	}
	s.Close()
	s2 := mustOpen(t, dir, 10)
	defer s2.Close()
	checkRows(t, s2, "df", 100)
}

// TestFrameDedupAcrossRestart is the exactly-once core: redelivered
// frames (same origin+seq) are skipped, both live and after recovery.
func TestFrameDedupAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	if err := s.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	frame := func(seq uint64, i int) FrameMsg {
		return FrameMsg{Origin: "provlight/dev-1/records", Seq: seq, Tasks: taskPair("df", i)}
	}
	applied, err := s.IngestFrames([]FrameMsg{frame(1, 0), frame(2, 1)})
	if err != nil || applied != 2 {
		t.Fatalf("first ingest: applied=%d err=%v", applied, err)
	}
	// Redelivery in the same process.
	applied, err = s.IngestFrames([]FrameMsg{frame(1, 0), frame(3, 2)})
	if err != nil || applied != 1 {
		t.Fatalf("redelivery: applied=%d err=%v (dedup failed)", applied, err)
	}
	checkRows(t, s, "df", 3)

	// Crash + recover: the dedup table must be rebuilt from the WAL.
	s2 := mustOpen(t, dir, -1)
	checkRows(t, s2, "df", 3)
	applied, err = s2.IngestFrames([]FrameMsg{frame(2, 1), frame(3, 2), frame(4, 3)})
	if err != nil || applied != 1 {
		t.Fatalf("post-recovery redelivery: applied=%d err=%v", applied, err)
	}
	checkRows(t, s2, "df", 4)

	// Snapshot persists the dedup table too.
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, -1)
	defer s3.Close()
	applied, err = s3.IngestFrames([]FrameMsg{frame(4, 3)})
	if err != nil || applied != 0 {
		t.Fatalf("post-snapshot redelivery: applied=%d err=%v", applied, err)
	}
	checkRows(t, s3, "df", 4)
}

// TestInMemoryStoreDedupsFrames: even without durability, redeliveries
// within one process lifetime are deduplicated.
func TestInMemoryStoreDedupsFrames(t *testing.T) {
	s := NewStore()
	if err := s.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	f := FrameMsg{Origin: "o", Seq: 7, Tasks: taskPair("df", 0)}
	if applied, err := s.IngestFrames([]FrameMsg{f}); err != nil || applied != 1 {
		t.Fatalf("applied=%d err=%v", applied, err)
	}
	if applied, err := s.IngestFrames([]FrameMsg{f}); err != nil || applied != 0 {
		t.Fatalf("redelivery applied=%d err=%v", applied, err)
	}
	checkRows(t, s, "df", 1)
	if err := s.Close(); err != nil { // no-op for in-memory
		t.Fatal(err)
	}
}

// TestSchemaGrowthSurvivesRecovery re-registers a grown spec, then
// recovers: the widened tables must come back widened.
func TestSchemaGrowthSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	if err := s.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestTasks(taskPair("df", 0)); err != nil {
		t.Fatal(err)
	}
	grown := testSpec("df")
	grown.Transformations[0].Output[0].Attributes = append(
		grown.Transformations[0].Output[0].Attributes, Attribute{Name: "loss", Type: Numeric})
	if err := s.RegisterDataflow(grown); err != nil {
		t.Fatal(err)
	}
	end := time.Unix(1700009999, 0).UTC()
	wide := &TaskMsg{
		Dataflow: "df", Transformation: "train", ID: "wide", Status: StatusFinished, EndTime: &end,
		Sets: []SetData{{Tag: "train_output", Elements: []Element{{0.9, "m", 0.1}}}},
	}
	if err := s.IngestTasks([]*TaskMsg{wide}); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, -1)
	defer s2.Close()
	rows, err := s2.Select(context.Background(), Query{Dataflow: "df", Set: "train_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[1]["loss"] != 0.1 {
		t.Fatalf("grown column lost in recovery: %v", rows[1])
	}
	if rows[0]["loss"] != 0.0 {
		t.Fatalf("backfilled zero lost in recovery: %v", rows[0])
	}
}

// TestCorruptWALOpSkippedViaQuarantine: flip bytes in a sealed WAL
// segment; the store must still open (wal quarantines it) and keep the
// surviving operations.
func TestWALTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	if err := s.RegisterDataflow(testSpec("df")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.IngestTasks(taskPair("df", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Torn tail: append garbage to the active segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if len(segs) == 0 {
		t.Fatal("no WAL segments")
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{42, 1, 0, 0, 0xaa})
	f.Close()

	s2 := mustOpen(t, dir, -1)
	defer s2.Close()
	checkRows(t, s2, "df", 5)
}
