package translate

import (
	"context"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provdm"
)

func frameOf(t *testing.T, origin string, seq uint64, taskID string) Frame {
	t.Helper()
	now := time.Unix(1700000000, 0).UTC()
	return Frame{
		Origin: origin,
		Seq:    seq,
		Records: []provdm.Record{{
			Event: provdm.EventTaskEnd, WorkflowID: "wf", TaskID: taskID,
			Transformation: "train", Status: provdm.StatusFinished, Time: now,
			Data: []provdm.DataRef{{ID: "out", WorkflowID: "wf",
				Attributes: []provdm.Attribute{{Name: "accuracy", Value: 0.9}}}},
		}},
	}
}

// TestDfAnalyzerTargetFramesDedupOverHTTP drives DeliverFrames through a
// real HTTP server: redelivered frames must not duplicate rows, and
// unidentified batches must still flow via the legacy path.
func TestDfAnalyzerTargetFramesDedupOverHTTP(t *testing.T) {
	srv := dfanalyzer.NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	target := NewDfAnalyzerTarget(dfanalyzer.NewClient("http://"+srv.Addr()), "df")

	batch := []Frame{
		frameOf(t, "provlight/d1/records", 1, "t1"),
		frameOf(t, "provlight/d1/records", 2, "t2"),
	}
	if err := target.DeliverFrames(batch); err != nil {
		t.Fatal(err)
	}
	// Redelivery: same identities, must be fully deduplicated server-side.
	if err := target.DeliverFrames(batch); err != nil {
		t.Fatal(err)
	}
	// A frame without a durable id always applies (legacy path).
	if err := target.DeliverFrames([]Frame{frameOf(t, "", 0, "t3")}); err != nil {
		t.Fatal(err)
	}
	rows, err := srv.Store().Select(context.Background(),
		dfanalyzer.Query{Dataflow: "df", Set: "train_output"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (t1, t2 once each + t3)", len(rows))
	}
}

// TestStoreTargetWorkflowOnlyFrameStillAcked: a frame carrying only
// workflow lifecycle records produces no task messages, but its identity
// must still be marked applied (otherwise it would redeliver forever).
func TestStoreTargetWorkflowOnlyFrameAppliedOnce(t *testing.T) {
	store := dfanalyzer.NewStore()
	target := NewStoreTarget(store, "df")
	now := time.Unix(1700000000, 0).UTC()
	wfFrame := Frame{
		Origin: "provlight/d1/records", Seq: 7,
		Records: []provdm.Record{{Event: provdm.EventWorkflowBegin, WorkflowID: "wf", Time: now}},
	}
	if err := target.DeliverFrames([]Frame{wfFrame}); err != nil {
		t.Fatal(err)
	}
	applied, err := store.IngestFrames([]dfanalyzer.FrameMsg{{Origin: wfFrame.Origin, Seq: wfFrame.Seq}})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("workflow-only frame not marked applied (applied=%d)", applied)
	}
}
