package translate

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/provdm"
)

type countTarget struct {
	mu sync.Mutex
	n  int
}

func (c *countTarget) Name() string { return "count" }

func (c *countTarget) Deliver(records []provdm.Record) error {
	c.mu.Lock()
	c.n += len(records)
	c.mu.Unlock()
	return nil
}

func (c *countTarget) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TestTranslatorRedialsDeadSession kills the translator's consumer
// session by closing its socket underneath it and verifies the supervisor
// replaces the session and consumption resumes — the failure mode that
// otherwise leaves the whole pipeline permanently deaf after an overload
// window exhausts the session's retries.
func TestTranslatorRedialsDeadSession(t *testing.T) {
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var mu sync.Mutex
	var conns []net.PacketConn
	dial := func() (net.PacketConn, error) {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns = append(conns, pc)
		mu.Unlock()
		return pc, nil
	}

	tgt := &countTarget{}
	tr, err := New(context.Background(), Config{
		Broker:        b.Addr(),
		ClientID:      "redial-tr",
		Targets:       []Target{tgt},
		DialConn:      dial,
		RetryInterval: 100 * time.Millisecond,
		MaxRetries:    3,
		DisableAcks:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	publishRecords(t, b.Addr(), sampleRecords(1))
	waitFor(t, "first delivery", func() bool { return tgt.count() > 0 })
	before := tgt.count()

	// Kill the consumer session the way an overload window would: the
	// socket dies, the read loop errors out, OnDisconnect fires.
	mu.Lock()
	conns[0].Close()
	mu.Unlock()
	waitFor(t, "session redial", func() bool { return tr.Stats().SessionRedials >= 1 })

	publishRecords(t, b.Addr(), sampleRecords(1))
	waitFor(t, "post-redial delivery", func() bool { return tgt.count() > before })
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
