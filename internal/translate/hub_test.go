package translate

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

func hubRecords(n int) [][]provdm.Record {
	frames := make([][]provdm.Record, 0, n)
	for i := 0; i < n; i++ {
		frames = append(frames, []provdm.Record{{
			Event:          provdm.EventTaskEnd,
			WorkflowID:     "w",
			TaskID:         fmt.Sprintf("t%d", i),
			Transformation: "tr",
			Time:           time.Unix(int64(i), 0),
		}})
	}
	return frames
}

func TestHubSlowConsumerDrops(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(context.Background(), Filter{Buffer: 4})
	defer cancel()

	// Publish 10 records without a reader: 4 fill the bounded buffer, the
	// remaining 6 are dropped (documented slow-consumer semantics).
	h.Publish(hubRecords(10))

	st := h.Stats()
	if st.Delivered != 4 {
		t.Errorf("delivered = %d, want 4", st.Delivered)
	}
	if st.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", st.Dropped)
	}
	if st.Subscribers != 1 {
		t.Errorf("subscribers = %d, want 1", st.Subscribers)
	}
	// The survivors are the oldest 4, in order.
	for i := 0; i < 4; i++ {
		rec := <-ch
		if rec.TaskID != fmt.Sprintf("t%d", i) {
			t.Errorf("record %d = %s, want t%d", i, rec.TaskID, i)
		}
	}
}

func TestHubKeepingUpLosesNothing(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(context.Background(), Filter{Buffer: 64})
	defer cancel()

	var got []provdm.Record
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rec := range ch {
			got = append(got, rec)
		}
	}()
	h.Publish(hubRecords(50))
	cancel()
	wg.Wait()
	if len(got) != 50 {
		t.Fatalf("received %d records, want 50", len(got))
	}
	if st := h.Stats(); st.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", st.Dropped)
	}
}

func TestHubFilters(t *testing.T) {
	h := NewHub()
	byWorkflow, cancel1 := h.Subscribe(context.Background(), Filter{Workflow: "w"})
	defer cancel1()
	otherWorkflow, cancel2 := h.Subscribe(context.Background(), Filter{Workflow: "nope"})
	defer cancel2()
	byEvent, cancel3 := h.Subscribe(context.Background(), Filter{
		Events: []provdm.EventKind{provdm.EventTaskBegin},
	})
	defer cancel3()
	byTask, cancel4 := h.Subscribe(context.Background(), Filter{TaskID: "t2"})
	defer cancel4()

	h.Publish(hubRecords(5)) // all EventTaskEnd, workflow "w"

	if n := len(byWorkflow); n != 5 {
		t.Errorf("workflow filter received %d, want 5", n)
	}
	if n := len(otherWorkflow); n != 0 {
		t.Errorf("mismatched workflow filter received %d, want 0", n)
	}
	if n := len(byEvent); n != 0 {
		t.Errorf("task.begin filter received %d task.end records", n)
	}
	if n := len(byTask); n != 1 {
		t.Errorf("task filter received %d, want 1", n)
	}
}

func TestHubContextCancelClosesChannel(t *testing.T) {
	h := NewHub()
	ctx, cancelCtx := context.WithCancel(context.Background())
	ch, cancel := h.Subscribe(ctx, Filter{})
	defer cancel()

	cancelCtx()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if st := h.Stats(); st.Subscribers != 0 {
					t.Errorf("subscribers = %d after ctx cancel, want 0", st.Subscribers)
				}
				return
			}
		case <-deadline:
			t.Fatal("channel not closed after ctx cancel")
		}
	}
}

func TestHubCancelIdempotentAndClose(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe(context.Background(), Filter{})
	cancel()
	cancel() // must not panic
	if _, ok := <-ch; ok {
		t.Error("channel should be closed after cancel")
	}

	ch2, cancel2 := h.Subscribe(context.Background(), Filter{})
	h.Close()
	if _, ok := <-ch2; ok {
		t.Error("channel should be closed after hub Close")
	}
	cancel2() // after Close: must not panic
	// Subscribing to a closed hub yields an already-closed channel.
	ch3, cancel3 := h.Subscribe(context.Background(), Filter{})
	if _, ok := <-ch3; ok {
		t.Error("subscribe on closed hub should return a closed channel")
	}
	cancel3()
}
