package translate

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/provlight/provlight/internal/provdm"
)

// DefaultSubscribeBuffer is the per-subscriber channel capacity used when
// Filter.Buffer is zero.
const DefaultSubscribeBuffer = 256

// Filter selects which translated records a live subscription receives.
// The zero value matches every record.
type Filter struct {
	// Workflow restricts delivery to one workflow id ("" = all).
	Workflow string
	// TaskID restricts delivery to one task id ("" = all).
	TaskID string
	// Transformation restricts delivery to one transformation ("" = all).
	Transformation string
	// Events restricts delivery to the listed event kinds (empty = all).
	Events []provdm.EventKind
	// Buffer is the subscriber's bounded channel capacity. Default
	// DefaultSubscribeBuffer. When the buffer is full, new records for
	// this subscriber are dropped (see Hub drop semantics) rather than
	// backpressuring the capture pipeline.
	Buffer int
}

// match reports whether the filter accepts a record.
func (f *Filter) match(r *provdm.Record) bool {
	if f.Workflow != "" && r.WorkflowID != f.Workflow {
		return false
	}
	if f.TaskID != "" && r.TaskID != f.TaskID {
		return false
	}
	if f.Transformation != "" && r.Transformation != f.Transformation {
		return false
	}
	if len(f.Events) > 0 {
		ok := false
		for _, e := range f.Events {
			if r.Event == e {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// HubStats counts live-subscription activity.
type HubStats struct {
	// Subscribers is the number of currently active subscriptions.
	Subscribers int
	// Delivered counts records handed to subscriber channels.
	Delivered uint64
	// Dropped counts records discarded because a subscriber's bounded
	// buffer was full (slow consumer). Drops are per subscriber: one
	// record fanning out to three subscribers, two of them stalled,
	// counts two drops and one delivery.
	Dropped uint64
}

// Hub fans translated records out to live subscribers. The translator's
// delivery path publishes every decoded batch after target delivery, so a
// subscription observes exactly the record stream the targets ingest.
//
// Slow-consumer semantics: delivery to a subscriber is non-blocking. A
// subscriber whose bounded buffer is full loses the record (counted in
// HubStats.Dropped); the capture and target-delivery paths are never
// backpressured by a stalled dashboard.
type Hub struct {
	mu     sync.RWMutex
	subs   map[*hubSub]struct{}
	closed bool

	delivered atomic.Uint64
	dropped   atomic.Uint64

	// metricsClaimed lets the first translator wired to a registry claim
	// this hub's export: several translators may share one hub AND one
	// registry, and a shared counter emitted by each would double-count.
	metricsClaimed atomic.Bool
}

// claimMetrics returns true exactly once per hub: the caller that wins
// exports the hub's stats.
func (h *Hub) claimMetrics() bool { return h.metricsClaimed.CompareAndSwap(false, true) }

type hubSub struct {
	ch       chan provdm.Record
	filter   Filter
	done     chan struct{}
	doneOnce sync.Once
	dropped  atomic.Uint64
}

// finish signals the subscription's ctx-watcher goroutine to exit.
func (s *hubSub) finish() { s.doneOnce.Do(func() { close(s.done) }) }

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{subs: map[*hubSub]struct{}{}} }

// Subscribe registers a live record stream matching filter and returns the
// receive channel plus a cancel function. The channel is closed when the
// subscription ends — by calling cancel, by ctx being cancelled, or by the
// hub shutting down. cancel is idempotent and safe to call concurrently.
func (h *Hub) Subscribe(ctx context.Context, filter Filter) (<-chan provdm.Record, func()) {
	if filter.Buffer <= 0 {
		filter.Buffer = DefaultSubscribeBuffer
	}
	s := &hubSub{
		ch:     make(chan provdm.Record, filter.Buffer),
		filter: filter,
		done:   make(chan struct{}),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(s.ch)
		return s.ch, func() {}
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()

	cancel := func() {
		h.mu.Lock()
		if _, ok := h.subs[s]; ok {
			delete(h.subs, s)
			close(s.ch) // safe: Publish sends only under RLock
		}
		h.mu.Unlock()
		s.finish()
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				cancel()
			case <-s.done:
			}
		}()
	}
	return s.ch, cancel
}

// Publish fans a batch of decoded frames out to every matching subscriber,
// dropping records for subscribers whose buffer is full.
func (h *Hub) Publish(frames [][]provdm.Record) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.subs) == 0 {
		return
	}
	for _, records := range frames {
		for i := range records {
			for s := range h.subs {
				if !s.filter.match(&records[i]) {
					continue
				}
				select {
				case s.ch <- records[i]:
					h.delivered.Add(1)
				default:
					s.dropped.Add(1)
					h.dropped.Add(1)
				}
			}
		}
	}
}

// Stats returns a snapshot of subscription counters.
func (h *Hub) Stats() HubStats {
	h.mu.RLock()
	n := len(h.subs)
	h.mu.RUnlock()
	return HubStats{
		Subscribers: n,
		Delivered:   h.delivered.Load(),
		Dropped:     h.dropped.Load(),
	}
}

// Close ends every subscription (closing the subscriber channels) and
// rejects future ones.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		s.finish()
		delete(h.subs, s)
	}
}
