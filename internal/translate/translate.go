// Package translate implements the ProvLight provenance data translator
// (paper §IV-B1): a broker subscriber that decodes the binary wire frames
// published by devices and forwards the records to one or more provenance
// systems. Users extend it by implementing Target for their system's data
// model, enabling "seamless integration with existing systems".
package translate

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/ctxutil"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/resilience"
	"github.com/provlight/provlight/internal/transport"
	"github.com/provlight/provlight/internal/wire"
)

// Target receives translated provenance records. Implementations exist for
// DfAnalyzer, ProvLake, PROV-JSON, and an in-memory store.
type Target interface {
	// Name identifies the target in logs and stats.
	Name() string
	// Deliver forwards a batch of records (one decoded frame).
	Deliver(records []provdm.Record) error
}

// BatchTarget is an optional Target extension: when a target implements
// it, the translator hands over a micro-batch of decoded frames in one
// call so the target can amortize its own per-delivery cost (one HTTP
// round trip, one lock acquisition, ...). Targets without it fall back to
// one Deliver call per frame.
type BatchTarget interface {
	Target
	// DeliverBatch forwards several decoded frames at once.
	DeliverBatch(frames [][]provdm.Record) error
}

// Frame is one decoded capture frame with its provenance identity: the
// topic it arrived on and the durable sequence number a spooling client
// stamped into it (0 for non-spooling clients). The identity is what lets
// durable targets deduplicate redelivered frames and lets the translator
// acknowledge them end-to-end.
type Frame struct {
	Origin  string
	Seq     uint64
	Records []provdm.Record
	// CaptureNS is the capture timestamp a tracing client stamped into the
	// frame (wire flagTrace), 0 when untraced. The translator observes the
	// translate and durable-apply stages of the e2e latency histogram
	// against it.
	CaptureNS int64
}

// FrameTarget is the durable-delivery extension of Target: the translator
// hands over frames *with their identities*, and the target applies them
// exactly once (skipping already-applied (origin, seq) pairs). Targets
// implementing it are what make a spooling client's redeliveries
// idempotent end to end.
type FrameTarget interface {
	Target
	// DeliverFrames forwards a micro-batch of identified frames.
	DeliverFrames(frames []Frame) error
}

// Stats counts translator activity.
type Stats struct {
	FramesReceived    uint64
	RecordsTranslated uint64
	// BatchesDelivered counts delivery rounds; FramesReceived /
	// BatchesDelivered is the achieved mean micro-batch size.
	BatchesDelivered uint64
	DecodeErrors     uint64
	DeliveryErrors   uint64
	// AcksPublished counts end-to-end acknowledgements sent back to
	// spooling devices (one ack message may cover several frames);
	// AckErrors counts ack publishes that failed.
	AcksPublished uint64
	AckErrors     uint64
	// SessionRedials counts broker sessions the supervisor replaced after
	// they died (broker restart, overload retry exhaustion, expiry).
	SessionRedials uint64
}

// Config configures a Translator.
type Config struct {
	// Broker is the MQTT-SN gateway address.
	Broker string
	// ClusterAddrs lists every node of a clustered broker tier
	// (cluster.Cluster.Addrs). When set it supersedes Broker: Sessions is
	// raised to at least len(ClusterAddrs) and session i makes node
	// i%len(ClusterAddrs) its home, so the consumer group keeps a member
	// on every node — the cluster routes a group frame to a member LOCAL
	// to the topic's owning node, so a node without a member would
	// silently drop its share of the stream. The shared subscription is
	// forced (even with one address) and a supervisor redials its home
	// node first, rotating through the others when it is gone (how a
	// session survives its node leaving the cluster). A single address
	// behaves exactly like Broker.
	ClusterAddrs []string
	// Transport dials broker sessions over an alternate packet substrate
	// (in-process loopback, TCP stream); nil means UDP. DialConn takes
	// precedence when both are set.
	Transport transport.Transport
	// ClientID of the translator's broker session. Default "translator".
	// With Sessions > 1 each session appends its index ("-s2", "-s3", …).
	ClientID string
	// TopicFilter selects which device topics to consume. Default
	// "provlight/+/records" (all devices).
	TopicFilter string
	// Sessions is how many broker sessions the translator opens in one
	// shared-subscription consumer group ("$share/<group>/<filter>").
	// The broker partitions the device topic space across the sessions by
	// a topic-affinity hash, so each device's stream stays on one session
	// (per-workflow order preserved) while the group's aggregate outbound
	// window — the fan-in bottleneck on high-latency links — scales with
	// the session count. All sessions feed the same worker/batch/target
	// machinery. Default 1: a plain (unshared) subscription.
	Sessions int
	// Group names the consumer group. Default: ClientID. Two translator
	// processes using the same Group and TopicFilter split the stream
	// between them; distinct groups each receive the full stream. Setting
	// Group forces the shared subscription even with Sessions == 1.
	Group string
	// DialConn, when set, supplies the packet socket for each broker
	// session (called once per session). Used by benchmarks and tests to
	// interpose netem-shaped links; nil means plain UDP.
	DialConn func() (net.PacketConn, error)
	// QoS of the subscription; default QoS 2 to preserve exactly-once.
	// The zero value means QoS 2 unless QoSSet is true.
	QoS mqttsn.QoS
	// QoSSet marks QoS as explicitly chosen. Without it a zero QoS is
	// promoted to the QoS 2 default, which would make a genuine QoS 0
	// subscription impossible to express.
	QoSSet bool
	// Targets receive every decoded record batch.
	Targets []Target
	// Workers parallelizes delivery (paper §IV-B1: translators "may be
	// parallelized to scale the data capture"). Default 1.
	Workers int
	// BatchSize caps how many decoded frames a worker drains from the
	// queue into one delivery round. Default 64; 1 disables batching.
	BatchSize int
	// BatchLinger is how long a worker holding at least one frame waits
	// for more before delivering an underfull batch. Default 0: deliver
	// whatever is immediately available without waiting.
	BatchLinger time.Duration
	// KeepAlive / RetryInterval / MaxRetries tune the broker session.
	KeepAlive     time.Duration
	RetryInterval time.Duration
	MaxRetries    int
	// OnError receives asynchronous delivery errors.
	OnError func(error)
	// Term is the replication term of the primary store this translator
	// feeds, stamped into every end-to-end acknowledgement (wire ack
	// payload version 2). Spooling clients ignore acks whose term is lower
	// than the highest they have seen, which fences a zombie translator —
	// one still feeding a deposed primary after a failover — out of the
	// ack path. 0 (the default) publishes unfenced version-1 acks.
	// Update after a failover with Translator.SetTerm.
	Term uint64
	// AckGate, when set, is consulted after a batch reached every target
	// and before its end-to-end acks are published. A semi-synchronous
	// replication deployment points this at replica.Server.CommitGate so
	// acks are withheld until the batch is durable on enough followers —
	// otherwise a primary crash after ack but before replication would
	// lose frames the devices already reclaimed. If the gate errors the
	// batch stays unacked: the spooling client redelivers it and the
	// durable targets deduplicate.
	AckGate func() error
	// DisableAcks turns off end-to-end acknowledgements. By default the
	// translator, after a batch is delivered to every target without
	// error, publishes the durable frame ids back to each device's ack
	// topic (wire.AckTopic) at QoS 1 — a spooling client reclaims its
	// disk-buffered frames only on these acks. Pair spooling clients with
	// a durable target (StoreTarget, DfAnalyzerTarget): acks from a
	// purely in-memory pipeline promise durability the pipeline does not
	// have.
	DisableAcks bool
	// Hub, when set, receives every delivered batch for fan-out to live
	// subscribers (Server.Subscribe). Several translators may share one
	// hub.
	Hub *Hub
	// Metrics, when set, exports the translator's counters (and the hub's,
	// when Hub is set) at scrape time, plus the translate and
	// durable-apply stages of the e2e frame latency histogram and a
	// delivered micro-batch size histogram.
	Metrics *obs.Registry
}

// sessionSlot is one supervised broker session: the current client and
// (when DialConn supplied it) its socket, swapped atomically by the
// supervisor on redial. Readers take the mutex to get the live client —
// nil while the slot is between sessions.
type sessionSlot struct {
	mu   sync.Mutex
	mc   *mqttsn.Client
	conn net.PacketConn
}

func (s *sessionSlot) get() *mqttsn.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mc
}

// take empties the slot and returns what it held, for teardown.
func (s *sessionSlot) take() (*mqttsn.Client, net.PacketConn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mc, conn := s.mc, s.conn
	s.mc, s.conn = nil, nil
	return mc, conn
}

func (s *sessionSlot) set(mc *mqttsn.Client, conn net.PacketConn) {
	s.mu.Lock()
	s.mc, s.conn = mc, conn
	s.mu.Unlock()
}

// Redial backoff for dead translator sessions: jittered exponential via
// the shared resilience schedule, capped low enough that the pipeline
// comes back within seconds of the broker recovering.
const (
	redialMinDelay = 250 * time.Millisecond
	redialMaxDelay = 8 * time.Second
)

// Translator subscribes to device topics and pumps records into targets.
// With Config.Sessions > 1 it holds several broker sessions in one
// consumer group, all feeding the same work queue.
type Translator struct {
	cfg Config
	// filter is the resolved subscription filter (shared-subscription
	// prefixed when consuming as a group); supervisors re-subscribe with
	// it on every redial.
	filter string
	// slots are the consumer sessions, each kept alive by its own
	// supervisor goroutine: a session that dies — broker restart, retry
	// exhaustion during an overload window, expired by the broker janitor
	// — is closed and redialed with jittered backoff. Without this the
	// translator goes permanently deaf while every device spool backs up
	// against its quota.
	slots []*sessionSlot
	// ackSlot is a dedicated broker session for publishing end-to-end
	// acks, supervised like the consumer slots. Sharing a consumer
	// session for acks deadlocks under load: the worker blocks in
	// PublishAsync waiting for a REGACK/PUBACK that only that session's
	// read loop can process, while the read loop blocks in onMessage on
	// the full work queue waiting for the worker. A session that never
	// consumes frames breaks the cycle — ack publishing can stall only on
	// the broker itself, never on the translator's own backlog. nil when
	// DisableAcks.
	ackSlot *sessionSlot

	// stop ends the supervisors; supWG waits them out so teardown cannot
	// race a redial into a fresh session whose read loop would enqueue
	// onto the closed work channel.
	stop  chan struct{}
	supWG sync.WaitGroup

	frames       atomic.Uint64
	records      atomic.Uint64
	batches      atomic.Uint64
	decodeErrs   atomic.Uint64
	deliveryErrs atomic.Uint64
	acks         atomic.Uint64
	ackErrs      atomic.Uint64
	redials      atomic.Uint64

	// term is the replication term stamped into acks (Config.Term,
	// updated by SetTerm after a failover).
	term atomic.Uint64

	work    chan Frame
	wg      sync.WaitGroup
	inFl    sync.WaitGroup
	closed  atomic.Bool
	aborted atomic.Bool

	// Stage histograms and the batch-size histogram (nil without
	// Config.Metrics; obs instruments are nil-safe).
	stageTranslate *obs.Histogram
	stageApply     *obs.Histogram
	batchSizes     *obs.Histogram
}

// New connects the translator to the broker and starts consuming. ctx
// bounds the connect/subscribe handshakes (a nil or background context
// means no deadline); it does not govern the translator's lifetime — use
// Shutdown/Close for that.
func New(ctx context.Context, cfg Config) (*Translator, error) {
	if cfg.ClientID == "" {
		cfg.ClientID = "translator"
	}
	if cfg.TopicFilter == "" {
		cfg.TopicFilter = "provlight/+/records"
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if len(cfg.ClusterAddrs) > 0 {
		if cfg.Sessions < len(cfg.ClusterAddrs) {
			cfg.Sessions = len(cfg.ClusterAddrs)
		}
		if cfg.Broker == "" {
			cfg.Broker = cfg.ClusterAddrs[0]
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.QoS == 0 && !cfg.QoSSet {
		cfg.QoS = mqttsn.QoS2
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("translate: at least one target required")
	}
	// A multi-session translator (or an explicit Group) consumes through
	// a shared-subscription consumer group so the broker partitions the
	// stream across the sessions instead of duplicating it to each.
	filter := cfg.TopicFilter
	if cfg.Sessions > 1 || cfg.Group != "" || len(cfg.ClusterAddrs) > 0 {
		group := cfg.Group
		if group == "" {
			group = cfg.ClientID
		}
		filter = mqttsn.SharePrefix + group + "/" + cfg.TopicFilter
	}
	t := &Translator{
		cfg:    cfg,
		filter: filter,
		work:   make(chan Frame, 256),
		stop:   make(chan struct{}),
	}
	t.term.Store(cfg.Term)
	if r := cfg.Metrics; r != nil {
		t.stageTranslate = obs.StageLatency(r).With(obs.StageTranslate)
		t.stageApply = obs.StageLatency(r).With(obs.StageDurableApply)
		t.batchSizes = r.Histogram("provlight_translate_batch_frames", "Frames per delivered micro-batch.", obs.BatchBuckets)
		var hub *Hub
		if cfg.Hub != nil && cfg.Hub.claimMetrics() {
			hub = cfg.Hub
		}
		r.Collect(func(e *obs.Emitter) {
			st := t.Stats()
			e.Counter("provlight_translate_frames_received_total", "Frames consumed from the broker.", float64(st.FramesReceived))
			e.Counter("provlight_translate_records_total", "Records translated into targets.", float64(st.RecordsTranslated))
			e.Counter("provlight_translate_batches_total", "Delivery rounds.", float64(st.BatchesDelivered))
			e.Counter("provlight_translate_decode_errors_total", "Frames that failed wire decoding.", float64(st.DecodeErrors))
			e.Counter("provlight_translate_delivery_errors_total", "Target delivery failures.", float64(st.DeliveryErrors))
			e.Counter("provlight_translate_acks_published_total", "End-to-end acknowledgements published to devices.", float64(st.AcksPublished))
			e.Counter("provlight_translate_ack_errors_total", "Failed or skipped ack publishes.", float64(st.AckErrors))
			e.Counter("provlight_translate_session_redials_total", "Broker sessions replaced after dying.", float64(st.SessionRedials))
			e.Gauge("provlight_translate_term", "Replication term stamped into acks.", float64(t.Term()))
			if hub != nil {
				hs := hub.Stats()
				e.Gauge("provlight_translate_hub_subscribers", "Active live subscriptions.", float64(hs.Subscribers))
				e.Counter("provlight_translate_hub_delivered_total", "Records handed to subscriber channels.", float64(hs.Delivered))
				e.Counter("provlight_translate_hub_dropped_total", "Records dropped on full subscriber buffers.", float64(hs.Dropped))
			}
		})
	}
	for i := 0; i < cfg.Workers; i++ {
		t.wg.Add(1)
		go t.worker()
	}
	// The ack session must exist before any consumer session can feed a
	// frame to the workers: publishAcks reads t.ackSlot unsynchronized,
	// relying on the frame's trip through t.work for visibility — a frame
	// can only be enqueued by a session dialed after this write.
	if !cfg.DisableAcks {
		clientID := cfg.ClientID + "-acks"
		mc, conn, down, err := t.dialSession(ctx, clientID, false, t.sessionAddr(0, 0))
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("translate: ack session: %w", err)
		}
		t.ackSlot = &sessionSlot{mc: mc, conn: conn}
		t.supWG.Add(1)
		go t.supervise(t.ackSlot, clientID, false, 0, down)
	}
	for i := 0; i < cfg.Sessions; i++ {
		clientID := t.slotClientID(i)
		mc, conn, down, err := t.dialSession(ctx, clientID, true, t.sessionAddr(i, 0))
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("translate: session %d: %w", i+1, err)
		}
		slot := &sessionSlot{mc: mc, conn: conn}
		t.slots = append(t.slots, slot)
		t.supWG.Add(1)
		go t.supervise(slot, clientID, true, i, down)
	}
	return t, nil
}

// sessionAddr resolves the gateway a session dials: its home node on the
// first attempt, rotating through the other cluster nodes on redials so
// a session outlives its home leaving the tier. Outside cluster mode it
// is always Config.Broker.
func (t *Translator) sessionAddr(home, attempt int) string {
	if len(t.cfg.ClusterAddrs) == 0 {
		return t.cfg.Broker
	}
	return t.cfg.ClusterAddrs[(home+attempt)%len(t.cfg.ClusterAddrs)]
}

func (t *Translator) slotClientID(i int) string {
	if i == 0 {
		return t.cfg.ClientID
	}
	return fmt.Sprintf("%s-s%d", t.cfg.ClientID, i+1)
}

// dialSession dials one broker session: connect and, for a consumer
// session, subscribe to the resolved filter. The returned channel closes
// when the session dies without a local teardown.
func (t *Translator) dialSession(ctx context.Context, clientID string, consumer bool, gateway string) (*mqttsn.Client, net.PacketConn, <-chan struct{}, error) {
	var conn net.PacketConn
	if t.cfg.DialConn != nil {
		var err error
		if conn, err = t.cfg.DialConn(); err != nil {
			return nil, nil, nil, fmt.Errorf("dial: %w", err)
		}
	}
	down := make(chan struct{})
	var downOnce sync.Once
	mc, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      clientID,
		Gateway:       gateway,
		Conn:          conn,
		Transport:     t.cfg.Transport,
		KeepAlive:     t.cfg.KeepAlive,
		RetryInterval: t.cfg.RetryInterval,
		MaxRetries:    t.cfg.MaxRetries,
		CleanSession:  true,
		OnDisconnect:  func(error) { downOnce.Do(func() { close(down) }) },
	})
	if err != nil {
		if conn != nil {
			conn.Close()
		}
		return nil, nil, nil, err
	}
	fail := func(err error) (*mqttsn.Client, net.PacketConn, <-chan struct{}, error) {
		mc.Close()
		if conn != nil {
			conn.Close()
		}
		return nil, nil, nil, err
	}
	if err := mc.WithContext(ctx, mc.Connect); err != nil {
		return fail(fmt.Errorf("connect broker: %w", err))
	}
	if consumer {
		if err := mc.WithContext(ctx, func() error {
			return mc.Subscribe(t.filter, t.cfg.QoS, t.onMessage)
		}); err != nil {
			return fail(fmt.Errorf("subscribe %q: %w", t.filter, err))
		}
	}
	return mc, conn, down, nil
}

// supervise keeps one session slot alive: when the session dies without a
// local teardown (broker restart, retry exhaustion during an overload
// window, janitor expiry surfaced as a DISCONNECT to our next ping), the
// remains are closed and the slot is redialed under the shared jittered
// backoff until the broker admits it again or the translator stops.
func (t *Translator) supervise(slot *sessionSlot, clientID string, consumer bool, home int, down <-chan struct{}) {
	defer t.supWG.Done()
	bo := resilience.Backoff{Min: redialMinDelay, Max: redialMaxDelay}
	for {
		select {
		case <-t.stop:
			return
		case <-down:
		}
		old, oldConn := slot.take()
		if old != nil {
			// Close waits for the read loop — the onMessage caller — to
			// exit, so a dead consumer session cannot race an enqueue
			// against teardown's later channel close.
			old.Close()
		}
		if oldConn != nil {
			oldConn.Close()
		}
		for attempt := 0; ; attempt++ {
			if !t.sleepStop(bo.Delay(attempt)) {
				return
			}
			mc, conn, nd, err := t.dialSession(context.Background(), clientID, consumer, t.sessionAddr(home, attempt))
			if err != nil {
				if t.cfg.OnError != nil {
					t.cfg.OnError(fmt.Errorf("translate: redial %s: %w", clientID, err))
				}
				continue
			}
			slot.set(mc, conn)
			t.redials.Add(1)
			down = nd
			break
		}
	}
}

// sleepStop sleeps d unless the translator stops first.
func (t *Translator) sleepStop(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.stop:
		return false
	}
}

// Sessions reports how many broker sessions the translator holds.
func (t *Translator) Sessions() int { return len(t.slots) }

// SetTerm updates the replication term stamped into end-to-end acks —
// called after a failover, when the translator is repointed at a promoted
// store. Terms are monotonic: a lower term than the current one is
// ignored (a stale failover script must never un-fence the ack path).
func (t *Translator) SetTerm(term uint64) {
	for {
		cur := t.term.Load()
		if term <= cur {
			return
		}
		if t.term.CompareAndSwap(cur, term) {
			return
		}
	}
}

// Term returns the replication term currently stamped into acks.
func (t *Translator) Term() uint64 { return t.term.Load() }

// Stats returns a snapshot of translator counters.
func (t *Translator) Stats() Stats {
	return Stats{
		FramesReceived:    t.frames.Load(),
		RecordsTranslated: t.records.Load(),
		BatchesDelivered:  t.batches.Load(),
		DecodeErrors:      t.decodeErrs.Load(),
		DeliveryErrors:    t.deliveryErrs.Load(),
		AcksPublished:     t.acks.Load(),
		AckErrors:         t.ackErrs.Load(),
		SessionRedials:    t.redials.Load(),
	}
}

func (t *Translator) onMessage(topic string, payload []byte) {
	t.frames.Add(1)
	records, err := wire.DecodeFrame(payload)
	if err != nil {
		t.decodeErrs.Add(1)
		if t.cfg.OnError != nil {
			t.cfg.OnError(fmt.Errorf("translate: decode frame from %s: %w", topic, err))
		}
		return
	}
	seq, _ := wire.FrameSeq(payload)
	captureNS, _ := wire.FrameCaptureNS(payload)
	obs.ObserveSince(t.stageTranslate, captureNS)
	t.inFl.Add(1)
	t.work <- Frame{Origin: topic, Seq: seq, Records: records, CaptureNS: captureNS}
}

// worker drains the frame queue into micro-batches and delivers each to
// every target, preferring the FrameTarget / BatchTarget fast paths.
func (t *Translator) worker() {
	defer t.wg.Done()
	batch := make([]Frame, 0, t.cfg.BatchSize)
	recordsView := make([][]provdm.Record, 0, t.cfg.BatchSize)
	for frame := range t.work {
		batch = t.fillBatch(append(batch[:0], frame))
		recordsView = recordsView[:0]
		for i := range batch {
			recordsView = append(recordsView, batch[i].Records)
		}
		t.deliver(batch, recordsView)
	}
}

// fillBatch tops the batch up to BatchSize with frames already queued; if
// BatchLinger is set it also waits up to that long for stragglers so
// slow-trickling devices still form batches.
func (t *Translator) fillBatch(batch []Frame) []Frame {
	var linger <-chan time.Time
	for len(batch) < cap(batch) {
		select {
		case frame, ok := <-t.work:
			if !ok {
				return batch
			}
			batch = append(batch, frame)
		default:
			if t.cfg.BatchLinger <= 0 {
				return batch
			}
			if linger == nil {
				timer := time.NewTimer(t.cfg.BatchLinger)
				defer timer.Stop()
				linger = timer.C
			}
			select {
			case frame, ok := <-t.work:
				if !ok {
					return batch
				}
				batch = append(batch, frame)
			case <-linger:
				return batch
			}
		}
	}
	return batch
}

func (t *Translator) deliver(batch []Frame, recordsView [][]provdm.Record) {
	if t.aborted.Load() {
		// Crash simulation (Abort): drop without delivering, as a killed
		// process would have. Undelivered frames are unacked and so will
		// be redelivered by the spooling client.
		t.inFl.Add(-len(batch))
		return
	}
	var n uint64
	for i := range batch {
		n += uint64(len(batch[i].Records))
	}
	delivered := true
	for _, target := range t.cfg.Targets {
		if ft, ok := target.(FrameTarget); ok {
			if err := ft.DeliverFrames(batch); err != nil {
				t.reportDeliveryError(target, err)
				delivered = false
			}
			continue
		}
		if bt, ok := target.(BatchTarget); ok {
			if err := bt.DeliverBatch(recordsView); err != nil {
				t.reportDeliveryError(target, err)
				delivered = false
			}
			continue
		}
		// Per-frame fallback keeps the pre-batching error contract: every
		// failing frame counts and reaches OnError.
		for _, records := range recordsView {
			if err := target.Deliver(records); err != nil {
				t.reportDeliveryError(target, err)
				delivered = false
			}
		}
	}
	if t.cfg.Hub != nil {
		// Live fan-out after target delivery: a subscription observes the
		// same stream the targets ingested, and Drain implies the hub saw
		// every drained frame.
		t.cfg.Hub.Publish(recordsView)
	}
	if delivered && !t.cfg.DisableAcks {
		// Acks only when *every* target took the whole batch: a failed
		// target leaves the batch unacked so the spooling client
		// redelivers it, and the durable targets that did apply it will
		// deduplicate the redelivery.
		if t.cfg.AckGate != nil {
			if err := t.cfg.AckGate(); err != nil {
				t.ackErrs.Add(1)
				if t.cfg.OnError != nil {
					t.cfg.OnError(fmt.Errorf("translate: ack gate: %w", err))
				}
				delivered = false
			}
		}
		if delivered {
			t.publishAcks(batch)
		}
	}
	if delivered && t.stageApply != nil {
		// Every target took the batch: each traced frame's durable-apply
		// observation is the full capture→durable e2e latency.
		for i := range batch {
			obs.ObserveSince(t.stageApply, batch[i].CaptureNS)
		}
	}
	t.batchSizes.Observe(float64(len(batch)))
	t.records.Add(n)
	t.batches.Add(1)
	t.inFl.Add(-len(batch))
}

// publishAcks sends the delivered frames' durable ids back to their
// devices: one QoS 1 message per origin topic, on its wire.AckTopic.
func (t *Translator) publishAcks(batch []Frame) {
	var acks map[string][]uint64
	for i := range batch {
		if batch[i].Seq == 0 {
			continue
		}
		if acks == nil {
			acks = map[string][]uint64{}
		}
		acks[batch[i].Origin] = append(acks[batch[i].Origin], batch[i].Seq)
	}
	if len(acks) == 0 {
		return
	}
	var mc *mqttsn.Client
	if t.ackSlot != nil {
		mc = t.ackSlot.get()
	}
	if mc == nil {
		// Ack session mid-redial: skip the batch's acks rather than borrow
		// a consumer session (that reintroduces the deadlock). The unacked
		// frames are redelivered by the devices, deduplicated by durable
		// targets, and acked on redelivery once the session is back.
		t.ackErrs.Add(uint64(len(acks)))
		return
	}
	term := t.term.Load()
	for origin, seqs := range acks {
		payload := wire.AppendAckPayload(nil, term, seqs)
		errc := mc.PublishAsync(wire.AckTopic(origin), payload, mqttsn.QoS1)
		go func() {
			if err := <-errc; err != nil {
				t.ackErrs.Add(1)
				if t.cfg.OnError != nil {
					t.cfg.OnError(fmt.Errorf("translate: publish acks: %w", err))
				}
				return
			}
			t.acks.Add(1)
		}()
	}
}

func (t *Translator) reportDeliveryError(target Target, err error) {
	t.deliveryErrs.Add(1)
	if t.cfg.OnError != nil {
		t.cfg.OnError(fmt.Errorf("translate: deliver to %s: %w", target.Name(), err))
	}
}

// Drain waits until all frames received so far have been delivered.
func (t *Translator) Drain() { t.inFl.Wait() }

// Shutdown stops consumption and drains gracefully: inbound is cut first,
// then every already-received frame is delivered and the workers exit. If
// ctx expires before the drain completes (e.g. a target hangs), Shutdown
// returns the context error; the work queue is already closed by then, so
// the workers deliver their remaining frames and exit whenever the target
// unblocks — nothing leaks past that point.
func (t *Translator) Shutdown(ctx context.Context) error {
	if !t.closed.CompareAndSwap(false, true) {
		// Another Shutdown/Close owns the teardown: wait for its workers
		// to drain under this call's ctx instead of returning early (so a
		// deadline-free Close after a timed-out Shutdown really drains).
		return ctxutil.Wait(ctx, t.wg.Wait)
	}
	// Stop the supervisors first and wait them out: a redial racing the
	// teardown could otherwise produce a fresh session whose read loop
	// enqueues onto the closed work channel.
	close(t.stop)
	t.supWG.Wait()
	// Disconnect cleanly so the broker releases the sessions at once —
	// in a consumer group the survivors take the partitions over
	// immediately instead of waiting for keepalive expiry. Disconnect
	// closes the client, and Close returns only after its read loop (the
	// onMessage caller) has exited, so no enqueue can race the channel
	// close below.
	for _, slot := range t.slots {
		mc, conn := slot.take()
		if mc != nil {
			_ = mc.Disconnect()
		}
		if conn != nil {
			conn.Close()
		}
	}
	close(t.work) // workers drain the queue, then exit
	err := ctxutil.Wait(ctx, t.wg.Wait)
	// The ack session goes last: the workers publish acks for every frame
	// they drain after inbound is cut, and those acks are what lets the
	// devices reclaim their spools.
	if t.ackSlot != nil {
		mc, conn := t.ackSlot.take()
		if mc != nil {
			_ = mc.Disconnect()
		}
		if conn != nil {
			conn.Close()
		}
	}
	return err
}

// Close stops consumption and releases resources, draining without a
// deadline.
func (t *Translator) Close() { _ = t.Shutdown(context.Background()) }

// Abort tears the translator down as a crash would: sessions are closed
// without the protocol goodbye, and frames already received but not yet
// delivered are dropped undelivered (and therefore unacknowledged, so a
// spooling client will redeliver them). Used by crash-recovery tests; a
// graceful stop is Shutdown.
func (t *Translator) Abort() {
	t.aborted.Store(true)
	if !t.closed.CompareAndSwap(false, true) {
		t.wg.Wait()
		return
	}
	close(t.stop)
	t.supWG.Wait()
	// Close (not Disconnect): the broker sees the session vanish exactly
	// as it would on a SIGKILL. Close returns only after the read loop —
	// the onMessage caller — has exited, so the channel close cannot race
	// an enqueue.
	for _, slot := range t.slots {
		mc, conn := slot.take()
		if mc != nil {
			mc.Close()
		}
		if conn != nil {
			conn.Close()
		}
	}
	if t.ackSlot != nil {
		mc, conn := t.ackSlot.take()
		if mc != nil {
			mc.Close() // crash semantics: in-flight acks die too
		}
		if conn != nil {
			conn.Close()
		}
	}
	close(t.work)
	t.wg.Wait()
}
