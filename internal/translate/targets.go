package translate

import (
	"io"
	"sync"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/provlake"
)

// MemoryTarget accumulates records in memory (tests, queries, examples).
type MemoryTarget struct {
	mu      sync.Mutex
	records []provdm.Record
}

// NewMemoryTarget returns an empty in-memory target.
func NewMemoryTarget() *MemoryTarget { return &MemoryTarget{} }

// Name implements Target.
func (*MemoryTarget) Name() string { return "memory" }

// Deliver implements Target.
func (m *MemoryTarget) Deliver(records []provdm.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records = append(m.records, records...)
	return nil
}

// Records returns a copy of everything delivered so far.
func (m *MemoryTarget) Records() []provdm.Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]provdm.Record(nil), m.records...)
}

// Len returns the number of delivered records.
func (m *MemoryTarget) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// DfAnalyzerTarget translates records into DfAnalyzer task messages
// (paper §V: "ProvLight translates the captured data to the DfAnalyzer
// data model"). The dataflow specification is derived and registered
// incrementally as new transformations and attributes appear.
type DfAnalyzerTarget struct {
	client   *dfanalyzer.Client
	dataflow string

	mu   sync.Mutex
	seen []provdm.Record // schema-bearing records used to grow the spec
	spec string          // fingerprint of the last registered spec
}

// NewDfAnalyzerTarget creates a target for the given DfAnalyzer server
// client and dataflow tag.
func NewDfAnalyzerTarget(client *dfanalyzer.Client, dataflow string) *DfAnalyzerTarget {
	return &DfAnalyzerTarget{client: client, dataflow: dataflow}
}

// Name implements Target.
func (*DfAnalyzerTarget) Name() string { return "dfanalyzer" }

// Deliver implements Target.
func (d *DfAnalyzerTarget) Deliver(records []provdm.Record) error {
	// Grow and (re-)register the dataflow spec when the schema expands.
	d.mu.Lock()
	d.seen = append(d.seen, records...)
	df := dfanalyzer.DataflowFromRecords(d.dataflow, d.seen)
	fp := fingerprint(df)
	needRegister := fp != d.spec
	if needRegister {
		d.spec = fp
	}
	d.mu.Unlock()
	if needRegister {
		if err := d.client.RegisterDataflow(df); err != nil {
			return err
		}
	}
	for i := range records {
		msg, ok := dfanalyzer.RecordToTaskMsg(d.dataflow, &records[i])
		if !ok {
			continue
		}
		if err := d.client.SendTask(msg); err != nil {
			return err
		}
	}
	return nil
}

func fingerprint(df *dfanalyzer.Dataflow) string {
	s := df.Tag
	for _, tr := range df.Transformations {
		s += "|" + tr.Tag
		for _, set := range append(append([]dfanalyzer.SetSchema{}, tr.Input...), tr.Output...) {
			s += ";" + set.Tag
			for _, a := range set.Attributes {
				s += "," + a.Name + ":" + string(a.Type)
			}
		}
	}
	return s
}

// ProvLakeTarget forwards records to a ProvLake manager service.
type ProvLakeTarget struct {
	client *provlake.Client
}

// NewProvLakeTarget creates a target around a ProvLake client.
func NewProvLakeTarget(client *provlake.Client) *ProvLakeTarget {
	return &ProvLakeTarget{client: client}
}

// Name implements Target.
func (*ProvLakeTarget) Name() string { return "provlake" }

// Deliver implements Target.
func (p *ProvLakeTarget) Deliver(records []provdm.Record) error {
	for i := range records {
		if err := p.client.Capture(&records[i]); err != nil {
			return err
		}
	}
	return nil
}

// PROVJSONTarget folds records into a W3C PROV-JSON document that can be
// written out at any time (interoperability with PROV-based tools).
type PROVJSONTarget struct {
	mu      sync.Mutex
	records []provdm.Record
}

// NewPROVJSONTarget returns an empty PROV-JSON accumulator.
func NewPROVJSONTarget() *PROVJSONTarget { return &PROVJSONTarget{} }

// Name implements Target.
func (*PROVJSONTarget) Name() string { return "prov-json" }

// Deliver implements Target.
func (p *PROVJSONTarget) Deliver(records []provdm.Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.records = append(p.records, records...)
	return nil
}

// WriteTo serializes the accumulated document as PROV-JSON.
func (p *PROVJSONTarget) WriteTo(w io.Writer) (int64, error) {
	p.mu.Lock()
	records := append([]provdm.Record(nil), p.records...)
	p.mu.Unlock()
	doc, err := provdm.BuildDocument(records)
	if err != nil {
		return 0, err
	}
	data, err := provdm.MarshalPROVJSON(doc)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// Document builds and returns the current PROV-DM document.
func (p *PROVJSONTarget) Document() (*provdm.Document, error) {
	p.mu.Lock()
	records := append([]provdm.Record(nil), p.records...)
	p.mu.Unlock()
	return provdm.BuildDocument(records)
}
