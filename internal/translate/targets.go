package translate

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/source"
)

// DefaultMemoryDataflow is the dataflow tag MemoryTarget exposes its
// records under through the Source interface when none is chosen.
const DefaultMemoryDataflow = "provlight"

// MemoryTarget accumulates records in memory (tests, queries, examples).
//
// It doubles as a source.Source: delivered records are folded on demand
// into an internal DfAnalyzer column-store view (the same translation the
// DfAnalyzer target performs: incremental schema tracking, task-id
// namespacing by workflow), so Select/Task/Workflows against a
// MemoryTarget return exactly what the same query would return against a
// DfAnalyzer backend fed the same record stream.
type MemoryTarget struct {
	mu      sync.Mutex
	records []provdm.Record

	// Lazy Source view: records[:viewLen] have been folded into view.
	dataflow string
	view     *dfanalyzer.Store
	tracker  *dfanalyzer.SchemaTracker
	viewLen  int
	// viewDirty means the tracked schema grew past what the view has
	// registered; cleared only on successful registration so a failure is
	// retried on the next read (the same contract as DfAnalyzerTarget).
	viewDirty bool
	// viewSkipped counts records the view could not ingest (e.g. an
	// attribute whose type flipped mid-stream). They are skipped so one
	// bad record cannot wedge the read side forever — the per-frame
	// delivery path of a real DfAnalyzer backend drops exactly the same
	// records.
	viewSkipped int
}

// MemoryTarget implements the backend-agnostic read interface.
var _ source.Source = (*MemoryTarget)(nil)

// NewMemoryTarget returns an empty in-memory target exposing its records
// under the dataflow tag DefaultMemoryDataflow.
func NewMemoryTarget() *MemoryTarget { return NewMemoryTargetForDataflow(DefaultMemoryDataflow) }

// NewMemoryTargetForDataflow returns an empty in-memory target exposing
// its records under the given dataflow tag (use the tag of the DfAnalyzer
// target it runs alongside to make queries portable between the two).
func NewMemoryTargetForDataflow(tag string) *MemoryTarget {
	return &MemoryTarget{
		dataflow: tag,
		view:     dfanalyzer.NewStore(),
		tracker:  dfanalyzer.NewSchemaTracker(tag),
	}
}

// Name implements Target.
func (*MemoryTarget) Name() string { return "memory" }

// Deliver implements Target.
func (m *MemoryTarget) Deliver(records []provdm.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records = append(m.records, records...)
	return nil
}

// DeliverBatch implements BatchTarget: one lock acquisition per batch.
func (m *MemoryTarget) DeliverBatch(frames [][]provdm.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, records := range frames {
		m.records = append(m.records, records...)
	}
	return nil
}

// Records returns a copy of everything delivered so far.
func (m *MemoryTarget) Records() []provdm.Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]provdm.Record(nil), m.records...)
}

// Len returns the number of delivered records.
func (m *MemoryTarget) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// syncView folds records delivered since the last read into the column
// store view, mirroring DfAnalyzerTarget.DeliverBatch: observe the schema,
// (re-)register on growth, then ingest the translated task messages.
// Callers must hold m.mu.
func (m *MemoryTarget) syncView() error {
	if m.viewLen == len(m.records) {
		return nil
	}
	if m.tracker.Observe(m.records[m.viewLen:]) {
		m.viewDirty = true
	}
	if m.viewDirty {
		if err := m.view.RegisterDataflow(m.tracker.Dataflow()); err != nil {
			return err // viewDirty stays set: retried on the next read
		}
		m.viewDirty = false
	}
	for ; m.viewLen < len(m.records); m.viewLen++ {
		if msg, ok := dfanalyzer.RecordToTaskMsg(m.dataflow, &m.records[m.viewLen]); ok {
			if err := m.view.IngestTask(msg); err != nil {
				m.viewSkipped++
			}
		}
	}
	return nil
}

// SourceSkipped reports how many delivered records the Source view could
// not ingest (and therefore skipped).
func (m *MemoryTarget) SourceSkipped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewSkipped
}

// sourceView returns the up-to-date column store view.
func (m *MemoryTarget) sourceView() (*dfanalyzer.Store, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.syncView(); err != nil {
		return nil, err
	}
	return m.view, nil
}

// Select implements source.Source over the delivered records.
func (m *MemoryTarget) Select(ctx context.Context, q source.Query) ([]source.Row, error) {
	view, err := m.sourceView()
	if err != nil {
		return nil, err
	}
	return view.Select(ctx, q)
}

// Task implements source.Source. Task ids are namespaced by workflow
// ("workflowID/taskID"), exactly as the DfAnalyzer target namespaces them.
func (m *MemoryTarget) Task(ctx context.Context, dataflow, id string) (*source.TaskInfo, error) {
	view, err := m.sourceView()
	if err != nil {
		return nil, err
	}
	return view.Task(ctx, dataflow, id)
}

// Tasks implements source.Source: the whole task catalog of the view.
func (m *MemoryTarget) Tasks(ctx context.Context, dataflow string) ([]source.TaskInfo, error) {
	view, err := m.sourceView()
	if err != nil {
		return nil, err
	}
	return view.Tasks(ctx, dataflow)
}

// Workflows implements source.Source: the dataflow tags records are
// exposed under ([the target's tag] once any task record arrived).
func (m *MemoryTarget) Workflows(ctx context.Context) ([]string, error) {
	view, err := m.sourceView()
	if err != nil {
		return nil, err
	}
	return view.Workflows(ctx)
}

// DfAnalyzerTarget translates records into DfAnalyzer task messages
// (paper §V: "ProvLight translates the captured data to the DfAnalyzer
// data model"). The dataflow specification is tracked incrementally: new
// records only touch the per-set attribute maps, and the spec is
// re-registered only when it actually grew, so the target's memory is
// bounded by the schema size rather than the record count.
type DfAnalyzerTarget struct {
	client   *dfanalyzer.Client
	dataflow string

	mu     sync.Mutex
	schema *dfanalyzer.SchemaTracker
	// dirty means the tracked schema grew past what the server has
	// acknowledged; it is cleared only on successful registration, so a
	// failed attempt (e.g. server briefly down) is retried on the next
	// delivery instead of leaving the dataflow unregistered forever.
	dirty bool
}

// NewDfAnalyzerTarget creates a target for the given DfAnalyzer server
// client and dataflow tag.
func NewDfAnalyzerTarget(client *dfanalyzer.Client, dataflow string) *DfAnalyzerTarget {
	return &DfAnalyzerTarget{client: client, dataflow: dataflow, schema: dfanalyzer.NewSchemaTracker(dataflow)}
}

// Name implements Target.
func (*DfAnalyzerTarget) Name() string { return "dfanalyzer" }

// Deliver implements Target.
func (d *DfAnalyzerTarget) Deliver(records []provdm.Record) error {
	return d.DeliverBatch([][]provdm.Record{records})
}

// DeliverBatch implements BatchTarget: the whole batch is shipped with one
// POST /tasks round trip. Registration happens while holding the tracker
// lock so that a parallel worker observing an already-tracked attribute
// cannot send tasks for it before the grown spec reaches the server.
func (d *DfAnalyzerTarget) DeliverBatch(frames [][]provdm.Record) error {
	if err := d.observeAndRegister(frames); err != nil {
		return err
	}
	msgs := make([]*dfanalyzer.TaskMsg, 0, len(frames))
	for _, records := range frames {
		for i := range records {
			if msg, ok := dfanalyzer.RecordToTaskMsg(d.dataflow, &records[i]); ok {
				msgs = append(msgs, msg)
			}
		}
	}
	return d.client.SendTasks(msgs)
}

// observeAndRegister folds the batch into the schema tracker and
// (re-)registers the spec with the server when it grew.
func (d *DfAnalyzerTarget) observeAndRegister(frames [][]provdm.Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, records := range frames {
		if d.schema.Observe(records) {
			d.dirty = true
		}
	}
	if d.dirty {
		if err := d.client.RegisterDataflow(d.schema.Dataflow()); err != nil {
			return err
		}
		d.dirty = false
	}
	return nil
}

// DeliverFrames implements FrameTarget: identified frames go to the
// exactly-once POST /frames endpoint, where the server deduplicates
// redeliveries by (origin, seq). Batches without any durable id fall back
// to the plain POST /tasks path, which any DfAnalyzer-protocol server
// accepts.
func (d *DfAnalyzerTarget) DeliverFrames(frames []Frame) error {
	identified := false
	recordsView := make([][]provdm.Record, len(frames))
	for i := range frames {
		recordsView[i] = frames[i].Records
		if frames[i].Seq > 0 {
			identified = true
		}
	}
	if !identified {
		return d.DeliverBatch(recordsView)
	}
	if err := d.observeAndRegister(recordsView); err != nil {
		return err
	}
	return d.client.SendFrames(frameMsgs(d.dataflow, frames))
}

// frameMsgs translates identified frames into the store's ingestion
// shape. Frames whose records produce no task messages (pure workflow
// lifecycle events) still yield an — empty — FrameMsg: the store must
// mark them applied or they would be redelivered forever.
func frameMsgs(dataflow string, frames []Frame) []dfanalyzer.FrameMsg {
	out := make([]dfanalyzer.FrameMsg, 0, len(frames))
	for i := range frames {
		f := &frames[i]
		fm := dfanalyzer.FrameMsg{Origin: f.Origin, Seq: f.Seq}
		for j := range f.Records {
			if msg, ok := dfanalyzer.RecordToTaskMsg(dataflow, &f.Records[j]); ok {
				fm.Tasks = append(fm.Tasks, msg)
			}
		}
		out = append(out, fm)
	}
	return out
}

// StoreTarget delivers records straight into a local dfanalyzer.Store —
// the in-process counterpart of DfAnalyzerTarget, and the building block
// of a durable standalone translator (provlight-translate -data-dir):
// paired with a store from OpenStore, every delivered frame is
// write-ahead logged, deduplicated by its durable id, and recovered on
// restart.
type StoreTarget struct {
	store    *dfanalyzer.Store
	dataflow string

	// term, when non-zero, is stamped into every ingest so a store on a
	// different replication term rejects the write (fenced failover; see
	// dfanalyzer's replication.go). Updated via SetTerm after a failover,
	// alongside Translator.SetTerm.
	term atomic.Uint64

	mu     sync.Mutex
	schema *dfanalyzer.SchemaTracker
	dirty  bool
}

// NewStoreTarget creates a target that ingests into store under the given
// dataflow tag.
func NewStoreTarget(store *dfanalyzer.Store, dataflow string) *StoreTarget {
	return &StoreTarget{store: store, dataflow: dataflow, schema: dfanalyzer.NewSchemaTracker(dataflow)}
}

// Store returns the backing store (for queries and snapshots).
func (s *StoreTarget) Store() *dfanalyzer.Store { return s.store }

// SetTerm sets the replication term stamped into subsequent ingests
// (0 disables the check — the unfenced single-node default).
func (s *StoreTarget) SetTerm(term uint64) { s.term.Store(term) }

// Name implements Target.
func (*StoreTarget) Name() string { return "store" }

// Deliver implements Target.
func (s *StoreTarget) Deliver(records []provdm.Record) error {
	return s.DeliverFrames([]Frame{{Records: records}})
}

// DeliverBatch implements BatchTarget.
func (s *StoreTarget) DeliverBatch(frames [][]provdm.Record) error {
	wrapped := make([]Frame, len(frames))
	for i := range frames {
		wrapped[i].Records = frames[i]
	}
	return s.DeliverFrames(wrapped)
}

// DeliverFrames implements FrameTarget: one IngestFrames call per batch,
// deduplicated by the store.
func (s *StoreTarget) DeliverFrames(frames []Frame) error {
	s.mu.Lock()
	for i := range frames {
		if s.schema.Observe(frames[i].Records) {
			s.dirty = true
		}
	}
	if s.dirty {
		if err := s.store.RegisterDataflow(s.schema.Dataflow()); err != nil {
			s.mu.Unlock()
			return err
		}
		s.dirty = false
	}
	s.mu.Unlock()
	_, err := s.store.IngestFramesTerm(s.term.Load(), frameMsgs(s.dataflow, frames))
	return err
}

// ProvLakeTarget forwards records to a ProvLake manager service.
type ProvLakeTarget struct {
	client *provlake.Client
}

// NewProvLakeTarget creates a target around a ProvLake client.
func NewProvLakeTarget(client *provlake.Client) *ProvLakeTarget {
	return &ProvLakeTarget{client: client}
}

// Name implements Target.
func (*ProvLakeTarget) Name() string { return "provlake" }

// Deliver implements Target.
func (p *ProvLakeTarget) Deliver(records []provdm.Record) error {
	for i := range records {
		if err := p.client.Capture(&records[i]); err != nil {
			return err
		}
	}
	return nil
}

// PROVJSONTarget folds records into a W3C PROV-JSON document that can be
// written out at any time (interoperability with PROV-based tools).
type PROVJSONTarget struct {
	mu      sync.Mutex
	records []provdm.Record
}

// NewPROVJSONTarget returns an empty PROV-JSON accumulator.
func NewPROVJSONTarget() *PROVJSONTarget { return &PROVJSONTarget{} }

// Name implements Target.
func (*PROVJSONTarget) Name() string { return "prov-json" }

// Deliver implements Target.
func (p *PROVJSONTarget) Deliver(records []provdm.Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.records = append(p.records, records...)
	return nil
}

// DeliverBatch implements BatchTarget: one lock acquisition per batch.
func (p *PROVJSONTarget) DeliverBatch(frames [][]provdm.Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, records := range frames {
		p.records = append(p.records, records...)
	}
	return nil
}

// WriteTo serializes the accumulated document as PROV-JSON.
func (p *PROVJSONTarget) WriteTo(w io.Writer) (int64, error) {
	p.mu.Lock()
	records := append([]provdm.Record(nil), p.records...)
	p.mu.Unlock()
	doc, err := provdm.BuildDocument(records)
	if err != nil {
		return 0, err
	}
	data, err := provdm.MarshalPROVJSON(doc)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// Document builds and returns the current PROV-DM document.
func (p *PROVJSONTarget) Document() (*provdm.Document, error) {
	p.mu.Lock()
	records := append([]provdm.Record(nil), p.records...)
	p.mu.Unlock()
	return provdm.BuildDocument(records)
}
