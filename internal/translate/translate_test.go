package translate

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/provlake"
	"github.com/provlight/provlight/internal/wire"
)

func sampleRecords(n int) []provdm.Record {
	recs := []provdm.Record{
		{Event: provdm.EventWorkflowBegin, WorkflowID: "wf", Time: time.Now()},
	}
	for i := 0; i < n; i++ {
		recs = append(recs,
			provdm.Record{Event: provdm.EventTaskBegin, WorkflowID: "wf",
				TaskID: fmt.Sprintf("t%d", i), Transformation: "train",
				Status: provdm.StatusRunning, Time: time.Now(),
				Data: []provdm.DataRef{{ID: fmt.Sprintf("in%d", i), Attributes: []provdm.Attribute{
					{Name: "lr", Value: 0.1}, {Name: "batch", Value: int64(32)},
				}}}},
			provdm.Record{Event: provdm.EventTaskEnd, WorkflowID: "wf",
				TaskID: fmt.Sprintf("t%d", i), Transformation: "train",
				Status: provdm.StatusFinished, Time: time.Now(),
				Data: []provdm.DataRef{{ID: fmt.Sprintf("out%d", i), Attributes: []provdm.Attribute{
					{Name: "loss", Value: 1.0 / float64(i+1)}, {Name: "accuracy", Value: 0.5 + 0.01*float64(i)},
				}}}},
		)
	}
	recs = append(recs, provdm.Record{Event: provdm.EventWorkflowEnd, WorkflowID: "wf", Time: time.Now()})
	return recs
}

// publishRecords pushes records through a real broker to the translator.
func publishRecords(t *testing.T, brokerAddr string, records []provdm.Record) {
	t.Helper()
	pub, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      "pub-device",
		Gateway:       brokerAddr,
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
		CleanSession:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Connect(); err != nil {
		t.Fatal(err)
	}
	enc := wire.Encoder{}
	for i := range records {
		frame, err := enc.EncodeFrame(&records[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish("provlight/pub-device/records", frame, mqttsn.QoS2); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTranslatorToAllTargets(t *testing.T) {
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	dfaSrv := dfanalyzer.NewServer(nil)
	if err := dfaSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dfaSrv.Close()
	plSrv := provlake.NewServer(nil)
	if err := plSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer plSrv.Close()

	mem := NewMemoryTarget()
	pj := NewPROVJSONTarget()
	tr, err := New(context.Background(), Config{
		Broker:        b.Addr(),
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
		Targets: []Target{
			mem,
			pj,
			NewDfAnalyzerTarget(dfanalyzer.NewClient("http://"+dfaSrv.Addr()), "wf"),
			NewProvLakeTarget(provlake.NewClient("http://" + plSrv.Addr())),
		},
		OnError: func(err error) { t.Errorf("translator error: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	const tasks = 5
	records := sampleRecords(tasks)
	publishRecords(t, b.Addr(), records)

	deadline := time.Now().Add(5 * time.Second)
	want := len(records)
	for mem.Len() < want {
		if time.Now().After(deadline) {
			t.Fatalf("memory target has %d records, want %d", mem.Len(), want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	tr.Drain()

	// DfAnalyzer got queryable rows.
	dfa := dfanalyzer.NewClient("http://" + dfaSrv.Addr())
	rows, err := dfa.Select(context.Background(), dfanalyzer.Query{
		Dataflow: "wf", Set: "train_output",
		OrderBy: "accuracy", Desc: true, Limit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("dfanalyzer rows = %d, want 3", len(rows))
	}
	if rows[0]["accuracy"].(float64) < rows[1]["accuracy"].(float64) {
		t.Error("top-k accuracy not sorted")
	}

	// ProvLake stored every request.
	if got := plSrv.Store().Count(); got != want {
		t.Errorf("provlake stored %d, want %d", got, want)
	}

	// PROV-JSON document is valid and complete.
	doc, err := pj.Document()
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := pj.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wasGeneratedBy") {
		t.Error("PROV-JSON output missing relations")
	}

	st := tr.Stats()
	if st.FramesReceived != uint64(want) || st.RecordsTranslated != uint64(want) {
		t.Errorf("translator stats = %+v", st)
	}
	if st.DecodeErrors != 0 || st.DeliveryErrors != 0 {
		t.Errorf("translator errors: %+v", st)
	}
}

func TestTranslatorSurvivesGarbageFrames(t *testing.T) {
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	mem := NewMemoryTarget()
	var gotErr error
	tr, err := New(context.Background(), Config{
		Broker:        b.Addr(),
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
		Targets:       []Target{mem},
		OnError:       func(err error) { gotErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	pub, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID: "garbage", Gateway: b.Addr(),
		RetryInterval: 150 * time.Millisecond, MaxRetries: 10, CleanSession: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("provlight/garbage/records", []byte{0xDE, 0xAD}, mqttsn.QoS1); err != nil {
		t.Fatal(err)
	}
	// Then a valid frame: the translator must still work.
	rec := provdm.Record{Event: provdm.EventWorkflowBegin, WorkflowID: "ok", Time: time.Now()}
	frame, _ := (&wire.Encoder{}).EncodeFrame(&rec)
	if err := pub.Publish("provlight/garbage/records", frame, mqttsn.QoS1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for mem.Len() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("valid frame after garbage was not delivered")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := tr.Stats(); st.DecodeErrors != 1 {
		t.Errorf("decode errors = %d, want 1", st.DecodeErrors)
	}
	if gotErr == nil {
		t.Error("OnError not called for garbage frame")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(context.Background(), Config{Broker: "127.0.0.1:1"}); err == nil {
		t.Error("translator without targets should fail")
	}
}

// countingBatchTarget records how records arrive: every record exactly
// once, whether through Deliver or DeliverBatch.
type countingBatchTarget struct {
	mu         sync.Mutex
	records    int
	frames     int
	batchCalls int
	maxBatch   int
}

func (*countingBatchTarget) Name() string { return "counting" }

func (c *countingBatchTarget) Deliver(records []provdm.Record) error {
	return c.DeliverBatch([][]provdm.Record{records})
}

func (c *countingBatchTarget) DeliverBatch(frames [][]provdm.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batchCalls++
	c.frames += len(frames)
	if len(frames) > c.maxBatch {
		c.maxBatch = len(frames)
	}
	for _, records := range frames {
		c.records += len(records)
	}
	return nil
}

// TestTranslatorBatchDelivery drives frames through the batch path and
// asserts exactly-once accounting: every frame delivered once, and the
// translator's own counters agree with the target's after Drain.
func TestTranslatorBatchDelivery(t *testing.T) {
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	counting := &countingBatchTarget{}
	tr, err := New(context.Background(), Config{
		Broker:        b.Addr(),
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
		BatchSize:     8,
		BatchLinger:   50 * time.Millisecond,
		Targets:       []Target{counting},
		OnError:       func(err error) { t.Errorf("translator error: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	records := sampleRecords(20)
	publishRecords(t, b.Addr(), records)

	want := len(records)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := tr.Stats(); st.FramesReceived >= uint64(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames received = %d, want %d", tr.Stats().FramesReceived, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	tr.Drain()

	counting.mu.Lock()
	defer counting.mu.Unlock()
	st := tr.Stats()
	if counting.frames != want || counting.records != want {
		t.Errorf("target saw %d frames / %d records, want %d each", counting.frames, counting.records, want)
	}
	if st.FramesReceived != uint64(want) || st.RecordsTranslated != uint64(want) {
		t.Errorf("translator stats = %+v, want %d frames and records", st, want)
	}
	if st.BatchesDelivered != uint64(counting.batchCalls) {
		t.Errorf("BatchesDelivered = %d, target saw %d calls", st.BatchesDelivered, counting.batchCalls)
	}
	if st.BatchesDelivered == 0 || st.BatchesDelivered > st.FramesReceived {
		t.Errorf("BatchesDelivered = %d out of range (frames %d)", st.BatchesDelivered, st.FramesReceived)
	}
	if st.DeliveryErrors != 0 || st.DecodeErrors != 0 {
		t.Errorf("translator errors: %+v", st)
	}
}

// TestTranslatorQoSZeroExplicit: QoSSet makes a real QoS 0 subscription
// expressible (the zero value used to be silently promoted to QoS 2).
func TestTranslatorQoSZeroExplicit(t *testing.T) {
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	mem := NewMemoryTarget()
	tr, err := New(context.Background(), Config{
		Broker:        b.Addr(),
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
		QoS:           mqttsn.QoS0,
		QoSSet:        true,
		Targets:       []Target{mem},
		OnError:       func(err error) { t.Errorf("translator error: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	records := sampleRecords(3)
	publishRecords(t, b.Addr(), records)
	deadline := time.Now().Add(5 * time.Second)
	for mem.Len() < len(records) {
		if time.Now().After(deadline) {
			t.Fatalf("QoS0 subscription delivered %d records, want %d", mem.Len(), len(records))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDfAnalyzerTargetRetriesRegistration: if registration fails (server
// down), the schema stays dirty and the next delivery re-registers instead
// of sending tasks into an unregistered dataflow forever.
func TestDfAnalyzerTargetRetriesRegistration(t *testing.T) {
	// Reserve a port, then leave it closed for the first delivery.
	probe := dfanalyzer.NewServer(nil)
	if err := probe.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	target := NewDfAnalyzerTarget(dfanalyzer.NewClient("http://"+addr), "wf")
	records := sampleRecords(2)
	if err := target.Deliver(records); err == nil {
		t.Fatal("delivery with the server down should fail")
	}
	srv := dfanalyzer.NewServer(nil)
	if err := srv.Start(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv.Close()
	// Same records, no schema growth — registration must still be retried.
	if err := target.Deliver(records); err != nil {
		t.Fatalf("delivery after server came back: %v", err)
	}
	if _, ok := srv.Store().Dataflow("wf"); !ok {
		t.Error("dataflow was not registered on retry")
	}
	if got := srv.Store().TaskCount("wf"); got != 2 {
		t.Errorf("task count = %d, want 2", got)
	}
}

// TestMultiSessionConsumerGroup runs one translator with three broker
// sessions in a consumer group: the broker must partition the device
// topics across the sessions, and the target must see every record
// exactly once with per-device order intact.
func TestMultiSessionConsumerGroup(t *testing.T) {
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	mem := NewMemoryTarget()
	tr, err := New(context.Background(), Config{
		Broker:        b.Addr(),
		Targets:       []Target{mem},
		Sessions:      3,
		RetryInterval: 150 * time.Millisecond,
		MaxRetries:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	if got := tr.Sessions(); got != 3 {
		t.Fatalf("Sessions() = %d, want 3", got)
	}

	const devices = 6
	const tasks = 5
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			id := fmt.Sprintf("dev-%d", d)
			pub, err := mqttsn.NewClient(mqttsn.ClientConfig{
				ClientID: id, Gateway: b.Addr(),
				RetryInterval: 150 * time.Millisecond, MaxRetries: 10, CleanSession: true,
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer pub.Close()
			if err := pub.Connect(); err != nil {
				t.Error(err)
				return
			}
			enc := wire.Encoder{}
			topic := fmt.Sprintf("provlight/%s/records", id)
			for i := 0; i < tasks; i++ {
				rec := provdm.Record{
					Event: provdm.EventTaskEnd, WorkflowID: id,
					TaskID: fmt.Sprintf("t%d", i), Transformation: "train",
					Status: provdm.StatusFinished, Time: time.Now(),
				}
				frame, err := enc.EncodeFrame(&rec)
				if err != nil {
					t.Error(err)
					return
				}
				if err := pub.Publish(topic, frame, mqttsn.QoS2); err != nil {
					t.Errorf("%s publish %d: %v", id, i, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()

	want := devices * tasks
	deadline := time.Now().Add(10 * time.Second)
	for len(mem.Records()) < want {
		if time.Now().After(deadline) {
			t.Fatalf("target has %d/%d records", len(mem.Records()), want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	tr.Drain()
	recs := mem.Records()
	if len(recs) != want {
		t.Fatalf("records = %d, want exactly %d (duplicates or losses across the group)", len(recs), want)
	}
	// Exactly once per (workflow, task), order preserved per workflow.
	nextTask := map[string]int{}
	seen := map[string]bool{}
	for _, r := range recs {
		key := r.WorkflowID + "/" + r.TaskID
		if seen[key] {
			t.Errorf("record %s delivered twice", key)
		}
		seen[key] = true
		want := fmt.Sprintf("t%d", nextTask[r.WorkflowID])
		if r.TaskID != want {
			t.Errorf("workflow %s: got %s, want %s (per-workflow order violated)", r.WorkflowID, r.TaskID, want)
		}
		nextTask[r.WorkflowID]++
	}
	if st := tr.Stats(); st.FramesReceived != uint64(want) {
		t.Errorf("FramesReceived = %d, want %d", st.FramesReceived, want)
	}
}
