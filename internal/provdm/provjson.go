package provdm

import (
	"encoding/json"
	"time"
)

// PROV-JSON serialization following the W3C PROV-JSON serialization note:
// the document is an object keyed by construct name ("entity", "activity",
// "agent", "used", ...), each holding a map from identifier to attribute
// object.

// MarshalPROVJSON renders the document as PROV-JSON.
func MarshalPROVJSON(d *Document) ([]byte, error) {
	top := map[string]map[string]map[string]any{}
	bucket := func(name string) map[string]map[string]any {
		b, ok := top[name]
		if !ok {
			b = map[string]map[string]any{}
			top[name] = b
		}
		return b
	}
	for _, e := range d.Elements {
		attrs := map[string]any{}
		for k, v := range e.Attributes {
			if t, ok := v.(time.Time); ok {
				attrs[k] = t.UTC().Format(time.RFC3339Nano)
				continue
			}
			attrs[k] = v
		}
		bucket(e.Kind.String())[e.ID] = attrs
	}
	for _, r := range d.Relations {
		subjKey, objKey := r.Kind.subjectObjectKeys()
		bucket(r.Kind.String())[r.ID] = map[string]any{
			subjKey: r.Subject,
			objKey:  r.Object,
		}
	}
	return json.MarshalIndent(top, "", "  ")
}

// UnmarshalPROVJSON parses a PROV-JSON document produced by
// MarshalPROVJSON. Only the constructs emitted by this package are
// recognized; unknown top-level constructs are ignored.
func UnmarshalPROVJSON(data []byte) (*Document, error) {
	var top map[string]map[string]map[string]any
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, err
	}
	doc := &Document{}
	elementKinds := map[string]ElementKind{
		"entity":   KindEntity,
		"activity": KindActivity,
		"agent":    KindAgent,
	}
	relationKinds := map[string]RelationKind{
		"used":              Used,
		"wasGeneratedBy":    WasGeneratedBy,
		"wasAssociatedWith": WasAssociatedWith,
		"wasAttributedTo":   WasAttributedTo,
		"wasInformedBy":     WasInformedBy,
		"wasDerivedFrom":    WasDerivedFrom,
		"actedOnBehalfOf":   ActedOnBehalfOf,
	}
	for name, members := range top {
		if kind, ok := elementKinds[name]; ok {
			for id, attrs := range members {
				doc.AddElement(Element{ID: id, Kind: kind, Attributes: attrs})
			}
			continue
		}
		if kind, ok := relationKinds[name]; ok {
			subjKey, objKey := kind.subjectObjectKeys()
			for id, body := range members {
				subj, _ := body[subjKey].(string)
				obj, _ := body[objKey].(string)
				doc.AddRelation(Relation{ID: id, Kind: kind, Subject: subj, Object: obj})
			}
		}
	}
	return doc, nil
}
