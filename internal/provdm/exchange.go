package provdm

import (
	"fmt"
	"time"
)

// TaskStatus is the execution state carried by Task records (Table V:
// "Task status: running or finished").
type TaskStatus uint8

// Task statuses.
const (
	StatusRunning TaskStatus = iota
	StatusFinished
)

// String returns the lowercase status name.
func (s TaskStatus) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusFinished:
		return "finished"
	default:
		return fmt.Sprintf("TaskStatus(%d)", uint8(s))
	}
}

// EventKind identifies the capture event a Record carries.
type EventKind uint8

// Capture events emitted by the client library. Workflow.begin()/end() and
// Task.begin()/end() in Listing 1 map one-to-one onto these.
const (
	EventWorkflowBegin EventKind = iota + 1
	EventWorkflowEnd
	EventTaskBegin
	EventTaskEnd
)

// String returns a short event name.
func (e EventKind) String() string {
	switch e {
	case EventWorkflowBegin:
		return "workflow.begin"
	case EventWorkflowEnd:
		return "workflow.end"
	case EventTaskBegin:
		return "task.begin"
	case EventTaskEnd:
		return "task.end"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(e))
	}
}

// Attribute is one named value of a Data record. Values are restricted to
// the wire-codec-supported kinds: int64, float64, string, bool, []byte.
type Attribute struct {
	Name  string
	Value any
}

// DataRef is the ProvLight Data class (Table V): a PROV-DM Entity with
// attribute values and derivation links.
type DataRef struct {
	ID          string      // Data id
	WorkflowID  string      // wasAttributedTo link
	Derivations []string    // wasDerivedFrom links (chained data ids)
	Attributes  []Attribute // attribute names and values
}

// Record is one provenance capture message: the unit that crosses the
// network from the client library to the broker. A record carries either a
// workflow lifecycle event or a task lifecycle event together with the
// task's input or output data derivations.
type Record struct {
	Event EventKind

	WorkflowID string
	// Task fields (EventTaskBegin / EventTaskEnd only).
	TaskID         string
	Transformation string   // transformation (activity type) this task belongs to
	Dependencies   []string // wasInformedBy links (task ids)
	Status         TaskStatus
	// Data derivations: inputs on task begin (used), outputs on task end
	// (wasGeneratedBy).
	Data []DataRef

	// Time is the capture timestamp at the device.
	Time time.Time
}

// Validate performs structural checks on a record before encoding.
func (r *Record) Validate() error {
	if r.WorkflowID == "" {
		return fmt.Errorf("provdm: record %s missing workflow id", r.Event)
	}
	switch r.Event {
	case EventWorkflowBegin, EventWorkflowEnd:
		if r.TaskID != "" || len(r.Data) > 0 {
			return fmt.Errorf("provdm: workflow event %s must not carry task fields", r.Event)
		}
	case EventTaskBegin, EventTaskEnd:
		if r.TaskID == "" {
			return fmt.Errorf("provdm: task event %s missing task id", r.Event)
		}
	default:
		return fmt.Errorf("provdm: unknown event kind %d", r.Event)
	}
	for _, d := range r.Data {
		if d.ID == "" {
			return fmt.Errorf("provdm: data ref with empty id in %s", r.Event)
		}
		for _, a := range d.Attributes {
			switch a.Value.(type) {
			case int64, float64, string, bool, []byte, nil:
			default:
				return fmt.Errorf("provdm: attribute %q has unsupported type %T", a.Name, a.Value)
			}
		}
	}
	return nil
}

// workflowElementID namespaces workflow ids in PROV documents.
func workflowElementID(id string) string { return "workflow:" + id }

// taskElementID namespaces task ids in PROV documents.
func taskElementID(id string) string { return "task:" + id }

// dataElementID namespaces data ids in PROV documents.
func dataElementID(id string) string { return "data:" + id }

// BuildDocument folds a stream of capture records into a PROV-DM document
// following the Table V mapping:
//
//	Workflow -> Agent, Task -> Activity (wasAssociatedWith workflow),
//	Data -> Entity (wasAttributedTo workflow), task inputs -> used,
//	task outputs -> wasGeneratedBy, dependencies -> wasInformedBy,
//	derivations -> wasDerivedFrom.
//
// Records may arrive in any order within a workflow (begin/end pairs are
// folded into single elements).
func BuildDocument(records []Record) (*Document, error) {
	doc := &Document{}
	elemIdx := make(map[string]int) // element id -> index in doc.Elements
	addElem := func(id string, kind ElementKind) int {
		if i, ok := elemIdx[id]; ok {
			return i
		}
		i := doc.AddElement(Element{ID: id, Kind: kind, Attributes: map[string]any{}})
		elemIdx[id] = i
		return i
	}
	type relKey struct {
		kind      RelationKind
		subj, obj string
	}
	seenRel := make(map[relKey]bool)
	addRel := func(kind RelationKind, subj, obj string) {
		k := relKey{kind, subj, obj}
		if seenRel[k] {
			return
		}
		seenRel[k] = true
		doc.AddRelation(Relation{Kind: kind, Subject: subj, Object: obj})
	}

	for i := range records {
		r := &records[i]
		if err := r.Validate(); err != nil {
			return nil, err
		}
		wfID := workflowElementID(r.WorkflowID)
		wi := addElem(wfID, KindAgent)
		switch r.Event {
		case EventWorkflowBegin:
			doc.Elements[wi].Attributes["prov:startTime"] = r.Time
		case EventWorkflowEnd:
			doc.Elements[wi].Attributes["prov:endTime"] = r.Time
		case EventTaskBegin, EventTaskEnd:
			tID := taskElementID(r.TaskID)
			ti := addElem(tID, KindActivity)
			attrs := doc.Elements[ti].Attributes
			if r.Transformation != "" {
				attrs["provlight:transformation"] = r.Transformation
			}
			attrs["provlight:status"] = r.Status.String()
			if r.Event == EventTaskBegin {
				attrs["prov:startTime"] = r.Time
			} else {
				attrs["prov:endTime"] = r.Time
			}
			addRel(WasAssociatedWith, tID, wfID)
			for _, dep := range r.Dependencies {
				addRel(WasInformedBy, tID, taskElementID(dep))
				addElem(taskElementID(dep), KindActivity)
			}
			for _, d := range r.Data {
				dID := dataElementID(d.ID)
				di := addElem(dID, KindEntity)
				for _, a := range d.Attributes {
					doc.Elements[di].Attributes[a.Name] = a.Value
				}
				dwf := d.WorkflowID
				if dwf == "" {
					dwf = r.WorkflowID
				}
				addElem(workflowElementID(dwf), KindAgent)
				addRel(WasAttributedTo, dID, workflowElementID(dwf))
				if r.Event == EventTaskBegin {
					addRel(Used, tID, dID)
				} else {
					addRel(WasGeneratedBy, dID, tID)
				}
				for _, from := range d.Derivations {
					addElem(dataElementID(from), KindEntity)
					addRel(WasDerivedFrom, dID, dataElementID(from))
				}
			}
		}
	}
	return doc, nil
}
