package provdm

import (
	"strings"
	"testing"
	"time"
)

func sampleRecords() []Record {
	t0 := time.Date(2023, 7, 20, 10, 0, 0, 0, time.UTC)
	return []Record{
		{Event: EventWorkflowBegin, WorkflowID: "1", Time: t0},
		{
			Event: EventTaskBegin, WorkflowID: "1", TaskID: "t1",
			Transformation: "training", Status: StatusRunning,
			Data: []DataRef{{
				ID: "in1", WorkflowID: "1",
				Attributes: []Attribute{{Name: "lr", Value: 0.01}, {Name: "epochs", Value: int64(100)}},
			}},
			Time: t0.Add(time.Second),
		},
		{
			Event: EventTaskEnd, WorkflowID: "1", TaskID: "t1",
			Transformation: "training", Status: StatusFinished,
			Data: []DataRef{{
				ID: "out1", WorkflowID: "1", Derivations: []string{"in1"},
				Attributes: []Attribute{{Name: "loss", Value: 0.3}, {Name: "accuracy", Value: 0.91}},
			}},
			Time: t0.Add(2 * time.Second),
		},
		{
			Event: EventTaskBegin, WorkflowID: "1", TaskID: "t2",
			Transformation: "evaluation", Dependencies: []string{"t1"}, Status: StatusRunning,
			Data: []DataRef{{ID: "out1", WorkflowID: "1"}},
			Time: t0.Add(3 * time.Second),
		},
		{
			Event: EventTaskEnd, WorkflowID: "1", TaskID: "t2",
			Transformation: "evaluation", Status: StatusFinished,
			Time: t0.Add(4 * time.Second),
		},
		{Event: EventWorkflowEnd, WorkflowID: "1", Time: t0.Add(5 * time.Second)},
	}
}

func TestBuildDocumentMapping(t *testing.T) {
	doc, err := BuildDocument(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("document invalid: %v", err)
	}
	// Table V mapping: 1 workflow agent, 2 task activities, 2 data entities.
	if got := doc.ElementsOfKind(KindAgent); len(got) != 1 || got[0] != "workflow:1" {
		t.Errorf("agents = %v", got)
	}
	if got := doc.ElementsOfKind(KindActivity); len(got) != 2 {
		t.Errorf("activities = %v", got)
	}
	if got := doc.ElementsOfKind(KindEntity); len(got) != 2 {
		t.Errorf("entities = %v", got)
	}
	// Relations: used (t1<-in1, t2<-out1), wasGeneratedBy (out1<-t1),
	// wasAssociatedWith (t1,t2), wasAttributedTo (in1,out1),
	// wasInformedBy (t2->t1), wasDerivedFrom (out1->in1).
	counts := map[RelationKind]int{}
	for _, r := range doc.Relations {
		counts[r.Kind]++
	}
	want := map[RelationKind]int{
		Used: 2, WasGeneratedBy: 1, WasAssociatedWith: 2,
		WasAttributedTo: 2, WasInformedBy: 1, WasDerivedFrom: 1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s count = %d, want %d", k, counts[k], n)
		}
	}
}

func TestBuildDocumentIdempotentRelations(t *testing.T) {
	// Feeding the same records twice must not duplicate relations.
	recs := append(sampleRecords(), sampleRecords()...)
	doc, err := BuildDocument(recs)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[RelationKind]int{}
	for _, r := range doc.Relations {
		counts[r.Kind]++
	}
	if counts[Used] != 2 || counts[WasDerivedFrom] != 1 {
		t.Errorf("duplicate records duplicated relations: %v", counts)
	}
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	dup := &Document{Elements: []Element{
		{ID: "x", Kind: KindEntity},
		{ID: "x", Kind: KindAgent},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate ids should fail validation")
	}
	dangling := &Document{
		Elements:  []Element{{ID: "a", Kind: KindActivity}},
		Relations: []Relation{{ID: "r", Kind: Used, Subject: "a", Object: "missing"}},
	}
	if err := dangling.Validate(); err == nil {
		t.Error("dangling relation should fail validation")
	}
	wrongKind := &Document{
		Elements: []Element{
			{ID: "a", Kind: KindActivity},
			{ID: "b", Kind: KindActivity},
		},
		Relations: []Relation{{ID: "r", Kind: Used, Subject: "a", Object: "b"}},
	}
	if err := wrongKind.Validate(); err == nil {
		t.Error("used(activity, activity) should fail validation")
	}
	empty := &Document{Elements: []Element{{Kind: KindEntity}}}
	if err := empty.Validate(); err == nil {
		t.Error("empty element id should fail validation")
	}
}

func TestRecordValidate(t *testing.T) {
	bad := []Record{
		{Event: EventTaskBegin, WorkflowID: "w"},                                   // missing task id
		{Event: EventWorkflowBegin},                                                // missing workflow id
		{Event: EventWorkflowBegin, WorkflowID: "w", TaskID: "t"},                  // workflow event with task
		{Event: EventKind(99), WorkflowID: "w"},                                    // unknown event
		{Event: EventTaskBegin, WorkflowID: "w", TaskID: "t", Data: []DataRef{{}}}, // empty data id
		{Event: EventTaskBegin, WorkflowID: "w", TaskID: "t",
			Data: []DataRef{{ID: "d", Attributes: []Attribute{{Name: "x", Value: struct{}{}}}}}}, // bad attr type
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := Record{Event: EventTaskEnd, WorkflowID: "w", TaskID: "t", Status: StatusFinished,
		Data: []DataRef{{ID: "d", Attributes: []Attribute{{Name: "x", Value: int64(1)}}}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
}

func TestPROVJSONRoundTrip(t *testing.T) {
	doc, err := BuildDocument(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalPROVJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"agent"`, `"activity"`, `"entity"`, `"used"`, `"wasDerivedFrom"`, "workflow:1"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("PROV-JSON missing %s", want)
		}
	}
	back, err := UnmarshalPROVJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Elements) != len(doc.Elements) {
		t.Errorf("round trip elements = %d, want %d", len(back.Elements), len(doc.Elements))
	}
	if len(back.Relations) != len(doc.Relations) {
		t.Errorf("round trip relations = %d, want %d", len(back.Relations), len(doc.Relations))
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped document invalid: %v", err)
	}
}

func TestMerge(t *testing.T) {
	a := &Document{}
	a.AddElement(Element{ID: "x", Kind: KindEntity})
	b := &Document{}
	b.AddElement(Element{ID: "x", Kind: KindEntity})
	b.AddElement(Element{ID: "y", Kind: KindAgent})
	b.AddRelation(Relation{Kind: WasAttributedTo, Subject: "x", Object: "y"})
	a.Merge(b)
	if len(a.Elements) != 2 {
		t.Errorf("merged elements = %d, want 2", len(a.Elements))
	}
	if len(a.Relations) != 1 {
		t.Errorf("merged relations = %d, want 1", len(a.Relations))
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestStatusAndEventStrings(t *testing.T) {
	if StatusRunning.String() != "running" || StatusFinished.String() != "finished" {
		t.Error("status strings wrong")
	}
	if EventTaskBegin.String() != "task.begin" || EventWorkflowEnd.String() != "workflow.end" {
		t.Error("event strings wrong")
	}
}
