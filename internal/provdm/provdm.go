// Package provdm implements the W3C PROV data model (PROV-DM) core
// structures and the simplified ProvLight data-exchange classes built on
// top of them (paper §IV-A, Table V).
//
// PROV-DM's core elements are Entities (data objects), Activities
// (processing steps), and Agents (software acting for users), related by
// seven core relations (Fig. 1 of the paper). ProvLight's exchange model
// maps Workflow->Agent, Task->Activity, and Data->Entity, and encodes the
// relations through id references so that records stay small enough to
// transmit from resource-constrained devices.
package provdm

import (
	"fmt"
	"sort"
)

// ElementKind distinguishes the three PROV-DM core element types.
type ElementKind uint8

// PROV-DM core element kinds.
const (
	KindEntity ElementKind = iota
	KindActivity
	KindAgent
)

// String returns the PROV-DM name of the kind.
func (k ElementKind) String() string {
	switch k {
	case KindEntity:
		return "entity"
	case KindActivity:
		return "activity"
	case KindAgent:
		return "agent"
	default:
		return fmt.Sprintf("ElementKind(%d)", uint8(k))
	}
}

// RelationKind enumerates the PROV-DM core relations used by ProvLight.
type RelationKind uint8

// PROV-DM core relations (Table V mapping).
const (
	Used RelationKind = iota
	WasGeneratedBy
	WasAssociatedWith
	WasAttributedTo
	WasInformedBy
	WasDerivedFrom
	ActedOnBehalfOf
)

// String returns the PROV-DM name of the relation.
func (r RelationKind) String() string {
	switch r {
	case Used:
		return "used"
	case WasGeneratedBy:
		return "wasGeneratedBy"
	case WasAssociatedWith:
		return "wasAssociatedWith"
	case WasAttributedTo:
		return "wasAttributedTo"
	case WasInformedBy:
		return "wasInformedBy"
	case WasDerivedFrom:
		return "wasDerivedFrom"
	case ActedOnBehalfOf:
		return "actedOnBehalfOf"
	default:
		return fmt.Sprintf("RelationKind(%d)", uint8(r))
	}
}

// subjectObjectKeys returns the PROV-JSON member names for the relation's
// two ends, e.g. used -> (prov:activity, prov:entity).
func (r RelationKind) subjectObjectKeys() (subj, obj string) {
	switch r {
	case Used:
		return "prov:activity", "prov:entity"
	case WasGeneratedBy:
		return "prov:entity", "prov:activity"
	case WasAssociatedWith:
		return "prov:activity", "prov:agent"
	case WasAttributedTo:
		return "prov:entity", "prov:agent"
	case WasInformedBy:
		return "prov:informed", "prov:informant"
	case WasDerivedFrom:
		return "prov:generatedEntity", "prov:usedEntity"
	case ActedOnBehalfOf:
		return "prov:delegate", "prov:responsible"
	default:
		return "prov:subject", "prov:object"
	}
}

// Element is one PROV-DM node: an entity, activity, or agent.
type Element struct {
	ID         string
	Kind       ElementKind
	Attributes map[string]any
}

// Relation links two elements. Subject and Object are element IDs; their
// roles depend on Kind (e.g. for Used, Subject is the activity and Object
// the entity).
type Relation struct {
	ID      string
	Kind    RelationKind
	Subject string
	Object  string
}

// Document is a PROV-DM document: a set of elements and relations.
type Document struct {
	Elements  []Element
	Relations []Relation
}

// AddElement appends an element and returns its index.
func (d *Document) AddElement(e Element) int {
	d.Elements = append(d.Elements, e)
	return len(d.Elements) - 1
}

// AddRelation appends a relation, assigning a stable id if empty.
func (d *Document) AddRelation(r Relation) {
	if r.ID == "" {
		r.ID = fmt.Sprintf("_:r%d", len(d.Relations))
	}
	d.Relations = append(d.Relations, r)
}

// Element returns the element with the given id, if present.
func (d *Document) Element(id string) (Element, bool) {
	for _, e := range d.Elements {
		if e.ID == id {
			return e, true
		}
	}
	return Element{}, false
}

// relationEndKinds returns the element kinds required at each end of a
// relation, or ok=false if either end may be of any kind.
func relationEndKinds(k RelationKind) (subj, obj ElementKind, ok bool) {
	switch k {
	case Used:
		return KindActivity, KindEntity, true
	case WasGeneratedBy:
		return KindEntity, KindActivity, true
	case WasAssociatedWith:
		return KindActivity, KindAgent, true
	case WasAttributedTo:
		return KindEntity, KindAgent, true
	case WasInformedBy:
		return KindActivity, KindActivity, true
	case WasDerivedFrom:
		return KindEntity, KindEntity, true
	case ActedOnBehalfOf:
		return KindAgent, KindAgent, true
	}
	return 0, 0, false
}

// Validate checks referential integrity: every relation endpoint must name
// an existing element of the kind the relation requires, and element ids
// must be unique and non-empty.
func (d *Document) Validate() error {
	kinds := make(map[string]ElementKind, len(d.Elements))
	for _, e := range d.Elements {
		if e.ID == "" {
			return fmt.Errorf("provdm: element with empty id")
		}
		if prev, dup := kinds[e.ID]; dup {
			return fmt.Errorf("provdm: duplicate element id %q (%s and %s)", e.ID, prev, e.Kind)
		}
		kinds[e.ID] = e.Kind
	}
	for _, r := range d.Relations {
		wantSubj, wantObj, constrained := relationEndKinds(r.Kind)
		subjKind, okSubj := kinds[r.Subject]
		objKind, okObj := kinds[r.Object]
		if !okSubj {
			return fmt.Errorf("provdm: relation %s references unknown subject %q", r.Kind, r.Subject)
		}
		if !okObj {
			return fmt.Errorf("provdm: relation %s references unknown object %q", r.Kind, r.Object)
		}
		if constrained {
			if subjKind != wantSubj {
				return fmt.Errorf("provdm: relation %s subject %q is %s, want %s", r.Kind, r.Subject, subjKind, wantSubj)
			}
			if objKind != wantObj {
				return fmt.Errorf("provdm: relation %s object %q is %s, want %s", r.Kind, r.Object, objKind, wantObj)
			}
		}
	}
	return nil
}

// ElementsOfKind returns the ids of all elements of kind k, sorted.
func (d *Document) ElementsOfKind(k ElementKind) []string {
	var ids []string
	for _, e := range d.Elements {
		if e.Kind == k {
			ids = append(ids, e.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

// RelationsOfKind returns all relations of kind k in insertion order.
func (d *Document) RelationsOfKind(k RelationKind) []Relation {
	var rs []Relation
	for _, r := range d.Relations {
		if r.Kind == k {
			rs = append(rs, r)
		}
	}
	return rs
}

// Merge appends the elements and relations of other into d, skipping
// elements whose id is already present.
func (d *Document) Merge(other *Document) {
	seen := make(map[string]bool, len(d.Elements))
	for _, e := range d.Elements {
		seen[e.ID] = true
	}
	for _, e := range other.Elements {
		if !seen[e.ID] {
			d.Elements = append(d.Elements, e)
			seen[e.ID] = true
		}
	}
	d.Relations = append(d.Relations, other.Relations...)
}
