// Package capture defines the uniform provenance-capture client interface
// implemented by all three systems in the evaluation (ProvLight,
// DfAnalyzer, ProvLake), so workloads and the experiment harness can
// instrument a workflow once and run it against any capture backend
// (paper §III-A: "We instrument the synthetic workloads with the capture
// libraries provided by ProvLake and DfAnalyzer").
package capture

import "github.com/provlight/provlight/internal/provdm"

// Client is a provenance capture library: the device-side component that
// receives instrumentation events and ships them to a provenance system.
type Client interface {
	// Capture records one provenance event. Depending on the backend this
	// may block for a full HTTP round trip (DfAnalyzer, ProvLake) or just
	// enqueue an asynchronous publish (ProvLight).
	Capture(rec *provdm.Record) error
	// Flush forces any buffered (grouped) records out.
	Flush() error
	// Close flushes and releases resources.
	Close() error
}

// Nop is a Client that discards everything: the "no capture" baseline used
// to measure workflow time without provenance (the denominator of the
// paper's capture-time overhead).
type Nop struct{}

// Capture implements Client.
func (Nop) Capture(*provdm.Record) error { return nil }

// Flush implements Client.
func (Nop) Flush() error { return nil }

// Close implements Client.
func (Nop) Close() error { return nil }

// Func adapts a function to the Client interface (useful in tests).
type Func func(rec *provdm.Record) error

// Capture implements Client.
func (f Func) Capture(rec *provdm.Record) error { return f(rec) }

// Flush implements Client.
func (Func) Flush() error { return nil }

// Close implements Client.
func (Func) Close() error { return nil }
