package soak

import (
	"context"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/spool"
)

// TestSoakSmoke runs a small fleet through churn, loss, and a disk quota
// and requires the exactly-once contract to hold end to end.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short")
	}
	rep, err := Run(context.Background(), Options{
		Devices:      16,
		Duration:     3 * time.Second,
		Seed:         1,
		MTBF:         1500 * time.Millisecond,
		Downtime:     300 * time.Millisecond,
		Loss:         0.10,
		Quota:        1 << 20,
		Policy:       spool.Block,
		SpoolRoot:    t.TempDir(),
		DrainTimeout: time.Minute,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	if !rep.ExactlyOnce {
		t.Fatalf("exactly-once violated: %v", rep.Violations)
	}
	if rep.FramesApplied == 0 {
		t.Fatal("no frames applied at the store")
	}
	if rep.Crashes == 0 || rep.Rejoins == 0 {
		t.Fatalf("churn never fired: %d crashes, %d rejoins", rep.Crashes, rep.Rejoins)
	}
	if rep.FramesAdmitted != rep.FramesApplied+rep.FramesShedOldest {
		t.Fatalf("ledger mismatch: admitted %d != applied %d + shed %d",
			rep.FramesAdmitted, rep.FramesApplied, rep.FramesShedOldest)
	}
}

// TestSoakDropOldest exercises the shedding policy under a tight quota:
// devices shed sealed segments, and the verification accounts for every
// shed frame rather than flagging it as loss.
func TestSoakDropOldest(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short")
	}
	rep, err := Run(context.Background(), Options{
		Devices:      8,
		Duration:     2 * time.Second,
		Seed:         2,
		Loss:         0.25,
		Quota:        4 << 10,
		Policy:       spool.DropOldestUnacked,
		SpoolRoot:    t.TempDir(),
		DrainTimeout: time.Minute,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	if !rep.ExactlyOnce {
		t.Fatalf("exactly-once violated: %v", rep.Violations)
	}
	if rep.FramesApplied == 0 {
		t.Fatal("no frames applied at the store")
	}
}
