// Package soak is the churn soak harness: a fleet of hundreds to
// thousands of simulated edge devices with heterogeneous capture rates
// runs against a real broker + translator + store pipeline while the
// harness injects the failure modes the edge actually serves up —
// device crash/rejoin churn, network loss, disk quotas, and broker
// admission pressure — and then proves the exactly-once contract held:
// every frame a device's spool admitted is applied at the store exactly
// once, shed frames excepted and accounted.
package soak

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/chaos"
	"github.com/provlight/provlight/internal/core"
	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/simulation"
	"github.com/provlight/provlight/internal/spool"
	"github.com/provlight/provlight/internal/translate"
	"github.com/provlight/provlight/internal/workload"
)

// Options configures one soak run.
type Options struct {
	// Devices is the fleet size.
	Devices int
	// Duration is the capture phase length; draining and verification
	// run after it.
	Duration time.Duration
	// Seed makes churn timelines and loss patterns reproducible.
	Seed int64

	// MTBF is each device's mean uptime between crashes (0 disables
	// churn). Downtime is the mean outage length (default MTBF/10).
	MTBF, Downtime time.Duration

	// Loss is the packet loss fraction on every device's uplink during
	// the capture phase (healed for the drain phase).
	Loss float64

	// Quota caps each device's spool in bytes (0 = unlimited); Policy is
	// the degradation policy applied when it fills.
	Quota  int64
	Policy spool.DegradePolicy

	// MaxSessions / ConnectRate / ConnectBurst enable broker admission
	// control (see broker.Config). Translator sessions count too.
	MaxSessions  int
	ConnectRate  float64
	ConnectBurst int

	// Sessions is the translator consumer-group width. Default 4.
	Sessions int

	// SpoolRoot holds the per-device spool directories (default: a
	// temp directory, removed after the run).
	SpoolRoot string

	// DrainTimeout bounds the post-run drain of every device's spool.
	// Default 2 minutes.
	DrainTimeout time.Duration

	// DrainConcurrency is how many devices drain their spools at once in
	// the post-run drain phase (bounds publisher concurrency so the
	// pipeline never collapses under a full-fleet republish storm).
	// Default 64.
	DrainConcurrency int

	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)

	// Metrics, when set, exports the whole pipeline into the registry:
	// broker and translator counters, pipeline stage latencies, and every
	// device client's capture/spool families (labeled client=<id>).
	// Scrape-time cost only; the capture hot path is unaffected.
	Metrics *obs.Registry
}

// Report is the machine-readable outcome of a soak run (BENCH_soak.json).
type Report struct {
	Devices     int     `json:"devices"`
	Duration    string  `json:"duration"`
	Elapsed     string  `json:"elapsed"`
	Seed        int64   `json:"seed"`
	LossPct     float64 `json:"loss_pct"`
	QuotaBytes  int64   `json:"quota_bytes"`
	Policy      string  `json:"policy"`
	ChurnEvents int     `json:"churn_events"`
	Crashes     int     `json:"crashes"`
	Rejoins     int     `json:"rejoins"`

	RecordsCaptured    uint64 `json:"records_captured"`
	FramesAdmitted     uint64 `json:"frames_admitted"`
	FramesShedNew      uint64 `json:"frames_shed_new"`
	FramesShedOldest   uint64 `json:"frames_shed_oldest"`
	FramesApplied      uint64 `json:"frames_applied"`
	SpoolBlocked       uint64 `json:"spool_blocked_appends"`
	ReconnectAttempts  uint64 `json:"reconnect_attempts"`
	CongestionRejected uint64 `json:"congestion_rejected"`

	ExactlyOnce bool     `json:"exactly_once"`
	Violations  []string `json:"violations,omitempty"`
}

// device is one simulated edge device across its crash/rejoin
// incarnations.
type device struct {
	id    string
	dir   string
	rate  workload.Rate
	topic string

	mu     sync.Mutex
	client *core.Client
	down   bool
	// Accumulated counters from dead incarnations (each incarnation's
	// StatsSnapshot restarts from zero for in-memory counters).
	shedNew    uint64 // DropNew sheds (frames never admitted to the WAL)
	shedWAL    uint64 // DropOldestUnacked sheds (admitted, then dropped)
	blocked    uint64
	reconnects uint64

	captured atomic.Uint64 // records successfully captured (all incarnations)
	ticks    atomic.Uint64 // capture loop iterations, drives task ids
}

// accumulateLocked folds the live client's counters into the device's
// cross-incarnation totals. Callers hold d.mu and are about to drop the
// client (crash or final shutdown).
func (d *device) accumulateLocked() {
	if d.client == nil {
		return
	}
	st := d.client.StatsSnapshot()
	d.shedNew += st.FramesShed
	d.shedWAL += st.SpoolShedQoS0 + st.SpoolShedHigher
	d.blocked += st.SpoolBlockedAppends
	d.reconnects += st.ReconnectAttempts
}

// Run executes the soak and verifies exactly-once delivery at the store.
// The returned Report is non-nil whenever the pipeline itself came up;
// ExactlyOnce=false with Violations describes contract breaches.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Devices <= 0 {
		return nil, fmt.Errorf("soak: Devices must be positive")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("soak: Duration must be positive")
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 4
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 2 * time.Minute
	}
	if opts.DrainConcurrency <= 0 {
		opts.DrainConcurrency = 64
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	root := opts.SpoolRoot
	if root == "" {
		tmp, err := os.MkdirTemp("", "provlight-soak-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	// Pipeline: broker (+ admission control) -> translator consumer
	// group -> deduplicating store. The store's (origin, seq) ledger is
	// the exactly-once ground truth the verification phase reads back.
	store := dfanalyzer.NewStore()
	target := translate.NewStoreTarget(store, "soak")
	srv, err := core.StartServer(ctx, core.ServerConfig{
		Addr:         "127.0.0.1:0",
		Targets:      []translate.Target{target},
		Sessions:     opts.Sessions,
		Workers:      2,
		BatchSize:    64,
		MaxSessions:  opts.MaxSessions,
		ConnectRate:  opts.ConnectRate,
		ConnectBurst: opts.ConnectBurst,
		Metrics:      opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("soak: start pipeline: %w", err)
	}
	defer srv.Close()

	// One shared fault plane: every device's uplink goes through it, so
	// SetLoss is the netem profile for the whole fleet.
	fault := chaos.NewFault(opts.Seed)
	if opts.Loss > 0 {
		fault.SetLoss(opts.Loss)
	}

	devices := make([]*device, opts.Devices)
	start := func(d *device) error {
		client, err := core.NewClient(context.Background(), core.Config{
			Broker:   srv.Addr(),
			ClientID: d.id,
			SpoolDir: d.dir,
			DialConn: func() (net.PacketConn, error) {
				pc, err := net.ListenPacket("udp", "127.0.0.1:0")
				if err != nil {
					return nil, err
				}
				return fault.WrapPacketConn(pc), nil
			},
			SpoolQuota:  opts.Quota,
			SpoolPolicy: opts.Policy,
			// Overload-tolerant pacing: at soak scale the broker runs far
			// past saturation during the capture phase, and aggressive
			// retransmit/reconnect timers turn transient drops into a
			// congestion-collapse spiral (every timeout re-offers a whole
			// publish window). Small windows and patient retries keep the
			// broker responsive; the spool absorbs the backlog.
			AckWindow:         16,
			RetryInterval:     time.Second,
			MaxRetries:        6,
			RedeliverAfter:    10 * time.Second,
			ReconnectMinDelay: 250 * time.Millisecond,
			ReconnectMaxDelay: 8 * time.Second,
			Metrics:           opts.Metrics,
		})
		if err != nil {
			return err
		}
		d.client = client
		return nil
	}
	for i := range devices {
		d := &device{
			id:   fmt.Sprintf("soak-%04d", i),
			dir:  filepath.Join(root, fmt.Sprintf("dev-%04d", i)),
			rate: workload.RateFor(i),
		}
		d.topic = core.DefaultTopic(d.id)
		if err := start(d); err != nil {
			return nil, fmt.Errorf("soak: device %s: %w", d.id, err)
		}
		devices[i] = d
	}
	logf("soak: %d devices up, capture phase %v (loss %.0f%%, quota %d, policy %s)",
		opts.Devices, opts.Duration, opts.Loss*100, opts.Quota, opts.Policy)

	// Capture phase: every device emits task begin/end records at its
	// class rate; crashes mid-capture surface as client errors that the
	// next incarnation's spool recovery absorbs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, d := range devices {
		wg.Add(1)
		go func(d *device) {
			defer wg.Done()
			ticker := time.NewTicker(d.rate.Interval)
			defer ticker.Stop()
			payload := make([]byte, d.rate.Attributes)
			for i := range payload {
				payload[i] = byte(1)
			}
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				d.mu.Lock()
				client, down := d.client, d.down
				if down || client == nil {
					d.mu.Unlock()
					continue
				}
				n := d.ticks.Add(1)
				rec := taskRecord(d.id, n, payload)
				// Capture under the device lock: a crash event racing the
				// append would otherwise see a half-closed spool.
				err := client.Capture(rec)
				d.mu.Unlock()
				if err == nil {
					d.captured.Add(1)
				}
			}
		}(d)
	}

	// Churn executors: replay the precomputed deterministic timeline, one
	// goroutine per churned device so a slow crash or rejoin (spool
	// recovery is real disk work) never delays the rest of the fleet.
	plan := simulation.ChurnPlan(opts.Seed, opts.Devices, opts.Duration, opts.MTBF, opts.Downtime)
	perDevice := make(map[int][]simulation.ChurnEvent)
	for _, ev := range plan {
		perDevice[ev.Device] = append(perDevice[ev.Device], ev)
	}
	var crashes, rejoins atomic.Int64
	var churnWG sync.WaitGroup
	t0 := time.Now()
	for idx, evs := range perDevice {
		churnWG.Add(1)
		go func(d *device, evs []simulation.ChurnEvent) {
			defer churnWG.Done()
			for _, ev := range evs {
				select {
				case <-stop:
					return
				case <-time.After(time.Until(t0.Add(ev.At))):
				}
				d.mu.Lock()
				switch ev.Kind {
				case simulation.Crash:
					if !d.down && d.client != nil {
						d.accumulateLocked()
						d.client.Abort() // SIGKILL semantics: spool survives on disk
						d.client = nil
						d.down = true
						crashes.Add(1)
					}
				case simulation.Rejoin:
					if d.down {
						if err := start(d); err != nil {
							logf("soak: rejoin %s: %v", d.id, err)
						} else {
							d.down = false
							rejoins.Add(1)
						}
					}
				}
				d.mu.Unlock()
			}
		}(devices[idx], evs)
	}

	runStart := time.Now()
	select {
	case <-time.After(opts.Duration):
	case <-ctx.Done():
	}
	close(stop)
	wg.Wait()
	churnWG.Wait()
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	// Drain phase: heal the network, then crash the whole fleet (spools
	// are durable; this also stops the capture-phase publish storm) and
	// drain it back in bounded waves — DrainConcurrency devices at a
	// time, each revived on its spool and shut down cleanly. Shutdown
	// returns only once the spool is empty and every frame end-to-end
	// acknowledged, so a wave bounds the number of concurrent publishers
	// and the pipeline drains at its own pace instead of collapsing
	// under 2000 simultaneous republish windows.
	fault.SetLoss(0)
	fault.SetDelay(0)
	// Abort in parallel: a device mid-reconnect holds Abort until its
	// in-flight dial attempt fails (the dial is not interruptible), so a
	// sequential pass over thousands of devices would serialize those
	// multi-second waits into a dead phase lasting many minutes.
	var abortWG sync.WaitGroup
	for _, d := range devices {
		abortWG.Add(1)
		go func(d *device) {
			defer abortWG.Done()
			d.mu.Lock()
			if d.client != nil {
				d.accumulateLocked()
				d.client.Abort()
				d.client = nil
			}
			d.down = true
			d.mu.Unlock()
		}(d)
	}
	abortWG.Wait()
	logf("soak: capture done (%d crashes, %d rejoins), draining %d spools (%d at a time)",
		crashes.Load(), rejoins.Load(), opts.Devices, opts.DrainConcurrency)
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	report := &Report{
		Devices:     opts.Devices,
		Duration:    opts.Duration.String(),
		Seed:        opts.Seed,
		LossPct:     opts.Loss * 100,
		QuotaBytes:  opts.Quota,
		Policy:      opts.Policy.String(),
		ChurnEvents: len(plan),
		Crashes:     int(crashes.Load()),
		Rejoins:     int(rejoins.Load()),
		ExactlyOnce: true,
	}
	var drained atomic.Int64
	progressStop := make(chan struct{})
	go func() {
		tick := time.NewTicker(15 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-progressStop:
				return
			case <-tick.C:
				var frames, redials uint64
				for _, tr := range srv.Translators {
					st := tr.Stats()
					frames += st.FramesReceived
					redials += st.SessionRedials
				}
				bst := srv.Broker.Stats()
				logf("soak: drain progress %d/%d devices (translator frames=%d redials=%d; broker sessions=%d recv=%d routed=%d dup=%d rexmit=%d giveup=%d reroute=%d)",
					drained.Load(), opts.Devices, frames, redials,
					bst.Sessions, bst.PublishesReceived, bst.MessagesRouted,
					bst.DuplicatesDropped, bst.Retransmissions, bst.DeliveryGiveUps, bst.GroupRerouted)
			}
		}
	}()
	sem := make(chan struct{}, opts.DrainConcurrency)
	drainErrs := make(chan error, opts.Devices)
	for _, d := range devices {
		go func(d *device) {
			sem <- struct{}{}
			defer func() { <-sem }()
			defer drained.Add(1)
			d.mu.Lock()
			if err := start(d); err != nil {
				d.mu.Unlock()
				drainErrs <- fmt.Errorf("%s: revive for drain: %w", d.id, err)
				return
			}
			d.down = false
			client := d.client
			d.mu.Unlock()
			err := client.Shutdown(drainCtx)
			d.mu.Lock()
			d.accumulateLocked()
			d.mu.Unlock()
			if err != nil {
				err = fmt.Errorf("%s: drain: %w", d.id, err)
			}
			drainErrs <- err
		}(d)
	}
	for range devices {
		if err := <-drainErrs; err != nil {
			report.ExactlyOnce = false
			report.Violations = append(report.Violations, err.Error())
		}
	}
	close(progressStop)
	srv.Drain()

	// Verification: per device, the store must hold exactly the frames
	// the spool admitted minus the frames the policy shed — no loss, no
	// double-apply (the dedup ledger counts distinct frames only).
	for _, d := range devices {
		d.mu.Lock()
		var floor, pending uint64
		if d.client != nil {
			st := d.client.StatsSnapshot()
			floor, pending = st.SpoolAcked, st.SpoolPending
		}
		report.RecordsCaptured += d.captured.Load()
		shedWAL := d.shedWAL
		report.FramesShedNew += d.shedNew
		report.FramesShedOldest += shedWAL
		report.SpoolBlocked += d.blocked
		report.ReconnectAttempts += d.reconnects
		d.mu.Unlock()

		if pending != 0 {
			report.ExactlyOnce = false
			report.Violations = append(report.Violations,
				fmt.Sprintf("%s: %d frames still pending after drain", d.id, pending))
			continue
		}
		applied := store.AppliedFrameCount(d.topic)
		want := floor - shedWAL
		report.FramesAdmitted += floor
		report.FramesApplied += applied
		if applied != want {
			report.ExactlyOnce = false
			report.Violations = append(report.Violations,
				fmt.Sprintf("%s: store applied %d frames, want %d (floor %d - shed %d)",
					d.id, applied, want, floor, shedWAL))
		}
	}
	report.CongestionRejected = srv.Broker.Stats().CongestionRejected
	report.Elapsed = time.Since(runStart).Truncate(time.Millisecond).String()
	logf("soak: verified %d devices: applied=%d admitted=%d shed=%d+%d exactly_once=%v",
		opts.Devices, report.FramesApplied, report.FramesAdmitted,
		report.FramesShedNew, report.FramesShedOldest, report.ExactlyOnce)
	return report, nil
}

// taskRecord builds the n-th capture record for a device: alternating
// task begin/end events with a payload of the device's attribute class.
func taskRecord(id string, n uint64, payload []byte) *provdm.Record {
	task := (n - 1) / 2
	rec := &provdm.Record{
		WorkflowID:     id + "-wf",
		TaskID:         fmt.Sprintf("t%d", task),
		Transformation: "soak",
		Time:           time.Now(),
	}
	if n%2 == 1 {
		rec.Event = provdm.EventTaskBegin
		rec.Status = provdm.StatusRunning
		rec.Data = []provdm.DataRef{{
			ID: fmt.Sprintf("in_%d", task), WorkflowID: rec.WorkflowID,
			Attributes: []provdm.Attribute{{Name: "in", Value: payload}},
		}}
	} else {
		rec.Event = provdm.EventTaskEnd
		rec.Status = provdm.StatusFinished
		rec.Data = []provdm.DataRef{{
			ID: fmt.Sprintf("out_%d", task), WorkflowID: rec.WorkflowID,
			Attributes: []provdm.Attribute{{Name: "out", Value: payload}},
		}}
	}
	return rec
}
