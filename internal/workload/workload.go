// Package workload generates the synthetic workloads of the paper's
// evaluation (§III-A(d), Table I): chained transformations of timed tasks,
// each carrying a configurable number of input/output attributes, mimicking
// the Federated Learning / image pre-processing / sensor aggregation
// workloads that IoT/Edge devices typically execute.
package workload

import (
	"fmt"
	"time"

	"github.com/provlight/provlight/internal/capture"
	"github.com/provlight/provlight/internal/provdm"
)

// Config is one synthetic workload configuration (a cell of Table I).
type Config struct {
	// ChainedTransformations is the number of transformations (paper: 5).
	ChainedTransformations int
	// Tasks is the total number of tasks across all transformations
	// (paper: 100, e.g. 100 training epochs).
	Tasks int
	// AttributesPerTask is the number of input values and output values
	// each task carries (paper: 10 or 100; Listing 1 represents them as a
	// list of integers).
	AttributesPerTask int
	// TaskDuration is the per-task processing time (paper: 0.5/1/3.5/5 s).
	TaskDuration time.Duration
}

// Default is the reference configuration used by the scalability and
// Figure 6 experiments: 100 tasks of 0.5 s with 100 attributes.
var Default = Config{
	ChainedTransformations: 5,
	Tasks:                  100,
	AttributesPerTask:      100,
	TaskDuration:           500 * time.Millisecond,
}

// TableI returns the 8 configurations of Table I (2 attribute counts x 4
// task durations).
func TableI() []Config {
	var out []Config
	for _, attrs := range []int{10, 100} {
		for _, dur := range []time.Duration{
			500 * time.Millisecond, time.Second,
			3500 * time.Millisecond, 5 * time.Second,
		} {
			out = append(out, Config{
				ChainedTransformations: 5,
				Tasks:                  100,
				AttributesPerTask:      attrs,
				TaskDuration:           dur,
			})
		}
	}
	return out
}

// String renders the cell label, e.g. "100 attrs, 0.5s tasks".
func (c Config) String() string {
	return fmt.Sprintf("%d attrs, %gs tasks", c.AttributesPerTask, c.TaskDuration.Seconds())
}

// TotalDuration is the no-capture execution time of the workload.
func (c Config) TotalDuration() time.Duration {
	return time.Duration(c.Tasks) * c.TaskDuration
}

// Events is the number of capture events the instrumented workload emits:
// workflow begin/end plus task begin/end per task.
func (c Config) Events() int { return 2 + 2*c.Tasks }

// attrs mirrors Listing 1's payload shape: the "attributes per task" are a
// list of small values under a single key (in_data = {'in': [1, 1, ...]}),
// packed as a byte vector for the wire codec.
func (c Config) attrs(prefix string) []provdm.Attribute {
	vals := make([]byte, c.AttributesPerTask)
	fill := byte(1)
	if prefix == "out" {
		fill = 2
	}
	for i := range vals {
		vals[i] = fill
	}
	return []provdm.Attribute{{Name: prefix, Value: vals}}
}

// Records produces the exact capture-record sequence the instrumented
// workload of Listing 1 emits, for payload measurement and replay.
func (c Config) Records(workflowID string, now time.Time) []provdm.Record {
	recs := make([]provdm.Record, 0, c.Events())
	recs = append(recs, provdm.Record{
		Event: provdm.EventWorkflowBegin, WorkflowID: workflowID, Time: now,
	})
	nT := max(1, c.ChainedTransformations)
	perTransf := (c.Tasks + nT - 1) / nT
	var prev []string
	for taskIdx := 0; taskIdx < c.Tasks; taskIdx++ {
		tr := taskIdx / perTransf
		if tr >= nT {
			tr = nT - 1
		}
		transf := fmt.Sprintf("transf_%d", tr)
		taskID := fmt.Sprintf("%d_%d", tr, taskIdx%perTransf)
		dataID := taskIdx + 1
		now = now.Add(c.TaskDuration)
		inRef := provdm.DataRef{
			ID: fmt.Sprintf("in_%d", dataID), WorkflowID: workflowID,
			Attributes: c.attrs("in"),
		}
		recs = append(recs, provdm.Record{
			Event: provdm.EventTaskBegin, WorkflowID: workflowID,
			TaskID: taskID, Transformation: transf,
			Dependencies: prev, Status: provdm.StatusRunning,
			Data: []provdm.DataRef{inRef}, Time: now,
		})
		outRef := provdm.DataRef{
			ID: fmt.Sprintf("out_%d", dataID), WorkflowID: workflowID,
			Derivations: []string{inRef.ID},
			Attributes:  c.attrs("out"),
		}
		recs = append(recs, provdm.Record{
			Event: provdm.EventTaskEnd, WorkflowID: workflowID,
			TaskID: taskID, Transformation: transf,
			Status: provdm.StatusFinished,
			Data:   []provdm.DataRef{outRef}, Time: now.Add(c.TaskDuration),
		})
		prev = []string{taskID}
	}
	recs = append(recs, provdm.Record{
		Event: provdm.EventWorkflowEnd, WorkflowID: workflowID, Time: now,
	})
	return recs
}

// Rate is one heterogeneous soak-device class: how often a device emits
// a capture event and how big each event's payload is.
type Rate struct {
	// Interval between capture events (one task = two events).
	Interval time.Duration
	// Attributes per event, the payload knob of Table I.
	Attributes int
}

// SoakRates are the heterogeneous device classes a soak fleet cycles
// through: a few chatty high-rate devices per many slow sensor-style
// ones, spanning the paper's rate spectrum (Table I task durations map
// to event intervals of 0.25..2.5 s; the 50 ms class models the
// aggregation gateways that dominate fan-in load).
var SoakRates = []Rate{
	{Interval: 50 * time.Millisecond, Attributes: 10},
	{Interval: 250 * time.Millisecond, Attributes: 100},
	{Interval: 500 * time.Millisecond, Attributes: 10},
	{Interval: 2500 * time.Millisecond, Attributes: 100},
}

// RateFor returns the soak rate class for device i (round-robin over
// SoakRates), so any fleet size gets a deterministic heterogeneous mix.
func RateFor(i int) Rate {
	if i < 0 {
		i = -i
	}
	return SoakRates[i%len(SoakRates)]
}

// SampleTaskRecords returns one representative (begin, end) record pair,
// used by the cost model to measure real payload sizes.
func (c Config) SampleTaskRecords(workflowID string) (begin, end provdm.Record) {
	recs := c.Records(workflowID, time.Unix(0, 0))
	for _, r := range recs {
		switch r.Event {
		case provdm.EventTaskBegin:
			if begin.Event == 0 {
				begin = r
			}
		case provdm.EventTaskEnd:
			if end.Event == 0 {
				end = r
			}
		}
	}
	return begin, end
}

// Run executes the workload for real against a capture client, sleeping
// each task's duration scaled by timeScale (1.0 = real time; 0 = no sleep).
// It returns the wall-clock execution time.
func (c Config) Run(client capture.Client, workflowID string, timeScale float64) (time.Duration, error) {
	start := time.Now()
	records := c.Records(workflowID, start)
	for i := range records {
		rec := &records[i]
		// Task work happens between begin and end: sleep on end events.
		if rec.Event == provdm.EventTaskEnd && timeScale > 0 {
			time.Sleep(time.Duration(float64(c.TaskDuration) * timeScale))
		}
		rec.Time = time.Now()
		if err := client.Capture(rec); err != nil {
			return time.Since(start), err
		}
	}
	if err := client.Flush(); err != nil {
		return time.Since(start), err
	}
	return time.Since(start), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
