package workload

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/provlight/provlight/internal/capture"
	"github.com/provlight/provlight/internal/provdm"
)

func TestTableIConfigs(t *testing.T) {
	cfgs := TableI()
	if len(cfgs) != 8 {
		t.Fatalf("Table I has %d configs, want 8", len(cfgs))
	}
	for _, c := range cfgs {
		if c.ChainedTransformations != 5 || c.Tasks != 100 {
			t.Errorf("config %v: want 5 transformations, 100 tasks", c)
		}
	}
	if cfgs[0].AttributesPerTask != 10 || cfgs[4].AttributesPerTask != 100 {
		t.Error("attribute axis wrong")
	}
	if cfgs[0].TaskDuration != 500*time.Millisecond || cfgs[3].TaskDuration != 5*time.Second {
		t.Error("duration axis wrong")
	}
}

func TestRecordsShape(t *testing.T) {
	c := Config{ChainedTransformations: 5, Tasks: 100, AttributesPerTask: 10, TaskDuration: time.Second}
	recs := c.Records("wf", time.Unix(0, 0))
	if len(recs) != c.Events() {
		t.Fatalf("records = %d, want %d", len(recs), c.Events())
	}
	if recs[0].Event != provdm.EventWorkflowBegin || recs[len(recs)-1].Event != provdm.EventWorkflowEnd {
		t.Error("workflow bracket events missing")
	}
	begins, ends := 0, 0
	transforms := map[string]bool{}
	for i := range recs {
		r := &recs[i]
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		switch r.Event {
		case provdm.EventTaskBegin:
			begins++
			transforms[r.Transformation] = true
			if len(r.Data) != 1 {
				t.Fatalf("task begin without input data")
			}
			if b, ok := r.Data[0].Attributes[0].Value.([]byte); !ok || len(b) != 10 {
				t.Fatalf("attributes payload = %v", r.Data[0].Attributes)
			}
		case provdm.EventTaskEnd:
			ends++
			if len(r.Data[0].Derivations) != 1 {
				t.Error("output data missing derivation link")
			}
		}
	}
	if begins != 100 || ends != 100 {
		t.Errorf("begins=%d ends=%d, want 100 each", begins, ends)
	}
	if len(transforms) != 5 {
		t.Errorf("transformations = %d, want 5", len(transforms))
	}
}

func TestTaskChaining(t *testing.T) {
	c := Config{ChainedTransformations: 2, Tasks: 4, AttributesPerTask: 1, TaskDuration: time.Millisecond}
	recs := c.Records("wf", time.Unix(0, 0))
	var prev string
	for i := range recs {
		r := &recs[i]
		if r.Event != provdm.EventTaskBegin {
			continue
		}
		if prev != "" {
			if len(r.Dependencies) != 1 || r.Dependencies[0] != prev {
				t.Errorf("task %s deps = %v, want [%s]", r.TaskID, r.Dependencies, prev)
			}
		}
		prev = r.TaskID
	}
}

func TestRunAgainstCaptureClient(t *testing.T) {
	c := Config{ChainedTransformations: 2, Tasks: 6, AttributesPerTask: 5, TaskDuration: time.Millisecond}
	var got []provdm.EventKind
	client := capture.Func(func(rec *provdm.Record) error {
		got = append(got, rec.Event)
		return nil
	})
	elapsed, err := c.Run(client, "wf", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != c.Events() {
		t.Errorf("captured %d events, want %d", len(got), c.Events())
	}
	if elapsed < 6*time.Millisecond {
		t.Errorf("elapsed %v should include task sleeps", elapsed)
	}
}

func TestEventsAndDuration(t *testing.T) {
	c := Default
	if c.Events() != 202 {
		t.Errorf("Events = %d, want 202", c.Events())
	}
	if c.TotalDuration() != 50*time.Second {
		t.Errorf("TotalDuration = %v, want 50s", c.TotalDuration())
	}
	if c.String() != "100 attrs, 0.5s tasks" {
		t.Errorf("String = %q", c.String())
	}
}

// Property: the record stream is well-formed for any small configuration.
func TestRecordsProperty(t *testing.T) {
	f := func(tr, tasks, attrs uint8) bool {
		c := Config{
			ChainedTransformations: int(tr%6) + 1,
			Tasks:                  int(tasks%40) + 1,
			AttributesPerTask:      int(attrs % 30),
			TaskDuration:           time.Millisecond,
		}
		recs := c.Records("w", time.Unix(0, 0))
		begins := 0
		for i := range recs {
			if recs[i].Validate() != nil {
				return false
			}
			if recs[i].Event == provdm.EventTaskBegin {
				begins++
			}
		}
		return begins == c.Tasks && len(recs) == c.Events()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
