package cluster

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/transport"
)

// TestRendezvousMinimalMovement pins the property migration relies on:
// adding a member only moves partitions TO it, removing one only moves
// the partitions it owned.
func TestRendezvousMinimalMovement(t *testing.T) {
	const parts = 256
	three := rendezvousOwners(parts, []string{"n0", "n1", "n2"})
	four := rendezvousOwners(parts, []string{"n0", "n1", "n2", "n3"})
	joined := 0
	for p := range three {
		if three[p] != four[p] {
			if four[p] != "n3" {
				t.Fatalf("partition %d moved %s->%s on join of n3", p, three[p], four[p])
			}
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("n3 took no partitions")
	}
	two := rendezvousOwners(parts, []string{"n0", "n1"})
	for p := range three {
		if three[p] != two[p] && three[p] != "n2" {
			t.Fatalf("partition %d moved %s->%s on leave of n2", p, three[p], two[p])
		}
	}
}

func newTestCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Nodes:         nodes,
		Transport:     transport.NewLoopback(),
		RetryInterval: 2 * time.Second,
		DrainTimeout:  20 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func dialNode(t *testing.T, c *Cluster, id, clientID string) *mqttsn.Client {
	t.Helper()
	n := c.Node(id)
	if n == nil {
		t.Fatalf("no node %q", id)
	}
	mc, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:      clientID,
		Gateway:       n.Addr(),
		Transport:     c.tr,
		RetryInterval: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("client %s: %v", clientID, err)
	}
	t.Cleanup(mc.Close)
	if err := mc.Connect(); err != nil {
		t.Fatalf("connect %s: %v", clientID, err)
	}
	return mc
}

// topicsOwnedBy generates topic names under prefix until want of them
// land in partitions owned by node id (ownership is deterministic).
func topicsOwnedBy(c *Cluster, id string, want int, prefix string) []string {
	topo := c.Topology()
	var out []string
	for i := 0; len(out) < want && i < 100000; i++ {
		topic := fmt.Sprintf("%s/t%d/rec", prefix, i)
		if topo.Owners[PartitionOf(topic, topo.Partitions)] == id {
			out = append(out, topic)
		}
	}
	return out
}

// TestSingleNodePassthrough: a one-node cluster is today's broker — no
// forwarding, no links, plain pub/sub.
func TestSingleNodePassthrough(t *testing.T) {
	c := newTestCluster(t, 1)
	sub := dialNode(t, c, "n0", "sub")
	got := make(chan string, 8)
	if err := sub.Subscribe("wf/+/rec", mqttsn.QoS2, func(topic string, payload []byte) {
		got <- string(payload)
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	pub := dialNode(t, c, "n0", "pub")
	if err := pub.Publish("wf/a/rec", []byte("x"), mqttsn.QoS2); err != nil {
		t.Fatalf("publish: %v", err)
	}
	select {
	case p := <-got:
		if p != "x" {
			t.Fatalf("got %q", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	st := c.Stats()
	if len(st) != 1 || st[0].ForwardedOut != 0 || st[0].Broker.Forwarded != 0 {
		t.Fatalf("single node forwarded frames: %+v", st)
	}
	if got := len(st[0].Partitions); got != c.cfg.Partitions {
		t.Fatalf("single node owns %d/%d partitions", got, c.cfg.Partitions)
	}
}

// TestForwardAndPropagate: a subscriber on one node receives, in order,
// frames published on every node, whichever node owns the topic.
func TestForwardAndPropagate(t *testing.T) {
	c := newTestCluster(t, 3)
	sub := dialNode(t, c, "n0", "sub")
	var mu sync.Mutex
	got := map[string][]int{}
	if err := sub.Subscribe("wf/+/rec", mqttsn.QoS2, func(topic string, payload []byte) {
		seq, _ := strconv.Atoi(string(payload))
		mu.Lock()
		got[topic] = append(got[topic], seq)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	// Wait until n0's filter has reached its peer links.
	c.Node("n0").syncSubs()

	// Two topics owned by each node, published from every node.
	const perTopic = 20
	var topics []string
	for _, id := range c.NodeIDs() {
		topics = append(topics, topicsOwnedBy(c, id, 2, "wf")...)
	}
	if len(topics) != 6 {
		t.Fatalf("topic generation failed: %v", topics)
	}
	// Each node publishes the NEXT node's topics, so every frame crosses
	// a forwarding link to its owner.
	var wg sync.WaitGroup
	ids := c.NodeIDs()
	for i, id := range ids {
		pub := dialNode(t, c, id, "pub"+id)
		j := (i + 1) % len(ids)
		topic := topics[j*2 : j*2+2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; seq < perTopic; seq++ {
				for _, tp := range topic {
					if err := pub.Publish(tp, []byte(strconv.Itoa(seq)), mqttsn.QoS2); err != nil {
						t.Errorf("publish %s: %v", tp, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	waitFor(t, 30*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, seqs := range got {
			total += len(seqs)
		}
		return total >= len(topics)*perTopic
	})
	mu.Lock()
	defer mu.Unlock()
	for _, tp := range topics {
		assertSequence(t, tp, [][]int{got[tp]}, perTopic)
	}
	forwarded := uint64(0)
	for _, st := range c.Stats() {
		forwarded += st.ForwardedOut
	}
	if forwarded == 0 {
		t.Fatal("no frames were forwarded between nodes")
	}
}

// TestLeaveMigratesLive is the exactly-once/ordering test the issue
// demands: a consumer group with a member per node keeps receiving while
// a node owning live topics leaves; every frame arrives exactly once and
// per-topic order holds across the handoff.
func TestLeaveMigratesLive(t *testing.T) {
	c := newTestCluster(t, 3)

	// One group member per node, mirroring the cluster-aware translator.
	type rec struct {
		topic string
		seq   int
	}
	var mu sync.Mutex
	perMember := map[string][]rec{}
	for _, id := range c.NodeIDs() {
		id := id
		mem := dialNode(t, c, id, "mem-"+id)
		err := mem.Subscribe("$share/g/wf/+/rec", mqttsn.QoS2, func(topic string, payload []byte) {
			seq, _ := strconv.Atoi(string(payload))
			mu.Lock()
			perMember[id] = append(perMember[id], rec{topic, seq})
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("member %s subscribe: %v", id, err)
		}
	}

	// Two topics owned by each node; all published from surviving nodes.
	const perTopic = 40
	var topics []string
	for _, id := range c.NodeIDs() {
		topics = append(topics, topicsOwnedBy(c, id, 2, "wf")...)
	}
	pub0 := dialNode(t, c, "n0", "pub0")
	pub1 := dialNode(t, c, "n1", "pub1")

	phase := make(chan struct{}) // closed once a third of the stream is out
	var once sync.Once
	var wg sync.WaitGroup
	publish := func(pub *mqttsn.Client, topic []string) {
		defer wg.Done()
		for seq := 0; seq < perTopic; seq++ {
			for _, tp := range topic {
				if err := pub.Publish(tp, []byte(strconv.Itoa(seq)), mqttsn.QoS2); err != nil {
					t.Errorf("publish %s seq %d: %v", tp, seq, err)
					return
				}
			}
			if seq == perTopic/3 {
				once.Do(func() { close(phase) })
			}
		}
	}
	wg.Add(2)
	go publish(pub0, topics[:3])
	go publish(pub1, topics[3:])

	// Mid-stream, the node owning a third of the topics leaves.
	<-phase
	if err := c.Leave(context.Background(), "n2"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	wg.Wait()

	want := len(topics) * perTopic
	waitFor(t, 60*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, rs := range perMember {
			total += len(rs)
		}
		return total >= want
	})

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, rs := range perMember {
		total += len(rs)
	}
	if total != want {
		t.Fatalf("received %d frames, want exactly %d (duplicate or loss)", total, want)
	}
	for _, tp := range topics {
		var lists [][]int
		for _, id := range []string{"n0", "n1", "n2"} {
			var seqs []int
			for _, r := range perMember[id] {
				if r.topic == tp {
					seqs = append(seqs, r.seq)
				}
			}
			if len(seqs) > 0 {
				lists = append(lists, seqs)
			}
		}
		assertSequence(t, tp, lists, perTopic)
	}
	if got := len(c.NodeIDs()); got != 2 {
		t.Fatalf("membership after leave: %v", c.NodeIDs())
	}
	for _, st := range c.Stats() {
		if len(st.Partitions) == 0 {
			t.Fatalf("node %s owns no partitions after rebalance", st.ID)
		}
	}
}

// TestJoinMigratesLive: a node joins mid-stream, takes partitions, and
// the individually-subscribed consumer sees every frame in order.
func TestJoinMigratesLive(t *testing.T) {
	c := newTestCluster(t, 2)
	sub := dialNode(t, c, "n0", "sub")
	var mu sync.Mutex
	got := map[string][]int{}
	if err := sub.Subscribe("wf/+/rec", mqttsn.QoS2, func(topic string, payload []byte) {
		seq, _ := strconv.Atoi(string(payload))
		mu.Lock()
		got[topic] = append(got[topic], seq)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	c.Node("n0").syncSubs()

	const perTopic = 40
	topics := append(topicsOwnedBy(c, "n0", 2, "wf"), topicsOwnedBy(c, "n1", 2, "wf")...)
	pub := dialNode(t, c, "n1", "pub")
	phase := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := 0; seq < perTopic; seq++ {
			for _, tp := range topics {
				if err := pub.Publish(tp, []byte(strconv.Itoa(seq)), mqttsn.QoS2); err != nil {
					t.Errorf("publish %s seq %d: %v", tp, seq, err)
					return
				}
			}
			if seq == perTopic/3 {
				close(phase)
			}
		}
	}()

	<-phase
	joined, err := c.Join(context.Background())
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	wg.Wait()

	want := len(topics) * perTopic
	waitFor(t, 60*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, seqs := range got {
			total += len(seqs)
		}
		return total >= want
	})
	mu.Lock()
	defer mu.Unlock()
	for _, tp := range topics {
		assertSequence(t, tp, [][]int{got[tp]}, perTopic)
	}
	if n := c.Node(joined); n == nil {
		t.Fatalf("joined node %q not a member", joined)
	}
	ownedByNew := 0
	topo := c.Topology()
	for _, o := range topo.Owners {
		if o == joined {
			ownedByNew++
		}
	}
	if ownedByNew == 0 {
		t.Fatal("joined node owns no partitions")
	}
}

// assertSequence checks that the per-receiver sequence lists for one
// topic, ordered by their first element, concatenate to exactly
// 0..perTopic-1: no loss, no duplicate, no reordering. A topic's frames
// may arrive at up to two receivers (before/after a migration); within
// each receiver order is strict.
func assertSequence(t *testing.T, topic string, lists [][]int, perTopic int) {
	t.Helper()
	var nonEmpty [][]int
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
		}
	}
	sort.Slice(nonEmpty, func(i, j int) bool { return nonEmpty[i][0] < nonEmpty[j][0] })
	var all []int
	for _, l := range nonEmpty {
		all = append(all, l...)
	}
	if len(all) != perTopic {
		t.Fatalf("topic %s: got %d frames, want %d: %v", topic, len(all), perTopic, summarize(all))
	}
	for i, seq := range all {
		if seq != i {
			t.Fatalf("topic %s: position %d has seq %d (lists %v)", topic, i, seq, summarize(all))
		}
	}
}

func summarize(seqs []int) string {
	if len(seqs) <= 20 {
		return fmt.Sprint(seqs)
	}
	return fmt.Sprintf("%v...%v (%d total)", seqs[:10], seqs[len(seqs)-10:], len(seqs))
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatsShape sanity-checks the ownership table and counters the
// broker binary's stats endpoint serves.
func TestStatsShape(t *testing.T) {
	c := newTestCluster(t, 2)
	topo := c.Topology()
	if topo.Partitions != 64 || len(topo.Owners) != 64 {
		t.Fatalf("topology: %+v", topo)
	}
	seen := map[string]bool{}
	for _, o := range topo.Owners {
		seen[o] = true
	}
	if !seen["n0"] || !seen["n1"] {
		t.Fatalf("owners missing a node: %v", seen)
	}
	for _, st := range c.Stats() {
		if st.Addr == "" || !strings.HasPrefix(st.ID, "n") {
			t.Fatalf("stats entry: %+v", st)
		}
	}
}
