package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/wire"
)

// Node is one broker plus its cluster plumbing: the forward hook that
// steers released frames to their partition's owner, the pause buffer
// used during migration, the per-peer forwarding links, and the
// refcounted individual filters it propagates to peers so remote
// subscribers (device ack listeners, monitors) receive frames released
// on any node.
type Node struct {
	id string
	c  *Cluster
	b  *broker.Broker

	// fmu guards the forwarding view: the installed topology, the
	// paused-partition set, and the migration buffer. Held only for
	// map/slice work — network sends happen after unlock.
	fmu    sync.Mutex
	topo   *topology
	paused map[int]bool
	buf    []bufFrame

	// pendMu guards fwdPending: frames committed to a forwarding link
	// but not yet acknowledged routed by the owner, per partition. A
	// frame is counted here from inside the fmu critical section that
	// decided to forward it until its QoS handshake completes, so the
	// migration drain never sees a frame in neither counter. Lock order:
	// fmu may take pendMu, never the reverse.
	pendMu     sync.Mutex
	fwdPending map[int]int

	linkMu sync.Mutex
	links  map[string]*link

	// filterMu guards the refcounted individual filters local non-bridge
	// sessions hold; each distinct filter is subscribed once on every
	// peer link.
	filterMu sync.Mutex
	filters  map[string]int

	// subCh feeds the propagation worker: subscribe/unsubscribe hooks
	// must not block on peer round trips, so they enqueue and return.
	subCh chan subChange

	// hbMu guards the failure detector's receive side: when each peer's
	// heartbeat was last heard on this node (over the peer's own link
	// session into this broker) and the epoch it claimed. Leaf lock.
	hbMu      sync.Mutex
	lastHeard map[string]time.Time
	peerEpoch map[string]uint64
	// hbPause suppresses heartbeat SENDING (tests simulate a partitioned
	// node with it; the node keeps running, peers just stop hearing it).
	hbPause atomic.Bool

	// demoted flips once when a peer's membership gate fences this node
	// out; the node then closes itself so local clients fail over.
	demoted atomic.Bool

	// lastBeatAttempt (unix nanos) is stamped every heartbeat tick,
	// whether or not beats are paused: it proves this node's loop is
	// RUNNING. The detector only trusts confirmations from nodes that
	// recently stamped it — a corpse's frozen lastHeard map must not
	// count as evidence against the living.
	lastBeatAttempt atomic.Int64

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	forwardedOut atomic.Uint64 // frames enqueued to peer links
	migratedBuf  atomic.Uint64 // frames handed off through migration buffers
	linkLost     atomic.Uint64 // forwarded frames dropped for good (teardown, fencing)
	// takeoverRedelivered counts frames this forwarder re-delivered to a
	// partition's new owner after the old owner crashed (the retained
	// unacked + queued frames a pre-self-healing cluster counted lost).
	takeoverRedelivered atomic.Uint64
	// epochRefused counts bridge CONNECTs this node's membership gate
	// refused — a non-zero value is the fingerprint of a fenced zombie
	// knocking.
	epochRefused atomic.Uint64

	// stageForward is the forward-hop stage of the e2e latency histogram
	// (nil without cluster Metrics): observed when a traced frame that
	// crossed a bridge link lands on its partition's owner.
	stageForward *obs.Histogram
}

// bufFrame is one buffered frame with its precomputed partition.
type bufFrame struct {
	part int
	f    broker.ForwardFrame
}

type subChange struct {
	filter string
	add    bool
	// sync, when non-nil, marks a barrier: the worker closes it once
	// every previously enqueued change has been propagated. Tests use it
	// to wait out the asynchronous filter propagation deterministically.
	sync chan struct{}
}

// ID returns the node's cluster-unique id.
func (n *Node) ID() string { return n.id }

// Addr returns the node's broker listen address.
func (n *Node) Addr() string { return n.b.Addr() }

// Broker exposes the underlying broker (stats, direct inspection).
func (n *Node) Broker() *broker.Broker { return n.b }

// forwardHook is the broker's Forward hook: called once per fully
// released inbound publish. Returning true takes ownership of the frame.
func (n *Node) forwardHook(f broker.ForwardFrame) bool {
	// Failure-detector heartbeats ride the same link sessions as data
	// (so they attest exactly the path forwards take) but are consumed
	// here, BEFORE the pause check: a migration pause must never make a
	// healthy peer look dead.
	if peer, ok := parseHeartbeatTopic(f.Topic); ok {
		n.recordHeartbeat(peer, parseHeartbeatPayload(f.Payload))
		return true
	}
	n.fmu.Lock()
	tp := n.topo
	if tp == nil {
		n.fmu.Unlock()
		return false
	}
	part := PartitionOf(f.Topic, tp.partitions)
	if n.paused[part] {
		n.buf = append(n.buf, bufFrame{part: part, f: f})
		n.fmu.Unlock()
		return true
	}
	owner := tp.owner[part]
	if owner == n.id {
		n.fmu.Unlock()
		// A bridge-published frame reaching its owner has completed its
		// forward hop; record the hop's cumulative latency here, at the
		// receiving end, before local routing takes over.
		if f.Bridge && n.stageForward != nil {
			if ns, ok := wire.FrameCaptureNS(f.Payload); ok {
				obs.ObserveSince(n.stageForward, ns)
			}
		}
		return false // local routing handles it
	}
	addr := tp.addrs[owner]
	// Count the frame as in flight before leaving the critical section:
	// a drain that samples after this pause-consistent point sees it.
	n.addPending(part)
	n.fmu.Unlock()
	n.forwardedOut.Add(1)
	n.sendTo(owner, addr, part, f)
	return true
}

// sendTo hands a frame to the link for owner, dropping (with a loss
// count) only if the peer cannot be dialed.
func (n *Node) sendTo(owner, addr string, part int, f broker.ForwardFrame) {
	l := n.linkTo(owner, addr)
	if l == nil {
		n.decPending(part)
		n.linkLost.Add(1)
		return
	}
	l.enqueue(part, f)
}

func (n *Node) addPending(part int) {
	n.pendMu.Lock()
	n.fwdPending[part]++
	n.pendMu.Unlock()
}

func (n *Node) decPending(part int) {
	n.pendMu.Lock()
	n.fwdPending[part]--
	n.pendMu.Unlock()
}

// pendingForParts sums the in-flight forward counts for a partition set.
func (n *Node) pendingForParts(parts map[int]bool) int {
	n.pendMu.Lock()
	defer n.pendMu.Unlock()
	total := 0
	for p := range parts {
		total += n.fwdPending[p]
	}
	return total
}

// linkTo returns the supervised link to peer, creating one if needed
// (the link dials — and redials — on its own runner; creation never
// blocks on the network).
func (n *Node) linkTo(peer, addr string) *link {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	if l := n.links[peer]; l != nil {
		return l
	}
	select {
	case <-n.done:
		return nil
	default:
	}
	l := newLink(n, peer, addr)
	n.links[peer] = l
	return l
}

// harvestLink detaches and stops the link to a crashed peer, returning
// every frame it still held (retained unacked first, then queued, both
// in submission order) for redelivery to the partitions' new owners.
func (n *Node) harvestLink(peer string) []queuedFrame {
	n.linkMu.Lock()
	l := n.links[peer]
	delete(n.links, peer)
	n.linkMu.Unlock()
	if l == nil {
		return nil
	}
	return l.harvest()
}

// redirect re-routes a frame whose link went away mid-flight through the
// current topology: buffered if its partition is paused, submitted
// locally if this node now owns it, forwarded to the new owner
// otherwise. Only a node that is itself shutting down drops the frame.
// This is what turns the old "closing a link settles its queue as lost"
// into a requeue to the partition's new owner.
func (n *Node) redirect(part int, f broker.ForwardFrame) {
	n.decPending(part)
	select {
	case <-n.done:
		n.linkLost.Add(1)
		return
	default:
	}
	n.fmu.Lock()
	tp := n.topo
	if tp == nil {
		n.fmu.Unlock()
		n.linkLost.Add(1)
		return
	}
	if n.paused[part] {
		n.buf = append(n.buf, bufFrame{part: part, f: f})
		n.fmu.Unlock()
		return
	}
	owner := tp.owner[part]
	if owner == n.id {
		n.fmu.Unlock()
		n.b.Submit(f.Topic, f.Payload, f.QoS, f.Retain)
		return
	}
	addr := tp.addrs[owner]
	n.addPending(part)
	n.fmu.Unlock()
	n.sendTo(owner, addr, part, f)
}

// currentEpoch reads the installed topology's fencing epoch.
func (n *Node) currentEpoch() uint64 {
	n.fmu.Lock()
	defer n.fmu.Unlock()
	if n.topo == nil {
		return 0
	}
	return n.topo.epoch
}

// recordHeartbeat notes a peer's beat (receive side of the detector).
func (n *Node) recordHeartbeat(peer string, epoch uint64) {
	n.hbMu.Lock()
	n.lastHeard[peer] = time.Now()
	n.peerEpoch[peer] = epoch
	n.hbMu.Unlock()
}

// seedHeartbeat gives peer a fresh baseline if none exists, so a node
// is never suspected before it had one suspicion-timeout's chance to
// beat (fresh joiners, detector start).
func (n *Node) seedHeartbeat(peer string) {
	n.hbMu.Lock()
	if _, ok := n.lastHeard[peer]; !ok {
		n.lastHeard[peer] = time.Now()
	}
	n.hbMu.Unlock()
}

// heardAge returns how long ago peer's last beat arrived (0 if never
// seeded — the detector seeds every member pair before evaluating).
func (n *Node) heardAge(peer string, now time.Time) time.Duration {
	n.hbMu.Lock()
	defer n.hbMu.Unlock()
	t, ok := n.lastHeard[peer]
	if !ok {
		return 0
	}
	return now.Sub(t)
}

// heartbeatLoop publishes this node's beat over every live link at the
// configured interval. Sending bypasses the forward path entirely (no
// pause, no pending counters); receiving peers consume the beat in
// their forward hook.
func (n *Node) heartbeatLoop(interval time.Duration) {
	defer n.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	topic := heartbeatTopic(n.id)
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
			n.lastBeatAttempt.Store(time.Now().UnixNano())
			if n.hbPause.Load() {
				continue
			}
			payload := heartbeatPayload(n.currentEpoch())
			for _, l := range n.linkSnapshot() {
				l.heartbeat(topic, payload)
			}
		}
	}
}

// beatRecently reports whether this node's heartbeat loop ticked within
// the given window — i.e. whether its observations can be trusted.
func (n *Node) beatRecently(now time.Time, within time.Duration) bool {
	last := n.lastBeatAttempt.Load()
	return last != 0 && now.Sub(time.Unix(0, last)) <= within
}

// demote runs once, when a peer's membership gate fences this node out:
// the cluster has moved on without it, so it closes down — local clients
// get broker disconnects and fail over to surviving nodes — and reports
// itself, to rejoin (if the operator wants) via Join as a new member.
func (n *Node) demote() {
	if !n.demoted.CompareAndSwap(false, true) {
		return
	}
	n.c.logf("cluster: %s: demoted (fenced out of membership at epoch %d); closing for rejoin via Join", n.id, n.currentEpoch())
	n.close()
	n.c.noteDemoted(n.id)
}

// linkHealth snapshots per-peer link supervision state plus the
// detector's receive-side view, for stats.
func (n *Node) linkHealth(suspectAfter time.Duration) []LinkHealth {
	links := map[string]*link{}
	n.linkMu.Lock()
	for peer, l := range n.links {
		links[peer] = l
	}
	n.linkMu.Unlock()
	now := time.Now()
	out := make([]LinkHealth, 0, len(links))
	for peer, l := range links {
		state, redials, epoch := l.health()
		h := LinkHealth{
			Peer:    peer,
			State:   state,
			Redials: redials,
			Epoch:   epoch,
		}
		if age := n.heardAge(peer, now); age > 0 {
			h.LastHeartbeatAgeMs = age.Milliseconds()
			h.Suspect = suspectAfter > 0 && age > suspectAfter
		} else {
			h.LastHeartbeatAgeMs = -1
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// dropLink tears down the link to a departed peer.
func (n *Node) dropLink(peer string) {
	n.linkMu.Lock()
	l := n.links[peer]
	delete(n.links, peer)
	n.linkMu.Unlock()
	if l != nil {
		l.close()
	}
}

func (n *Node) linkSnapshot() []*link {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	ls := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		ls = append(ls, l)
	}
	return ls
}

// filterSnapshot lists the filters a freshly dialed link must subscribe.
func (n *Node) filterSnapshot() []string {
	n.filterMu.Lock()
	defer n.filterMu.Unlock()
	fs := make([]string, 0, len(n.filters))
	for f := range n.filters {
		fs = append(fs, f)
	}
	return fs
}

// onSubscribe / onUnsubscribe are the broker hooks; they enqueue to the
// propagation worker so the broker's shard path never waits on a peer.
func (n *Node) onSubscribe(filter string) {
	select {
	case n.subCh <- subChange{filter: filter, add: true}:
	case <-n.done:
	}
}

func (n *Node) onUnsubscribe(filter string) {
	select {
	case n.subCh <- subChange{filter: filter, add: false}:
	case <-n.done:
	}
}

func (n *Node) subWorker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case ch := <-n.subCh:
			if ch.sync != nil {
				close(ch.sync)
				continue
			}
			n.applySubChange(ch)
		}
	}
}

// syncSubs blocks until every filter change enqueued before the call has
// been propagated to the node's peer links.
func (n *Node) syncSubs() {
	ch := make(chan struct{})
	select {
	case n.subCh <- subChange{sync: ch}:
	case <-n.done:
		return
	}
	select {
	case <-ch:
	case <-n.done:
	}
}

// applySubChange propagates a refcount edge (0->1 subscribe, 1->0
// unsubscribe) to every live peer link. Shared-group filters never reach
// here (the broker hook reports individual filters only): a consumer
// group is expected to keep a member per node instead — see
// translate.Config.ClusterAddrs.
func (n *Node) applySubChange(ch subChange) {
	n.filterMu.Lock()
	if ch.add {
		n.filters[ch.filter]++
		if n.filters[ch.filter] != 1 {
			n.filterMu.Unlock()
			return
		}
	} else {
		n.filters[ch.filter]--
		if n.filters[ch.filter] > 0 {
			n.filterMu.Unlock()
			return
		}
		delete(n.filters, ch.filter)
	}
	n.filterMu.Unlock()
	for _, l := range n.linkSnapshot() {
		if ch.add {
			l.subscribe(ch.filter)
		} else {
			l.unsubscribe(ch.filter)
		}
	}
}

// pause marks partitions so frames released here are buffered instead of
// routed or forwarded.
func (n *Node) pause(moved map[int]bool) {
	n.fmu.Lock()
	for p := range moved {
		n.paused[p] = true
	}
	n.fmu.Unlock()
}

// takeBuffer extracts the node's entire migration buffer (all entries
// belong to paused — i.e. moved — partitions).
func (n *Node) takeBuffer() []bufFrame {
	n.fmu.Lock()
	buf := n.buf
	n.buf = nil
	n.fmu.Unlock()
	return buf
}

// prependBuffer puts handed-off frames (older than anything buffered
// locally) at the FRONT of the migration buffer, preserving their order.
func (n *Node) prependBuffer(frames []bufFrame) {
	if len(frames) == 0 {
		return
	}
	n.fmu.Lock()
	merged := make([]bufFrame, 0, len(frames)+len(n.buf))
	merged = append(merged, frames...)
	merged = append(merged, n.buf...)
	n.buf = merged
	n.fmu.Unlock()
}

// switchAndFlush installs the new topology, then drains the migration
// buffer through it — local partitions via Broker.Submit (synchronous,
// order-preserving), remote ones via the owner's link — looping until
// the buffer is empty, and finally unpauses the moved partitions
// atomically with the last emptiness check so no frame can slip between
// the flush and the resume.
func (n *Node) switchAndFlush(tp *topology, moved map[int]bool) {
	n.fmu.Lock()
	n.topo = tp
	n.fmu.Unlock()
	for {
		n.fmu.Lock()
		if len(n.buf) == 0 {
			for p := range moved {
				delete(n.paused, p)
			}
			n.fmu.Unlock()
			return
		}
		buf := n.buf
		n.buf = nil
		n.fmu.Unlock()
		for _, bf := range buf {
			owner := tp.owner[bf.part]
			n.migratedBuf.Add(1)
			if owner == n.id {
				n.b.Submit(bf.f.Topic, bf.f.Payload, bf.f.QoS, bf.f.Retain)
				continue
			}
			n.addPending(bf.part)
			n.forwardedOut.Add(1)
			n.sendTo(owner, tp.addrs[owner], bf.part, bf.f)
		}
	}
}

// close stops the propagation worker, tears down every link, and closes
// the broker (which disconnects local clients so they can redial a
// surviving node).
func (n *Node) close() {
	n.closeOnce.Do(func() { close(n.done) })
	n.wg.Wait()
	for _, l := range n.linkSnapshot() {
		l.close()
	}
	n.linkMu.Lock()
	n.links = map[string]*link{}
	n.linkMu.Unlock()
	n.b.Close()
}
