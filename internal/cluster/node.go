package cluster

import (
	"sync"
	"sync/atomic"

	"github.com/provlight/provlight/internal/broker"
)

// Node is one broker plus its cluster plumbing: the forward hook that
// steers released frames to their partition's owner, the pause buffer
// used during migration, the per-peer forwarding links, and the
// refcounted individual filters it propagates to peers so remote
// subscribers (device ack listeners, monitors) receive frames released
// on any node.
type Node struct {
	id string
	c  *Cluster
	b  *broker.Broker

	// fmu guards the forwarding view: the installed topology, the
	// paused-partition set, and the migration buffer. Held only for
	// map/slice work — network sends happen after unlock.
	fmu    sync.Mutex
	topo   *topology
	paused map[int]bool
	buf    []bufFrame

	// pendMu guards fwdPending: frames committed to a forwarding link
	// but not yet acknowledged routed by the owner, per partition. A
	// frame is counted here from inside the fmu critical section that
	// decided to forward it until its QoS handshake completes, so the
	// migration drain never sees a frame in neither counter. Lock order:
	// fmu may take pendMu, never the reverse.
	pendMu     sync.Mutex
	fwdPending map[int]int

	linkMu sync.Mutex
	links  map[string]*link

	// filterMu guards the refcounted individual filters local non-bridge
	// sessions hold; each distinct filter is subscribed once on every
	// peer link.
	filterMu sync.Mutex
	filters  map[string]int

	// subCh feeds the propagation worker: subscribe/unsubscribe hooks
	// must not block on peer round trips, so they enqueue and return.
	subCh chan subChange

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	forwardedOut atomic.Uint64 // frames enqueued to peer links
	migratedBuf  atomic.Uint64 // frames handed off through migration buffers
	linkLost     atomic.Uint64 // forwarded frames whose handshake failed
}

// bufFrame is one buffered frame with its precomputed partition.
type bufFrame struct {
	part int
	f    broker.ForwardFrame
}

type subChange struct {
	filter string
	add    bool
	// sync, when non-nil, marks a barrier: the worker closes it once
	// every previously enqueued change has been propagated. Tests use it
	// to wait out the asynchronous filter propagation deterministically.
	sync chan struct{}
}

// ID returns the node's cluster-unique id.
func (n *Node) ID() string { return n.id }

// Addr returns the node's broker listen address.
func (n *Node) Addr() string { return n.b.Addr() }

// Broker exposes the underlying broker (stats, direct inspection).
func (n *Node) Broker() *broker.Broker { return n.b }

// forwardHook is the broker's Forward hook: called once per fully
// released inbound publish. Returning true takes ownership of the frame.
func (n *Node) forwardHook(f broker.ForwardFrame) bool {
	n.fmu.Lock()
	tp := n.topo
	if tp == nil {
		n.fmu.Unlock()
		return false
	}
	part := PartitionOf(f.Topic, tp.partitions)
	if n.paused[part] {
		n.buf = append(n.buf, bufFrame{part: part, f: f})
		n.fmu.Unlock()
		return true
	}
	owner := tp.owner[part]
	if owner == n.id {
		n.fmu.Unlock()
		return false // local routing handles it
	}
	addr := tp.addrs[owner]
	// Count the frame as in flight before leaving the critical section:
	// a drain that samples after this pause-consistent point sees it.
	n.addPending(part)
	n.fmu.Unlock()
	n.forwardedOut.Add(1)
	n.sendTo(owner, addr, part, f)
	return true
}

// sendTo hands a frame to the link for owner, dropping (with a loss
// count) only if the peer cannot be dialed.
func (n *Node) sendTo(owner, addr string, part int, f broker.ForwardFrame) {
	l := n.linkTo(owner, addr)
	if l == nil {
		n.decPending(part)
		n.linkLost.Add(1)
		return
	}
	l.enqueue(part, f)
}

func (n *Node) addPending(part int) {
	n.pendMu.Lock()
	n.fwdPending[part]++
	n.pendMu.Unlock()
}

func (n *Node) decPending(part int) {
	n.pendMu.Lock()
	n.fwdPending[part]--
	n.pendMu.Unlock()
}

// pendingForParts sums the in-flight forward counts for a partition set.
func (n *Node) pendingForParts(parts map[int]bool) int {
	n.pendMu.Lock()
	defer n.pendMu.Unlock()
	total := 0
	for p := range parts {
		total += n.fwdPending[p]
	}
	return total
}

// linkTo returns the live link to peer, dialing one if needed. A dial
// failure is logged and retried on the next call.
func (n *Node) linkTo(peer, addr string) *link {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	if l := n.links[peer]; l != nil {
		return l
	}
	select {
	case <-n.done:
		return nil
	default:
	}
	l, err := newLink(n, peer, addr)
	if err != nil {
		n.c.logf("cluster: %s: dial link to %s (%s): %v", n.id, peer, addr, err)
		return nil
	}
	n.links[peer] = l
	return l
}

// dropLink tears down the link to a departed peer.
func (n *Node) dropLink(peer string) {
	n.linkMu.Lock()
	l := n.links[peer]
	delete(n.links, peer)
	n.linkMu.Unlock()
	if l != nil {
		l.close()
	}
}

func (n *Node) linkSnapshot() []*link {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	ls := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		ls = append(ls, l)
	}
	return ls
}

// filterSnapshot lists the filters a freshly dialed link must subscribe.
func (n *Node) filterSnapshot() []string {
	n.filterMu.Lock()
	defer n.filterMu.Unlock()
	fs := make([]string, 0, len(n.filters))
	for f := range n.filters {
		fs = append(fs, f)
	}
	return fs
}

// onSubscribe / onUnsubscribe are the broker hooks; they enqueue to the
// propagation worker so the broker's shard path never waits on a peer.
func (n *Node) onSubscribe(filter string) {
	select {
	case n.subCh <- subChange{filter: filter, add: true}:
	case <-n.done:
	}
}

func (n *Node) onUnsubscribe(filter string) {
	select {
	case n.subCh <- subChange{filter: filter, add: false}:
	case <-n.done:
	}
}

func (n *Node) subWorker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case ch := <-n.subCh:
			if ch.sync != nil {
				close(ch.sync)
				continue
			}
			n.applySubChange(ch)
		}
	}
}

// syncSubs blocks until every filter change enqueued before the call has
// been propagated to the node's peer links.
func (n *Node) syncSubs() {
	ch := make(chan struct{})
	select {
	case n.subCh <- subChange{sync: ch}:
	case <-n.done:
		return
	}
	select {
	case <-ch:
	case <-n.done:
	}
}

// applySubChange propagates a refcount edge (0->1 subscribe, 1->0
// unsubscribe) to every live peer link. Shared-group filters never reach
// here (the broker hook reports individual filters only): a consumer
// group is expected to keep a member per node instead — see
// translate.Config.ClusterAddrs.
func (n *Node) applySubChange(ch subChange) {
	n.filterMu.Lock()
	if ch.add {
		n.filters[ch.filter]++
		if n.filters[ch.filter] != 1 {
			n.filterMu.Unlock()
			return
		}
	} else {
		n.filters[ch.filter]--
		if n.filters[ch.filter] > 0 {
			n.filterMu.Unlock()
			return
		}
		delete(n.filters, ch.filter)
	}
	n.filterMu.Unlock()
	for _, l := range n.linkSnapshot() {
		if ch.add {
			l.subscribe(ch.filter)
		} else {
			l.unsubscribe(ch.filter)
		}
	}
}

// pause marks partitions so frames released here are buffered instead of
// routed or forwarded.
func (n *Node) pause(moved map[int]bool) {
	n.fmu.Lock()
	for p := range moved {
		n.paused[p] = true
	}
	n.fmu.Unlock()
}

// takeBuffer extracts the node's entire migration buffer (all entries
// belong to paused — i.e. moved — partitions).
func (n *Node) takeBuffer() []bufFrame {
	n.fmu.Lock()
	buf := n.buf
	n.buf = nil
	n.fmu.Unlock()
	return buf
}

// prependBuffer puts handed-off frames (older than anything buffered
// locally) at the FRONT of the migration buffer, preserving their order.
func (n *Node) prependBuffer(frames []bufFrame) {
	if len(frames) == 0 {
		return
	}
	n.fmu.Lock()
	merged := make([]bufFrame, 0, len(frames)+len(n.buf))
	merged = append(merged, frames...)
	merged = append(merged, n.buf...)
	n.buf = merged
	n.fmu.Unlock()
}

// switchAndFlush installs the new topology, then drains the migration
// buffer through it — local partitions via Broker.Submit (synchronous,
// order-preserving), remote ones via the owner's link — looping until
// the buffer is empty, and finally unpauses the moved partitions
// atomically with the last emptiness check so no frame can slip between
// the flush and the resume.
func (n *Node) switchAndFlush(tp *topology, moved map[int]bool) {
	n.fmu.Lock()
	n.topo = tp
	n.fmu.Unlock()
	for {
		n.fmu.Lock()
		if len(n.buf) == 0 {
			for p := range moved {
				delete(n.paused, p)
			}
			n.fmu.Unlock()
			return
		}
		buf := n.buf
		n.buf = nil
		n.fmu.Unlock()
		for _, bf := range buf {
			owner := tp.owner[bf.part]
			n.migratedBuf.Add(1)
			if owner == n.id {
				n.b.Submit(bf.f.Topic, bf.f.Payload, bf.f.QoS, bf.f.Retain)
				continue
			}
			n.addPending(bf.part)
			n.forwardedOut.Add(1)
			n.sendTo(owner, tp.addrs[owner], bf.part, bf.f)
		}
	}
}

// close stops the propagation worker, tears down every link, and closes
// the broker (which disconnects local clients so they can redial a
// surviving node).
func (n *Node) close() {
	n.closeOnce.Do(func() { close(n.done) })
	n.wg.Wait()
	for _, l := range n.linkSnapshot() {
		l.close()
	}
	n.linkMu.Lock()
	n.links = map[string]*link{}
	n.linkMu.Unlock()
	n.b.Close()
}
