package cluster

import (
	"encoding/binary"
	"strconv"
	"strings"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/mqttsn"
)

// Membership fencing. Every membership change — Join, Leave, Remove —
// bumps a monotonic epoch carried by the topology snapshot. The epoch is
// stamped into every bridge session's client id ("!bridge/<node>@<epoch>")
// and into every heartbeat payload, so the question "is this forwarder a
// current member?" is answered at the door, by each node's broker, with
// no shared state beyond the membership snapshot:
//
//   - A CONNECT from a bridge id whose node is a member is admitted
//     (a slightly stale epoch is fine — the node converges on the next
//     install; what is fenced is membership, not staleness).
//   - A CONNECT from a bridge id whose node is NOT a member is refused
//     with RejectedInvalidID. When a node is Removed, its established
//     bridge sessions on every survivor are disconnected too, so the
//     refusal is immediate, not eventual.
//
// A fenced node therefore cannot land a single forward: its partitions'
// streams continue exclusively through the new owners, split-brain
// double-ownership cannot fork a topic, and the zombie — seeing
// RejectedInvalidID, a code no healthy member ever receives — demotes
// itself (closes its broker so local clients fail over) to rejoin via
// Join as a fresh member.

// bridgeClientID stamps a node's current epoch into its bridge session
// id. Epochs stay well under the 23-character MQTT-SN client id cap for
// any realistic membership-change count.
func bridgeClientID(nodeID string, epoch uint64) string {
	return broker.BridgeSessionPrefix + nodeID + "@" + strconv.FormatUint(epoch, 10)
}

// parseBridgeClientID recovers (node, epoch) from a bridge session id.
// Ids without an epoch suffix (pre-epoch peers) parse as epoch 0.
func parseBridgeClientID(clientID string) (nodeID string, epoch uint64, ok bool) {
	rest, ok := strings.CutPrefix(clientID, broker.BridgeSessionPrefix)
	if !ok || rest == "" {
		return "", 0, false
	}
	if at := strings.LastIndexByte(rest, '@'); at >= 0 {
		e, err := strconv.ParseUint(rest[at+1:], 10, 64)
		if err != nil || at == 0 {
			return "", 0, false
		}
		return rest[:at], e, true
	}
	return rest, 0, true
}

// heartbeatPrefix namespaces the failure detector's heartbeat topics.
// '!' keeps them out of every valid device namespace the same way the
// bridge session prefix does, and they are valid MQTT-SN topic names
// (no wildcards), so they ride the ordinary link publish machinery.
const heartbeatPrefix = "!cluster/hb/"

// heartbeatTopic is the topic node id beats on (one topic per sender, so
// each link registers it once).
func heartbeatTopic(id string) string { return heartbeatPrefix + id }

// parseHeartbeatTopic recovers the sending node from a heartbeat topic.
func parseHeartbeatTopic(topic string) (id string, ok bool) {
	return strings.CutPrefix(topic, heartbeatPrefix)
}

// heartbeatPayload encodes the sender's epoch.
func heartbeatPayload(epoch uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], epoch)
	return b[:]
}

func parseHeartbeatPayload(p []byte) uint64 {
	if len(p) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// connectGate builds the broker ConnectGate for one node: ordinary
// clients always pass; bridge sessions pass only while their node is in
// the current membership snapshot. Runs on the broker's shard path, so
// it reads the lock-free membership pointer — never cluster or node
// mutexes.
func (c *Cluster) connectGate(n *Node) func(string) mqttsn.ReturnCode {
	return func(clientID string) mqttsn.ReturnCode {
		if !strings.HasPrefix(clientID, broker.BridgeSessionPrefix) {
			return mqttsn.Accepted
		}
		peer, peerEpoch, ok := parseBridgeClientID(clientID)
		if ok && c.isMember(peer) {
			return mqttsn.Accepted
		}
		n.epochRefused.Add(1)
		c.logf("cluster: %s: refused bridge connect from %s (epoch %d): not a member at epoch %d",
			n.id, peer, peerEpoch, n.currentEpoch())
		return mqttsn.RejectedInvalidID
	}
}

// isMember consults the lock-free membership snapshot (see
// Cluster.members); safe from broker hook context.
func (c *Cluster) isMember(id string) bool {
	m := c.members.Load()
	if m == nil {
		return true // before the first install, nothing is fenced
	}
	return (*m)[id]
}
