package cluster

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/transport"
)

// newSelfHealCluster builds a cluster with an aggressive failure
// detector and fast link retries, so crash tests converge in tens of
// milliseconds instead of the production-default seconds.
func newSelfHealCluster(t *testing.T, nodes int, onDemoted func(string)) *Cluster {
	t.Helper()
	// RetryInterval stays generous: an aggressive value causes spurious
	// QoS retransmits under race-detector load. Takeover speed does not
	// depend on it — harvesting a dead link force-fails its in-flight
	// frames by closing the session.
	c, err := New(Config{
		Nodes:             nodes,
		Transport:         transport.NewLoopback(),
		RetryInterval:     time.Second,
		MaxRetries:        2,
		DrainTimeout:      20 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectTimeout:    300 * time.Millisecond,
		LinkKeepAlive:     time.Second,
		OnDemoted:         onDemoted,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestDetectorRemovesDeadNode: killing a node (SIGKILL semantics — no
// Leave, no drain) is noticed by the heartbeat detector, which removes
// it and reassigns its partitions to the survivors, bumping the epoch.
func TestDetectorRemovesDeadNode(t *testing.T) {
	c := newSelfHealCluster(t, 3, nil)
	epochBefore := c.Topology().Epoch

	if err := c.Kill("n2"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	waitFor(t, 10*time.Second, func() bool {
		ids := c.NodeIDs()
		return len(ids) == 2 && ids[0] == "n0" && ids[1] == "n1"
	})

	topo := c.Topology()
	if topo.Epoch <= epochBefore {
		t.Fatalf("epoch did not advance: %d -> %d", epochBefore, topo.Epoch)
	}
	for p, owner := range topo.Owners {
		if owner == "n2" {
			t.Fatalf("partition %d still owned by dead node", p)
		}
	}
	for _, st := range c.Stats() {
		if len(st.Partitions) == 0 {
			t.Fatalf("node %s owns no partitions after takeover", st.ID)
		}
		if st.Epoch != topo.Epoch {
			t.Fatalf("node %s at epoch %d, topology at %d", st.ID, st.Epoch, topo.Epoch)
		}
	}
}

// TestCrashTakeoverRedelivers: frames forwarded toward a broker that is
// already dead pile up in the link's retained/queued tables; crash
// takeover harvests them and redelivers to the partitions' new owners.
// The dead node never routed any of them (it was killed before the
// first publish), so the subscriber must see every frame exactly once,
// in per-topic order — the frames a pre-self-healing cluster counted
// as linkLost.
func TestCrashTakeoverRedelivers(t *testing.T) {
	c := newSelfHealCluster(t, 3, nil)

	sub := dialNode(t, c, "n0", "sub")
	var mu sync.Mutex
	got := map[string][]int{}
	if err := sub.Subscribe("wf/+/rec", mqttsn.QoS2, func(topic string, payload []byte) {
		seq, _ := strconv.Atoi(string(payload))
		mu.Lock()
		got[topic] = append(got[topic], seq)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	c.Node("n0").syncSubs()

	topics := topicsOwnedBy(c, "n2", 2, "wf")
	if len(topics) != 2 {
		t.Fatalf("topic generation failed: %v", topics)
	}

	// Kill the owner, then publish INTO the outage: n0 forwards toward
	// the corpse, the link retains, the detector fires, takeover
	// redelivers.
	if err := c.Kill("n2"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	const perTopic = 30
	pub := dialNode(t, c, "n0", "pub")
	for seq := 0; seq < perTopic; seq++ {
		for _, tp := range topics {
			if err := pub.Publish(tp, []byte(strconv.Itoa(seq)), mqttsn.QoS2); err != nil {
				t.Fatalf("publish %s seq %d: %v", tp, seq, err)
			}
		}
	}

	want := len(topics) * perTopic
	waitFor(t, 30*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, seqs := range got {
			total += len(seqs)
		}
		return total >= want
	})
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, seqs := range got {
		total += len(seqs)
	}
	if total != want {
		t.Fatalf("received %d frames, want exactly %d (duplicate or loss)", total, want)
	}
	for _, tp := range topics {
		assertSequence(t, tp, [][]int{got[tp]}, perTopic)
	}

	redelivered := uint64(0)
	for _, st := range c.Stats() {
		redelivered += st.TakeoverRedelivered
		if st.LinkLost != 0 {
			t.Fatalf("node %s counted %d frames lost; takeover should redeliver them", st.ID, st.LinkLost)
		}
	}
	if redelivered == 0 {
		t.Fatal("no frames went through takeover redelivery")
	}
}

// TestZombieFencedAndRejoins: a node that stops heartbeating (but keeps
// running) is removed by the detector; when it tries to keep forwarding,
// the survivors' membership gates refuse its bridge sessions, and the
// zombie demotes itself. A subsequent Join brings a fresh node in with
// no partition owned by two nodes at any point.
func TestZombieFencedAndRejoins(t *testing.T) {
	demoted := make(chan string, 1)
	c := newSelfHealCluster(t, 3, func(id string) { demoted <- id })

	zombie := c.Node("n2")
	zombie.hbPause.Store(true)

	waitFor(t, 10*time.Second, func() bool { return len(c.NodeIDs()) == 2 })

	// The survivors fenced its established sessions at Remove; its link
	// supervisors redial, get RejectedInvalidID, and the node demotes.
	select {
	case id := <-demoted:
		if id != "n2" {
			t.Fatalf("demoted %q, want n2", id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("zombie never demoted itself")
	}
	refused := uint64(0)
	for _, st := range c.Stats() {
		refused += st.EpochRefused
	}
	if refused == 0 {
		t.Fatal("no bridge connect was refused by the membership gate")
	}

	// Rejoin as a fresh member and verify single ownership end to end.
	id, err := c.Join(context.Background())
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	members := map[string]bool{}
	for _, m := range c.NodeIDs() {
		members[m] = true
	}
	if !members[id] || len(members) != 3 {
		t.Fatalf("membership after rejoin: %v", c.NodeIDs())
	}
	topo := c.Topology()
	for p, owner := range topo.Owners {
		if !members[owner] {
			t.Fatalf("partition %d owned by non-member %q", p, owner)
		}
	}

	// The healed cluster still forwards: a frame published on n0 for a
	// topic the joiner owns arrives at an n0 subscriber.
	sub := dialNode(t, c, "n0", "sub")
	gotCh := make(chan string, 1)
	if err := sub.Subscribe("wf/+/rec", mqttsn.QoS2, func(topic string, payload []byte) {
		gotCh <- string(payload)
	}); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	c.Node("n0").syncSubs()
	topics := topicsOwnedBy(c, id, 1, "wf")
	if len(topics) != 1 {
		t.Fatalf("topic generation failed: %v", topics)
	}
	pub := dialNode(t, c, "n0", "pub")
	if err := pub.Publish(topics[0], []byte("healed"), mqttsn.QoS2); err != nil {
		t.Fatalf("publish: %v", err)
	}
	select {
	case p := <-gotCh:
		if p != "healed" {
			t.Fatalf("got %q", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("frame never delivered through rejoined cluster")
	}
}

// TestLinkHealthStats: the per-peer link supervision state is surfaced
// in NodeStats, flips to suspect when a peer goes silent, and counts
// redials after a session loss.
func TestLinkHealthStats(t *testing.T) {
	c := newSelfHealCluster(t, 3, nil)

	waitFor(t, 10*time.Second, func() bool {
		for _, st := range c.Stats() {
			if len(st.Links) != 2 {
				return false
			}
			for _, lh := range st.Links {
				if lh.State != LinkConnected || lh.LastHeartbeatAgeMs < 0 {
					return false
				}
			}
		}
		return true
	})

	// Silence one node's beats: peers must mark the link suspect (the
	// detector will then remove it; both observations are valid here).
	c.Node("n2").hbPause.Store(true)
	waitFor(t, 10*time.Second, func() bool {
		for _, st := range c.Stats() {
			if st.ID == "n2" {
				continue
			}
			for _, lh := range st.Links {
				if lh.Peer == "n2" && lh.Suspect {
					return true
				}
			}
		}
		return len(c.NodeIDs()) == 2 // detector already acted
	})
}
