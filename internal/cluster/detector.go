package cluster

import "time"

// Failure detection. Every node beats on its links each
// HeartbeatInterval ("!cluster/hb/<id>", epoch payload); receivers
// intercept the beats in their forward hook and record arrival times.
// The detector sweeps at the same cadence and declares a member dead
// only when enough OTHER members independently stopped hearing it —
// min(2, members-1) confirmations — so one flaky link cannot evict a
// healthy node, while a two-node cluster can still heal on the lone
// survivor's word. Death triggers crash takeover (Remove): partitions
// reassign, retained link frames redeliver, and the gate fences the
// corpse in case it was a zombie all along.
//
// Heartbeats ride the link sessions themselves (QoS 0, intercepted
// before the pause check), so they measure exactly the path forwards
// take: a peer that can't receive forwards can't look alive, and a
// paused migration doesn't buffer them.

// detector is the cluster's sweep loop; started by New when
// HeartbeatInterval > 0.
func (c *Cluster) detector() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		c.sweep()
	}
}

// sweep evaluates suspicion for every member and removes the confirmed
// dead. Holding c.mu the whole time serializes against Join/Leave, so
// membership cannot shift under a takeover.
func (c *Cluster) sweep() {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	var dead []string
	for _, id := range c.order {
		// Only members whose own beat loop demonstrably ticked within the
		// window may testify: a corpse's frozen lastHeard map ages against
		// every healthy peer and must not count as a confirmation.
		confirm, eligible := 0, 0
		for _, oid := range c.order {
			if oid == id {
				continue
			}
			o := c.nodes[oid]
			if !o.beatRecently(now, c.cfg.SuspectTimeout) {
				continue
			}
			eligible++
			if o.heardAge(id, now) > c.cfg.SuspectTimeout {
				confirm++
			}
		}
		need := min(2, eligible)
		if need > 0 && confirm >= need {
			c.logf("cluster: detector: %s confirmed dead by %d/%d live peer(s)", id, confirm, eligible)
			dead = append(dead, id)
		}
	}
	for _, id := range dead {
		if err := c.removeLocked(id); err != nil {
			c.logf("cluster: detector: remove %s: %v", id, err)
		}
	}
}
