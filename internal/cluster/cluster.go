// Package cluster runs N brokers as one logical broker. Topics are
// partitioned by a stable hash; partitions are assigned to nodes by
// rendezvous (highest-random-weight) hashing, so membership is the only
// shared state and any node computes any frame's owner locally. A device
// or translator session may connect to ANY node: frames released on a
// non-owner are forwarded over a pooled MQTT-SN bridge link to the
// owner, whose ordered-release and consumer-group machinery then behaves
// exactly as in the single-broker case — per-workflow (per-topic) order
// and QoS 2 exactly-once both survive the extra hop because each
// (source node, owner) pair shares one link session whose frames are
// submitted in release order.
//
// Membership is static-first: New starts a fixed set of nodes; Join and
// Leave change it at runtime by migrating the moved partitions live —
// pause, drain the old owner, hand off its queued and in-flight frames
// in order, switch the topology, flush. A one-node cluster is byte-for-
// byte today's broker: no forwarding, no links, no behavior change.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/obs"
	"github.com/provlight/provlight/internal/transport"
)

// Config sizes a cluster.
type Config struct {
	// Nodes is the initial node count (default 1). Ignored when Addrs is
	// set.
	Nodes int
	// Addrs optionally pins each initial node's broker listen address;
	// empty entries (and all nodes when Addrs is nil) pick free
	// addresses.
	Addrs []string
	// Transport carries both client traffic and inter-node links.
	// Defaults to UDP; tests use transport.NewLoopback for determinism.
	Transport transport.Transport
	// Partitions is the hash-space size (default 64). It bounds
	// migration granularity, not throughput; it cannot change after New.
	Partitions int
	// RetryInterval / MaxRetries / LinkWindow tune the bridge links'
	// QoS machinery (defaults: client defaults, window 64).
	RetryInterval time.Duration
	MaxRetries    int
	LinkWindow    int
	// LinkQueue bounds each link's submission queue (default 1024);
	// a full queue applies backpressure to the releasing broker.
	LinkQueue int
	// DrainTimeout bounds how long a migration waits for an old owner to
	// drain before detaching its remaining frames (at-least-once) and
	// proceeding. Default 30s.
	DrainTimeout time.Duration
	// HeartbeatInterval paces the failure detector: every node beats on
	// every link this often, and the detector evaluates suspicion at the
	// same cadence. Default 1s; negative disables the detector (and
	// heartbeats) entirely.
	HeartbeatInterval time.Duration
	// SuspectTimeout is how long a peer must be silent before a node
	// suspects it. A member is declared dead — and crash takeover runs —
	// only when at least two members agree (the lone other member in a
	// two-node cluster), so one bad link cannot evict a healthy node.
	// Default 5× HeartbeatInterval.
	SuspectTimeout time.Duration
	// LinkKeepAlive is the bridge sessions' MQTT-SN keepalive; it bounds
	// how fast a link notices a silently dead peer (1.5× this) when no
	// forward traffic is failing. Default 30s (heartbeats usually detect
	// death much sooner).
	LinkKeepAlive time.Duration
	// OnDemoted, when set, is called (on its own goroutine) with a node's
	// id after the node discovered it was fenced out of membership and
	// shut itself down. Operators rejoin via Join; tests assert on it.
	OnDemoted func(id string)
	// BrokerRetryInterval / BrokerMaxRetries are passed to each node's
	// broker config (zero keeps broker defaults).
	BrokerRetryInterval time.Duration
	BrokerMaxRetries    int
	// Metrics, when set, exports the whole cluster through one scrape-time
	// collector (per-node broker counters, forward/migration/self-healing
	// counters, per-peer link health labeled node+peer) and feeds each
	// node's broker-route and forward-hop stage latency histograms. One
	// collector for all nodes — membership churn cannot strand stale
	// per-node collectors in a shared registry.
	Metrics *obs.Registry
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Cluster owns its nodes and serializes membership changes.
type Cluster struct {
	cfg Config
	tr  transport.Transport

	mu     sync.Mutex // membership + migration + topology root
	nodes  map[string]*Node
	order  []string // ids in start order, for stable Stats/Addrs
	topo   *topology
	nextID int
	epoch  uint64 // bumped by computeTopology on every membership change
	closed bool

	// removed holds nodes taken out of membership by Remove but not shut
	// down by the cluster: a genuinely crashed node's object is inert,
	// and a zombie keeps running on its stale topology until fencing
	// demotes it. Tracked so Close can reap whatever is left.
	removed map[string]*Node

	// members is the lock-free membership snapshot the broker connect
	// gates read on their shard path (never under c.mu).
	members atomic.Pointer[map[string]bool]

	done chan struct{} // stops the detector
	wg   sync.WaitGroup
}

// New starts the initial membership and wires the full link mesh so
// filter propagation is in place before any traffic flows.
func New(cfg Config) (*Cluster, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 64
	}
	if cfg.LinkWindow <= 0 {
		cfg.LinkWindow = 64
	}
	if cfg.LinkQueue <= 0 {
		cfg.LinkQueue = 1024
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 5 * cfg.HeartbeatInterval
	}
	if cfg.LinkKeepAlive <= 0 {
		cfg.LinkKeepAlive = 30 * time.Second
	}
	tr := cfg.Transport
	if tr == nil {
		tr = transport.UDP{}
	}
	n := cfg.Nodes
	if len(cfg.Addrs) > 0 {
		n = len(cfg.Addrs)
	}
	if n <= 0 {
		n = 1
	}
	c := &Cluster{
		cfg:     cfg,
		tr:      tr,
		nodes:   map[string]*Node{},
		removed: map[string]*Node{},
		done:    make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		addr := ""
		if i < len(cfg.Addrs) {
			addr = cfg.Addrs[i]
		}
		if _, err := c.startNode(addr); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.install(c.computeTopology(c.order))
	c.meshLinks()
	if cfg.HeartbeatInterval > 0 {
		c.wg.Add(1)
		go c.detector()
	}
	if cfg.Metrics != nil {
		c.registerMetrics(cfg.Metrics)
	}
	return c, nil
}

// registerMetrics installs the cluster's one scrape-time collector: every
// current member's broker counters (labeled node=<id>), the cluster-layer
// forward/migration/self-healing counters, and per-peer link health
// (labeled node+peer). Reading Stats() live means nodes added by Join
// appear and removed nodes disappear without collector churn.
func (c *Cluster) registerMetrics(r *obs.Registry) {
	r.Collect(func(e *obs.Emitter) {
		for _, ns := range c.Stats() {
			lbl := []string{"node", ns.ID}
			broker.EmitStats(e, ns.Broker, lbl...)
			e.Gauge("provlight_cluster_epoch", "Membership epoch of the node's installed topology.", float64(ns.Epoch), lbl...)
			e.Gauge("provlight_cluster_partitions_owned", "Partitions this node currently owns.", float64(len(ns.Partitions)), lbl...)
			e.Counter("provlight_cluster_forwarded_out_total", "Frames enqueued to peer forwarding links.", float64(ns.ForwardedOut), lbl...)
			e.Counter("provlight_cluster_migrated_total", "Frames handed off through migration buffers or detached during handoffs.", float64(ns.Migrated), lbl...)
			e.Counter("provlight_cluster_link_lost_total", "Forwarded frames dropped for good (teardown, fencing).", float64(ns.LinkLost), lbl...)
			e.Counter("provlight_cluster_takeover_redelivered_total", "Frames re-forwarded to new owners after harvesting a dead peer's link.", float64(ns.TakeoverRedelivered), lbl...)
			e.Counter("provlight_cluster_epoch_refused_total", "Bridge connects refused because the dialer was fenced out of membership.", float64(ns.EpochRefused), lbl...)
			for _, lh := range ns.Links {
				plbl := []string{"node", ns.ID, "peer", lh.Peer}
				e.Gauge("provlight_cluster_peer_heartbeat_age_seconds", "Age of the peer's last heartbeat as seen by this node (-1 before any baseline).", float64(lh.LastHeartbeatAgeMs)/1000, plbl...)
				suspect := 0.0
				if lh.Suspect {
					suspect = 1
				}
				e.Gauge("provlight_cluster_peer_suspect", "1 while the peer is silent past the suspicion timeout.", suspect, plbl...)
				e.Counter("provlight_cluster_link_redials_total", "Successful link re-dials after session loss.", float64(lh.Redials), plbl...)
				up := 0.0
				if lh.State == LinkConnected {
					up = 1
				}
				e.Gauge("provlight_cluster_link_up", "1 while a live bridge session to the peer is established.", up, plbl...)
			}
		}
	})
}

// startNode boots one broker with the cluster hooks attached. Caller
// holds c.mu or is inside New.
func (c *Cluster) startNode(addr string) (*Node, error) {
	id := fmt.Sprintf("n%d", c.nextID)
	c.nextID++
	n := &Node{
		id:         id,
		c:          c,
		paused:     map[int]bool{},
		fwdPending: map[int]int{},
		links:      map[string]*link{},
		filters:    map[string]int{},
		lastHeard:  map[string]time.Time{},
		peerEpoch:  map[string]uint64{},
		subCh:      make(chan subChange, 1024),
		done:       make(chan struct{}),
	}
	b, err := broker.New(broker.Config{
		Addr:          addr,
		Transport:     c.tr,
		RetryInterval: c.cfg.BrokerRetryInterval,
		MaxRetries:    c.cfg.BrokerMaxRetries,
		Forward:       n.forwardHook,
		OnSubscribe:   n.onSubscribe,
		OnUnsubscribe: n.onUnsubscribe,
		ConnectGate:   c.connectGate(n),
		Metrics:       c.cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	n.b = b
	if c.cfg.Metrics != nil {
		n.stageForward = obs.StageLatency(c.cfg.Metrics).With(obs.StageForwardHop)
	}
	n.wg.Add(1)
	go n.subWorker()
	if c.cfg.HeartbeatInterval > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop(c.cfg.HeartbeatInterval)
	}
	c.nodes[id] = n
	c.order = append(c.order, id)
	return n, nil
}

// computeTopology builds the partition map for a membership set, bumping
// the fencing epoch (every computed topology represents a membership
// decision; monotonicity is all fencing needs).
func (c *Cluster) computeTopology(ids []string) *topology {
	addrs := make(map[string]string, len(ids))
	for _, id := range ids {
		addrs[id] = c.nodes[id].b.Addr()
	}
	c.epoch++
	return &topology{
		partitions: c.cfg.Partitions,
		owner:      rendezvousOwners(c.cfg.Partitions, ids),
		addrs:      addrs,
		epoch:      c.epoch,
	}
}

// install publishes a topology to every node and the cluster root, and
// refreshes the gate membership snapshot and heartbeat baselines.
func (c *Cluster) install(tp *topology) {
	for _, n := range c.nodes {
		n.fmu.Lock()
		n.topo = tp
		n.fmu.Unlock()
	}
	c.topo = tp
	c.syncMembers()
}

// syncMembers rebuilds the lock-free membership snapshot from c.nodes
// and seeds heartbeat baselines for every member pair, so a fresh member
// gets a full suspicion timeout before anyone can suspect it. Caller
// holds c.mu.
func (c *Cluster) syncMembers() {
	m := make(map[string]bool, len(c.nodes))
	for id := range c.nodes {
		m[id] = true
	}
	c.members.Store(&m)
	for _, n := range c.nodes {
		for id := range c.nodes {
			if id != n.id {
				n.seedHeartbeat(id)
			}
		}
	}
}

// meshLinks eagerly dials every ordered node pair so propagated filters
// exist on peers before the first matching frame, not after.
func (c *Cluster) meshLinks() {
	for _, id := range c.order {
		n := c.nodes[id]
		for _, pid := range c.order {
			if pid == id {
				continue
			}
			n.linkTo(pid, c.nodes[pid].b.Addr())
		}
	}
}

// Addrs lists the nodes' broker addresses in start order — feed it to
// translate.Config.ClusterAddrs or device configs.
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.order))
	for _, id := range c.order {
		addrs = append(addrs, c.nodes[id].b.Addr())
	}
	return addrs
}

// NodeIDs lists member ids in start order.
func (c *Cluster) NodeIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Node returns a member by id, or nil.
func (c *Cluster) Node(id string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Join starts a fresh node, meshes it into the link graph, and migrates
// the partitions rendezvous assigns to it — live, preserving order and
// QoS 2 exactly-once for the moved topics. Returns the new node's id.
func (c *Cluster) Join(ctx context.Context) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", fmt.Errorf("cluster: closed")
	}
	n, err := c.startNode("")
	if err != nil {
		return "", err
	}
	// Interim topology: old ownership, new address book — peers can dial
	// the joiner (and it them) before any partition moves.
	full := c.computeTopology(c.order)
	interim := &topology{
		partitions: c.topo.partitions,
		owner:      c.topo.owner,
		addrs:      full.addrs,
		epoch:      full.epoch,
	}
	c.install(interim)
	for _, pid := range c.order {
		if pid == n.id {
			continue
		}
		c.nodes[pid].linkTo(n.id, n.b.Addr())
		n.linkTo(pid, c.nodes[pid].b.Addr())
	}
	c.migrate(ctx, c.computeTopology(c.order))
	return n.id, nil
}

// Leave migrates a node's partitions to the survivors, then shuts it
// down. Its local clients are disconnected by the broker close and are
// expected to redial another node (translator supervisors and device
// spools already do). The last node cannot leave.
func (c *Cluster) Leave(ctx context.Context, id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cluster: closed")
	}
	leaving := c.nodes[id]
	if leaving == nil {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	if len(c.nodes) == 1 {
		return fmt.Errorf("cluster: cannot remove the last node")
	}
	survivors := make([]string, 0, len(c.order)-1)
	for _, oid := range c.order {
		if oid != id {
			survivors = append(survivors, oid)
		}
	}
	c.migrate(ctx, c.computeTopology(survivors))
	delete(c.nodes, id)
	c.order = survivors
	for _, sid := range survivors {
		c.nodes[sid].dropLink(id)
	}
	leaving.close()
	return nil
}

// Remove takes a dead (or unreachable) node out of membership WITHOUT
// draining it — crash takeover. The failure detector calls it when
// enough peers confirm silence; operators and tests may call it
// directly. Unlike Leave, the node is not asked anything:
//
//  1. Membership shrinks first: the dead node leaves c.nodes and the
//     gate snapshot, so any zombie redial is refused from this moment.
//  2. Fence established sessions: every survivor disconnects the dead
//     node's bridge sessions, so a zombie that is merely slow (not dead)
//     loses its live forwarding paths too and demotes itself.
//  3. Takeover: the dead node's partitions pause on the survivors; each
//     survivor tears down its link to the dead node and harvests the
//     retained unacked + queued frames, prepending them (in send order)
//     to its forwarding buffer for redelivery to the new owners.
//  4. Switch + flush new-owners-first, exactly like migrate step 4.
//
// Redelivered frames may already have been routed by the dead broker
// before it died (the ack is what's missing), so takeover is
// at-least-once per moved flow; QoS 2 end-to-end dedup (device spool +
// store FrameTarget dedup) restores exactly-once above it. Per-link
// send order is preserved; interleaving ACROSS surviving forwarders is
// not (each survivor redelivers its own retained frames independently).
func (c *Cluster) Remove(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removeLocked(id)
}

// removeLocked implements Remove with c.mu held (the detector calls it
// inline from its sweep).
func (c *Cluster) removeLocked(id string) error {
	if c.closed {
		return fmt.Errorf("cluster: closed")
	}
	dead := c.nodes[id]
	if dead == nil {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	if len(c.nodes) == 1 {
		return fmt.Errorf("cluster: cannot remove the last node")
	}
	c.logf("cluster: removing %s (crash takeover)", id)

	// 1. Shrink membership. The dead node keeps its stale topology and
	// epoch — that staleness is what fencing refuses if it turns out to
	// be a zombie rather than a corpse.
	survivors := make([]string, 0, len(c.order)-1)
	for _, oid := range c.order {
		if oid != id {
			survivors = append(survivors, oid)
		}
	}
	delete(c.nodes, id)
	c.order = survivors
	c.removed[id] = dead
	newTopo := c.computeTopology(survivors)
	old := c.topo
	c.syncMembers()

	// 2. Fence established inbound bridge sessions from the dead node.
	prefix := broker.BridgeSessionPrefix + id + "@"
	for _, sid := range survivors {
		c.nodes[sid].b.DisconnectClientsPrefix(prefix)
	}

	// 3. Takeover: pause moved partitions, harvest links to the corpse.
	moved := map[int]bool{}
	for _, p := range old.ownedBy(id) {
		moved[p] = true
	}
	nodes := make([]*Node, 0, len(survivors))
	for _, sid := range survivors {
		nodes = append(nodes, c.nodes[sid])
	}
	for _, n := range nodes {
		n.pause(moved)
	}
	for _, n := range nodes {
		if harvested := n.harvestLink(id); len(harvested) > 0 {
			buf := make([]bufFrame, 0, len(harvested))
			for _, qf := range harvested {
				buf = append(buf, bufFrame{part: qf.part, f: qf.f})
			}
			n.prependBuffer(buf)
			n.takeoverRedelivered.Add(uint64(len(harvested)))
			c.logf("cluster: %s redelivering %d retained frames for partitions of %s", n.id, len(harvested), id)
		}
	}

	// 4. Switch + flush, new owners (of the moved partitions) first.
	newOwners := map[string]bool{}
	for p := range moved {
		newOwners[newTopo.owner[p]] = true
	}
	switched := map[string]bool{}
	for _, n := range nodes {
		if newOwners[n.id] {
			n.switchAndFlush(newTopo, moved)
			switched[n.id] = true
		}
	}
	for _, n := range nodes {
		if !switched[n.id] {
			n.switchAndFlush(newTopo, moved)
		}
	}
	c.topo = newTopo
	c.logf("cluster: %s removed at epoch %d; %d partitions reassigned", id, newTopo.epoch, len(moved))
	return nil
}

// Kill hard-stops a node without touching membership — SIGKILL
// semantics for tests and chaos harnesses. The cluster still believes
// the node is a member; the failure detector (or an explicit Remove)
// must notice. Frames queued inside the killed process are lost at the
// broker layer, exactly as in a real crash.
func (c *Cluster) Kill(id string) error {
	c.mu.Lock()
	n := c.nodes[id]
	c.mu.Unlock()
	if n == nil {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	n.close()
	return nil
}

// noteDemoted is called by a zombie node after fencing made it shut
// itself down: forget its object (it closed itself) and surface the
// event.
func (c *Cluster) noteDemoted(id string) {
	c.mu.Lock()
	delete(c.removed, id)
	cb := c.cfg.OnDemoted
	c.mu.Unlock()
	if cb != nil {
		cb(id)
	}
}

// migrate moves ownership from c.topo to newTopo with per-topic order
// and QoS 2 exactly-once preserved for the moved partitions:
//
//  1. Pause the moved partitions on every node — frames released for
//     them buffer locally instead of routing or forwarding.
//  2. Drain each old owner: wait until no node has a forward in flight
//     toward it for a moved partition AND its broker has delivered its
//     queued/in-flight frames for moved topics. The forward-pending
//     counter only drops after the owner has routed a frame (the broker
//     acks a QoS 2 release post-routing), so sampling forwards-then-
//     broker cannot miss a frame mid-hop. On timeout, detach the
//     stragglers from the broker in order (at-least-once for those
//     frames only).
//  3. Hand off in-process: each old owner's buffer — prefixed by any
//     detached frames, which are older — is prepended to the new
//     owners' buffers. Per topic, all pre-pause frames now sit in ONE
//     buffer ahead of anything buffered elsewhere, because a topic's
//     younger frames only buffer on its publisher's node.
//  4. Switch and flush, new owners first: each new owner installs the
//     topology and drains its buffer (Submit locally, link to peers),
//     unpausing atomically with the final emptiness check; then every
//     other node does the same. A publisher node's younger frames
//     therefore cannot reach the new owner before the handed-off older
//     frames have been routed.
//
// Single-membership-change deltas (Join/Leave) make the old-owner and
// new-owner sets disjoint (see rendezvousOwners), which step 4's
// ordering relies on. Caller holds c.mu.
func (c *Cluster) migrate(ctx context.Context, newTopo *topology) {
	old := c.topo
	moved := map[int]bool{}
	oldOwnerParts := map[string]map[int]bool{}
	for p := range newTopo.owner {
		if old.owner[p] == newTopo.owner[p] {
			continue
		}
		moved[p] = true
		op := old.owner[p]
		if oldOwnerParts[op] == nil {
			oldOwnerParts[op] = map[int]bool{}
		}
		oldOwnerParts[op][p] = true
	}
	if len(moved) == 0 {
		c.install(newTopo)
		return
	}
	nodes := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		nodes = append(nodes, c.nodes[id])
	}

	c.logf("cluster: migrating %d partitions from %d node(s)", len(moved), len(oldOwnerParts))

	// 1. Pause.
	for _, n := range nodes {
		n.pause(moved)
	}

	// 2. Drain old owners (stable iteration for reproducible logs).
	oldOwners := make([]string, 0, len(oldOwnerParts))
	for id := range oldOwnerParts {
		oldOwners = append(oldOwners, id)
	}
	sort.Strings(oldOwners)
	for _, oid := range oldOwners {
		o := c.nodes[oid]
		parts := oldOwnerParts[oid]
		match := partsMatcher(old.partitions, parts)
		drained := c.waitDrained(ctx, nodes, o, parts, match)
		c.logf("cluster: drain of %s done (clean=%v)", oid, drained)
		if !drained {
			left := o.b.DetachMatching(match)
			if len(left) > 0 {
				c.logf("cluster: drain timeout on %s: detached %d in-flight frames (at-least-once)", oid, len(left))
				detached := make([]bufFrame, 0, len(left))
				for _, f := range left {
					detached = append(detached, bufFrame{part: PartitionOf(f.Topic, old.partitions), f: f})
				}
				o.prependBuffer(detached)
			}
		}
	}

	// 3. In-process handoff: old owners' buffers -> new owners' buffers.
	for _, oid := range oldOwners {
		o := c.nodes[oid]
		buf := o.takeBuffer()
		if len(buf) == 0 {
			continue
		}
		perOwner := map[string][]bufFrame{}
		ownerSeen := []string{}
		for _, bf := range buf {
			nid := newTopo.owner[bf.part]
			if perOwner[nid] == nil {
				ownerSeen = append(ownerSeen, nid)
			}
			perOwner[nid] = append(perOwner[nid], bf)
		}
		for _, nid := range ownerSeen {
			c.nodes[nid].prependBuffer(perOwner[nid])
		}
	}

	// 4. Switch + flush: new owners first, then everyone else.
	newOwners := map[string]bool{}
	for p := range moved {
		newOwners[newTopo.owner[p]] = true
	}
	switched := map[string]bool{}
	for _, n := range nodes {
		if newOwners[n.id] {
			n.switchAndFlush(newTopo, moved)
			switched[n.id] = true
		}
	}
	c.logf("cluster: new owners switched and flushed")
	for _, n := range nodes {
		if !switched[n.id] {
			n.switchAndFlush(newTopo, moved)
		}
	}
	c.topo = newTopo
}

// waitDrained polls until old owner o holds no undelivered frame for the
// moved partitions: first the cluster-wide forward-pending counters
// (which a frame only leaves after o routed it), then o's broker queues.
func (c *Cluster) waitDrained(ctx context.Context, nodes []*Node, o *Node, parts map[int]bool, match func(string) bool) bool {
	deadline := time.Now().Add(c.cfg.DrainTimeout)
	for {
		pending := 0
		for _, n := range nodes {
			pending += n.pendingForParts(parts)
		}
		if pending == 0 && o.b.PendingForTopics(match) == 0 {
			return true
		}
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TopologyInfo is the ownership table snapshot surfaced in stats.
type TopologyInfo struct {
	Partitions int      `json:"partitions"`
	Owners     []string `json:"owners"` // partition index -> node id
	Epoch      uint64   `json:"epoch"`  // membership fencing epoch
}

// Topology returns the current partition map.
func (c *Cluster) Topology() TopologyInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TopologyInfo{
		Partitions: c.topo.partitions,
		Owners:     append([]string(nil), c.topo.owner...),
		Epoch:      c.topo.epoch,
	}
}

// LinkHealth is one node's view of one inter-node link, surfaced in
// stats for operators watching a cluster heal.
type LinkHealth struct {
	Peer    string    `json:"peer"`
	State   LinkState `json:"state"`   // connected / down / fenced
	Suspect bool      `json:"suspect"` // peer silent past the suspicion timeout
	Redials uint64    `json:"redials"` // successful re-dials after session loss
	// LastHeartbeatAgeMs is the age of the peer's last heartbeat (or of
	// the local baseline if none arrived yet); -1 before any baseline.
	LastHeartbeatAgeMs int64  `json:"last_heartbeat_age_ms"`
	Epoch              uint64 `json:"epoch"` // epoch the session dialed at
}

// NodeStats is one node's view: identity, ownership, broker counters,
// and the cluster-layer forward/migration/self-healing counters.
type NodeStats struct {
	ID           string       `json:"id"`
	Addr         string       `json:"addr"`
	Partitions   []int        `json:"partitions"`
	Broker       broker.Stats `json:"broker"`
	ForwardedOut uint64       `json:"forwarded_out"`
	Migrated     uint64       `json:"migrated"`
	LinkLost     uint64       `json:"link_lost"`
	// Epoch is the membership epoch of the node's installed topology.
	Epoch uint64 `json:"epoch"`
	// TakeoverRedelivered counts frames this node re-forwarded to new
	// owners after harvesting them from a dead peer's link.
	TakeoverRedelivered uint64 `json:"takeover_redelivered"`
	// EpochRefused counts bridge connects this node's gate refused
	// because the dialing node was fenced out of membership.
	EpochRefused uint64       `json:"epoch_refused"`
	Links        []LinkHealth `json:"links,omitempty"`
}

// Stats snapshots every node in start order.
func (c *Cluster) Stats() []NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStats, 0, len(c.order))
	for _, id := range c.order {
		n := c.nodes[id]
		bs := n.b.Stats()
		out = append(out, NodeStats{
			ID:                  id,
			Addr:                n.b.Addr(),
			Partitions:          c.topo.ownedBy(id),
			Broker:              bs,
			ForwardedOut:        n.forwardedOut.Load(),
			Migrated:            n.migratedBuf.Load() + bs.Migrated,
			LinkLost:            n.linkLost.Load(),
			Epoch:               n.currentEpoch(),
			TakeoverRedelivered: n.takeoverRedelivered.Load(),
			EpochRefused:        n.epochRefused.Load(),
			Links:               n.linkHealth(c.cfg.SuspectTimeout),
		})
	}
	return out
}

// Close shuts down every node — members and any removed-but-unreaped
// zombies. Not a graceful leave: buffered link frames may be lost,
// which is fine at teardown.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nodes := make([]*Node, 0, len(c.order)+len(c.removed))
	for _, id := range c.order {
		nodes = append(nodes, c.nodes[id])
	}
	for _, n := range c.removed {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
	for _, n := range nodes {
		n.close()
	}
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
