// Package cluster runs N brokers as one logical broker. Topics are
// partitioned by a stable hash; partitions are assigned to nodes by
// rendezvous (highest-random-weight) hashing, so membership is the only
// shared state and any node computes any frame's owner locally. A device
// or translator session may connect to ANY node: frames released on a
// non-owner are forwarded over a pooled MQTT-SN bridge link to the
// owner, whose ordered-release and consumer-group machinery then behaves
// exactly as in the single-broker case — per-workflow (per-topic) order
// and QoS 2 exactly-once both survive the extra hop because each
// (source node, owner) pair shares one link session whose frames are
// submitted in release order.
//
// Membership is static-first: New starts a fixed set of nodes; Join and
// Leave change it at runtime by migrating the moved partitions live —
// pause, drain the old owner, hand off its queued and in-flight frames
// in order, switch the topology, flush. A one-node cluster is byte-for-
// byte today's broker: no forwarding, no links, no behavior change.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/transport"
)

// Config sizes a cluster.
type Config struct {
	// Nodes is the initial node count (default 1). Ignored when Addrs is
	// set.
	Nodes int
	// Addrs optionally pins each initial node's broker listen address;
	// empty entries (and all nodes when Addrs is nil) pick free
	// addresses.
	Addrs []string
	// Transport carries both client traffic and inter-node links.
	// Defaults to UDP; tests use transport.NewLoopback for determinism.
	Transport transport.Transport
	// Partitions is the hash-space size (default 64). It bounds
	// migration granularity, not throughput; it cannot change after New.
	Partitions int
	// RetryInterval / MaxRetries / LinkWindow tune the bridge links'
	// QoS machinery (defaults: client defaults, window 64).
	RetryInterval time.Duration
	MaxRetries    int
	LinkWindow    int
	// LinkQueue bounds each link's submission queue (default 1024);
	// a full queue applies backpressure to the releasing broker.
	LinkQueue int
	// DrainTimeout bounds how long a migration waits for an old owner to
	// drain before detaching its remaining frames (at-least-once) and
	// proceeding. Default 30s.
	DrainTimeout time.Duration
	// BrokerRetryInterval / BrokerMaxRetries are passed to each node's
	// broker config (zero keeps broker defaults).
	BrokerRetryInterval time.Duration
	BrokerMaxRetries    int
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Cluster owns its nodes and serializes membership changes.
type Cluster struct {
	cfg Config
	tr  transport.Transport

	mu     sync.Mutex // membership + migration + topology root
	nodes  map[string]*Node
	order  []string // ids in start order, for stable Stats/Addrs
	topo   *topology
	nextID int
	closed bool
}

// New starts the initial membership and wires the full link mesh so
// filter propagation is in place before any traffic flows.
func New(cfg Config) (*Cluster, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 64
	}
	if cfg.LinkWindow <= 0 {
		cfg.LinkWindow = 64
	}
	if cfg.LinkQueue <= 0 {
		cfg.LinkQueue = 1024
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	tr := cfg.Transport
	if tr == nil {
		tr = transport.UDP{}
	}
	n := cfg.Nodes
	if len(cfg.Addrs) > 0 {
		n = len(cfg.Addrs)
	}
	if n <= 0 {
		n = 1
	}
	c := &Cluster{cfg: cfg, tr: tr, nodes: map[string]*Node{}}
	for i := 0; i < n; i++ {
		addr := ""
		if i < len(cfg.Addrs) {
			addr = cfg.Addrs[i]
		}
		if _, err := c.startNode(addr); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.install(c.computeTopology(c.order))
	c.meshLinks()
	return c, nil
}

// startNode boots one broker with the cluster hooks attached. Caller
// holds c.mu or is inside New.
func (c *Cluster) startNode(addr string) (*Node, error) {
	id := fmt.Sprintf("n%d", c.nextID)
	c.nextID++
	n := &Node{
		id:         id,
		c:          c,
		paused:     map[int]bool{},
		fwdPending: map[int]int{},
		links:      map[string]*link{},
		filters:    map[string]int{},
		subCh:      make(chan subChange, 1024),
		done:       make(chan struct{}),
	}
	b, err := broker.New(broker.Config{
		Addr:          addr,
		Transport:     c.tr,
		RetryInterval: c.cfg.BrokerRetryInterval,
		MaxRetries:    c.cfg.BrokerMaxRetries,
		Forward:       n.forwardHook,
		OnSubscribe:   n.onSubscribe,
		OnUnsubscribe: n.onUnsubscribe,
	})
	if err != nil {
		return nil, err
	}
	n.b = b
	n.wg.Add(1)
	go n.subWorker()
	c.nodes[id] = n
	c.order = append(c.order, id)
	return n, nil
}

// computeTopology builds the partition map for a membership set.
func (c *Cluster) computeTopology(ids []string) *topology {
	addrs := make(map[string]string, len(ids))
	for _, id := range ids {
		addrs[id] = c.nodes[id].b.Addr()
	}
	return &topology{
		partitions: c.cfg.Partitions,
		owner:      rendezvousOwners(c.cfg.Partitions, ids),
		addrs:      addrs,
	}
}

// install publishes a topology to every node and the cluster root.
func (c *Cluster) install(tp *topology) {
	for _, n := range c.nodes {
		n.fmu.Lock()
		n.topo = tp
		n.fmu.Unlock()
	}
	c.topo = tp
}

// meshLinks eagerly dials every ordered node pair so propagated filters
// exist on peers before the first matching frame, not after.
func (c *Cluster) meshLinks() {
	for _, id := range c.order {
		n := c.nodes[id]
		for _, pid := range c.order {
			if pid == id {
				continue
			}
			n.linkTo(pid, c.nodes[pid].b.Addr())
		}
	}
}

// Addrs lists the nodes' broker addresses in start order — feed it to
// translate.Config.ClusterAddrs or device configs.
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.order))
	for _, id := range c.order {
		addrs = append(addrs, c.nodes[id].b.Addr())
	}
	return addrs
}

// NodeIDs lists member ids in start order.
func (c *Cluster) NodeIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Node returns a member by id, or nil.
func (c *Cluster) Node(id string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Join starts a fresh node, meshes it into the link graph, and migrates
// the partitions rendezvous assigns to it — live, preserving order and
// QoS 2 exactly-once for the moved topics. Returns the new node's id.
func (c *Cluster) Join(ctx context.Context) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", fmt.Errorf("cluster: closed")
	}
	n, err := c.startNode("")
	if err != nil {
		return "", err
	}
	// Interim topology: old ownership, new address book — peers can dial
	// the joiner (and it them) before any partition moves.
	interim := &topology{
		partitions: c.topo.partitions,
		owner:      c.topo.owner,
		addrs:      c.computeTopology(c.order).addrs,
	}
	c.install(interim)
	for _, pid := range c.order {
		if pid == n.id {
			continue
		}
		c.nodes[pid].linkTo(n.id, n.b.Addr())
		n.linkTo(pid, c.nodes[pid].b.Addr())
	}
	c.migrate(ctx, c.computeTopology(c.order))
	return n.id, nil
}

// Leave migrates a node's partitions to the survivors, then shuts it
// down. Its local clients are disconnected by the broker close and are
// expected to redial another node (translator supervisors and device
// spools already do). The last node cannot leave.
func (c *Cluster) Leave(ctx context.Context, id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("cluster: closed")
	}
	leaving := c.nodes[id]
	if leaving == nil {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	if len(c.nodes) == 1 {
		return fmt.Errorf("cluster: cannot remove the last node")
	}
	survivors := make([]string, 0, len(c.order)-1)
	for _, oid := range c.order {
		if oid != id {
			survivors = append(survivors, oid)
		}
	}
	c.migrate(ctx, c.computeTopology(survivors))
	delete(c.nodes, id)
	c.order = survivors
	for _, sid := range survivors {
		c.nodes[sid].dropLink(id)
	}
	leaving.close()
	return nil
}

// migrate moves ownership from c.topo to newTopo with per-topic order
// and QoS 2 exactly-once preserved for the moved partitions:
//
//  1. Pause the moved partitions on every node — frames released for
//     them buffer locally instead of routing or forwarding.
//  2. Drain each old owner: wait until no node has a forward in flight
//     toward it for a moved partition AND its broker has delivered its
//     queued/in-flight frames for moved topics. The forward-pending
//     counter only drops after the owner has routed a frame (the broker
//     acks a QoS 2 release post-routing), so sampling forwards-then-
//     broker cannot miss a frame mid-hop. On timeout, detach the
//     stragglers from the broker in order (at-least-once for those
//     frames only).
//  3. Hand off in-process: each old owner's buffer — prefixed by any
//     detached frames, which are older — is prepended to the new
//     owners' buffers. Per topic, all pre-pause frames now sit in ONE
//     buffer ahead of anything buffered elsewhere, because a topic's
//     younger frames only buffer on its publisher's node.
//  4. Switch and flush, new owners first: each new owner installs the
//     topology and drains its buffer (Submit locally, link to peers),
//     unpausing atomically with the final emptiness check; then every
//     other node does the same. A publisher node's younger frames
//     therefore cannot reach the new owner before the handed-off older
//     frames have been routed.
//
// Single-membership-change deltas (Join/Leave) make the old-owner and
// new-owner sets disjoint (see rendezvousOwners), which step 4's
// ordering relies on. Caller holds c.mu.
func (c *Cluster) migrate(ctx context.Context, newTopo *topology) {
	old := c.topo
	moved := map[int]bool{}
	oldOwnerParts := map[string]map[int]bool{}
	for p := range newTopo.owner {
		if old.owner[p] == newTopo.owner[p] {
			continue
		}
		moved[p] = true
		op := old.owner[p]
		if oldOwnerParts[op] == nil {
			oldOwnerParts[op] = map[int]bool{}
		}
		oldOwnerParts[op][p] = true
	}
	if len(moved) == 0 {
		c.install(newTopo)
		return
	}
	nodes := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		nodes = append(nodes, c.nodes[id])
	}

	c.logf("cluster: migrating %d partitions from %d node(s)", len(moved), len(oldOwnerParts))

	// 1. Pause.
	for _, n := range nodes {
		n.pause(moved)
	}

	// 2. Drain old owners (stable iteration for reproducible logs).
	oldOwners := make([]string, 0, len(oldOwnerParts))
	for id := range oldOwnerParts {
		oldOwners = append(oldOwners, id)
	}
	sort.Strings(oldOwners)
	for _, oid := range oldOwners {
		o := c.nodes[oid]
		parts := oldOwnerParts[oid]
		match := partsMatcher(old.partitions, parts)
		drained := c.waitDrained(ctx, nodes, o, parts, match)
		c.logf("cluster: drain of %s done (clean=%v)", oid, drained)
		if !drained {
			left := o.b.DetachMatching(match)
			if len(left) > 0 {
				c.logf("cluster: drain timeout on %s: detached %d in-flight frames (at-least-once)", oid, len(left))
				detached := make([]bufFrame, 0, len(left))
				for _, f := range left {
					detached = append(detached, bufFrame{part: PartitionOf(f.Topic, old.partitions), f: f})
				}
				o.prependBuffer(detached)
			}
		}
	}

	// 3. In-process handoff: old owners' buffers -> new owners' buffers.
	for _, oid := range oldOwners {
		o := c.nodes[oid]
		buf := o.takeBuffer()
		if len(buf) == 0 {
			continue
		}
		perOwner := map[string][]bufFrame{}
		ownerSeen := []string{}
		for _, bf := range buf {
			nid := newTopo.owner[bf.part]
			if perOwner[nid] == nil {
				ownerSeen = append(ownerSeen, nid)
			}
			perOwner[nid] = append(perOwner[nid], bf)
		}
		for _, nid := range ownerSeen {
			c.nodes[nid].prependBuffer(perOwner[nid])
		}
	}

	// 4. Switch + flush: new owners first, then everyone else.
	newOwners := map[string]bool{}
	for p := range moved {
		newOwners[newTopo.owner[p]] = true
	}
	switched := map[string]bool{}
	for _, n := range nodes {
		if newOwners[n.id] {
			n.switchAndFlush(newTopo, moved)
			switched[n.id] = true
		}
	}
	c.logf("cluster: new owners switched and flushed")
	for _, n := range nodes {
		if !switched[n.id] {
			n.switchAndFlush(newTopo, moved)
		}
	}
	c.topo = newTopo
}

// waitDrained polls until old owner o holds no undelivered frame for the
// moved partitions: first the cluster-wide forward-pending counters
// (which a frame only leaves after o routed it), then o's broker queues.
func (c *Cluster) waitDrained(ctx context.Context, nodes []*Node, o *Node, parts map[int]bool, match func(string) bool) bool {
	deadline := time.Now().Add(c.cfg.DrainTimeout)
	for {
		pending := 0
		for _, n := range nodes {
			pending += n.pendingForParts(parts)
		}
		if pending == 0 && o.b.PendingForTopics(match) == 0 {
			return true
		}
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TopologyInfo is the ownership table snapshot surfaced in stats.
type TopologyInfo struct {
	Partitions int      `json:"partitions"`
	Owners     []string `json:"owners"` // partition index -> node id
}

// Topology returns the current partition map.
func (c *Cluster) Topology() TopologyInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TopologyInfo{
		Partitions: c.topo.partitions,
		Owners:     append([]string(nil), c.topo.owner...),
	}
}

// NodeStats is one node's view: identity, ownership, broker counters,
// and the cluster-layer forward/migration counters.
type NodeStats struct {
	ID           string       `json:"id"`
	Addr         string       `json:"addr"`
	Partitions   []int        `json:"partitions"`
	Broker       broker.Stats `json:"broker"`
	ForwardedOut uint64       `json:"forwarded_out"`
	Migrated     uint64       `json:"migrated"`
	LinkLost     uint64       `json:"link_lost"`
}

// Stats snapshots every node in start order.
func (c *Cluster) Stats() []NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStats, 0, len(c.order))
	for _, id := range c.order {
		n := c.nodes[id]
		bs := n.b.Stats()
		out = append(out, NodeStats{
			ID:           id,
			Addr:         n.b.Addr(),
			Partitions:   c.topo.ownedBy(id),
			Broker:       bs,
			ForwardedOut: n.forwardedOut.Load(),
			Migrated:     n.migratedBuf.Load() + bs.Migrated,
			LinkLost:     n.linkLost.Load(),
		})
	}
	return out
}

// Close shuts down every node. Not a graceful leave: buffered link
// frames may be lost, which is fine at teardown.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, id := range c.order {
		c.nodes[id].close()
	}
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
