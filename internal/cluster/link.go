package cluster

import (
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/resilience"
)

// link is one directed inter-node forwarding channel: an MQTT-SN client
// session on the peer broker under the bridge prefix (so the peer's
// routing never echoes frames back), carrying two flows:
//
//   - outbound publishes: frames this node releases for partitions the
//     peer owns, forwarded at the frame's original QoS through a single
//     runner, so one link's frames reach the peer in submission order
//     and the peer's ordered-release machinery preserves per-topic order
//     end to end;
//   - inbound subscriptions: the node's propagated individual filters,
//     delivered by the peer when IT releases a matching frame and
//     re-injected into the local broker for local subscribers only.
//
// The link is supervised: the session is dialed (and re-dialed, with
// jittered exponential backoff) by the runner itself, each dial stamping
// the node's current epoch into the bridge client id. Frames are
// RETAINED in an ordered unacked table until their QoS handshake
// completes — a failed handshake no longer counts the frame lost, it
// keeps it for replay on the next session (at-least-once across a link
// outage; per-topic order preserved because replay is in submission
// order and newer frames only leave the queue after replay finishes).
// Two exits are terminal: the link being closed, and the peer refusing
// the dial with RejectedInvalidID — the membership gate's verdict that
// this node has been fenced out, which demotes the whole node.
type link struct {
	n    *Node
	peer string
	addr string

	q    chan queuedFrame
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mu       sync.Mutex
	mc       *mqttsn.Client // live session, nil while redialing
	dialing  *mqttsn.Client // client mid-Connect, closable by shutdown
	sessDown chan struct{}  // closed when the current session fails
	downSess func()         // idempotent closer for sessDown
	gen      uint64         // session generation; stale failures are ignored
	nextSeq  uint64
	unacked  map[uint64]queuedFrame // send seq -> frame awaiting handshake
	state    LinkState
	epoch    uint64 // epoch stamped into the current session's client id
	redials  uint64

	// hbBusy suppresses heartbeat pile-up: at most one heartbeat publish
	// in flight per link, so a wedged window can't leak goroutines.
	hbBusy bool
}

// LinkState labels a link's session for stats.
type LinkState string

const (
	// LinkConnected: a live session is established.
	LinkConnected LinkState = "connected"
	// LinkDown: no session; the supervisor is redialing with backoff.
	LinkDown LinkState = "down"
	// LinkFenced: the peer's membership gate refused the dial — this
	// node has been removed from the cluster and is demoting.
	LinkFenced LinkState = "fenced"
)

type queuedFrame struct {
	part int
	f    broker.ForwardFrame
}

// newLink starts a supervised link; the first dial happens on the
// runner, so construction never blocks and never fails.
func newLink(n *Node, peer, addr string) *link {
	l := &link{
		n:       n,
		peer:    peer,
		addr:    addr,
		q:       make(chan queuedFrame, n.c.cfg.LinkQueue),
		done:    make(chan struct{}),
		unacked: map[uint64]queuedFrame{},
		state:   LinkDown,
	}
	l.wg.Add(1)
	go l.run()
	return l
}

// run supervises the session: dial (with backoff), replay the retained
// unacked frames in order, then pump new frames until the session fails;
// repeat. Exits on link close or fencing.
func (l *link) run() {
	defer l.wg.Done()
	bo := resilience.Backoff{Min: 50 * time.Millisecond, Max: 2 * time.Second}
	attempt := 0
	for {
		select {
		case <-l.done:
			return
		default:
		}
		mc := l.session()
		if mc == nil {
			m, err := l.dial()
			if err != nil {
				var rej *mqttsn.ConnectRejectedError
				if errors.As(err, &rej) && rej.Code == mqttsn.RejectedInvalidID {
					l.fence()
					return
				}
				attempt++
				if attempt == 1 || attempt%8 == 0 {
					l.n.c.logf("cluster: %s->%s: dial: %v (attempt %d)", l.n.id, l.peer, err, attempt)
				}
				if !l.sleep(bo.Delay(attempt - 1)) {
					return
				}
				continue
			}
			attempt = 0
			mc = m
		}
		if l.replay(mc) {
			l.pump(mc)
		}
		select {
		case <-l.done:
			return
		default:
			l.dropSession(mc)
		}
	}
}

// dial establishes a fresh session stamped with the node's current
// epoch, installs it, and re-subscribes the propagated filters.
func (l *link) dial() (*mqttsn.Client, error) {
	cfg := l.n.c.cfg
	epoch := l.n.currentEpoch()
	sd := make(chan struct{})
	var sdOnce sync.Once
	downSess := func() { sdOnce.Do(func() { close(sd) }) }
	mc, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:       bridgeClientID(l.n.id, epoch),
		Gateway:        l.addr,
		Transport:      l.n.c.tr,
		KeepAlive:      cfg.LinkKeepAlive,
		RetryInterval:  cfg.RetryInterval,
		MaxRetries:     cfg.MaxRetries,
		InflightWindow: cfg.LinkWindow,
		CleanSession:   true,
		OnDisconnect:   func(error) { downSess() },
	})
	if err != nil {
		return nil, err
	}
	// Expose the client to shutdown while Connect blocks, so a takeover
	// harvest never waits out a dead peer's full retry budget.
	l.mu.Lock()
	select {
	case <-l.done:
		l.mu.Unlock()
		mc.Close()
		return nil, mqttsn.ErrClosed
	default:
	}
	l.dialing = mc
	l.mu.Unlock()
	err = mc.Connect()
	l.mu.Lock()
	l.dialing = nil
	l.mu.Unlock()
	if err != nil {
		mc.Close()
		return nil, err
	}
	l.mu.Lock()
	wasConnected := l.gen > 0
	l.mc = mc
	l.sessDown = sd
	l.downSess = downSess
	l.gen++
	l.epoch = epoch
	l.state = LinkConnected
	if wasConnected {
		l.redials++
	}
	l.mu.Unlock()
	for _, filter := range l.n.filterSnapshot() {
		l.subscribeOn(mc, filter)
	}
	return mc, nil
}

// replay re-publishes the retained unacked frames in send order on a
// fresh session, serially, before any queued frame may follow — that is
// what preserves per-topic order across a link outage. A frame whose
// original handshake actually completed at the peer is published twice;
// the at-least-once degradation is absorbed downstream (QoS 2 / store
// dedup). Returns false if the session died mid-replay.
func (l *link) replay(mc *mqttsn.Client) bool {
	l.mu.Lock()
	if len(l.unacked) == 0 {
		l.mu.Unlock()
		return true
	}
	seqs := make([]uint64, 0, len(l.unacked))
	for seq := range l.unacked {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	frames := make([]queuedFrame, len(seqs))
	for i, seq := range seqs {
		frames[i] = l.unacked[seq]
	}
	l.mu.Unlock()
	l.n.c.logf("cluster: %s->%s: replaying %d retained frame(s)", l.n.id, l.peer, len(frames))
	for i, qf := range frames {
		if err := mc.Publish(qf.f.Topic, qf.f.Payload, qf.f.QoS); err != nil {
			l.n.c.logf("cluster: %s->%s: replay %q: %v", l.n.id, l.peer, qf.f.Topic, err)
			return false
		}
		l.settle(seqs[i], qf.part)
	}
	return true
}

// pump is the submission loop for one session: PublishAsync transmits
// each initial PUBLISH before returning, so frames hit the wire in queue
// order; completions (which may finish out of order) settle the unacked
// table. A failed completion leaves its frame retained and declares the
// session down.
func (l *link) pump(mc *mqttsn.Client) {
	l.mu.Lock()
	sd := l.sessDown
	gen := l.gen
	l.mu.Unlock()
	for {
		select {
		case <-l.done:
			return
		case <-sd:
			return
		case qf := <-l.q:
			l.mu.Lock()
			seq := l.nextSeq
			l.nextSeq++
			l.unacked[seq] = qf
			l.mu.Unlock()
			errc := mc.PublishAsync(qf.f.Topic, qf.f.Payload, qf.f.QoS)
			l.wg.Add(1)
			go func(seq uint64, part int, topic string) {
				defer l.wg.Done()
				if err := <-errc; err != nil {
					// Retained for replay; no pending release, no loss count.
					l.sessionFailed(gen, topic, err)
					return
				}
				l.settle(seq, part)
			}(seq, qf.part, qf.f.Topic)
		}
	}
}

// settle marks one frame's handshake complete: out of the retained
// table, pending counter released. Idempotent versus a replay that
// raced a late completion.
func (l *link) settle(seq uint64, part int) {
	l.mu.Lock()
	_, ok := l.unacked[seq]
	if ok {
		delete(l.unacked, seq)
	}
	l.mu.Unlock()
	if ok {
		l.n.decPending(part)
	}
}

// sessionFailed declares the generation's session dead (waking pump);
// stale generations are ignored.
func (l *link) sessionFailed(gen uint64, topic string, err error) {
	l.mu.Lock()
	if l.gen != gen {
		l.mu.Unlock()
		return
	}
	down := l.downSess
	l.mu.Unlock()
	l.n.c.logf("cluster: %s->%s: forward %q: %v (retained for replay)", l.n.id, l.peer, topic, err)
	down()
}

// dropSession discards the current session after a failure; the runner
// redials.
func (l *link) dropSession(mc *mqttsn.Client) {
	mc.Close()
	l.mu.Lock()
	if l.mc == mc {
		l.mc = nil
		l.state = LinkDown
	}
	l.mu.Unlock()
}

// session returns the live session, or nil while redialing.
func (l *link) session() *mqttsn.Client {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mc
}

// sleep waits d or until the link closes; false means closed.
func (l *link) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-l.done:
		return false
	case <-t.C:
		return true
	}
}

// fence handles the terminal RejectedInvalidID dial: this node is no
// longer a member. The retained frames are discarded (their partitions'
// new owners serve the streams now; redelivering from a fenced node is
// exactly the fork fencing exists to prevent) and the node demotes.
func (l *link) fence() {
	l.mu.Lock()
	l.state = LinkFenced
	dropped := len(l.unacked)
	parts := make([]int, 0, dropped)
	for _, qf := range l.unacked {
		parts = append(parts, qf.part)
	}
	l.unacked = map[uint64]queuedFrame{}
	l.mu.Unlock()
	for _, p := range parts {
		l.n.decPending(p)
	}
	if dropped > 0 {
		l.n.linkLost.Add(uint64(dropped))
	}
	l.n.c.logf("cluster: %s->%s: fenced by peer (not a member); demoting", l.n.id, l.peer)
	go l.n.demote()
}

// subscribe propagates a local individual filter to the peer: frames the
// peer releases matching it come back through this session and are
// injected for this node's local subscribers. While the link is down the
// call is a no-op — every dial re-subscribes the full filter snapshot.
func (l *link) subscribe(filter string) {
	mc := l.session()
	if mc == nil {
		return
	}
	l.subscribeOn(mc, filter)
}

func (l *link) subscribeOn(mc *mqttsn.Client, filter string) {
	err := mc.Subscribe(filter, mqttsn.QoS1, func(topic string, payload []byte) {
		l.n.b.Inject(topic, payload, mqttsn.QoS1)
	})
	if err != nil {
		l.n.c.logf("cluster: %s->%s: propagate subscribe %q: %v", l.n.id, l.peer, filter, err)
	}
}

func (l *link) unsubscribe(filter string) {
	mc := l.session()
	if mc == nil {
		return
	}
	if err := mc.Unsubscribe(filter); err != nil {
		l.n.c.logf("cluster: %s->%s: propagate unsubscribe %q: %v", l.n.id, l.peer, filter, err)
	}
}

// heartbeat publishes one failure-detector beat (QoS 0, best effort) on
// the current session, skipping while the link is down or the previous
// beat is still in flight.
func (l *link) heartbeat(topic string, payload []byte) {
	l.mu.Lock()
	mc := l.mc
	if mc == nil || l.hbBusy {
		l.mu.Unlock()
		return
	}
	l.hbBusy = true
	l.mu.Unlock()
	// The whole publish happens off the caller's goroutine: even the
	// async variant can block (REGISTER handshake, send window) when the
	// peer is dead, and the heartbeat loop iterates every link — one
	// wedged link must not starve beats to healthy peers and turn into
	// false suspicions.
	go func() {
		<-mc.PublishAsync(topic, payload, mqttsn.QoS0)
		l.mu.Lock()
		l.hbBusy = false
		l.mu.Unlock()
	}()
}

// health snapshots the link's supervision state for stats.
func (l *link) health() (state LinkState, redials, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state, l.redials, l.epoch
}

// shutdown stops the runner and the session, then waits for every
// in-flight completion to settle, so the retained table is final.
func (l *link) shutdown() {
	l.once.Do(func() { close(l.done) })
	l.mu.Lock()
	mc := l.mc
	l.mc = nil
	d := l.dialing
	l.dialing = nil
	l.mu.Unlock()
	if d != nil {
		d.Close() // fails the in-flight Connect promptly
	}
	if mc != nil {
		mc.Close()
	}
	l.wg.Wait()
}

// harvest stops the link and returns everything it still holds for the
// peer, oldest first: the retained unacked frames in send order (already
// transmitted at least once — possibly routed by the peer before it
// died, which is the documented at-least-once crash degradation), then
// the queued frames that never went out. Pending counters are released
// here; the caller re-forwards the frames through the takeover buffer,
// which re-counts them. Used by Remove: a crashed owner's frames go to
// the partitions' new owners instead of dying as linkLost.
func (l *link) harvest() []queuedFrame {
	l.shutdown()
	l.mu.Lock()
	seqs := make([]uint64, 0, len(l.unacked))
	for seq := range l.unacked {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]queuedFrame, 0, len(seqs)+len(l.q))
	for _, seq := range seqs {
		out = append(out, l.unacked[seq])
	}
	l.unacked = map[uint64]queuedFrame{}
	l.mu.Unlock()
	for {
		select {
		case qf := <-l.q:
			out = append(out, qf)
		default:
			for _, qf := range out {
				l.n.decPending(qf.part)
			}
			return out
		}
	}
}

// enqueue commits a frame to the link. Blocking when the queue is full
// is deliberate backpressure: it stalls the releasing shard worker the
// same way a slow local subscriber would. A frame arriving after the
// link closed is redirected through the current topology (the partition
// has a new owner by then) instead of being dropped.
func (l *link) enqueue(part int, f broker.ForwardFrame) {
	select {
	case l.q <- queuedFrame{part: part, f: f}:
	case <-l.done:
		l.n.redirect(part, f)
	}
}

// close releases the link. Anything still retained or queued is
// redirected through the current topology — during a graceful Leave the
// drain has already proven both empty; on a drain timeout or node
// shutdown the redirect delivers to the partition's new owner (or counts
// the frame lost if this whole node is closing).
func (l *link) close() {
	l.shutdown()
	l.mu.Lock()
	seqs := make([]uint64, 0, len(l.unacked))
	for seq := range l.unacked {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	frames := make([]queuedFrame, 0, len(seqs))
	for _, seq := range seqs {
		frames = append(frames, l.unacked[seq])
	}
	l.unacked = map[uint64]queuedFrame{}
	l.mu.Unlock()
	for _, qf := range frames {
		l.n.redirect(qf.part, qf.f)
	}
	for {
		select {
		case qf := <-l.q:
			l.n.redirect(qf.part, qf.f)
		default:
			return
		}
	}
}
