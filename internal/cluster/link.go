package cluster

import (
	"sync"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/mqttsn"
)

// link is one directed inter-node forwarding channel: an MQTT-SN client
// session on the peer broker under the bridge prefix (so the peer's
// routing never echoes frames back), carrying two flows:
//
//   - outbound publishes: frames this node releases for partitions the
//     peer owns, forwarded at the frame's original QoS through a single
//     runner, so one link's frames reach the peer in submission order
//     and the peer's ordered-release machinery preserves per-topic order
//     end to end;
//   - inbound subscriptions: the node's propagated individual filters,
//     delivered by the peer when IT releases a matching frame and
//     re-injected into the local broker for local subscribers only.
type link struct {
	n    *Node
	peer string
	mc   *mqttsn.Client
	q    chan queuedFrame
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

type queuedFrame struct {
	part int
	f    broker.ForwardFrame
}

func newLink(n *Node, peer, addr string) (*link, error) {
	cfg := n.c.cfg
	mc, err := mqttsn.NewClient(mqttsn.ClientConfig{
		ClientID:       broker.BridgeSessionPrefix + n.id,
		Gateway:        addr,
		Transport:      n.c.tr,
		KeepAlive:      30 * time.Second,
		RetryInterval:  cfg.RetryInterval,
		MaxRetries:     cfg.MaxRetries,
		InflightWindow: cfg.LinkWindow,
		CleanSession:   true,
	})
	if err != nil {
		return nil, err
	}
	if err := mc.Connect(); err != nil {
		mc.Close()
		return nil, err
	}
	l := &link{
		n:    n,
		peer: peer,
		mc:   mc,
		q:    make(chan queuedFrame, cfg.LinkQueue),
		done: make(chan struct{}),
	}
	for _, filter := range n.filterSnapshot() {
		l.subscribe(filter)
	}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// subscribe propagates a local individual filter to the peer: frames the
// peer releases matching it come back through this session and are
// injected for this node's local subscribers.
func (l *link) subscribe(filter string) {
	err := l.mc.Subscribe(filter, mqttsn.QoS1, func(topic string, payload []byte) {
		l.n.b.Inject(topic, payload, mqttsn.QoS1)
	})
	if err != nil {
		l.n.c.logf("cluster: %s->%s: propagate subscribe %q: %v", l.n.id, l.peer, filter, err)
	}
}

func (l *link) unsubscribe(filter string) {
	if err := l.mc.Unsubscribe(filter); err != nil {
		l.n.c.logf("cluster: %s->%s: propagate unsubscribe %q: %v", l.n.id, l.peer, filter, err)
	}
}

// enqueue commits a frame to the link. Blocking when the queue is full
// is deliberate backpressure: it stalls the releasing shard worker the
// same way a slow local subscriber would.
func (l *link) enqueue(part int, f broker.ForwardFrame) {
	select {
	case l.q <- queuedFrame{part: part, f: f}:
	case <-l.done:
		l.n.decPending(part)
		l.n.linkLost.Add(1)
	}
}

// run is the single submission goroutine: PublishAsync transmits each
// initial PUBLISH before returning, so frames hit the wire in queue
// order; completions (which may finish out of order) only settle the
// pending counter. A frame's pending count is released strictly after
// the owner routed it — the broker acknowledges a QoS 2 release only
// after routing — which is what lets the migration drain trust a zero.
func (l *link) run() {
	defer l.wg.Done()
	for {
		select {
		case <-l.done:
			return
		case qf := <-l.q:
			errc := l.mc.PublishAsync(qf.f.Topic, qf.f.Payload, qf.f.QoS)
			l.wg.Add(1)
			go func(part int, topic string) {
				defer l.wg.Done()
				if err := <-errc; err != nil {
					l.n.linkLost.Add(1)
					l.n.c.logf("cluster: %s->%s: forward %q: %v", l.n.id, l.peer, topic, err)
				}
				l.n.decPending(part)
			}(qf.part, qf.f.Topic)
		}
	}
}

// close releases the link. Frames still queued are counted lost — the
// cluster only closes links after a drain proved the queue empty, or on
// whole-cluster shutdown.
func (l *link) close() {
	l.once.Do(func() { close(l.done) })
	l.mc.Close()
	l.wg.Wait()
	// Settle anything left in the queue so pending counters converge.
	for {
		select {
		case qf := <-l.q:
			l.n.decPending(qf.part)
			l.n.linkLost.Add(1)
		default:
			return
		}
	}
}
