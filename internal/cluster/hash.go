package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// PartitionOf maps a topic to its partition with a stable FNV-1a hash.
// The mapping depends only on (topic, partitions), never on membership,
// so every node computes the same partition for a frame without
// coordination, and a membership change moves partitions, not topics.
func PartitionOf(topic string, partitions int) int {
	h := fnv.New64a()
	h.Write([]byte(topic))
	return int(h.Sum64() % uint64(partitions))
}

// rendezvousScore is the highest-random-weight score of (node, partition).
// FNV alone avalanches poorly over the mostly-zero partition suffix (a
// handful of trailing-byte xors cannot reorder the per-node hashes, so
// one node would win every partition); the splitmix64 finalizer mixes
// every input bit into the high bits the comparison actually uses.
func rendezvousScore(nodeID string, partition int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(nodeID))
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(partition))
	h.Write(b[:])
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: full-avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owners previews the ownership table rendezvous hashing produces for a
// hypothetical membership: Owners(p, ids)[PartitionOf(topic, p)] is the
// node a frame on topic would be routed to. Capacity planning and the
// fan-in benchmark use it to reason about topic placement without
// starting brokers; the cluster itself computes the same table
// internally.
func Owners(partitions int, ids []string) []string {
	return rendezvousOwners(partitions, ids)
}

// rendezvousOwners assigns each partition to the member with the highest
// rendezvous score. The property that makes live migration cheap: adding
// a node only moves partitions TO it, removing a node only moves the
// partitions it owned — no unrelated partition changes hands, so the set
// of old owners and the set of new owners in any single join/leave are
// disjoint (the migration ordering protocol depends on this).
func rendezvousOwners(partitions int, ids []string) []string {
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	owner := make([]string, partitions)
	for p := range owner {
		best, bestScore := "", uint64(0)
		for _, id := range sorted {
			if s := rendezvousScore(id, p); best == "" || s > bestScore {
				best, bestScore = id, s
			}
		}
		owner[p] = best
	}
	return owner
}

// topology is an immutable partition map snapshot: installed atomically
// per node under its forwarding mutex, never mutated in place.
type topology struct {
	partitions int
	owner      []string          // partition index -> owning node id
	addrs      map[string]string // node id -> broker listen address
	// epoch is the membership fencing token: monotonically bumped by
	// every Join/Leave/Remove, stamped into bridge client ids and
	// heartbeats. A node left behind by a Remove keeps its stale
	// topology (and epoch) — that staleness is what the survivors'
	// connect gates refuse (see epoch.go).
	epoch uint64
}

// ownedBy lists the partitions tp assigns to node id, in order.
func (tp *topology) ownedBy(id string) []int {
	var parts []int
	for p, o := range tp.owner {
		if o == id {
			parts = append(parts, p)
		}
	}
	return parts
}

// partsMatcher adapts a moved-partition set to the topic predicate the
// broker's drain introspection (PendingForTopics, DetachMatching) takes.
func partsMatcher(partitions int, parts map[int]bool) func(string) bool {
	return func(topic string) bool { return parts[PartitionOf(topic, partitions)] }
}
