package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Disk-fault helpers: damage files the way crashes and bad sectors do,
// so recovery paths (torn-tail truncation, CRC quarantine) get exercised
// by tests against real on-disk state rather than mocks.

// Segments lists the files in dir matching pattern (e.g. "*.wal"),
// sorted by name — WAL segment names sort in sequence order.
func Segments(dir, pattern string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// TearTail chops the final n bytes off path, simulating a torn write: a
// crash mid-append leaves a record header with a missing or short body.
func TearTail(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte XOR-flips every bit of the byte at offset in path, simulating
// a bad sector or bit rot inside a record body — the CRC-mismatch case,
// distinct from the truncated-tail case.
func FlipByte(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return fmt.Errorf("chaos: read byte to flip: %w", err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, offset); err != nil {
		return fmt.Errorf("chaos: write flipped byte: %w", err)
	}
	return f.Sync()
}
