package chaos

import "sync"

// QuotaFS is the knob surface of a quota-enforcing store — satisfied by
// *wal.Log and *spool.Spool. The quota injector drives it to simulate a
// filesystem filling up and being freed, without actually exhausting the
// host disk: lowering the quota below current usage makes the next append
// fail exactly the way ENOSPC does (wal.IsNoSpace matches both).
type QuotaFS interface {
	SetQuota(bytes int64)
	Quota() int64
	UsedBytes() int64
}

// DiskQuota is a runtime-togglable disk-exhaustion fault. Fill clamps the
// target's quota to its current usage (every subsequent append is out of
// space); Free restores the quota that was in effect before the first
// Fill. Safe for concurrent use.
type DiskQuota struct {
	fs QuotaFS

	mu     sync.Mutex
	saved  int64
	filled bool
}

// NewDiskQuota wraps fs for fault injection.
func NewDiskQuota(fs QuotaFS) *DiskQuota {
	return &DiskQuota{fs: fs}
}

// Fill simulates the disk filling to the brim right now: the quota is
// clamped to current usage, so the very next append is rejected for
// space. Idempotent; the pre-fault quota is remembered for Free.
func (q *DiskQuota) Fill() { q.FillTo(q.fs.UsedBytes()) }

// FillTo clamps the quota to the given byte count (usage above it simply
// means no headroom at all). Remembers the pre-fault quota on first use.
func (q *DiskQuota) FillTo(bytes int64) {
	if bytes <= 0 {
		bytes = 1 // quota 0 means unlimited, not empty
	}
	q.mu.Lock()
	if !q.filled {
		q.saved = q.fs.Quota()
		q.filled = true
	}
	q.mu.Unlock()
	q.fs.SetQuota(bytes)
}

// Free heals the fault, restoring the quota in effect before Fill.
// No-op if the fault was never injected.
func (q *DiskQuota) Free() {
	q.mu.Lock()
	filled := q.filled
	saved := q.saved
	q.filled = false
	q.mu.Unlock()
	if filled {
		q.fs.SetQuota(saved)
	}
}

// Filled reports whether the fault is currently injected.
func (q *DiskQuota) Filled() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.filled
}
