// Package chaos is the fault-injection harness for robustness tests:
// runtime-togglable network faults (partition, delay, loss) wrapped
// around net.Conn / net.PacketConn, process-style kill grouping for
// in-process components, and disk-fault helpers that damage WAL segments
// the way real crashes and bad sectors do.
//
// Unlike internal/netem — a *stationary* traffic shaper configured once —
// a chaos.Fault is mutated while traffic flows: tests Partition() mid
// stream, assert recovery behaviour, then Heal(). All toggles are safe
// for concurrent use with live connections.
package chaos

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPartitioned is the error injected into reads and writes crossing a
// partitioned Fault. It satisfies net.Error with Timeout() == false, so
// callers treat it like a hard connection failure, not a retryable
// timeout.
var ErrPartitioned = &netError{msg: "chaos: link partitioned"}

type netError struct{ msg string }

func (e *netError) Error() string   { return e.msg }
func (e *netError) Timeout() bool   { return false }
func (e *netError) Temporary() bool { return false }

// Fault is a runtime-mutable fault description shared by every
// connection wrapped with it. The zero value injects nothing.
type Fault struct {
	partitioned atomic.Bool
	delayNanos  atomic.Int64
	lossMilli   atomic.Int64 // packet loss probability in 1/1000ths

	mu  sync.Mutex
	rng *rand.Rand

	// conns tracks live wrapped connections so Partition can sever them
	// immediately rather than only failing future I/O.
	connMu sync.Mutex
	conns  map[io.Closer]struct{}
}

// NewFault returns a fault descriptor with no faults active. seed makes
// probabilistic faults (loss) deterministic; 0 uses a fixed default.
func NewFault(seed int64) *Fault {
	if seed == 0 {
		seed = 42
	}
	return &Fault{
		rng:   rand.New(rand.NewSource(seed)),
		conns: map[io.Closer]struct{}{},
	}
}

// Partition severs the link: every current and future read or write on
// wrapped connections fails with ErrPartitioned, and live connections
// are closed so blocked I/O unblocks immediately (the TCP-reset view of
// a network partition, which is what a killed or unreachable peer looks
// like to the other side).
func (f *Fault) Partition() {
	f.partitioned.Store(true)
	f.connMu.Lock()
	conns := make([]io.Closer, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.connMu.Unlock()
	// Close outside the lock: each wrapped Close untracks itself.
	for _, c := range conns {
		_ = c.Close()
	}
}

// Heal ends the partition: new connections succeed again. Connections
// severed by Partition stay dead — reconnection is the caller's job,
// which is exactly what the tests exercise.
func (f *Fault) Heal() { f.partitioned.Store(false) }

// Partitioned reports whether the link is currently partitioned.
func (f *Fault) Partitioned() bool { return f.partitioned.Load() }

// SetDelay adds d of one-way latency to every wrapped read.
func (f *Fault) SetDelay(d time.Duration) { f.delayNanos.Store(int64(d)) }

// SetLoss drops wrapped packets with probability p (PacketConn only;
// stream conns cannot lose bytes without corrupting the stream).
func (f *Fault) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	f.lossMilli.Store(int64(p * 1000))
}

func (f *Fault) dropPacket() bool {
	m := f.lossMilli.Load()
	if m <= 0 {
		return false
	}
	f.mu.Lock()
	drop := f.rng.Int63n(1000) < m
	f.mu.Unlock()
	return drop
}

func (f *Fault) delay() {
	if d := f.delayNanos.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

func (f *Fault) track(c io.Closer) {
	f.connMu.Lock()
	f.conns[c] = struct{}{}
	f.connMu.Unlock()
}

func (f *Fault) untrack(c io.Closer) {
	f.connMu.Lock()
	delete(f.conns, c)
	f.connMu.Unlock()
}

// WrapConn wraps a stream connection with the fault. Reads and writes
// fail with ErrPartitioned while partitioned; reads are delayed by the
// configured latency.
func (f *Fault) WrapConn(c net.Conn) net.Conn {
	fc := &faultConn{Conn: c, f: f}
	f.track(fc)
	return fc
}

type faultConn struct {
	net.Conn
	f      *Fault
	closed atomic.Bool
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.f.Partitioned() {
		return 0, ErrPartitioned
	}
	n, err := c.Conn.Read(p)
	if err == nil {
		c.f.delay()
	}
	if c.f.Partitioned() {
		return 0, ErrPartitioned
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.f.Partitioned() {
		return 0, ErrPartitioned
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.f.untrack(c)
	}
	return c.Conn.Close()
}

// WrapPacketConn wraps a packet connection: sends are dropped with the
// configured loss probability and blackholed entirely while partitioned
// (UDP-style partitions are silent, not connection resets).
func (f *Fault) WrapPacketConn(pc net.PacketConn) net.PacketConn {
	fpc := &faultPacketConn{PacketConn: pc, f: f}
	f.track(fpc)
	return fpc
}

type faultPacketConn struct {
	net.PacketConn
	f      *Fault
	closed atomic.Bool
}

func (c *faultPacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	if c.f.Partitioned() || c.f.dropPacket() {
		return len(p), nil // silently dropped, like the real network
	}
	c.f.delay()
	return c.PacketConn.WriteTo(p, addr)
}

func (c *faultPacketConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.f.untrack(c)
	}
	return c.PacketConn.Close()
}

// Dialer returns a net.Dial-compatible function that fails while
// partitioned and wraps successful connections with the fault, so every
// reconnection attempt passes through the same kill switch.
func (f *Fault) Dialer(dial func(network, addr string) (net.Conn, error)) func(network, addr string) (net.Conn, error) {
	if dial == nil {
		dial = net.Dial
	}
	return func(network, addr string) (net.Conn, error) {
		if f.Partitioned() {
			return nil, ErrPartitioned
		}
		c, err := dial(network, addr)
		if err != nil {
			return nil, err
		}
		return f.WrapConn(c), nil
	}
}

// ---- process kill grouping ----

// Proc groups the teardown hooks of one logical "process" (a server, its
// listeners, its stores) so a test can SIGKILL it as a unit: every hook
// runs immediately, in registration order, with no graceful shutdown.
// Hooks are abrupt teardown functions — net.Listener.Close, wal.Log
// abandonment, server Close — NOT flushing closers.
type Proc struct {
	mu     sync.Mutex
	hooks  []func()
	killed bool
}

// NewProc returns an empty process group.
func NewProc() *Proc { return &Proc{} }

// OnKill registers an abrupt-teardown hook. If the process was already
// killed the hook runs immediately.
func (p *Proc) OnKill(hook func()) {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		hook()
		return
	}
	p.hooks = append(p.hooks, hook)
	p.mu.Unlock()
}

// Kill runs every registered hook, once. Like a real SIGKILL there is no
// ordering grace: buffered state not yet durable is lost, which is the
// point — tests assert the durable layers recover without it.
func (p *Proc) Kill() {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		return
	}
	p.killed = true
	hooks := p.hooks
	p.hooks = nil
	p.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// Killed reports whether Kill ran.
func (p *Proc) Killed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}
