package chaos

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/wal"
)

// echoServer accepts connections and echoes bytes until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return lis
}

func TestFaultPartitionSeversLiveConnsAndHeals(t *testing.T) {
	lis := echoServer(t)
	defer lis.Close()

	f := NewFault(1)
	dial := f.Dialer(nil)
	conn, err := dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("echo before partition: %q, %v", buf[:n], err)
	}

	// Partition while a read is blocked: it must unblock with an error
	// promptly, not hang until a timeout.
	readErr := make(chan error, 1)
	go func() {
		_, err := conn.Read(buf)
		readErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the read block
	f.Partition()
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("blocked read returned nil error across a partition")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read did not unblock on Partition")
	}

	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write while partitioned: %v, want ErrPartitioned", err)
	}
	if _, err := dial("tcp", lis.Addr().String()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial while partitioned: %v, want ErrPartitioned", err)
	}
	var ne net.Error
	if !errors.As(error(ErrPartitioned), &ne) || ne.Timeout() {
		t.Fatal("ErrPartitioned must be a non-timeout net.Error")
	}

	f.Heal()
	c2, err := dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if n, err := c2.Read(buf); err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("echo after heal: %q, %v", buf[:n], err)
	}
}

func TestPacketConnLossAndPartitionAreSilent(t *testing.T) {
	rx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFault(1)
	wrapped := f.WrapPacketConn(tx)
	defer wrapped.Close()

	recv := func(timeout time.Duration) (string, bool) {
		rx.SetReadDeadline(time.Now().Add(timeout))
		buf := make([]byte, 64)
		n, _, err := rx.ReadFrom(buf)
		if err != nil {
			return "", false
		}
		return string(buf[:n]), true
	}

	if _, err := wrapped.WriteTo([]byte("hello"), rx.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if msg, ok := recv(2 * time.Second); !ok || msg != "hello" {
		t.Fatalf("clean send: %q ok=%v", msg, ok)
	}

	// Total loss: sends report success but nothing arrives.
	f.SetLoss(1.0)
	if n, err := wrapped.WriteTo([]byte("lost"), rx.LocalAddr()); err != nil || n != 4 {
		t.Fatalf("lossy send must pretend success: n=%d err=%v", n, err)
	}
	if msg, ok := recv(100 * time.Millisecond); ok {
		t.Fatalf("dropped packet arrived: %q", msg)
	}
	f.SetLoss(0)

	// UDP partitions blackhole silently rather than erroring.
	f.Partition()
	if _, err := wrapped.WriteTo([]byte("void"), rx.LocalAddr()); err != nil {
		t.Fatalf("partitioned packet send must be silent: %v", err)
	}
	if msg, ok := recv(100 * time.Millisecond); ok {
		t.Fatalf("packet crossed partition: %q", msg)
	}
}

func TestProcKillRunsHooksOnceAndImmediatelyAfter(t *testing.T) {
	p := NewProc()
	var order []string
	p.OnKill(func() { order = append(order, "a") })
	p.OnKill(func() { order = append(order, "b") })
	if p.Killed() {
		t.Fatal("Killed before Kill")
	}
	p.Kill()
	p.Kill() // idempotent
	if !p.Killed() || len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("hooks after Kill: %v (killed=%v)", order, p.Killed())
	}
	// Late registration on a dead proc runs immediately.
	p.OnKill(func() { order = append(order, "late") })
	if len(order) != 3 || order[2] != "late" {
		t.Fatalf("late hook: %v", order)
	}
}

// TestDiskFaultsAgainstWAL damages real WAL segments the way the disk
// helpers are meant to be used: a torn tail is truncated away on reopen,
// and a flipped byte in a sealed segment is quarantined — in both cases
// the log stays open for business.
func TestDiskFaultsAgainstWAL(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := Segments(dir, "*.wal")
	if err != nil || len(segs) < 3 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}

	// Tear the active segment's tail: the last record is lost, the rest
	// replay.
	if err := TearTail(segs[len(segs)-1], 3); err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	if l2.TruncatedBytes() == 0 {
		t.Fatal("torn tail not detected")
	}
	if last := l2.LastSeq(); last != 59 {
		t.Fatalf("LastSeq after torn tail = %d, want 59", last)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the first (sealed) segment: that segment is
	// quarantined, but the log still opens and appends.
	if err := FlipByte(segs[0], 12); err != nil {
		t.Fatal(err)
	}
	l3, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatalf("open after flipped byte: %v", err)
	}
	defer l3.Close()
	if l3.Quarantined() == 0 {
		t.Fatal("corrupt sealed segment not quarantined")
	}
	if _, err := l3.Append([]byte("after-damage")); err != nil {
		t.Fatalf("append after quarantine: %v", err)
	}
}
