package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, want)
		}
	}
}

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	err := l.Replay(from, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	got := collect(t, l, 1)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	if got[1] != "record-0000" || got[100] != "record-0099" {
		t.Fatalf("bad replay contents: %q, %q", got[1], got[100])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen resumes numbering.
	l2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 100 {
		t.Fatalf("LastSeq after reopen = %d, want 100", l2.LastSeq())
	}
	seq, err := l2.Append([]byte("after"))
	if err != nil || seq != 101 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestSegmentRotationAndTruncateFront(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 200) // ~19 bytes/record framed: many segments
	files, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(files) < 3 {
		t.Fatalf("expected several segments, got %d", len(files))
	}
	if err := l.TruncateFront(150); err != nil {
		t.Fatal(err)
	}
	if first := l.FirstSeq(); first <= 1 || first > 151 {
		t.Fatalf("FirstSeq after truncate = %d", first)
	}
	got := collect(t, l, 1)
	if _, ok := got[200]; !ok {
		t.Fatal("record 200 missing after TruncateFront")
	}
	for seq := l.FirstSeq(); seq <= 200; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("record %d missing after TruncateFront", seq)
		}
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(after) >= len(files) {
		t.Fatalf("TruncateFront reclaimed nothing: %d -> %d segments", len(files), len(after))
	}
}

// TestTornFinalRecordTruncated is the first WAL torture case: a crash mid
// write leaves a partial record at the tail, which Open must truncate away
// without losing the records before it.
func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	l.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(files) != 1 {
		t.Fatalf("want 1 segment, got %d", len(files))
	}
	// Simulate the torn write: a header promising 100 bytes, then only 3.
	f, err := os.OpenFile(files[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'a', 'b', 'c'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	if l2.TruncatedBytes() != len(torn) {
		t.Fatalf("TruncatedBytes = %d, want %d", l2.TruncatedBytes(), len(torn))
	}
	if l2.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", l2.LastSeq())
	}
	got := collect(t, l2, 1)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	// And the log keeps working where it left off.
	seq, err := l2.Append([]byte("resumed"))
	if err != nil || seq != 11 {
		t.Fatalf("append after torn-tail recovery: seq=%d err=%v", seq, err)
	}
	if got := collect(t, l2, 11); got[11] != "resumed" {
		t.Fatalf("record 11 = %q", got[11])
	}
}

// TestCorruptSealedSegmentQuarantined is the second torture case: bit rot
// inside a sealed segment must not make the log unopenable — the segment
// is renamed aside and replay skips the gap.
func TestCorruptSealedSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	l.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(files) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(files))
	}
	// Flip a payload byte in the middle of the second segment.
	victim := files[1]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatalf("open with corrupt sealed segment: %v", err)
	}
	defer l2.Close()
	if l2.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", l2.Quarantined())
	}
	if _, err := os.Stat(victim + CorruptSuffix); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if l2.LastSeq() != 100 {
		t.Fatalf("LastSeq = %d, want 100", l2.LastSeq())
	}
	got := collect(t, l2, 1)
	if len(got) == 0 || len(got) >= 100 {
		t.Fatalf("replay across quarantine gap returned %d records", len(got))
	}
	if got[100] != "record-0099" {
		t.Fatalf("tail record = %q", got[100])
	}
	for seq, payload := range got {
		if want := fmt.Sprintf("record-%04d", seq-1); payload != want {
			t.Fatalf("record %d = %q, want %q (gap misaligned sequences)", seq, payload, want)
		}
	}
}

func TestTailingReaderSeesConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 500
	done := make(chan error, 1)
	go func() {
		r := l.ReadFrom(1)
		defer r.Close()
		var buf []byte
		next := uint64(1)
		for next <= total {
			seq, payload, ok, err := r.Next(buf[:0])
			if err != nil {
				done <- err
				return
			}
			if !ok {
				select {
				case <-l.Notify():
				case <-time.After(5 * time.Second):
					done <- fmt.Errorf("timed out at seq %d", next)
					return
				}
				continue
			}
			buf = payload
			if seq != next {
				done <- fmt.Errorf("seq = %d, want %d", seq, next)
				return
			}
			if want := fmt.Sprintf("record-%04d", seq-1); string(payload) != want {
				done <- fmt.Errorf("record %d = %q, want %q", seq, payload, want)
				return
			}
			next++
		}
		done <- nil
	}()
	appendN(t, l, 0, total)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSyncEachAndIntervalPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEach, SyncInterval} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Sync: policy, SyncInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 0, 10)
		if err := l.Close(); err != nil {
			t.Fatalf("close (%v): %v", policy, err)
		}
		l2, err := Open(dir, Options{Sync: policy})
		if err != nil {
			t.Fatal(err)
		}
		if got := collect(t, l2, 1); len(got) != 10 {
			t.Fatalf("policy %v: replayed %d, want 10", policy, len(got))
		}
		l2.Close()
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{
		"each": SyncEach, "always": SyncEach,
		"interval": SyncInterval, "": SyncInterval,
		"off": SyncOff, "none": SyncOff,
	}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy(bogus) succeeded")
	}
	if !strings.Contains(SyncEach.String(), "each") {
		t.Fatalf("String() = %q", SyncEach.String())
	}
}

func TestReaderSeekAndGapSkip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 20)
	r := l.ReadFrom(15)
	defer r.Close()
	seq, payload, ok, err := r.Next(nil)
	if err != nil || !ok || seq != 15 {
		t.Fatalf("Next from 15: seq=%d ok=%v err=%v", seq, ok, err)
	}
	if !bytes.Equal(payload, []byte("record-0014")) {
		t.Fatalf("payload = %q", payload)
	}
	r.Seek(3)
	seq, _, ok, err = r.Next(nil)
	if err != nil || !ok || seq != 3 {
		t.Fatalf("Next after Seek(3): seq=%d ok=%v err=%v", seq, ok, err)
	}
}

// BenchmarkWALAppend measures raw append throughput with 256-byte payloads
// under the interval fsync policy (the default). The acceptance floor is
// 100k appends/s.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncInterval, SyncOff, SyncEach} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := bytes.Repeat([]byte("p"), 256)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "appends/s")
		})
	}
}
