package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func segCount(t *testing.T, dir string) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	return len(files)
}

// Tailing edge cases the replication path leans on: a reader parked at a
// segment boundary while the writer rotates, TruncateFront racing a live
// tail, and replay resuming from an offset in the middle of a segment.

// readAvailable drains the reader until it reports caught-up, returning
// the sequences it saw (in order).
func readAvailable(t *testing.T, r *Reader) []uint64 {
	t.Helper()
	var seqs []uint64
	var buf []byte
	for {
		seq, _, ok, err := r.Next(buf[:0])
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return seqs
		}
		seqs = append(seqs, seq)
	}
}

// TestReaderAtSegmentBoundaryDuringRotation parks a tailing reader
// exactly on the last record of the active segment, rotates under it,
// and checks it follows into the new segment without skipping or
// re-reading — the position a caught-up replication follower sits in
// almost all the time.
func TestReaderAtSegmentBoundaryDuringRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	r := l.ReadFrom(1)
	defer r.Close()

	// Fill until at least one rotation happened, reading to the tail
	// after every single append so the reader repeatedly lands on the
	// exact boundary between "last record written" and "nothing yet".
	var got []uint64
	seq := uint64(0)
	for rotations := 0; rotations < 3; {
		before := segCount(t, dir)
		var err error
		seq, err = l.Append([]byte(fmt.Sprintf("record-%04d", seq)))
		if err != nil {
			t.Fatal(err)
		}
		if segCount(t, dir) > before {
			rotations++
		}
		got = append(got, readAvailable(t, r)...)
		// Caught up: one more probe must say "no record yet", not error.
		if s, _, ok, err := r.Next(nil); ok || err != nil {
			t.Fatalf("probe at boundary: seq=%d ok=%v err=%v", s, ok, err)
		}
	}
	if uint64(len(got)) != seq {
		t.Fatalf("tailed %d records, writer wrote %d", len(got), seq)
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("record %d: seq = %d, want %d", i, s, i+1)
		}
	}
}

// TestTruncateFrontRacesActiveTail runs a writer that appends and
// aggressively truncates behind itself while a reader tails from seq 1.
// The reader must never error, never go backwards, and never skip a
// record that was still retained when it got there: every observed jump
// must land on a sequence that was genuinely truncated away.
func TestTruncateFrontRacesActiveTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 1500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			if i%100 == 99 {
				if err := l.TruncateFront(uint64(i - 20)); err != nil {
					t.Errorf("truncate at %d: %v", i, err)
					return
				}
			}
		}
	}()

	r := l.ReadFrom(1)
	defer r.Close()
	var buf []byte
	last := uint64(0)
	deadline := time.Now().Add(10 * time.Second)
	for last < total {
		if time.Now().After(deadline) {
			t.Fatalf("tail stalled at seq %d", last)
		}
		seq, payload, ok, err := r.Next(buf[:0])
		if err != nil {
			t.Fatalf("Next after %d: %v", last, err)
		}
		if !ok {
			select {
			case <-l.Notify():
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		if seq <= last {
			t.Fatalf("reader went backwards: %d after %d", seq, last)
		}
		if seq > last+1 {
			// A jump is only legal when truncation outran us.
			if first := l.FirstSeq(); first <= last+1 {
				t.Fatalf("skipped %d..%d but FirstSeq is %d (still retained)",
					last+1, seq-1, first)
			}
		}
		if want := fmt.Sprintf("record-%04d", seq-1); string(payload) != want {
			t.Fatalf("record %d: payload %q, want %q", seq, payload, want)
		}
		last = seq
	}
	wg.Wait()
}

// TestReplayFromMidSegmentOffset resumes reads from offsets that fall in
// the middle of sealed segments — the position a replication follower
// hands back after reconnecting — via both Replay and a tailing Reader,
// including after a close/reopen of the log.
func TestReplayFromMidSegmentOffset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 120)
	if segCount(t, dir) < 3 {
		t.Fatalf("want several segments, got %d", segCount(t, dir))
	}

	check := func(l *Log, from uint64) {
		t.Helper()
		got := collect(t, l, from)
		if uint64(len(got)) != 120-from+1 {
			t.Fatalf("replay from %d: %d records, want %d", from, len(got), 120-from+1)
		}
		for seq := from; seq <= 120; seq++ {
			if want := fmt.Sprintf("record-%04d", seq-1); got[seq] != want {
				t.Fatalf("replay from %d: record %d = %q, want %q", from, seq, got[seq], want)
			}
		}
		r := l.ReadFrom(from)
		defer r.Close()
		seqs := readAvailable(t, r)
		if uint64(len(seqs)) != 120-from+1 || seqs[0] != from || seqs[len(seqs)-1] != 120 {
			t.Fatalf("ReadFrom(%d): got %d records spanning %d..%d",
				from, len(seqs), seqs[0], seqs[len(seqs)-1])
		}
		// Seek back mid-stream must re-deliver from the new position.
		r.Seek(from)
		if again := readAvailable(t, r); len(again) != len(seqs) {
			t.Fatalf("after Seek(%d): %d records, want %d", from, len(again), len(seqs))
		}
	}

	// Offsets chosen to land inside segments, not on their edges.
	for _, from := range []uint64{7, 37, 61, 113} {
		check(l, from)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened log (follower restart) must serve the same mid-segment
	// offsets from its recovered index.
	l2, err := Open(dir, Options{Sync: SyncOff, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, from := range []uint64{7, 37, 61, 113} {
		check(l2, from)
	}
}
