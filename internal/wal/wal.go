// Package wal implements a segmented append-only write-ahead log: the
// durability primitive behind both the edge spool (store-and-forward
// capture) and the server-side store recovery.
//
// Records are framed with a CRC32C (Castagnoli) checksum:
//
//	offset 0: uint32 LE payload length
//	offset 4: uint32 LE crc32c(payload)
//	offset 8: payload
//
// The log is a directory of segment files named "<firstSeq>.wal" (20-digit
// decimal, zero padded, so lexical order is sequence order). Appends go to
// the active (last) segment; when it exceeds Options.SegmentSize the
// segment is sealed and a new one started. Sequence numbers are assigned
// contiguously starting at 1 and survive reopen.
//
// Crash behaviour on Open:
//
//   - a torn final record (partial header or short payload at the tail of
//     the last segment) is truncated away — the write never completed, so
//     dropping it is the only consistent choice;
//   - a CRC mismatch inside the final segment is treated the same way
//     (a torn write that was later partially overwritten);
//   - a CRC mismatch inside a *sealed* segment means real corruption: the
//     segment is quarantined (renamed to "<name>.corrupt") and skipped,
//     leaving a sequence gap, and Open still succeeds. Readers skip gaps.
//
// Durability is tunable per log via Options.Sync: SyncEach fsyncs every
// append, SyncInterval (the default) fsyncs on a background timer, and
// SyncOff leaves flushing to the OS.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrNoSpace marks an append rejected because the log's byte quota would
// be exceeded. It is the quota analogue of the filesystem's ENOSPC and is
// classified the same way: retryable-degraded, not fatal — space comes
// back when acks reclaim segments or an operator frees the disk. Use
// IsNoSpace to match both causes.
var ErrNoSpace = errors.New("wal: no space")

// IsNoSpace reports whether err is an out-of-space condition: either the
// log's own quota (ErrNoSpace) or a real filesystem ENOSPC surfacing
// through a write or fsync. Callers treat these as retryable-degraded:
// back off, optionally shed, never crash.
func IsNoSpace(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, syscall.ENOSPC)
}

// WriteFileAtomic writes a file with the crash-safe pattern shared by the
// spool's ack mark, the store's snapshots, and the translator's PROV-JSON
// output: write to a temp file in the same directory, fsync it, rename it
// over the target, then fsync the directory so the rename itself survives
// power loss. Readers (and recovery) only ever observe either the old or
// the complete new content.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename. Best effort: not every filesystem supports
	// fsync on directories.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs dirty segments on a background timer
	// (Options.SyncInterval). A crash can lose at most the last interval's
	// appends. This is the default: it keeps appends at memory speed while
	// bounding the loss window.
	SyncInterval SyncPolicy = iota
	// SyncEach fsyncs after every append before Append returns: nothing
	// acknowledged is ever lost, at the cost of one fsync per record.
	SyncEach
	// SyncOff never fsyncs explicitly; the OS flushes when it pleases.
	// Survives process crashes (the page cache is intact) but not power
	// loss or kernel panics.
	SyncOff
)

// String returns the flag-style name of the policy ("interval", "each",
// "off").
func (p SyncPolicy) String() string {
	switch p {
	case SyncEach:
		return "each"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses the flag-style names accepted by the server
// commands: "each" (or "always"), "interval", "off" (or "none").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "each", "always":
		return SyncEach, nil
	case "interval", "":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	}
	return SyncInterval, fmt.Errorf("wal: unknown sync policy %q (want each|interval|off)", s)
}

// Options tunes a Log. The zero value is usable: 8 MiB segments, interval
// fsync every 100 ms.
type Options struct {
	// SegmentSize is the byte size past which the active segment is sealed
	// and a new one started. Default 8 MiB.
	SegmentSize int64
	// Sync is the fsync policy. Default SyncInterval.
	Sync SyncPolicy
	// SyncInterval is the background fsync period for SyncInterval.
	// Default 100 ms.
	SyncInterval time.Duration
	// Quota caps the total bytes of retained segments. 0 means unlimited.
	// An append that would push usage past the quota fails with an error
	// matching IsNoSpace instead of touching the disk; reclaiming space
	// (TruncateFront after acks) or SetQuota lifts the condition. This is
	// how an edge spool shares a small flash partition without ever
	// hitting the filesystem's own ENOSPC mid-write.
	Quota int64
}

func (o *Options) applyDefaults() {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 8 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
}

const (
	headerSize = 8
	// MaxRecord bounds a single record payload (defense against a corrupt
	// length field pointing into gigabytes).
	MaxRecord = 64 << 20
	suffix    = ".wal"
	// CorruptSuffix is appended to quarantined segment files.
	CorruptSuffix = ".corrupt"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segment is one log file. first/last are the sequence numbers of its
// first and last records; a sealed segment's last is fixed, the active
// segment's grows with every append.
type segment struct {
	path  string
	first uint64
	last  uint64 // 0 when the segment holds no records yet
	size  int64
}

func (s *segment) empty() bool { return s.last == 0 }

// Log is a segmented append-only log. All methods are safe for concurrent
// use; appends are serialized internally.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	segs        []*segment // ascending by first; last entry is active
	active      *os.File
	buf         []byte // append scratch: header + payload in one write
	last        uint64 // last assigned sequence number
	first       uint64 // first retained sequence number (after TruncateFront); 0 if none written yet
	dirty       bool
	closed      bool
	forceRotate bool // next append must start a fresh segment (after Reserve)

	quarantined int // segments quarantined during Open
	truncated   int // bytes truncated from the tail during Open

	used  int64 // total bytes across retained segments
	quota int64 // byte quota (0 = unlimited); runtime-adjustable

	syncErrs    uint64 // background/explicit fsync failures
	lastSyncErr error  // most recent fsync failure; nil once a sync succeeds

	notify chan struct{} // 1-buffered append signal for tailing readers

	syncStop chan struct{}
	syncDone chan struct{}
}

// Open opens (or creates) the log in dir, recovering from torn or corrupt
// tails as described in the package comment.
func Open(dir string, opts Options) (*Log, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		dir:    dir,
		opts:   opts,
		quota:  opts.Quota,
		notify: make(chan struct{}, 1),
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.syncStop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scan discovers existing segments, validates them, quarantines corrupt
// sealed segments, and truncates a torn tail off the final one.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []*segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, suffix), 10, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, &segment{path: filepath.Join(l.dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	for i, s := range segs {
		final := i == len(segs)-1
		count, validSize, clean, err := validateSegment(s.path)
		switch {
		// A sealed segment must both checksum and end exactly at a record
		// boundary; the final segment may end torn (the crashed write).
		case (err == nil && clean) || final:
			// Healthy, or the tail segment: a torn/corrupt suffix there is
			// truncated away (it is the record being written at the crash).
			if final && validSize >= 0 {
				if fi, statErr := os.Stat(s.path); statErr == nil && fi.Size() > validSize {
					l.truncated += int(fi.Size() - validSize)
					if err := os.Truncate(s.path, validSize); err != nil {
						return fmt.Errorf("wal: truncate torn tail of %s: %w", s.path, err)
					}
				}
			}
			s.size = validSize
			if count > 0 {
				s.last = s.first + uint64(count) - 1
			}
			l.segs = append(l.segs, s)
		default:
			// Corruption inside a sealed segment: quarantine and move on.
			if qerr := os.Rename(s.path, s.path+CorruptSuffix); qerr != nil {
				return fmt.Errorf("wal: quarantine %s: %w", s.path, qerr)
			}
			l.quarantined++
		}
	}
	for _, s := range l.segs {
		l.used += s.size
		if l.first == 0 {
			l.first = s.first
		}
		if !s.empty() && s.last > l.last {
			l.last = s.last
		}
		if s.empty() && s.first > l.last {
			// An empty tail segment pre-announces the next sequence number.
			l.last = s.first - 1
		}
	}
	if n := len(l.segs); n > 0 {
		f, err := os.OpenFile(l.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: open active segment: %w", err)
		}
		l.active = f
	}
	return nil
}

// validateSegment walks a segment and returns the record count and the
// byte offset after the last whole, checksum-valid record. clean reports
// whether the segment ended exactly at a record boundary (EOF); err is
// non-nil on a checksum or length-field violation. validSize is always
// meaningful for truncation.
func validateSegment(path string) (count int, validSize int64, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	var (
		hdr [headerSize]byte
		buf []byte
		off int64
	)
	for {
		if _, rerr := io.ReadFull(f, hdr[:]); rerr != nil {
			return count, off, rerr == io.EOF, nil // clean end or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n > MaxRecord {
			return count, off, false, fmt.Errorf("wal: record length %d exceeds limit", n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, rerr := io.ReadFull(f, buf); rerr != nil {
			return count, off, false, nil // torn payload: truncatable
		}
		if crc32.Checksum(buf, castagnoli) != crc {
			return count, off, false, fmt.Errorf("wal: crc mismatch at offset %d", off)
		}
		off += headerSize + int64(n)
		count++
	}
}

// Quarantined reports how many corrupt sealed segments Open set aside.
func (l *Log) Quarantined() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quarantined
}

// TruncatedBytes reports how many torn-tail bytes Open discarded.
func (l *Log) TruncatedBytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// LastSeq returns the sequence number of the most recently appended
// record (0 if the log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// FirstSeq returns the first retained sequence number (0 if empty).
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return 0
	}
	return l.first
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", first, suffix))
}

// rotateLocked seals the active segment and starts a new one whose first
// record will be seq. An active segment that never received a record is
// deleted instead of sealed (it would otherwise pin TruncateFront
// forever). Callers hold l.mu.
func (l *Log) rotateLocked(seq uint64) error {
	if l.active != nil {
		if l.dirty && l.opts.Sync != SyncOff {
			if err := l.active.Sync(); err != nil {
				return fmt.Errorf("wal: sync sealed segment: %w", err)
			}
			l.dirty = false
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: close sealed segment: %w", err)
		}
		l.active = nil
		if n := len(l.segs); n > 0 && l.segs[n-1].empty() {
			if err := os.Remove(l.segs[n-1].path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: remove empty segment: %w", err)
			}
			l.segs = l.segs[:n-1]
		}
	}
	path := segPath(l.dir, seq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.active = f
	l.segs = append(l.segs, &segment{path: path, first: seq})
	if l.first == 0 {
		l.first = seq
	}
	return nil
}

// Append writes one record and returns its sequence number. The write is
// a single write(2) call (header and payload in one buffer), so a crash
// tears at most the record being written — exactly what Open truncates.
func (l *Log) Append(payload []byte) (uint64, error) {
	seq, err := l.AppendWith(func(uint64) ([]byte, error) { return payload, nil })
	return seq, err
}

// AppendWith assigns the next sequence number, calls build with it, and
// appends the returned payload under that number — atomically with respect
// to other appends. It exists for callers that embed the sequence number
// inside the payload itself (the spool's frame ids).
func (l *Log) AppendWith(build func(seq uint64) ([]byte, error)) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	seq := l.last + 1
	payload, err := build(seq)
	if err != nil {
		return 0, err
	}
	if len(payload) > MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	if l.quota > 0 && l.used+headerSize+int64(len(payload)) > l.quota {
		return 0, fmt.Errorf("%w: quota %d bytes, used %d, record needs %d",
			ErrNoSpace, l.quota, l.used, headerSize+len(payload))
	}
	if l.active == nil || l.forceRotate || (len(l.segs) > 0 && l.segs[len(l.segs)-1].size >= l.opts.SegmentSize) {
		if err := l.rotateLocked(seq); err != nil {
			return 0, err
		}
		l.forceRotate = false
	}
	l.buf = l.buf[:0]
	l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(len(payload)))
	l.buf = binary.LittleEndian.AppendUint32(l.buf, crc32.Checksum(payload, castagnoli))
	l.buf = append(l.buf, payload...)
	if _, err := l.active.Write(l.buf); err != nil {
		// The write may have landed partially; Open will truncate the torn
		// record. Do not advance the sequence.
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	seg := l.segs[len(l.segs)-1]
	seg.size += int64(len(l.buf))
	l.used += int64(len(l.buf))
	seg.last = seq
	l.last = seq
	if l.opts.Sync == SyncEach {
		if err := l.active.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
	} else {
		l.dirty = true
	}
	select {
	case l.notify <- struct{}{}:
	default:
	}
	return seq, nil
}

// AppendBatch appends payloads as consecutively-numbered records in as
// few write(2) calls as segment rotation allows — one, when the whole
// batch fits the active segment. A torn write still truncates to a clean
// record boundary on Open (a partial write of the batch buffer is a
// prefix, so records before the tear survive intact and nothing after it
// was ever visible), so batching changes the syscall count, not the
// recovery semantics. Under SyncEach the batch is fsynced once, after the
// final flush — the batch is durable when AppendBatch returns, same
// contract as one Append per record. Returns the sequence number of the
// last appended record (or the current tail for an empty batch).
//
// This is the follower-side replication apply path's throughput lever:
// replaying a primary's stream record-by-record costs one syscall per
// record, which on syscall-expensive hosts caps apply throughput below
// the primary's ingest rate.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	var need int64
	for _, p := range payloads {
		if len(p) > MaxRecord {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(p))
		}
		need += headerSize + int64(len(p))
	}
	if l.quota > 0 && l.used+need > l.quota {
		return 0, fmt.Errorf("%w: quota %d bytes, used %d, batch needs %d",
			ErrNoSpace, l.quota, l.used, need)
	}
	l.buf = l.buf[:0]
	pendingSeq := l.last // last record framed into l.buf
	// flush commits the accumulated frames: only after the write succeeds
	// do the segment bounds and the sequence counter advance (a failed
	// write may have landed partially; Open truncates the torn record, and
	// the unadvanced counter keeps numbering consistent — exactly the
	// single-record Append contract).
	flush := func() error {
		if len(l.buf) == 0 {
			return nil
		}
		if _, err := l.active.Write(l.buf); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
		seg := l.segs[len(l.segs)-1]
		seg.size += int64(len(l.buf))
		l.used += int64(len(l.buf))
		seg.last = pendingSeq
		l.last = pendingSeq
		l.buf = l.buf[:0]
		return nil
	}
	for _, p := range payloads {
		seq := pendingSeq + 1
		if l.active == nil || l.forceRotate ||
			(len(l.segs) > 0 && l.segs[len(l.segs)-1].size+int64(len(l.buf)) >= l.opts.SegmentSize) {
			if err := flush(); err != nil {
				return 0, err
			}
			if err := l.rotateLocked(seq); err != nil {
				return 0, err
			}
			l.forceRotate = false
		}
		l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(len(p)))
		l.buf = binary.LittleEndian.AppendUint32(l.buf, crc32.Checksum(p, castagnoli))
		l.buf = append(l.buf, p...)
		pendingSeq = seq
	}
	if err := flush(); err != nil {
		return 0, err
	}
	if len(payloads) > 0 {
		if l.opts.Sync == SyncEach {
			if err := l.active.Sync(); err != nil {
				return 0, fmt.Errorf("wal: fsync: %w", err)
			}
		} else {
			l.dirty = true
		}
		select {
		case l.notify <- struct{}{}:
		default:
		}
	}
	return l.last, nil
}

// Reserve advances the sequence counter so the next append is assigned at
// least seq+1. The spool uses it on open to keep frame ids from being
// reused when the persisted ack mark outruns a log tail lost to a crash
// under a relaxed fsync policy (reused ids would be swallowed by the
// server's deduplication). The next append starts a fresh segment, since
// records within one segment must be contiguously numbered.
func (l *Log) Reserve(seq uint64) {
	l.mu.Lock()
	if seq > l.last {
		l.last = seq
		l.forceRotate = true
	}
	l.mu.Unlock()
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.active == nil || !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.syncErrs++
		l.lastSyncErr = err
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.lastSyncErr = nil
	return nil
}

func (l *Log) syncLoop() {
	ticker := time.NewTicker(l.opts.SyncInterval)
	defer func() {
		ticker.Stop()
		close(l.syncDone)
	}()
	for {
		select {
		case <-l.syncStop:
			return
		case <-ticker.C:
			// Failures are recorded in syncErrs/lastSyncErr (see
			// SyncErrors) so degraded durability is observable in stats
			// rather than silently swallowed here.
			_ = l.Sync()
		}
	}
}

// SyncErrors reports how many fsyncs have failed over the log's lifetime
// and the most recent failure ("" once a later sync succeeds). A non-empty
// last error means the background syncer is currently unable to make
// appends durable — degraded durability that should page before it
// becomes data loss.
func (l *Log) SyncErrors() (count uint64, last string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lastSyncErr != nil {
		last = l.lastSyncErr.Error()
	}
	return l.syncErrs, last
}

// UsedBytes returns the total size of retained segments.
func (l *Log) UsedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Quota returns the current byte quota (0 = unlimited).
func (l *Log) Quota() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quota
}

// SetQuota adjusts the byte quota at runtime (0 disables it). Lowering it
// below current usage does not touch existing records; it only makes
// further appends fail with ErrNoSpace until space is reclaimed — exactly
// how a filesystem filling up behaves, which is what the chaos quota
// injector exploits.
func (l *Log) SetQuota(bytes int64) {
	l.mu.Lock()
	l.quota = bytes
	l.mu.Unlock()
}

// Notify returns a 1-buffered channel signalled on every append, so a
// tailing reader can sleep until new records arrive. Signals coalesce.
func (l *Log) Notify() <-chan struct{} { return l.notify }

// OldestSealed returns the sequence bounds of the oldest sealed
// (reclaimable) segment. ok is false when only the active segment (or
// nothing) remains — there is then nothing TruncateFront could reclaim.
// The spool's DropOldestUnacked policy uses this to shed in the only
// unit that actually frees disk: whole sealed segments.
func (l *Log) OldestSealed() (first, last uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) < 2 {
		return 0, 0, false
	}
	s := l.segs[0]
	if s.empty() {
		return 0, 0, false
	}
	return s.first, s.last, true
}

// TruncateFront deletes sealed segments whose records all have sequence
// numbers <= upto, reclaiming disk space behind a durable low-water mark.
// The active segment and any segment holding a record > upto survive.
func (l *Log) TruncateFront(upto uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := 0
	for keep < len(l.segs)-1 { // never the active (last) segment
		s := l.segs[keep]
		if s.empty() || s.last > upto {
			break
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: remove segment: %w", err)
		}
		l.used -= s.size
		keep++
	}
	if keep > 0 {
		l.segs = append(l.segs[:0], l.segs[keep:]...)
		l.first = l.segs[0].first
	}
	return nil
}

// Close syncs and releases the log. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	l.mu.Unlock()
	if l.syncStop != nil {
		close(l.syncStop)
		<-l.syncDone
	}
	return err
}

// Replay calls fn for every retained record with sequence number >= from,
// in order, skipping quarantine gaps. fn returning an error stops the
// replay and propagates it.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	r := l.ReadFrom(from)
	defer r.Close()
	var buf []byte
	for {
		seq, payload, ok, err := r.Next(buf[:0])
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		buf = payload
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
}

// Reader iterates records in sequence order. It tolerates concurrent
// appends (records become visible atomically with their sequence number)
// and concurrent TruncateFront of segments it has passed.
type Reader struct {
	l    *Log
	next uint64 // next sequence number wanted
	f    *os.File
	// br buffers reads of f: segments are append-only, so bytes at an
	// offset never change once written and buffered read-ahead can never
	// go stale — a short fill at the committed tail simply refills later.
	// This is what keeps a tailing reader (replication shipping, spool
	// drain) at a fraction of a syscall per record instead of two.
	br  *bufio.Reader
	seg segment // copy of the segment f reads (first fixed; last/size refreshed)
	at  uint64  // sequence number the file offset points at
	hdr [headerSize]byte
}

// ReadFrom returns a reader positioned at the first retained record with
// sequence number >= from.
func (l *Log) ReadFrom(from uint64) *Reader {
	if from == 0 {
		from = 1
	}
	return &Reader{l: l, next: from}
}

// Seek repositions the reader at the first retained record >= from.
func (r *Reader) Seek(from uint64) {
	if from == 0 {
		from = 1
	}
	r.next = from
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// locate finds the segment holding r.next (or the first one after a gap)
// and returns a copy plus whether a record >= r.next exists yet.
func (r *Reader) locate() (segment, bool) {
	l := r.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.next > l.last {
		return segment{}, false
	}
	for _, s := range l.segs {
		if s.empty() {
			continue
		}
		if s.last >= r.next {
			if s.first > r.next {
				r.next = s.first // quarantine/truncation gap: skip forward
			}
			return *s, true
		}
	}
	return segment{}, false
}

// Next appends the next record's payload to buf and returns it with its
// sequence number. ok is false when the reader has caught up with the
// tail (wait on Log.Notify and retry). Errors are permanent for the
// current position; Seek past them to continue.
func (r *Reader) Next(buf []byte) (seq uint64, payload []byte, ok bool, err error) {
	for {
		seg, found := r.locate()
		if !found {
			return 0, buf, false, nil
		}
		if r.f == nil || r.seg.first != seg.first || r.at > r.next {
			if r.f != nil {
				r.f.Close()
				r.f = nil
			}
			f, oerr := os.Open(seg.path)
			if oerr != nil {
				return 0, buf, false, fmt.Errorf("wal: open segment: %w", oerr)
			}
			r.f = f
			if r.br == nil {
				r.br = bufio.NewReaderSize(f, 64<<10)
			} else {
				r.br.Reset(f)
			}
			r.seg = seg
			r.at = seg.first
		}
		r.seg.last = seg.last
		// Skip forward to r.next within the segment.
		for r.at <= r.seg.last {
			if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
				return 0, buf, false, fmt.Errorf("wal: read header of %d: %w", r.at, err)
			}
			n := binary.LittleEndian.Uint32(r.hdr[0:4])
			crc := binary.LittleEndian.Uint32(r.hdr[4:8])
			if n > MaxRecord {
				return 0, buf, false, fmt.Errorf("wal: record %d length %d exceeds limit", r.at, n)
			}
			if r.at < r.next {
				if _, err := io.CopyN(io.Discard, r.br, int64(n)); err != nil {
					return 0, buf, false, fmt.Errorf("wal: skip record %d: %w", r.at, err)
				}
				r.at++
				continue
			}
			start := len(buf)
			if cap(buf)-start < int(n) {
				grown := make([]byte, start, start+int(n))
				copy(grown, buf)
				buf = grown
			}
			buf = buf[:start+int(n)]
			if _, err := io.ReadFull(r.br, buf[start:]); err != nil {
				return 0, buf[:start], false, fmt.Errorf("wal: read record %d: %w", r.at, err)
			}
			if crc32.Checksum(buf[start:], castagnoli) != crc {
				return 0, buf[:start], false, fmt.Errorf("wal: crc mismatch at record %d", r.at)
			}
			seq = r.at
			r.at++
			r.next = seq + 1
			return seq, buf, true, nil
		}
		// Exhausted this segment; move to the next one.
		r.f.Close()
		r.f = nil
		if r.next <= r.seg.last {
			r.next = r.seg.last + 1
		}
	}
}

// Close releases the reader's file handle.
func (r *Reader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}
