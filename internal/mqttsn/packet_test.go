package mqttsn

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, p Packet) Packet {
	t.Helper()
	data := Marshal(p)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", p.Type(), err)
	}
	if got.Type() != p.Type() {
		t.Fatalf("type changed: %s -> %s", p.Type(), got.Type())
	}
	return got
}

func TestPacketRoundTrips(t *testing.T) {
	packets := []Packet{
		&Advertise{GwID: 3, Duration: 900},
		&SearchGw{Radius: 2},
		&GwInfo{GwID: 1, GwAdd: []byte{10, 0, 0, 1}},
		&Connect{Flags: Flags{CleanSession: true, Will: true}, Duration: 30, ClientID: "edge-device-7"},
		&Connack{ReturnCode: Accepted},
		&WillTopicReq{},
		&WillTopic{Flags: Flags{QoS: QoS1, Retain: true}, Topic: "wf/will"},
		&WillMsgReq{},
		&WillMsg{Msg: []byte("device lost")},
		&Register{TopicID: 7, MsgID: 21, TopicName: "provlight/wf/1"},
		&Regack{TopicID: 7, MsgID: 21, ReturnCode: Accepted},
		&Publish{Flags: Flags{QoS: QoS2}, TopicID: 7, MsgID: 99, Data: []byte{1, 2, 3}},
		&Puback{TopicID: 7, MsgID: 99, ReturnCode: RejectedInvalidID},
		&Pubrec{msgIDOnly{MsgID: 99}},
		&Pubrel{msgIDOnly{MsgID: 99}},
		&Pubcomp{msgIDOnly{MsgID: 99}},
		&Subscribe{Flags: Flags{QoS: QoS1}, MsgID: 5, TopicName: "provlight/+/tasks"},
		&Suback{Flags: Flags{QoS: QoS1}, TopicID: 9, MsgID: 5, ReturnCode: Accepted},
		&Unsubscribe{MsgID: 6, TopicName: "provlight/+/tasks"},
		&Unsuback{msgIDOnly{MsgID: 6}},
		&Pingreq{ClientID: "edge-device-7"},
		&Pingreq{},
		&Pingresp{},
		&Disconnect{},
		&Disconnect{Duration: 120, HasDuration: true},
	}
	for _, p := range packets {
		got := roundTrip(t, p)
		if !reflect.DeepEqual(got, p) {
			t.Errorf("%s round trip mismatch:\n got %#v\nwant %#v", p.Type(), got, p)
		}
	}
}

func TestSubscribePredefinedTopic(t *testing.T) {
	p := &Subscribe{Flags: Flags{QoS: QoS2, TopicIDType: TopicPredefined}, MsgID: 9, TopicID: 42}
	got := roundTrip(t, p).(*Subscribe)
	if got.TopicID != 42 || got.TopicName != "" {
		t.Errorf("predefined subscribe round trip: %#v", got)
	}
}

func TestLargePublishUsesExtendedLength(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 1000)
	p := &Publish{Flags: Flags{QoS: QoS2}, TopicID: 1, MsgID: 2, Data: payload}
	data := Marshal(p)
	if data[0] != 0x01 {
		t.Fatalf("first byte = 0x%02x, want 0x01 (extended length)", data[0])
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.(*Publish).Data, payload) {
		t.Error("payload corrupted through extended-length encoding")
	}
}

func TestFlagsEncodeDecode(t *testing.T) {
	cases := []Flags{
		{},
		{DUP: true, QoS: QoS2, Retain: true},
		{QoS: QoS1, Will: true, CleanSession: true},
		{QoS: QoSMinusOne, TopicIDType: TopicShortName},
		{QoS: QoS0, TopicIDType: TopicPredefined},
	}
	for _, f := range cases {
		if got := DecodeFlags(f.Encode()); got != f {
			t.Errorf("flags round trip: %+v -> %+v", f, got)
		}
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1},
		{5, 0x04, 0, 0},                 // declared length 5, actual 4
		{3, 0xFF, 0},                    // unknown type
		{2, byte(CONNACK)},              // connack without return code
		{0x01, 0, 10, byte(PINGRESP)},   // extended length mismatch
		{6, byte(CONNECT), 0, 2, 0, 30}, // bad protocol id
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: expected error for % x", i, c)
		}
	}
}

func TestConnectRejectsEmptyClientID(t *testing.T) {
	raw := Marshal(&Connect{Duration: 10, ClientID: "x"})
	// Strip the client id byte and fix the length.
	raw = raw[:len(raw)-1]
	raw[0] = byte(len(raw))
	if _, err := Unmarshal(raw); err == nil {
		t.Error("expected error for empty client id")
	}
}

// Property: Unmarshal never panics on arbitrary bytes.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on % x: %v", data, r)
			}
		}()
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Publish round-trips for arbitrary payloads and ids.
func TestPublishRoundTripProperty(t *testing.T) {
	f := func(topicID, msgID uint16, data []byte, dup bool, qos uint8) bool {
		q := QoS(qos % 3)
		p := &Publish{Flags: Flags{QoS: q, DUP: dup}, TopicID: topicID, MsgID: msgID, Data: data}
		got, err := Unmarshal(Marshal(p))
		if err != nil {
			return false
		}
		gp := got.(*Publish)
		if data == nil {
			data = []byte{}
		}
		if gp.Data == nil {
			gp.Data = []byte{}
		}
		return gp.TopicID == topicID && gp.MsgID == msgID &&
			gp.Flags.QoS == q && gp.Flags.DUP == dup && bytes.Equal(gp.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopicMatches(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b/d", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"a/+/c", "a/b/x/c", false},
		{"a/#", "a/b/c", true},
		{"a/#", "a", true},
		{"#", "anything/at/all", true},
		{"+", "one", true},
		{"+", "one/two", false},
		{"a/+/#", "a/b", true},
		{"a/+/#", "a/b/c/d", true},
		{"a/+/#", "a", false},
		{"provlight/+/records", "provlight/device-17/records", true},
	}
	for _, c := range cases {
		if got := TopicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

func TestValidFilterAndTopicName(t *testing.T) {
	valid := []string{"a", "a/b", "+", "#", "a/+/b", "a/#"}
	for _, f := range valid {
		if !ValidFilter(f) {
			t.Errorf("ValidFilter(%q) = false, want true", f)
		}
	}
	invalid := []string{"", "a/#/b", "a#", "a/b+", "#/a"}
	for _, f := range invalid {
		if ValidFilter(f) {
			t.Errorf("ValidFilter(%q) = true, want false", f)
		}
	}
	if !ValidTopicName("a/b/c") || ValidTopicName("a/+") || ValidTopicName("") || ValidTopicName("a/#") {
		t.Error("ValidTopicName misbehaves")
	}
}

// Property: a filter without wildcards matches exactly itself.
func TestExactFilterProperty(t *testing.T) {
	f := func(levelsRaw []uint8) bool {
		if len(levelsRaw) == 0 || len(levelsRaw) > 6 {
			return true
		}
		topic := ""
		for i, l := range levelsRaw {
			if i > 0 {
				topic += "/"
			}
			topic += string(rune('a' + l%26))
		}
		return TopicMatches(topic, topic) && !TopicMatches(topic, topic+"/x")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
