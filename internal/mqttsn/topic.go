package mqttsn

import "strings"

// TopicMatches reports whether a topic name matches a subscription filter
// using MQTT wildcard semantics: '+' matches exactly one level, '#' (which
// must be the final level) matches any number of trailing levels including
// zero.
func TopicMatches(filter, topic string) bool {
	if filter == topic {
		return true
	}
	fLevels := strings.Split(filter, "/")
	tLevels := strings.Split(topic, "/")
	for i, f := range fLevels {
		if f == "#" {
			return i == len(fLevels)-1
		}
		if i >= len(tLevels) {
			return false
		}
		if f != "+" && f != tLevels[i] {
			return false
		}
	}
	return len(fLevels) == len(tLevels)
}

// ValidFilter reports whether a subscription filter is well-formed:
// non-empty, '#' only as the final complete level, '+' only as a complete
// level.
func ValidFilter(filter string) bool {
	if filter == "" {
		return false
	}
	levels := strings.Split(filter, "/")
	for i, l := range levels {
		if strings.Contains(l, "#") {
			if l != "#" || i != len(levels)-1 {
				return false
			}
		}
		if strings.Contains(l, "+") && l != "+" {
			return false
		}
	}
	return true
}

// ValidTopicName reports whether a concrete topic name is publishable:
// non-empty and free of wildcard characters.
func ValidTopicName(topic string) bool {
	return topic != "" && !strings.ContainsAny(topic, "+#")
}
