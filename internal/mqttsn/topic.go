package mqttsn

import "strings"

// TopicMatches reports whether a topic name matches a subscription filter
// using MQTT wildcard semantics: '+' matches exactly one level, '#' (which
// must be the final level) matches any number of trailing levels including
// zero. A shared filter ("$share/<group>/<filter>") matches whatever its
// inner filter matches: share routing picks the receiver, not the match.
func TopicMatches(filter, topic string) bool {
	if filter == topic {
		return true
	}
	if _, inner, ok := ParseSharedFilter(filter); ok {
		return TopicMatches(inner, topic)
	}
	fLevels := strings.Split(filter, "/")
	tLevels := strings.Split(topic, "/")
	for i, f := range fLevels {
		if f == "#" {
			return i == len(fLevels)-1
		}
		if i >= len(tLevels) {
			return false
		}
		if f != "+" && f != tLevels[i] {
			return false
		}
	}
	return len(fLevels) == len(tLevels)
}

// SharePrefix marks a shared-subscription filter:
// "$share/<group>/<filter>". Subscribers using the same group name and
// filter form a consumer group; the broker routes each matching message
// to exactly one member, partitioned by topic so one publisher's stream
// stays on one member.
const SharePrefix = "$share/"

// ParseSharedFilter splits a "$share/<group>/<filter>" subscription into
// its consumer-group name and the underlying topic filter. ok is false
// when filter does not use the shared syntax or is malformed (empty or
// wildcard-bearing group name, empty remainder).
func ParseSharedFilter(filter string) (group, topicFilter string, ok bool) {
	if !strings.HasPrefix(filter, SharePrefix) {
		return "", "", false
	}
	rest := filter[len(SharePrefix):]
	slash := strings.IndexByte(rest, '/')
	if slash <= 0 || slash == len(rest)-1 {
		return "", "", false
	}
	group = rest[:slash]
	if strings.ContainsAny(group, "+#") {
		return "", "", false
	}
	return group, rest[slash+1:], true
}

// ValidFilter reports whether a subscription filter is well-formed:
// non-empty, '#' only as the final complete level, '+' only as a complete
// level. Shared filters ("$share/<group>/<filter>") are valid when the
// group name is well-formed and the inner filter is itself valid.
func ValidFilter(filter string) bool {
	if filter == "" {
		return false
	}
	if strings.HasPrefix(filter, SharePrefix) {
		_, inner, ok := ParseSharedFilter(filter)
		return ok && ValidFilter(inner)
	}
	levels := strings.Split(filter, "/")
	for i, l := range levels {
		if strings.Contains(l, "#") {
			if l != "#" || i != len(levels)-1 {
				return false
			}
		}
		if strings.Contains(l, "+") && l != "+" {
			return false
		}
	}
	return true
}

// ValidTopicName reports whether a concrete topic name is publishable:
// non-empty and free of wildcard characters.
func ValidTopicName(topic string) bool {
	return topic != "" && !strings.ContainsAny(topic, "+#")
}
