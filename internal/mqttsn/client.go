package mqttsn

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/provlight/provlight/internal/transport"
)

// Errors returned by the client.
var (
	ErrTimeout      = errors.New("mqttsn: timed out waiting for acknowledgement")
	ErrClosed       = errors.New("mqttsn: client closed")
	ErrNotConnected = errors.New("mqttsn: not connected")
	// ErrCongestion is returned by Connect when the gateway refused the
	// session with a congestion CONNACK (admission control under
	// overload). The spec's contract for this code is "try again later":
	// callers should back off with jitter — never retry immediately, or a
	// rejected thundering herd re-arrives as the same herd.
	ErrCongestion = errors.New("mqttsn: connect rejected: congestion")
)

// ConnectRejectedError is returned by Connect for a non-congestion
// CONNACK refusal, carrying the gateway's return code so callers can
// tell a permanent refusal apart from a transient one. The cluster's
// link supervisor depends on this: RejectedInvalidID from a peer's
// membership gate means this node has been fenced out of the cluster
// (retrying is useless — the node must demote and rejoin), while any
// other failure is retried with backoff.
type ConnectRejectedError struct {
	Code ReturnCode
}

func (e *ConnectRejectedError) Error() string {
	return fmt.Sprintf("mqttsn: connect rejected: %s", e.Code)
}

// Will configures a last-will message published by the gateway if the
// session dies without a clean disconnect.
type Will struct {
	Topic   string
	Payload []byte
	QoS     QoS
	Retain  bool
}

// ClientConfig configures a gateway client.
type ClientConfig struct {
	// ClientID identifies the session (1-23 characters per spec).
	ClientID string
	// Gateway is the address of the MQTT-SN gateway/broker, in the
	// dialing transport's address format (UDP host:port by default).
	Gateway string
	// Conn optionally supplies the packet connection to use (e.g. a
	// netem-shaped one). If nil, Transport (or UDP) opens one.
	Conn net.PacketConn
	// Transport, when set and Conn is nil, dials the gateway over an
	// alternate packet substrate (in-process loopback, TCP stream). The
	// default is plain UDP. With Conn set it is ignored: the borrowed
	// conn's Gateway is resolved as a UDP address.
	Transport transport.Transport
	// KeepAlive is the session keepalive; the client pings at half this
	// interval when idle. Defaults to 60s.
	KeepAlive time.Duration
	// RetryInterval is the acknowledgement timeout before retransmission.
	// Defaults to 1s.
	RetryInterval time.Duration
	// MaxRetries bounds retransmissions per in-flight message. Defaults to 5.
	MaxRetries int
	// InflightWindow bounds how many publish handshakes may be in flight at
	// once via PublishAsync (and Publish, which wraps it). Each in-flight
	// message runs its own QoS 1/2 handshake with a per-message retry
	// timer; the waiters map matches acknowledgements by msgID. 1 restores
	// strictly serial stop-and-wait publishing. Defaults to 16.
	InflightWindow int
	// CleanSession requests a fresh session.
	CleanSession bool
	// Will is the optional last-will message.
	Will *Will
	// OnDisconnect, when set, is invoked (once, on its own goroutine) when
	// the session dies without a local Close/Disconnect: the broker sent a
	// DISCONNECT, or the socket failed. Reconnect loops use it to replace
	// the session promptly instead of waiting for the next publish to time
	// out.
	OnDisconnect func(err error)
}

// MessageHandler receives inbound publications.
type MessageHandler func(topic string, payload []byte)

// pendingSub tracks an in-flight SUBSCRIBE exchange.
type pendingSub struct {
	topic   string
	handler MessageHandler
}

type ackKey struct {
	typ   MsgType
	msgID uint16
}

// Client is an MQTT-SN client (the device side of ProvLight's transport).
// All methods are safe for concurrent use.
type Client struct {
	cfg     ClientConfig
	conn    net.PacketConn
	gwAddr  net.Addr
	ownConn bool

	msgID atomic.Uint32

	mu        sync.Mutex
	connected bool
	closed    bool
	waiters   map[ackKey]chan Packet
	topicIDs  map[string]uint16 // topic name -> registered id
	topicName map[uint16]string // reverse map (incl. broker REGISTERs)
	subs      map[string]MessageHandler
	inbound2  map[uint16][]byte // inbound QoS2 msgID -> payload pending PUBREL
	lastSend  time.Time
	lastRecv  time.Time // last packet from the gateway (liveness)

	// pending exchanges consulted by the read loop so that topic/handler
	// state is installed *before* the ack wakes the caller; otherwise a
	// publication racing right behind the SUBACK/REGACK could be dropped.
	pendingSubs map[uint16]pendingSub // SUBSCRIBE msgID -> topic+handler
	pendingRegs map[uint16]string     // REGISTER msgID -> topic name

	// Stats counts protocol activity (used by tests and the evaluation).
	stats ClientStats

	// window is the in-flight publish semaphore: one slot per outstanding
	// PublishAsync handshake.
	window chan struct{}

	// downNotified ensures OnDisconnect fires at most once. Guarded by mu.
	downNotified bool

	done chan struct{}
	wg   sync.WaitGroup
}

// sendBufPool holds scratch buffers for marshaling outgoing packets.
var sendBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// ClientStats counts client protocol activity.
type ClientStats struct {
	PacketsSent     uint64
	PacketsReceived uint64
	BytesSent       uint64
	BytesReceived   uint64
	Retransmissions uint64
	PublishesSent   uint64
	MessagesHandled uint64
}

// NewClient creates a client; call Connect before publishing at QoS >= 0.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.ClientID == "" || len(cfg.ClientID) > 23 {
		return nil, fmt.Errorf("mqttsn: client id must be 1-23 characters, got %q", cfg.ClientID)
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 60 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.InflightWindow <= 0 {
		cfg.InflightWindow = 16
	}
	conn := cfg.Conn
	var gwAddr net.Addr
	ownConn := false
	if conn == nil {
		var err error
		if cfg.Transport != nil {
			conn, gwAddr, err = cfg.Transport.Dial(cfg.Gateway)
			if err != nil {
				return nil, fmt.Errorf("mqttsn: dial gateway %q: %w", cfg.Gateway, err)
			}
		} else {
			conn, err = net.ListenPacket("udp", ":0")
			if err != nil {
				return nil, fmt.Errorf("mqttsn: open socket: %w", err)
			}
		}
		ownConn = true
	} else {
		// A borrowed conn may carry a stale read deadline from a previous
		// client's Close (Close unblocks its read loop that way); clear it
		// so sequential session reuse over one socket works.
		_ = conn.SetReadDeadline(time.Time{})
	}
	// A subscriber session can receive a full broker send-window in one
	// burst; grow the receive buffer past the kernel default so the burst
	// is absorbed instead of recovered by timed retransmissions.
	// Best-effort: not every PacketConn supports it.
	if rb, ok := conn.(interface{ SetReadBuffer(int) error }); ok {
		_ = rb.SetReadBuffer(1 << 20)
	}
	if gwAddr == nil {
		var err error
		gwAddr, err = net.ResolveUDPAddr("udp", cfg.Gateway)
		if err != nil {
			if ownConn {
				conn.Close()
			}
			return nil, fmt.Errorf("mqttsn: resolve gateway %q: %w", cfg.Gateway, err)
		}
	}
	c := &Client{
		cfg:         cfg,
		conn:        conn,
		gwAddr:      gwAddr,
		ownConn:     ownConn,
		waiters:     map[ackKey]chan Packet{},
		topicIDs:    map[string]uint16{},
		topicName:   map[uint16]string{},
		subs:        map[string]MessageHandler{},
		inbound2:    map[uint16][]byte{},
		pendingSubs: map[uint16]pendingSub{},
		pendingRegs: map[uint16]string{},
		window:      make(chan struct{}, cfg.InflightWindow),
		done:        make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Stats returns a snapshot of protocol counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// WindowOccupancy reports how many publish handshakes are currently in
// flight and the window capacity (Config.InflightWindow). Occupancy
// pinned at capacity means the sender is window-limited.
func (c *Client) WindowOccupancy() (inFlight, capacity int) {
	return len(c.window), cap(c.window)
}

func (c *Client) nextMsgID() uint16 {
	for {
		id := uint16(c.msgID.Add(1))
		if id != 0 {
			return id
		}
	}
}

func (c *Client) send(p Packet) error {
	bufp := sendBufPool.Get().(*[]byte)
	data := AppendPacket((*bufp)[:0], p)
	_, err := c.conn.WriteTo(data, c.gwAddr)
	n := len(data)
	*bufp = data[:0]
	sendBufPool.Put(bufp)
	c.mu.Lock()
	c.stats.PacketsSent++
	c.stats.BytesSent += uint64(n)
	c.lastSend = time.Now()
	c.mu.Unlock()
	return err
}

// await registers interest in an acknowledgement before sending, so the
// response cannot be lost to a race.
func (c *Client) await(key ackKey) chan Packet {
	ch := make(chan Packet, 1)
	c.mu.Lock()
	c.waiters[key] = ch
	c.mu.Unlock()
	return ch
}

func (c *Client) cancelAwait(key ackKey) {
	c.mu.Lock()
	delete(c.waiters, key)
	c.mu.Unlock()
}

// request sends p and waits for the matching acknowledgement, driving
// retransmissions from a per-message retry timer. Many requests with
// distinct msgIDs may run concurrently; the waiters map matches each
// acknowledgement to its exchange. markDup marks retransmissions when
// non-nil.
func (c *Client) request(p Packet, key ackKey, markDup func()) (Packet, error) {
	ch := c.await(key)
	if err := c.send(p); err != nil {
		c.cancelAwait(key)
		return nil, err
	}
	return c.awaitAck(p, key, ch, markDup)
}

// awaitAck waits on an already-sent, already-registered exchange,
// retransmitting p on its retry timer. It consumes the waiter entry.
func (c *Client) awaitAck(p Packet, key ackKey, ch chan Packet, markDup func()) (Packet, error) {
	defer c.cancelAwait(key)
	timer := time.NewTimer(c.cfg.RetryInterval)
	defer timer.Stop()
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if markDup != nil {
				markDup()
			}
			c.mu.Lock()
			c.stats.Retransmissions++
			c.mu.Unlock()
			if err := c.send(p); err != nil {
				return nil, err
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(c.cfg.RetryInterval)
		}
		select {
		case ack := <-ch:
			return ack, nil
		case <-timer.C:
		case <-c.done:
			return nil, ErrClosed
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrTimeout, p.Type())
}

// Connect establishes the session, negotiating the will if configured.
func (c *Client) Connect() error {
	flags := Flags{CleanSession: c.cfg.CleanSession, Will: c.cfg.Will != nil}
	keepalive := uint16(c.cfg.KeepAlive / time.Second)
	if keepalive == 0 {
		keepalive = 1
	}
	conn := &Connect{Flags: flags, Duration: keepalive, ClientID: c.cfg.ClientID}

	// With a will, the gateway interleaves WILLTOPICREQ/WILLMSGREQ before
	// CONNACK; the read loop answers those (see handleWillReq), so here we
	// still just wait for the CONNACK.
	ack, err := c.request(conn, ackKey{CONNACK, 0}, nil)
	if err != nil {
		return err
	}
	ca := ack.(*Connack)
	if ca.ReturnCode == RejectedCongestion {
		return ErrCongestion
	}
	if ca.ReturnCode != Accepted {
		return &ConnectRejectedError{Code: ca.ReturnCode}
	}
	c.mu.Lock()
	// A concurrent Close (a supervisor abandoning an in-flight dial) may
	// have won the race against the CONNACK; adding to the WaitGroup
	// after its Wait started would be both a race and a leak.
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.connected = true
	c.lastRecv = time.Now()
	c.wg.Add(1)
	c.mu.Unlock()
	go c.keepaliveLoop()
	return nil
}

// RegisterTopic obtains (and caches) the gateway's topic id for a name.
func (c *Client) RegisterTopic(topic string) (uint16, error) {
	c.mu.Lock()
	if id, ok := c.topicIDs[topic]; ok {
		c.mu.Unlock()
		return id, nil
	}
	connected := c.connected
	c.mu.Unlock()
	if !connected {
		return 0, ErrNotConnected
	}
	msgID := c.nextMsgID()
	c.mu.Lock()
	c.pendingRegs[msgID] = topic
	c.mu.Unlock()
	reg := &Register{MsgID: msgID, TopicName: topic}
	ack, err := c.request(reg, ackKey{REGACK, msgID}, nil)
	c.mu.Lock()
	delete(c.pendingRegs, msgID)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	ra := ack.(*Regack)
	if ra.ReturnCode != Accepted {
		return 0, fmt.Errorf("mqttsn: register %q rejected: %s", topic, ra.ReturnCode)
	}
	return ra.TopicID, nil
}

// Publish sends payload to topic at the given QoS level. The call blocks
// until the QoS flow completes (QoS 2: PUBLISH/PUBREC/PUBREL/PUBCOMP,
// guaranteeing exactly-once receipt at the gateway). It is a blocking
// wrapper around PublishAsync and therefore shares the in-flight window.
func (c *Client) Publish(topic string, payload []byte, qos QoS) error {
	return <-c.PublishAsync(topic, payload, qos)
}

// PublishAsync starts a publish handshake and returns a 1-buffered channel
// that receives the flow's final error (nil on success). The call blocks
// only while the in-flight window is full, so a sender can keep
// InflightWindow handshakes running concurrently instead of paying the
// QoS 2 double round trip per message.
//
// The initial PUBLISH is transmitted before PublishAsync returns, so a
// single caller's messages reach the gateway in submission order; the rest
// of the handshake (acks, retries on the per-message timer, the QoS 2
// PUBREL leg) runs on a per-message goroutine, matched to inbound
// acknowledgements by msgID. Flows may therefore *complete* out of
// submission order.
func (c *Client) PublishAsync(topic string, payload []byte, qos QoS) <-chan error {
	done := make(chan error, 1)
	topicID, err := c.RegisterTopic(topic)
	if err != nil {
		done <- err
		return done
	}
	switch qos {
	case QoS0, QoSMinusOne, QoS1, QoS2:
	default:
		done <- fmt.Errorf("mqttsn: unsupported QoS %d", qos)
		return done
	}
	// Acquire a window slot; this is where PublishAsync blocks when the
	// window is full.
	select {
	case c.window <- struct{}{}:
	case <-c.done:
		done <- ErrClosed
		return done
	}
	c.mu.Lock()
	c.stats.PublishesSent++
	c.mu.Unlock()

	if qos == QoS0 || qos == QoSMinusOne {
		pub := &Publish{Flags: Flags{QoS: qos}, TopicID: topicID, Data: payload}
		err := c.send(pub)
		<-c.window
		done <- err
		return done
	}

	msgID := c.nextMsgID()
	pub := &Publish{Flags: Flags{QoS: qos}, TopicID: topicID, MsgID: msgID, Data: payload}
	firstAck := PUBACK
	if qos == QoS2 {
		firstAck = PUBREC
	}
	key := ackKey{firstAck, msgID}
	ch := c.await(key)
	if err := c.send(pub); err != nil {
		c.cancelAwait(key)
		<-c.window
		done <- err
		return done
	}
	go func() {
		done <- c.finishPublish(pub, key, ch, msgID)
		<-c.window
	}()
	return done
}

// finishPublish completes an in-flight handshake whose initial PUBLISH is
// already on the wire.
func (c *Client) finishPublish(pub *Publish, key ackKey, ch chan Packet, msgID uint16) error {
	ack, err := c.awaitAck(pub, key, ch, func() { pub.Flags.DUP = true })
	if err != nil {
		return err
	}
	if pub.Flags.QoS == QoS1 {
		if pa := ack.(*Puback); pa.ReturnCode != Accepted {
			return fmt.Errorf("mqttsn: publish rejected: %s", pa.ReturnCode)
		}
		return nil
	}
	rel := &Pubrel{msgIDOnly{MsgID: msgID}}
	if _, err := c.request(rel, ackKey{PUBCOMP, msgID}, nil); err != nil {
		return err
	}
	return nil
}

// Subscribe registers handler for a topic name or wildcard filter. The
// handler runs on the client's read goroutine; long work should be handed
// off to another goroutine.
func (c *Client) Subscribe(topic string, qos QoS, handler MessageHandler) error {
	msgID := c.nextMsgID()
	c.mu.Lock()
	c.pendingSubs[msgID] = pendingSub{topic: topic, handler: handler}
	c.mu.Unlock()
	sub := &Subscribe{Flags: Flags{QoS: qos}, MsgID: msgID, TopicName: topic}
	ack, err := c.request(sub, ackKey{SUBACK, msgID}, func() { sub.Flags.DUP = true })
	c.mu.Lock()
	delete(c.pendingSubs, msgID)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	sa := ack.(*Suback)
	if sa.ReturnCode != Accepted {
		return fmt.Errorf("mqttsn: subscribe %q rejected: %s", topic, sa.ReturnCode)
	}
	return nil
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(topic string) error {
	msgID := c.nextMsgID()
	unsub := &Unsubscribe{MsgID: msgID, TopicName: topic}
	if _, err := c.request(unsub, ackKey{UNSUBACK, msgID}, nil); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.subs, topic)
	c.mu.Unlock()
	return nil
}

// Ping sends a PINGREQ and waits for the PINGRESP.
func (c *Client) Ping() error {
	_, err := c.request(&Pingreq{}, ackKey{PINGRESP, 0}, nil)
	return err
}

// Disconnect cleanly ends the session and releases the client.
func (c *Client) Disconnect() error {
	c.mu.Lock()
	wasConnected := c.connected
	c.connected = false
	c.mu.Unlock()
	var err error
	if wasConnected {
		err = c.send(&Disconnect{})
	}
	c.Close()
	return err
}

// Done returns a channel closed when the client is closed (locally or via
// teardown after a fatal socket error).
func (c *Client) Done() <-chan struct{} { return c.done }

// sessionDown fires the OnDisconnect hook exactly once, unless the client
// is being closed locally.
func (c *Client) sessionDown(err error) {
	c.mu.Lock()
	if c.closed || c.downNotified {
		c.mu.Unlock()
		return
	}
	c.downNotified = true
	cb := c.cfg.OnDisconnect
	c.mu.Unlock()
	if cb != nil {
		go cb(err)
	}
}

// WithContext runs op — a sequence of blocking protocol exchanges on c
// (Connect, RegisterTopic, Subscribe, ...) — and bounds it by ctx: if the
// context expires first, the client is force-closed (which fails the
// in-flight exchange with ErrClosed) and the context error is returned.
// With a background context, op runs inline with no extra goroutine.
func (c *Client) WithContext(ctx context.Context, op func() error) error {
	if ctx == nil || ctx.Done() == nil {
		return op()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- op() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		c.Close()
		<-errc // the closed client fails the exchange promptly
		return ctx.Err()
	}
}

// Close releases resources without the protocol goodbye.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.connected = false
	c.mu.Unlock()
	close(c.done)
	if c.ownConn {
		c.conn.Close()
	} else {
		// Unblock the read loop promptly.
		c.conn.SetReadDeadline(time.Now())
	}
	c.wg.Wait()
}

func (c *Client) keepaliveLoop() {
	defer c.wg.Done()
	interval := c.cfg.KeepAlive / 2
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
			c.mu.Lock()
			idle := time.Since(c.lastSend)
			silent := time.Since(c.lastRecv)
			connected := c.connected
			c.mu.Unlock()
			if !connected {
				continue
			}
			// A gateway that died without a goodbye is pure silence: a
			// crashed node's endpoint swallows datagrams, so sends keep
			// "succeeding" while nothing ever comes back. Declare the
			// session down after the same 1.5x keepalive grace the broker
			// applies to clients, so reconnect loops (translator session
			// supervisors, cluster links) fail over on node death instead
			// of waiting for the next publish to exhaust its retries.
			if silent > c.cfg.KeepAlive+c.cfg.KeepAlive/2 {
				c.sessionDown(fmt.Errorf("%w: gateway silent for %v", ErrTimeout, silent.Round(time.Millisecond)))
				continue
			}
			// Ping when idle (classic keepalive) but also when we are
			// sending without hearing back — a QoS 0-only stream (e.g.
			// cluster heartbeats) refreshes lastSend forever and would
			// otherwise suppress the ping that liveness depends on.
			if idle >= interval || silent >= interval {
				// Fire-and-forget ping; response handled by readLoop.
				_ = c.send(&Pingreq{})
			}
		}
	}
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	for {
		select {
		case <-c.done:
			return
		default:
		}
		// No per-read deadline: Close() either closes the socket or sets
		// an immediate deadline, both of which unblock ReadFrom.
		n, addr, err := c.conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-c.done:
					return
				default:
					continue
				}
			}
			c.sessionDown(fmt.Errorf("mqttsn: read: %w", err))
			return
		}
		if addr.String() != c.gwAddr.String() {
			continue // not our gateway
		}
		pkt, err := Unmarshal(buf[:n])
		if err != nil {
			continue // drop malformed datagrams
		}
		c.mu.Lock()
		c.stats.PacketsReceived++
		c.stats.BytesReceived += uint64(n)
		c.lastRecv = time.Now()
		c.mu.Unlock()
		c.dispatch(pkt)
	}
}

// deliverAck hands pkt to the waiter registered under key, if any.
func (c *Client) deliverAck(key ackKey, pkt Packet) {
	c.mu.Lock()
	ch, ok := c.waiters[key]
	if ok {
		delete(c.waiters, key)
	}
	c.mu.Unlock()
	if ok {
		select {
		case ch <- pkt:
		default:
		}
	}
}

func (c *Client) dispatch(pkt Packet) {
	switch p := pkt.(type) {
	case *Connack:
		c.deliverAck(ackKey{CONNACK, 0}, p)
	case *Regack:
		// Install the topic mapping before waking the caller so an inbound
		// PUBLISH racing behind the REGACK resolves its topic name.
		c.mu.Lock()
		if topic, ok := c.pendingRegs[p.MsgID]; ok && p.ReturnCode == Accepted {
			c.topicIDs[topic] = p.TopicID
			c.topicName[p.TopicID] = topic
		}
		c.mu.Unlock()
		c.deliverAck(ackKey{REGACK, p.MsgID}, p)
	case *Suback:
		// Install the handler before waking the caller so a retained
		// message delivered right behind the SUBACK is not dropped.
		c.mu.Lock()
		if ps, ok := c.pendingSubs[p.MsgID]; ok && p.ReturnCode == Accepted {
			c.subs[ps.topic] = ps.handler
			if p.TopicID != 0 {
				c.topicIDs[ps.topic] = p.TopicID
				c.topicName[p.TopicID] = ps.topic
			}
		}
		c.mu.Unlock()
		c.deliverAck(ackKey{SUBACK, p.MsgID}, p)
	case *Unsuback:
		c.deliverAck(ackKey{UNSUBACK, p.MsgID}, p)
	case *Puback:
		c.deliverAck(ackKey{PUBACK, p.MsgID}, p)
	case *Pubrec:
		c.deliverAck(ackKey{PUBREC, p.MsgID}, p)
	case *Pubcomp:
		c.deliverAck(ackKey{PUBCOMP, p.MsgID}, p)
	case *Pingresp:
		c.deliverAck(ackKey{PINGRESP, 0}, p)
	case *WillTopicReq:
		if w := c.cfg.Will; w != nil {
			_ = c.send(&WillTopic{Flags: Flags{QoS: w.QoS, Retain: w.Retain}, Topic: w.Topic})
		}
	case *WillMsgReq:
		if w := c.cfg.Will; w != nil {
			_ = c.send(&WillMsg{Msg: w.Payload})
		}
	case *Register:
		// Broker informs us of a topic id (wildcard subscription match).
		c.mu.Lock()
		c.topicName[p.TopicID] = p.TopicName
		c.topicIDs[p.TopicName] = p.TopicID
		c.mu.Unlock()
		_ = c.send(&Regack{TopicID: p.TopicID, MsgID: p.MsgID, ReturnCode: Accepted})
	case *Publish:
		c.handleInboundPublish(p)
	case *Pubrel:
		c.mu.Lock()
		payload, ok := c.inbound2[p.MsgID]
		delete(c.inbound2, p.MsgID)
		var topic string
		if ok {
			topic = c.topicName[u16FromPayload(payload)]
		}
		c.mu.Unlock()
		// Deliver BEFORE acknowledging the release, like the QoS 1
		// deliver-before-PUBACK path: once the broker sees our PUBCOMP
		// the frame has passed through every handler. The cluster's
		// partition drain counts broker-side outbound state, so an
		// acked-but-undelivered frame would let a migration cut ahead
		// of it and break per-topic ordering.
		if ok {
			c.deliver(topic, payload[2:])
		}
		_ = c.send(&Pubcomp{msgIDOnly{MsgID: p.MsgID}})
	case *Disconnect:
		c.mu.Lock()
		c.connected = false
		c.mu.Unlock()
		c.sessionDown(fmt.Errorf("mqttsn: broker disconnected the session"))
	}
}

// inbound QoS2 storage packs the topic id in front of the payload so the
// topic survives until PUBREL.
func packInbound(topicID uint16, data []byte) []byte {
	out := make([]byte, 2+len(data))
	out[0], out[1] = byte(topicID>>8), byte(topicID)
	copy(out[2:], data)
	return out
}

func u16FromPayload(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }

func (c *Client) handleInboundPublish(p *Publish) {
	c.mu.Lock()
	topic := c.topicName[p.TopicID]
	c.mu.Unlock()
	switch p.Flags.QoS {
	case QoS0, QoSMinusOne:
		c.deliver(topic, p.Data)
	case QoS1:
		c.deliver(topic, p.Data)
		_ = c.send(&Puback{TopicID: p.TopicID, MsgID: p.MsgID, ReturnCode: Accepted})
	case QoS2:
		c.mu.Lock()
		if _, dup := c.inbound2[p.MsgID]; !dup {
			c.inbound2[p.MsgID] = packInbound(p.TopicID, p.Data)
		}
		c.mu.Unlock()
		_ = c.send(&Pubrec{msgIDOnly{MsgID: p.MsgID}})
	}
}

// deliver routes an inbound message to the matching subscription handlers.
func (c *Client) deliver(topic string, payload []byte) {
	c.mu.Lock()
	var handlers []MessageHandler
	for filter, h := range c.subs {
		if TopicMatches(filter, topic) {
			handlers = append(handlers, h)
		}
	}
	c.stats.MessagesHandled++
	c.mu.Unlock()
	for _, h := range handlers {
		h(topic, payload)
	}
}
