// Package mqttsn implements the MQTT-SN (MQTT for Sensor Networks)
// protocol version 1.2 (Stanford-Clark & Truong), the application-layer
// protocol ProvLight uses over UDP (paper Table VI: "MQTT-SN, QoS 2:
// exactly once").
//
// The package provides packet-level encoding/decoding for the full message
// set and a gateway client with QoS -1/0/1/2 publish flows, topic
// registration, subscriptions, keepalive, and last-will support. The broker
// (gateway) side lives in the internal/broker package.
package mqttsn

import (
	"encoding/binary"
	"fmt"
)

// MsgType identifies an MQTT-SN message (spec §5.2.1).
type MsgType byte

// MQTT-SN message types.
const (
	ADVERTISE     MsgType = 0x00
	SEARCHGW      MsgType = 0x01
	GWINFO        MsgType = 0x02
	CONNECT       MsgType = 0x04
	CONNACK       MsgType = 0x05
	WILLTOPICREQ  MsgType = 0x06
	WILLTOPIC     MsgType = 0x07
	WILLMSGREQ    MsgType = 0x08
	WILLMSG       MsgType = 0x09
	REGISTER      MsgType = 0x0A
	REGACK        MsgType = 0x0B
	PUBLISH       MsgType = 0x0C
	PUBACK        MsgType = 0x0D
	PUBCOMP       MsgType = 0x0E
	PUBREC        MsgType = 0x0F
	PUBREL        MsgType = 0x10
	SUBSCRIBE     MsgType = 0x12
	SUBACK        MsgType = 0x13
	UNSUBSCRIBE   MsgType = 0x14
	UNSUBACK      MsgType = 0x15
	PINGREQ       MsgType = 0x16
	PINGRESP      MsgType = 0x17
	DISCONNECT    MsgType = 0x18
	WILLTOPICUPD  MsgType = 0x1A
	WILLTOPICRESP MsgType = 0x1B
	WILLMSGUPD    MsgType = 0x1C
	WILLMSGRESP   MsgType = 0x1D
)

var msgTypeNames = map[MsgType]string{
	ADVERTISE: "ADVERTISE", SEARCHGW: "SEARCHGW", GWINFO: "GWINFO",
	CONNECT: "CONNECT", CONNACK: "CONNACK",
	WILLTOPICREQ: "WILLTOPICREQ", WILLTOPIC: "WILLTOPIC",
	WILLMSGREQ: "WILLMSGREQ", WILLMSG: "WILLMSG",
	REGISTER: "REGISTER", REGACK: "REGACK",
	PUBLISH: "PUBLISH", PUBACK: "PUBACK",
	PUBCOMP: "PUBCOMP", PUBREC: "PUBREC", PUBREL: "PUBREL",
	SUBSCRIBE: "SUBSCRIBE", SUBACK: "SUBACK",
	UNSUBSCRIBE: "UNSUBSCRIBE", UNSUBACK: "UNSUBACK",
	PINGREQ: "PINGREQ", PINGRESP: "PINGRESP", DISCONNECT: "DISCONNECT",
	WILLTOPICUPD: "WILLTOPICUPD", WILLTOPICRESP: "WILLTOPICRESP",
	WILLMSGUPD: "WILLMSGUPD", WILLMSGRESP: "WILLMSGRESP",
}

// String returns the spec name of the message type.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(0x%02x)", byte(t))
}

// QoS is an MQTT-SN quality-of-service level. Level -1 ("QoS minus one")
// allows publishing without a connection.
type QoS int8

// QoS levels.
const (
	QoSMinusOne QoS = -1 // fire and forget, no connection state
	QoS0        QoS = 0  // at most once
	QoS1        QoS = 1  // at least once
	QoS2        QoS = 2  // exactly once (ProvLight's default, Table VI)
)

// TopicIDType says how the topic field of PUBLISH/SUBSCRIBE is encoded.
type TopicIDType byte

// Topic id types (spec §5.2.4, flag bits 0-1).
const (
	TopicNormal     TopicIDType = 0x00 // registered 16-bit topic id
	TopicPredefined TopicIDType = 0x01
	TopicShortName  TopicIDType = 0x02 // two-character topic name
)

// ReturnCode is carried by *ACK messages.
type ReturnCode byte

// Return codes (spec §5.2.6).
const (
	Accepted             ReturnCode = 0x00
	RejectedCongestion   ReturnCode = 0x01
	RejectedInvalidID    ReturnCode = 0x02
	RejectedNotSupported ReturnCode = 0x03
)

// String returns a human-readable return code.
func (rc ReturnCode) String() string {
	switch rc {
	case Accepted:
		return "accepted"
	case RejectedCongestion:
		return "rejected: congestion"
	case RejectedInvalidID:
		return "rejected: invalid topic ID"
	case RejectedNotSupported:
		return "rejected: not supported"
	default:
		return fmt.Sprintf("ReturnCode(0x%02x)", byte(rc))
	}
}

// Flags is the MQTT-SN flags octet (spec §5.2.4).
type Flags struct {
	DUP          bool
	QoS          QoS
	Retain       bool
	Will         bool
	CleanSession bool
	TopicIDType  TopicIDType
}

// Encode packs the flags into their octet form.
func (f Flags) Encode() byte {
	var b byte
	if f.DUP {
		b |= 0x80
	}
	switch f.QoS {
	case QoS1:
		b |= 0x20
	case QoS2:
		b |= 0x40
	case QoSMinusOne:
		b |= 0x60
	}
	if f.Retain {
		b |= 0x10
	}
	if f.Will {
		b |= 0x08
	}
	if f.CleanSession {
		b |= 0x04
	}
	b |= byte(f.TopicIDType) & 0x03
	return b
}

// DecodeFlags unpacks a flags octet.
func DecodeFlags(b byte) Flags {
	f := Flags{
		DUP:          b&0x80 != 0,
		Retain:       b&0x10 != 0,
		Will:         b&0x08 != 0,
		CleanSession: b&0x04 != 0,
		TopicIDType:  TopicIDType(b & 0x03),
	}
	switch b & 0x60 {
	case 0x00:
		f.QoS = QoS0
	case 0x20:
		f.QoS = QoS1
	case 0x40:
		f.QoS = QoS2
	case 0x60:
		f.QoS = QoSMinusOne
	}
	return f
}

// Packet is an MQTT-SN message.
type Packet interface {
	// Type returns the message type octet.
	Type() MsgType
	// body appends the variable part (after length and msgtype) to b.
	body(b []byte) []byte
	// parse fills the packet from the variable part.
	parse(b []byte) error
}

// Marshal encodes a packet with the proper 1- or 3-byte length header.
func Marshal(p Packet) []byte {
	return AppendPacket(make([]byte, 0, 64), p)
}

// AppendPacket appends the wire encoding of p to dst and returns the
// extended slice. It lets hot paths (client send, broker route) reuse a
// pooled buffer instead of allocating per packet.
func AppendPacket(dst []byte, p Packet) []byte {
	// Reserve the worst-case 4-byte header (extended length + msgtype),
	// build the body in place, then fix the header up. Small packets pay a
	// <=253-byte shift; large ones (the payload-carrying PUBLISHes) use the
	// extended header and need no copy at all.
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = p.body(dst)
	bodyLen := len(dst) - start - 4
	n := bodyLen + 2 // 1-byte length + msgtype
	if n+2 <= 255 {  // fits in a 1-byte length even after no extension
		dst[start] = byte(n)
		dst[start+1] = byte(p.Type())
		copy(dst[start+2:], dst[start+4:])
		return dst[:start+2+bodyLen]
	}
	dst[start] = 0x01
	dst[start+1] = byte((n + 2) >> 8)
	dst[start+2] = byte(n + 2)
	dst[start+3] = byte(p.Type())
	return dst
}

// Unmarshal decodes one MQTT-SN packet from a datagram.
func Unmarshal(data []byte) (Packet, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("mqttsn: datagram too short (%d bytes)", len(data))
	}
	var length int
	var rest []byte
	if data[0] == 0x01 {
		if len(data) < 4 {
			return nil, fmt.Errorf("mqttsn: truncated extended length")
		}
		length = int(binary.BigEndian.Uint16(data[1:3]))
		if length != len(data) {
			return nil, fmt.Errorf("mqttsn: length %d != datagram %d", length, len(data))
		}
		rest = data[3:]
	} else {
		length = int(data[0])
		if length != len(data) {
			return nil, fmt.Errorf("mqttsn: length %d != datagram %d", length, len(data))
		}
		rest = data[1:]
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("mqttsn: missing message type")
	}
	t := MsgType(rest[0])
	body := rest[1:]
	var p Packet
	switch t {
	case ADVERTISE:
		p = &Advertise{}
	case SEARCHGW:
		p = &SearchGw{}
	case GWINFO:
		p = &GwInfo{}
	case CONNECT:
		p = &Connect{}
	case CONNACK:
		p = &Connack{}
	case WILLTOPICREQ:
		p = &WillTopicReq{}
	case WILLTOPIC:
		p = &WillTopic{}
	case WILLMSGREQ:
		p = &WillMsgReq{}
	case WILLMSG:
		p = &WillMsg{}
	case REGISTER:
		p = &Register{}
	case REGACK:
		p = &Regack{}
	case PUBLISH:
		p = &Publish{}
	case PUBACK:
		p = &Puback{}
	case PUBREC:
		p = &Pubrec{}
	case PUBREL:
		p = &Pubrel{}
	case PUBCOMP:
		p = &Pubcomp{}
	case SUBSCRIBE:
		p = &Subscribe{}
	case SUBACK:
		p = &Suback{}
	case UNSUBSCRIBE:
		p = &Unsubscribe{}
	case UNSUBACK:
		p = &Unsuback{}
	case PINGREQ:
		p = &Pingreq{}
	case PINGRESP:
		p = &Pingresp{}
	case DISCONNECT:
		p = &Disconnect{}
	default:
		return nil, fmt.Errorf("mqttsn: unsupported message type %s", t)
	}
	if err := p.parse(body); err != nil {
		return nil, fmt.Errorf("mqttsn: parse %s: %w", t, err)
	}
	return p, nil
}

func u16(b []byte) uint16 { return binary.BigEndian.Uint16(b) }

func needLen(b []byte, n int) error {
	if len(b) < n {
		return fmt.Errorf("body too short: %d < %d", len(b), n)
	}
	return nil
}

// Advertise is broadcast periodically by gateways.
type Advertise struct {
	GwID     byte
	Duration uint16
}

// Type implements Packet.
func (*Advertise) Type() MsgType { return ADVERTISE }
func (p *Advertise) body(b []byte) []byte {
	b = append(b, p.GwID)
	return binary.BigEndian.AppendUint16(b, p.Duration)
}
func (p *Advertise) parse(b []byte) error {
	if err := needLen(b, 3); err != nil {
		return err
	}
	p.GwID, p.Duration = b[0], u16(b[1:])
	return nil
}

// SearchGw searches for gateways within a radius.
type SearchGw struct{ Radius byte }

// Type implements Packet.
func (*SearchGw) Type() MsgType          { return SEARCHGW }
func (p *SearchGw) body(b []byte) []byte { return append(b, p.Radius) }
func (p *SearchGw) parse(b []byte) error {
	if err := needLen(b, 1); err != nil {
		return err
	}
	p.Radius = b[0]
	return nil
}

// GwInfo answers SearchGw.
type GwInfo struct {
	GwID  byte
	GwAdd []byte
}

// Type implements Packet.
func (*GwInfo) Type() MsgType { return GWINFO }
func (p *GwInfo) body(b []byte) []byte {
	b = append(b, p.GwID)
	return append(b, p.GwAdd...)
}
func (p *GwInfo) parse(b []byte) error {
	if err := needLen(b, 1); err != nil {
		return err
	}
	p.GwID = b[0]
	if len(b) > 1 {
		p.GwAdd = append([]byte(nil), b[1:]...)
	}
	return nil
}

// Connect opens a session with a gateway.
type Connect struct {
	Flags    Flags
	Duration uint16 // keepalive in seconds
	ClientID string
}

// Type implements Packet.
func (*Connect) Type() MsgType { return CONNECT }
func (p *Connect) body(b []byte) []byte {
	b = append(b, p.Flags.Encode(), 0x01) // ProtocolId = 0x01
	b = binary.BigEndian.AppendUint16(b, p.Duration)
	return append(b, p.ClientID...)
}
func (p *Connect) parse(b []byte) error {
	if err := needLen(b, 4); err != nil {
		return err
	}
	p.Flags = DecodeFlags(b[0])
	if b[1] != 0x01 {
		return fmt.Errorf("unknown protocol id 0x%02x", b[1])
	}
	p.Duration = u16(b[2:])
	p.ClientID = string(b[4:])
	if p.ClientID == "" {
		return fmt.Errorf("empty client id")
	}
	return nil
}

// Connack acknowledges Connect.
type Connack struct{ ReturnCode ReturnCode }

// Type implements Packet.
func (*Connack) Type() MsgType          { return CONNACK }
func (p *Connack) body(b []byte) []byte { return append(b, byte(p.ReturnCode)) }
func (p *Connack) parse(b []byte) error {
	if err := needLen(b, 1); err != nil {
		return err
	}
	p.ReturnCode = ReturnCode(b[0])
	return nil
}

// WillTopicReq asks the client for its will topic during connect.
type WillTopicReq struct{}

// Type implements Packet.
func (*WillTopicReq) Type() MsgType          { return WILLTOPICREQ }
func (p *WillTopicReq) body(b []byte) []byte { return b }
func (p *WillTopicReq) parse([]byte) error   { return nil }

// WillTopic carries the will topic.
type WillTopic struct {
	Flags Flags
	Topic string
}

// Type implements Packet.
func (*WillTopic) Type() MsgType { return WILLTOPIC }
func (p *WillTopic) body(b []byte) []byte {
	if p.Topic == "" {
		return b // empty WILLTOPIC deletes the will
	}
	b = append(b, p.Flags.Encode())
	return append(b, p.Topic...)
}
func (p *WillTopic) parse(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	p.Flags = DecodeFlags(b[0])
	p.Topic = string(b[1:])
	return nil
}

// WillMsgReq asks the client for its will message during connect.
type WillMsgReq struct{}

// Type implements Packet.
func (*WillMsgReq) Type() MsgType          { return WILLMSGREQ }
func (p *WillMsgReq) body(b []byte) []byte { return b }
func (p *WillMsgReq) parse([]byte) error   { return nil }

// WillMsg carries the will payload.
type WillMsg struct{ Msg []byte }

// Type implements Packet.
func (*WillMsg) Type() MsgType          { return WILLMSG }
func (p *WillMsg) body(b []byte) []byte { return append(b, p.Msg...) }
func (p *WillMsg) parse(b []byte) error {
	p.Msg = append([]byte(nil), b...)
	return nil
}

// Register maps a topic name to a 16-bit topic id.
type Register struct {
	TopicID   uint16
	MsgID     uint16
	TopicName string
}

// Type implements Packet.
func (*Register) Type() MsgType { return REGISTER }
func (p *Register) body(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, p.TopicID)
	b = binary.BigEndian.AppendUint16(b, p.MsgID)
	return append(b, p.TopicName...)
}
func (p *Register) parse(b []byte) error {
	if err := needLen(b, 5); err != nil {
		return err
	}
	p.TopicID, p.MsgID, p.TopicName = u16(b), u16(b[2:]), string(b[4:])
	return nil
}

// Regack acknowledges Register.
type Regack struct {
	TopicID    uint16
	MsgID      uint16
	ReturnCode ReturnCode
}

// Type implements Packet.
func (*Regack) Type() MsgType { return REGACK }
func (p *Regack) body(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, p.TopicID)
	b = binary.BigEndian.AppendUint16(b, p.MsgID)
	return append(b, byte(p.ReturnCode))
}
func (p *Regack) parse(b []byte) error {
	if err := needLen(b, 5); err != nil {
		return err
	}
	p.TopicID, p.MsgID, p.ReturnCode = u16(b), u16(b[2:]), ReturnCode(b[4])
	return nil
}

// Publish carries application payload for a topic.
type Publish struct {
	Flags   Flags
	TopicID uint16
	MsgID   uint16
	Data    []byte
}

// Type implements Packet.
func (*Publish) Type() MsgType { return PUBLISH }
func (p *Publish) body(b []byte) []byte {
	b = append(b, p.Flags.Encode())
	b = binary.BigEndian.AppendUint16(b, p.TopicID)
	b = binary.BigEndian.AppendUint16(b, p.MsgID)
	return append(b, p.Data...)
}
func (p *Publish) parse(b []byte) error {
	if err := needLen(b, 5); err != nil {
		return err
	}
	p.Flags = DecodeFlags(b[0])
	p.TopicID, p.MsgID = u16(b[1:]), u16(b[3:])
	p.Data = append([]byte(nil), b[5:]...)
	return nil
}

// Puback acknowledges a QoS 1 Publish (or rejects any Publish).
type Puback struct {
	TopicID    uint16
	MsgID      uint16
	ReturnCode ReturnCode
}

// Type implements Packet.
func (*Puback) Type() MsgType { return PUBACK }
func (p *Puback) body(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, p.TopicID)
	b = binary.BigEndian.AppendUint16(b, p.MsgID)
	return append(b, byte(p.ReturnCode))
}
func (p *Puback) parse(b []byte) error {
	if err := needLen(b, 5); err != nil {
		return err
	}
	p.TopicID, p.MsgID, p.ReturnCode = u16(b), u16(b[2:]), ReturnCode(b[4])
	return nil
}

// msgIDOnly is shared by PUBREC/PUBREL/PUBCOMP/UNSUBACK bodies.
type msgIDOnly struct{ MsgID uint16 }

func (p *msgIDOnly) body(b []byte) []byte { return binary.BigEndian.AppendUint16(b, p.MsgID) }
func (p *msgIDOnly) parse(b []byte) error {
	if err := needLen(b, 2); err != nil {
		return err
	}
	p.MsgID = u16(b)
	return nil
}

// Pubrec is the first acknowledgement of the QoS 2 flow.
type Pubrec struct{ msgIDOnly }

// Type implements Packet.
func (*Pubrec) Type() MsgType { return PUBREC }

// Pubrel releases a QoS 2 message for delivery.
type Pubrel struct{ msgIDOnly }

// Type implements Packet.
func (*Pubrel) Type() MsgType { return PUBREL }

// Pubcomp completes the QoS 2 flow.
type Pubcomp struct{ msgIDOnly }

// Type implements Packet.
func (*Pubcomp) Type() MsgType { return PUBCOMP }

// Subscribe subscribes to a topic name (possibly with wildcards), a
// registered topic id, or a short topic name.
type Subscribe struct {
	Flags     Flags
	MsgID     uint16
	TopicName string // used when Flags.TopicIDType == TopicNormal or TopicShortName
	TopicID   uint16 // used when Flags.TopicIDType == TopicPredefined
}

// Type implements Packet.
func (*Subscribe) Type() MsgType { return SUBSCRIBE }
func (p *Subscribe) body(b []byte) []byte {
	b = append(b, p.Flags.Encode())
	b = binary.BigEndian.AppendUint16(b, p.MsgID)
	if p.Flags.TopicIDType == TopicPredefined {
		return binary.BigEndian.AppendUint16(b, p.TopicID)
	}
	return append(b, p.TopicName...)
}
func (p *Subscribe) parse(b []byte) error {
	if err := needLen(b, 4); err != nil {
		return err
	}
	p.Flags = DecodeFlags(b[0])
	p.MsgID = u16(b[1:])
	if p.Flags.TopicIDType == TopicPredefined {
		if err := needLen(b, 5); err != nil {
			return err
		}
		p.TopicID = u16(b[3:])
		return nil
	}
	p.TopicName = string(b[3:])
	return nil
}

// Suback acknowledges Subscribe, assigning a topic id for exact topics.
type Suback struct {
	Flags      Flags
	TopicID    uint16
	MsgID      uint16
	ReturnCode ReturnCode
}

// Type implements Packet.
func (*Suback) Type() MsgType { return SUBACK }
func (p *Suback) body(b []byte) []byte {
	b = append(b, p.Flags.Encode())
	b = binary.BigEndian.AppendUint16(b, p.TopicID)
	b = binary.BigEndian.AppendUint16(b, p.MsgID)
	return append(b, byte(p.ReturnCode))
}
func (p *Suback) parse(b []byte) error {
	if err := needLen(b, 6); err != nil {
		return err
	}
	p.Flags = DecodeFlags(b[0])
	p.TopicID, p.MsgID, p.ReturnCode = u16(b[1:]), u16(b[3:]), ReturnCode(b[5])
	return nil
}

// Unsubscribe removes a subscription.
type Unsubscribe struct {
	Flags     Flags
	MsgID     uint16
	TopicName string
	TopicID   uint16
}

// Type implements Packet.
func (*Unsubscribe) Type() MsgType { return UNSUBSCRIBE }
func (p *Unsubscribe) body(b []byte) []byte {
	b = append(b, p.Flags.Encode())
	b = binary.BigEndian.AppendUint16(b, p.MsgID)
	if p.Flags.TopicIDType == TopicPredefined {
		return binary.BigEndian.AppendUint16(b, p.TopicID)
	}
	return append(b, p.TopicName...)
}
func (p *Unsubscribe) parse(b []byte) error {
	if err := needLen(b, 4); err != nil {
		return err
	}
	p.Flags = DecodeFlags(b[0])
	p.MsgID = u16(b[1:])
	if p.Flags.TopicIDType == TopicPredefined {
		if err := needLen(b, 5); err != nil {
			return err
		}
		p.TopicID = u16(b[3:])
		return nil
	}
	p.TopicName = string(b[3:])
	return nil
}

// Unsuback acknowledges Unsubscribe.
type Unsuback struct{ msgIDOnly }

// Type implements Packet.
func (*Unsuback) Type() MsgType { return UNSUBACK }

// Pingreq is the keepalive probe; sleeping clients include their id.
type Pingreq struct{ ClientID string }

// Type implements Packet.
func (*Pingreq) Type() MsgType          { return PINGREQ }
func (p *Pingreq) body(b []byte) []byte { return append(b, p.ClientID...) }
func (p *Pingreq) parse(b []byte) error {
	p.ClientID = string(b)
	return nil
}

// Pingresp answers Pingreq.
type Pingresp struct{}

// Type implements Packet.
func (*Pingresp) Type() MsgType          { return PINGRESP }
func (p *Pingresp) body(b []byte) []byte { return b }
func (p *Pingresp) parse([]byte) error   { return nil }

// Disconnect closes a session; a duration puts the client to sleep.
type Disconnect struct {
	Duration    uint16
	HasDuration bool
}

// Type implements Packet.
func (*Disconnect) Type() MsgType { return DISCONNECT }
func (p *Disconnect) body(b []byte) []byte {
	if p.HasDuration {
		return binary.BigEndian.AppendUint16(b, p.Duration)
	}
	return b
}
func (p *Disconnect) parse(b []byte) error {
	if len(b) >= 2 {
		p.Duration = u16(b)
		p.HasDuration = true
	}
	return nil
}
