package mqttsn

import "testing"

func TestParseSharedFilter(t *testing.T) {
	cases := []struct {
		in     string
		group  string
		filter string
		ok     bool
	}{
		{"$share/g1/provlight/+/records", "g1", "provlight/+/records", true},
		{"$share/translators/#", "translators", "#", true},
		{"$share/g/a", "g", "a", true},
		{"provlight/+/records", "", "", false}, // not shared
		{"$share/", "", "", false},             // no group
		{"$share//a/b", "", "", false},         // empty group
		{"$share/g/", "", "", false},           // empty inner filter
		{"$share/g", "", "", false},            // no inner filter at all
		{"$share/g+/a", "", "", false},         // wildcard in group
		{"$share/#/a", "", "", false},
	}
	for _, c := range cases {
		group, filter, ok := ParseSharedFilter(c.in)
		if group != c.group || filter != c.filter || ok != c.ok {
			t.Errorf("ParseSharedFilter(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, group, filter, ok, c.group, c.filter, c.ok)
		}
	}
}

func TestSharedFilterValidityAndMatching(t *testing.T) {
	for _, f := range []string{"$share/g/provlight/+/records", "$share/g/#", "$share/g/a/b"} {
		if !ValidFilter(f) {
			t.Errorf("ValidFilter(%q) = false, want true", f)
		}
	}
	for _, f := range []string{"$share/g/", "$share//x", "$share/g/a/#/b", "$share/g/a+b"} {
		if ValidFilter(f) {
			t.Errorf("ValidFilter(%q) = true, want false", f)
		}
	}
	if !TopicMatches("$share/g/provlight/+/records", "provlight/dev1/records") {
		t.Error("shared filter should match what its inner filter matches")
	}
	if TopicMatches("$share/g/provlight/+/records", "other/dev1/records") {
		t.Error("shared filter matched a non-matching topic")
	}
}
