package mqttsn

import (
	"strings"
	"testing"
)

// FuzzParseSharedFilter checks the shared-subscription filter parser on
// arbitrary strings: it must never panic, and a successful parse must be
// a lossless, well-formed split of the input.
func FuzzParseSharedFilter(f *testing.F) {
	f.Add("$share/g/provlight/+/records")
	f.Add("$share/translators/a/b/#")
	f.Add("$share//missing-group")
	f.Add("$share/g/")
	f.Add("$share/g+h/t")
	f.Add("no-share-prefix")
	f.Add("$share/g")
	f.Add("")

	f.Fuzz(func(t *testing.T, filter string) {
		group, inner, ok := ParseSharedFilter(filter)
		if !ok {
			if group != "" || inner != "" {
				t.Fatalf("failed parse of %q returned non-empty parts (%q, %q)", filter, group, inner)
			}
			return
		}
		if group == "" || inner == "" {
			t.Fatalf("parse of %q accepted an empty part (%q, %q)", filter, group, inner)
		}
		if strings.ContainsAny(group, "+#") {
			t.Fatalf("parse of %q accepted wildcard group %q", filter, group)
		}
		if re := SharePrefix + group + "/" + inner; re != filter {
			t.Fatalf("parse of %q is lossy: reassembles to %q", filter, re)
		}
		// ValidFilter must agree with the parser on the shared syntax.
		if ValidFilter(inner) != ValidFilter(filter) {
			t.Fatalf("ValidFilter disagrees for %q: inner %v, full %v",
				filter, ValidFilter(inner), ValidFilter(filter))
		}
	})
}

// FuzzTopicMatches checks wildcard matching on arbitrary filter/topic
// pairs: no panic, and the algebraic properties routing relies on —
// exact names match themselves, '#' matches everything, and wrapping a
// filter in a consumer-group prefix never changes what it matches
// (share routing picks the receiver, not the match).
func FuzzTopicMatches(f *testing.F) {
	f.Add("provlight/+/records", "provlight/dev-1/records")
	f.Add("a/b/#", "a/b/c/d")
	f.Add("#", "anything/at/all")
	f.Add("+/+", "a/b")
	f.Add("a/+/c", "a/b/x")
	f.Add("$share/g/provlight/+/records", "provlight/dev-1/records")
	f.Add("", "")
	f.Add("a/#/b", "a/x/b")

	f.Fuzz(func(t *testing.T, filter, topic string) {
		got := TopicMatches(filter, topic)
		if filter == topic && !got {
			t.Fatalf("filter %q does not match itself", filter)
		}
		if filter == "#" && !got {
			t.Fatalf("'#' does not match %q", topic)
		}
		if filter != "" {
			shared := SharePrefix + "g/" + filter
			if TopicMatches(shared, topic) != got {
				t.Fatalf("share wrapping changes match: %q vs %q on %q", filter, shared, topic)
			}
		}
	})
}
