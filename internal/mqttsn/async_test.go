package mqttsn_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/broker"
	"github.com/provlight/provlight/internal/mqttsn"
	"github.com/provlight/provlight/internal/netem"
)

// startBroker returns a broker with fast retransmission for test pace.
func startBroker(t *testing.T) *broker.Broker {
	t.Helper()
	b, err := broker.New(broker.Config{Addr: "127.0.0.1:0", RetryInterval: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func connectClient(t *testing.T, cfg mqttsn.ClientConfig) *mqttsn.Client {
	t.Helper()
	if cfg.RetryInterval == 0 {
		cfg.RetryInterval = 150 * time.Millisecond
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 10
	}
	cfg.CleanSession = true
	c, err := mqttsn.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Connect(); err != nil {
		t.Fatalf("connect %s: %v", cfg.ClientID, err)
	}
	return c
}

// TestConcurrentPublishAsyncQoS2ExactlyOnceLossy overlaps many QoS 2
// handshakes through a lossy, duplicating link and checks that every flow
// completes, acknowledgements are matched to the right msgID, and the
// broker still delivers each message exactly once despite retransmissions.
func TestConcurrentPublishAsyncQoS2ExactlyOnceLossy(t *testing.T) {
	b := startBroker(t)

	var received sync.Map
	var dupes atomic.Int64
	var handled atomic.Int64
	sub := connectClient(t, mqttsn.ClientConfig{ClientID: "sub-async", Gateway: b.Addr()})
	if err := sub.Subscribe("eo/async", mqttsn.QoS2, func(topic string, payload []byte) {
		if _, loaded := received.LoadOrStore(string(payload), true); loaded {
			dupes.Add(1)
		}
		handled.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lossy := netem.WrapPacketConn(raw, netem.Profile{LossRate: 0.2, DupRate: 0.2, Seed: 7})
	pub := connectClient(t, mqttsn.ClientConfig{
		ClientID:       "pub-async",
		Gateway:        b.Addr(),
		Conn:           lossy,
		RetryInterval:  100 * time.Millisecond,
		MaxRetries:     30,
		InflightWindow: 8,
	})

	const n = 40
	chans := make([]<-chan error, n)
	for i := 0; i < n; i++ {
		chans[i] = pub.PublishAsync("eo/async", []byte(fmt.Sprintf("am-%d", i)), mqttsn.QoS2)
	}
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatalf("async publish %d: %v", i, err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		count := 0
		received.Range(func(_, _ any) bool { count++; return true })
		if count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d unique messages", count, n)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if d := dupes.Load(); d != 0 {
		t.Errorf("QoS 2 delivered %d duplicates; exactly-once violated", d)
	}
	st := pub.Stats()
	if st.Retransmissions == 0 {
		t.Errorf("expected retransmissions over a 20%% lossy link, got none")
	}
	if st.PublishesSent != n {
		t.Errorf("PublishesSent = %d, want %d", st.PublishesSent, n)
	}
}

// TestPublishAsyncWindowLimitsInflight checks the window semaphore:
// with InflightWindow=w over a delayed link, submitting far more than w
// publishes must still keep at most w handshakes in flight, and all flows
// must complete.
func TestPublishAsyncWindowLimitsInflight(t *testing.T) {
	b := startBroker(t)
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A 20 ms one-way delay makes each QoS 2 handshake take ~40 ms, so
	// overlap (or its absence) is visible in wall-clock time.
	shaped := netem.WrapPacketConn(raw, netem.Profile{Delay: 20 * time.Millisecond})
	pub := connectClient(t, mqttsn.ClientConfig{
		ClientID:       "pub-window",
		Gateway:        b.Addr(),
		Conn:           shaped,
		RetryInterval:  time.Second,
		InflightWindow: 8,
	})
	// Pre-register so timing below covers only publish flows.
	if _, err := pub.RegisterTopic("win/topic"); err != nil {
		t.Fatal(err)
	}

	const n = 24
	start := time.Now()
	chans := make([]<-chan error, n)
	for i := 0; i < n; i++ {
		chans[i] = pub.PublishAsync("win/topic", []byte{byte(i)}, mqttsn.QoS2)
	}
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// Serial stop-and-wait would need n * ~40 ms ≈ 960 ms. A window of 8
	// needs about n/8 * 40 ms ≈ 120 ms; allow generous slack for CI.
	if elapsed > 700*time.Millisecond {
		t.Errorf("24 windowed publishes took %v; window does not overlap handshakes", elapsed)
	}
}

// TestPublishAsyncQoS0And1 covers the non-QoS2 async paths.
func TestPublishAsyncQoS0And1(t *testing.T) {
	b := startBroker(t)
	var count atomic.Int64
	sub := connectClient(t, mqttsn.ClientConfig{ClientID: "sub-q01", Gateway: b.Addr()})
	if err := sub.Subscribe("q01/topic", mqttsn.QoS1, func(string, []byte) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	pub := connectClient(t, mqttsn.ClientConfig{ClientID: "pub-q01", Gateway: b.Addr()})
	if err := <-pub.PublishAsync("q01/topic", []byte("zero"), mqttsn.QoS0); err != nil {
		t.Fatal(err)
	}
	if err := <-pub.PublishAsync("q01/topic", []byte("one"), mqttsn.QoS1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for count.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/2 messages", count.Load())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPublishAsyncAfterClose fails fast instead of hanging on the window.
func TestPublishAsyncAfterClose(t *testing.T) {
	b := startBroker(t)
	pub := connectClient(t, mqttsn.ClientConfig{ClientID: "pub-closed", Gateway: b.Addr()})
	if _, err := pub.RegisterTopic("closed/topic"); err != nil {
		t.Fatal(err)
	}
	pub.Close()
	err := <-pub.PublishAsync("closed/topic", []byte("x"), mqttsn.QoS2)
	if err == nil {
		t.Fatal("publish after close succeeded")
	}
}
