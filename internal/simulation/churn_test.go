package simulation

import (
	"testing"
	"time"
)

// TestChurnPlanDeterministic: the same seed yields the same plan; a
// different seed yields a different one.
func TestChurnPlanDeterministic(t *testing.T) {
	a := ChurnPlan(7, 50, time.Minute, 10*time.Second, time.Second)
	b := ChurnPlan(7, 50, time.Minute, 10*time.Second, time.Second)
	if len(a) == 0 {
		t.Fatal("empty plan for a minute-long run with 10s MTBF")
	}
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := ChurnPlan(8, 50, time.Minute, 10*time.Second, time.Second)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestChurnPlanWellFormed: events are time-sorted, inside the run, and
// every device's lifecycle alternates crash/rejoin starting with crash.
func TestChurnPlanWellFormed(t *testing.T) {
	duration := 30 * time.Second
	plan := ChurnPlan(42, 100, duration, 5*time.Second, time.Second)
	last := time.Duration(0)
	state := map[int]ChurnKind{} // last kind per device
	for i, ev := range plan {
		if ev.At < last {
			t.Fatalf("event %d out of order: %v after %v", i, ev.At, last)
		}
		last = ev.At
		if ev.At < 0 || ev.At >= duration {
			t.Fatalf("event %d outside run: %+v", i, ev)
		}
		if prev, ok := state[ev.Device]; ok && prev == ev.Kind {
			t.Fatalf("device %d has consecutive %v events", ev.Device, ev.Kind)
		} else if !ok && ev.Kind != Crash {
			t.Fatalf("device %d starts with %v, want crash", ev.Device, ev.Kind)
		}
		state[ev.Device] = ev.Kind
	}
	for d, k := range state {
		if k != Rejoin {
			t.Fatalf("device %d left down at end of plan", d)
		}
	}
}
