package simulation

import "time"

// Proc is a simulated process: a goroutine that advances virtual time by
// sleeping and blocking on queues. Exactly one Proc (or event callback)
// executes at a time, so process code needs no locking.
type Proc struct {
	eng  *Engine
	wake chan struct{}
	name string
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Go starts fn as a simulated process at the current virtual time.
// fn runs on its own goroutine but is interleaved deterministically with
// all other processes and events.
func (e *Engine) Go(name string, fn func(*Proc)) {
	p := &Proc{eng: e, wake: make(chan struct{}), name: name}
	e.nproc++
	e.Schedule(0, func() {
		go func() {
			defer func() {
				e.nproc--
				e.parked <- struct{}{} // final baton hand-back
			}()
			fn(p)
		}()
		<-e.parked // wait for the process to suspend or finish
	})
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	p.eng.Schedule(d, func() {
		p.wake <- struct{}{}
		<-p.eng.parked
	})
	p.suspend()
}

// suspend parks the process, handing the baton back to the engine, and
// blocks until another event resumes it.
func (p *Proc) suspend() {
	p.eng.parked <- struct{}{}
	<-p.wake
}

// resumeLater schedules the process to be woken at the current virtual time
// (after already-scheduled simultaneous events). Safe to call from event
// callbacks and from other processes.
func (p *Proc) resumeLater() {
	p.eng.Schedule(0, func() {
		p.wake <- struct{}{}
		<-p.eng.parked
	})
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
