// Package simulation provides a deterministic discrete-event simulation
// engine with a virtual clock, cancellable timed events, goroutine-backed
// processes, and blocking FIFO queues.
//
// The ProvLight reproduction uses this engine as the substitute for the
// FIT IoT-LAB / Grid'5000 testbeds: modeled edge devices, radios, network
// links, and provenance servers run as processes in virtual time, so the
// paper's hour-long workloads (100 tasks x 5 s x 10 repetitions x 22
// configurations) replay in milliseconds and produce bit-identical results
// across runs.
//
// Determinism: at most one process or event callback executes at any moment
// (a baton is handed between the engine goroutine and process goroutines),
// and simultaneous events fire in scheduling order.
package simulation

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index, -1 once popped
	canceled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() {
	ev.canceled = true
}

// At returns the virtual time the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// create one with NewEngine.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	parked chan struct{} // baton returned by process goroutines
	nproc  int           // live processes (running or suspended)
}

// NewEngine returns an engine with the virtual clock at zero.
func NewEngine() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now returns the current virtual time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Schedule registers fn to run after d of virtual time. A negative d is
// treated as zero. It returns a handle that can cancel the event.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt registers fn to run at absolute virtual time t; times in the
// past are clamped to the present.
func (e *Engine) ScheduleAt(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run fires events until none remain. Processes blocked on queues that are
// never signalled again are abandoned in place (their goroutines stay
// parked); well-formed models terminate all processes.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t and then sets the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for e.events.Len() > 0 {
		// Peek at the head, skipping cancelled events lazily.
		head := e.events[0]
		if head.canceled {
			heap.Pop(&e.events)
			continue
		}
		if head.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return e.events.Len() }

// Processes returns the number of live processes (running or suspended).
func (e *Engine) Processes() int { return e.nproc }
