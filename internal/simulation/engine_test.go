package simulation

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", got)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
}

func TestSimultaneousEventsFIFOBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events out of order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []time.Duration
	e.Schedule(time.Second, func() {
		at = append(at, e.Now())
		e.Schedule(2*time.Second, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != time.Second || at[1] != 3*time.Second {
		t.Errorf("nested event times = %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	e.Schedule(5*time.Second, func() { fired = append(fired, 5) })
	e.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Errorf("fired = %v, want [1]", fired)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
	e.Run()
	if len(fired) != 2 {
		t.Errorf("remaining event did not fire: %v", fired)
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func() {
		e.Schedule(-5*time.Second, func() {
			if e.Now() != 2*time.Second {
				t.Errorf("clamped event at %v, want 2s", e.Now())
			}
		})
	})
	e.Run()
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * time.Second)
		trace = append(trace, "a2")
		if p.Now() != 2*time.Second {
			t.Errorf("proc clock = %v, want 2s", p.Now())
		}
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(1 * time.Second)
		trace = append(trace, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Processes() != 0 {
		t.Errorf("live processes = %d, want 0", e.Processes())
	}
}

func TestQueueProducerConsumer(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](0)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Sleep(time.Second)
		}
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("consumed %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestQueueCapacityBlocksPutter(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](1)
	var putDone time.Duration
	e.Go("producer", func(p *Proc) {
		q.Put(p, 1) // fills the queue
		q.Put(p, 2) // must block until the consumer drains at t=5s
		putDone = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		if v, ok := q.Get(p); !ok || v != 1 {
			t.Errorf("Get = %v,%v", v, ok)
		}
		if v, ok := q.Get(p); !ok || v != 2 {
			t.Errorf("Get = %v,%v", v, ok)
		}
	})
	e.Run()
	if putDone != 5*time.Second {
		t.Errorf("second Put completed at %v, want 5s", putDone)
	}
}

func TestQueueTryOps(t *testing.T) {
	q := NewQueue[string](1)
	if !q.TryPut("x") {
		t.Fatal("TryPut into empty bounded queue failed")
	}
	if q.TryPut("y") {
		t.Fatal("TryPut into full queue succeeded")
	}
	if v, ok := q.TryGet(); !ok || v != "x" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Close()
	if q.TryPut("z") {
		t.Fatal("TryPut on closed queue succeeded")
	}
}

// Property: with a single producer and single consumer, items are received
// exactly once, in order, regardless of capacity and sleep pattern.
func TestQueueOrderProperty(t *testing.T) {
	f := func(n uint8, capacity uint8, producerGaps []uint8) bool {
		count := int(n%50) + 1
		e := NewEngine()
		q := NewQueue[int](int(capacity % 4))
		var got []int
		e.Go("p", func(p *Proc) {
			for i := 0; i < count; i++ {
				q.Put(p, i)
				gap := time.Duration(0)
				if len(producerGaps) > 0 {
					gap = time.Duration(producerGaps[i%len(producerGaps)]) * time.Millisecond
				}
				p.Sleep(gap)
			}
			q.Close()
		})
		e.Go("c", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		e.Run()
		if len(got) != count {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: virtual clock is monotonic across an arbitrary set of events.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestYield(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a-before")
		p.Yield()
		trace = append(trace, "a-after")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b")
	})
	e.Run()
	// a starts first, yields; b runs; then a resumes.
	if len(trace) != 3 || trace[0] != "a-before" || trace[1] != "b" || trace[2] != "a-after" {
		t.Errorf("trace = %v", trace)
	}
}
