package simulation

import (
	"math/rand/v2"
	"sort"
	"time"
)

// ChurnKind is what happens to a device at a churn event.
type ChurnKind int

const (
	// Crash kills the device process without warning (SIGKILL: the spool
	// survives on disk, in-flight protocol state is lost).
	Crash ChurnKind = iota
	// Rejoin restarts the device on its existing spool directory.
	Rejoin
)

// String returns "crash" or "rejoin".
func (k ChurnKind) String() string {
	if k == Crash {
		return "crash"
	}
	return "rejoin"
}

// ChurnEvent schedules one device lifecycle transition at an offset from
// the start of a run.
type ChurnEvent struct {
	At     time.Duration
	Device int
	Kind   ChurnKind
}

// ChurnPlan precomputes a deterministic crash/rejoin timeline for a
// device fleet: each device alternates an exponentially-distributed
// uptime (mean mtbf) with a downtime uniform in [downtime/2, downtime],
// clipped to the run duration. Every Crash is paired with a Rejoin (a
// device that crashes near the end rejoins before the run closes, so the
// drain phase can reach its spool). The same seed always produces the
// same plan — soak failures replay exactly.
func ChurnPlan(seed int64, devices int, duration, mtbf, downtime time.Duration) []ChurnEvent {
	if devices <= 0 || duration <= 0 || mtbf <= 0 {
		return nil
	}
	if downtime <= 0 {
		downtime = mtbf / 10
	}
	rng := rand.New(rand.NewPCG(uint64(seed), uint64(devices)))
	var plan []ChurnEvent
	for d := 0; d < devices; d++ {
		t := time.Duration(rng.ExpFloat64() * float64(mtbf))
		for t < duration {
			down := downtime/2 + time.Duration(rng.Int64N(int64(downtime/2)+1))
			rejoinAt := t + down
			if rejoinAt >= duration {
				// Clip: rejoin just inside the run so the device's spool is
				// drained and verified rather than stranded.
				rejoinAt = duration - 1
				if rejoinAt <= t {
					break
				}
			}
			plan = append(plan, ChurnEvent{At: t, Device: d, Kind: Crash})
			plan = append(plan, ChurnEvent{At: rejoinAt, Device: d, Kind: Rejoin})
			t = rejoinAt + time.Duration(rng.ExpFloat64()*float64(mtbf))
		}
	}
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	return plan
}
