package simulation

// Queue is a FIFO channel between simulated processes. A zero capacity
// means unbounded. Put blocks while the queue is full; Get blocks while it
// is empty. Close wakes all blocked getters; once a closed queue drains,
// Get returns ok=false.
type Queue[T any] struct {
	items   []T
	cap     int
	closed  bool
	getters []*Proc
	putters []*Proc
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{cap: capacity}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put enqueues v, blocking the calling process while the queue is full.
// Put panics if the queue is closed (a model bug, mirroring Go channels).
func (q *Queue[T]) Put(p *Proc, v T) {
	for !q.closed && q.cap > 0 && len(q.items) >= q.cap {
		q.putters = append(q.putters, p)
		p.suspend()
	}
	if q.closed {
		panic("simulation: Put on closed Queue")
	}
	q.items = append(q.items, v)
	q.wakeOneGetter()
}

// TryPut enqueues v without blocking; it reports whether the item was
// accepted (false when full or closed).
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || (q.cap > 0 && len(q.items) >= q.cap) {
		return false
	}
	q.items = append(q.items, v)
	q.wakeOneGetter()
	return true
}

// Get dequeues the oldest item, blocking the calling process while the
// queue is empty. It returns ok=false once the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.getters = append(q.getters, p)
		p.suspend()
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.wakeOnePutter()
	return v, true
}

// TryGet dequeues without blocking; ok=false when nothing is available.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.wakeOnePutter()
	return v, true
}

// Close marks the queue closed and wakes every blocked process so getters
// can observe the drained state.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, g := range q.getters {
		g.resumeLater()
	}
	q.getters = nil
	for _, p := range q.putters {
		p.resumeLater()
	}
	q.putters = nil
}

func (q *Queue[T]) wakeOneGetter() {
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.resumeLater()
	}
}

func (q *Queue[T]) wakeOnePutter() {
	if len(q.putters) > 0 {
		p := q.putters[0]
		q.putters = q.putters[1:]
		p.resumeLater()
	}
}
