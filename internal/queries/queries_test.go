package queries

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
)

// buildTrainingStore ingests a small FL training history: 3 learning
// rates x 5 epochs each.
func buildTrainingStore(t *testing.T) *dfanalyzer.Store {
	t.Helper()
	store := dfanalyzer.NewStore()
	df := &dfanalyzer.Dataflow{
		Tag: "fl",
		Transformations: []dfanalyzer.Transformation{{
			Tag: "training",
			Input: []dfanalyzer.SetSchema{{Tag: "training_input", Attributes: []dfanalyzer.Attribute{
				{Name: "lr", Type: dfanalyzer.Numeric},
			}}},
			Output: []dfanalyzer.SetSchema{{Tag: "training_output", Attributes: []dfanalyzer.Attribute{
				{Name: "epoch", Type: dfanalyzer.Numeric},
				{Name: "loss", Type: dfanalyzer.Numeric},
				{Name: "accuracy", Type: dfanalyzer.Numeric},
			}}},
		}},
	}
	if err := store.RegisterDataflow(df); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2023, 7, 20, 9, 0, 0, 0, time.UTC)
	for i, lr := range []float64{0.1, 0.01, 0.001} {
		for epoch := 0; epoch < 5; epoch++ {
			id := fmt.Sprintf("lr%d-e%d", i, epoch)
			start := base.Add(time.Duration(epoch) * time.Minute)
			end := start.Add(30 * time.Second)
			// Accuracy improves with epochs; lr=0.01 works best.
			acc := 0.5 + 0.05*float64(epoch)
			if lr == 0.01 {
				acc += 0.2
			}
			if err := store.IngestTask(&dfanalyzer.TaskMsg{
				Dataflow: "fl", Transformation: "training", ID: id,
				Status: dfanalyzer.StatusRunning, StartTime: &start,
				Sets: []dfanalyzer.SetData{{Tag: "training_input",
					Elements: []dfanalyzer.Element{{lr}}}},
			}); err != nil {
				t.Fatal(err)
			}
			if err := store.IngestTask(&dfanalyzer.TaskMsg{
				Dataflow: "fl", Transformation: "training", ID: id,
				Status: dfanalyzer.StatusFinished, EndTime: &end,
				Sets: []dfanalyzer.SetData{{Tag: "training_output",
					Elements: []dfanalyzer.Element{{float64(epoch), 1 - acc, acc}}}},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store
}

func TestTopKAccuracy(t *testing.T) {
	store := buildTrainingStore(t)
	rows, err := TopKAccuracy(context.Background(), store, "fl", "training_output", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Best three are the lr=0.01 runs at the highest epochs.
	if a := rows[0]["accuracy"].(float64); a < 0.89 || a > 0.91 { // 0.5+0.05*4+0.2
		t.Errorf("best accuracy = %v, want 0.9", rows[0]["accuracy"])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i]["accuracy"].(float64) > rows[i-1]["accuracy"].(float64) {
			t.Error("rows not descending")
		}
	}
}

func TestLatestEpochMetrics(t *testing.T) {
	store := buildTrainingStore(t)
	ms, err := LatestEpochMetrics(context.Background(), store, "fl", "training_output")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 15 {
		t.Fatalf("metrics = %d, want 15", len(ms))
	}
	last := ms[len(ms)-1]
	if last.Epoch != 4 {
		t.Errorf("latest epoch = %v, want 4", last.Epoch)
	}
	if last.Elapsed != 30*time.Second {
		t.Errorf("elapsed = %v, want 30s (from task catalog)", last.Elapsed)
	}
	if last.Loss <= 0 || last.Accuracy <= 0 {
		t.Errorf("metrics not populated: %+v", last)
	}
}

func TestAccuracyByHyperparam(t *testing.T) {
	store := buildTrainingStore(t)
	sums, err := AccuracyByHyperparam(context.Background(), store, "fl", "training_input", "training_output", "lr")
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("groups = %d, want 3", len(sums))
	}
	if sums[0].Value != "0.01" {
		t.Errorf("best hyperparameter = %s, want 0.01", sums[0].Value)
	}
	if sums[0].Runs != 5 {
		t.Errorf("runs = %d, want 5", sums[0].Runs)
	}
	if sums[0].BestAccuracy < 0.89 || sums[0].BestAccuracy > 0.91 {
		t.Errorf("best accuracy = %v, want 0.9", sums[0].BestAccuracy)
	}
	if sums[0].MeanAccuracy <= sums[1].MeanAccuracy {
		t.Error("mean accuracy of best group should lead")
	}
	if _, err := AccuracyByHyperparam(context.Background(), store, "fl", "training_input", "training_output", "ghost"); err == nil {
		t.Error("unknown attribute should fail")
	}
}
