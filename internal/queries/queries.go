// Package queries implements the Federated-Learning provenance analysis
// queries that motivate the paper (§I): per-epoch training metrics per
// hyperparameter combination, and top-k accuracy retrieval. They are
// written purely against the backend-agnostic source.Source interface, so
// the same query runs identically against the in-memory target, the local
// DfAnalyzer column store, or a remote DfAnalyzer server — mirroring how
// the E2Clab Provenance Manager is used (§V-A, §VII-B).
package queries

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/provlight/provlight/internal/source"
)

// EpochMetrics is one training epoch's captured provenance.
type EpochMetrics struct {
	TaskID   string
	Epoch    float64
	Loss     float64
	Accuracy float64
	Elapsed  time.Duration
}

// TopKAccuracy answers query (ii) of §I: "Retrieve the hyperparameters
// which obtained the k best accuracy values for model m": the top-k output
// rows of the training set ordered by accuracy.
func TopKAccuracy(ctx context.Context, src source.Source, dataflow, outputSet string, k int) ([]source.Row, error) {
	return src.Select(ctx, source.Query{
		Dataflow: dataflow,
		Set:      outputSet,
		OrderBy:  "accuracy",
		Desc:     true,
		Limit:    k,
	})
}

// LatestEpochMetrics answers query (i) of §I: "What are the elapsed time
// and the training loss in the latest epoch?" It joins output rows with
// the task catalog for elapsed times and returns epochs in order. The
// catalog is fetched once with Source.Tasks, so the join costs two round
// trips total on a remote backend regardless of the row count.
func LatestEpochMetrics(ctx context.Context, src source.Source, dataflow, outputSet string) ([]EpochMetrics, error) {
	rows, err := src.Select(ctx, source.Query{
		Dataflow: dataflow,
		Set:      outputSet,
		OrderBy:  "epoch",
	})
	if err != nil {
		return nil, err
	}
	catalog, err := src.Tasks(ctx, dataflow)
	if err != nil {
		return nil, err
	}
	elapsed := make(map[string]time.Duration, len(catalog))
	for i := range catalog {
		elapsed[catalog[i].ID] = catalog[i].Elapsed()
	}
	out := make([]EpochMetrics, 0, len(rows))
	for _, row := range rows {
		m := EpochMetrics{TaskID: str(row["task_id"])}
		m.Epoch = num(row["epoch"])
		m.Loss = num(row["loss"])
		m.Accuracy = num(row["accuracy"])
		m.Elapsed = elapsed[m.TaskID]
		out = append(out, m)
	}
	return out, nil
}

// HyperparamSummary aggregates accuracy per hyperparameter value, answering
// "analyze hyperparameter values related to the training stages".
type HyperparamSummary struct {
	Value        string
	Runs         int
	BestAccuracy float64
	MeanAccuracy float64
}

// AccuracyByHyperparam groups the output set's accuracy by the given input
// attribute (e.g. learning rate), matching input and output rows through
// their producing task.
func AccuracyByHyperparam(ctx context.Context, src source.Source, dataflow, inputSet, outputSet, attr string) ([]HyperparamSummary, error) {
	inputs, err := src.Select(ctx, source.Query{Dataflow: dataflow, Set: inputSet})
	if err != nil {
		return nil, err
	}
	byTask := map[string]string{}
	for _, row := range inputs {
		v, ok := row[attr]
		if !ok {
			return nil, fmt.Errorf("queries: attribute %q not in set %q", attr, inputSet)
		}
		byTask[str(row["task_id"])] = fmt.Sprint(v)
	}
	outputs, err := src.Select(ctx, source.Query{Dataflow: dataflow, Set: outputSet})
	if err != nil {
		return nil, err
	}
	type acc struct {
		n    int
		sum  float64
		best float64
	}
	groups := map[string]*acc{}
	for _, row := range outputs {
		hp, ok := byTask[str(row["task_id"])]
		if !ok {
			continue
		}
		a := groups[hp]
		if a == nil {
			a = &acc{}
			groups[hp] = a
		}
		v := num(row["accuracy"])
		a.n++
		a.sum += v
		if v > a.best {
			a.best = v
		}
	}
	out := make([]HyperparamSummary, 0, len(groups))
	for hp, a := range groups {
		out = append(out, HyperparamSummary{
			Value:        hp,
			Runs:         a.n,
			BestAccuracy: a.best,
			MeanAccuracy: a.sum / float64(a.n),
		})
	}
	// Tie-break on the hyperparameter value: the groups come out of a map,
	// so without it equal-accuracy groups would surface in random order
	// (and differently across Source backends).
	sort.Slice(out, func(i, j int) bool {
		if out[i].BestAccuracy != out[j].BestAccuracy {
			return out[i].BestAccuracy > out[j].BestAccuracy
		}
		return out[i].Value < out[j].Value
	})
	return out, nil
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}

func str(v any) string {
	s, _ := v.(string)
	return s
}
