package queries

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/dfanalyzer"
	"github.com/provlight/provlight/internal/provdm"
	"github.com/provlight/provlight/internal/source"
	"github.com/provlight/provlight/internal/translate"
)

// trainingRecords builds the FL training history as the capture records a
// device would emit: 3 learning rates x 5 epochs, one task per epoch with
// hyperparameters in and loss/accuracy out.
func trainingRecords() []provdm.Record {
	base := time.Date(2023, 7, 20, 9, 0, 0, 0, time.UTC)
	var records []provdm.Record
	records = append(records, provdm.Record{
		Event: provdm.EventWorkflowBegin, WorkflowID: "w", Time: base,
	})
	for i, lr := range []float64{0.1, 0.01, 0.001} {
		for epoch := 0; epoch < 5; epoch++ {
			id := fmt.Sprintf("lr%d-e%d", i, epoch)
			start := base.Add(time.Duration(epoch) * time.Minute)
			end := start.Add(30 * time.Second)
			acc := 0.5 + 0.05*float64(epoch)
			if lr == 0.01 {
				acc += 0.2
			}
			records = append(records, provdm.Record{
				Event: provdm.EventTaskBegin, WorkflowID: "w", TaskID: id,
				Transformation: "training", Status: provdm.StatusRunning,
				Data: []provdm.DataRef{{ID: "in-" + id, Attributes: []provdm.Attribute{
					{Name: "lr", Value: lr},
				}}},
				Time: start,
			})
			records = append(records, provdm.Record{
				Event: provdm.EventTaskEnd, WorkflowID: "w", TaskID: id,
				Transformation: "training", Status: provdm.StatusFinished,
				Data: []provdm.DataRef{{ID: "out-" + id, Attributes: []provdm.Attribute{
					{Name: "epoch", Value: float64(epoch)},
					{Name: "loss", Value: 1 - acc},
					{Name: "accuracy", Value: acc},
				}}},
				Time: end,
			})
		}
	}
	records = append(records, provdm.Record{
		Event: provdm.EventWorkflowEnd, WorkflowID: "w", Time: base.Add(time.Hour),
	})
	return records
}

// buildSources feeds one identical record stream to every backend and
// returns them as Sources: the in-memory target, the local DfAnalyzer
// column store, and the remote DfAnalyzer client reaching that store over
// HTTP.
func buildSources(t *testing.T) map[string]source.Source {
	t.Helper()
	const dataflow = "fl"
	records := trainingRecords()

	mem := translate.NewMemoryTargetForDataflow(dataflow)

	dfaSrv := dfanalyzer.NewServer(nil)
	if err := dfaSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dfaSrv.Close() })
	dfaTarget := translate.NewDfAnalyzerTarget(
		dfanalyzer.NewClient("http://"+dfaSrv.Addr()), dataflow)

	// Deliver frame by frame, as the translator would.
	for i := range records {
		frame := records[i : i+1]
		if err := mem.Deliver(frame); err != nil {
			t.Fatal(err)
		}
		if err := dfaTarget.Deliver(frame); err != nil {
			t.Fatal(err)
		}
	}

	return map[string]source.Source{
		"memory": mem,
		"store":  dfaSrv.Store(),
		"remote": dfanalyzer.NewClient("http://" + dfaSrv.Addr()),
	}
}

// TestQueriesIdenticalAcrossSources is the acceptance check of the Source
// redesign: TopKAccuracy and LatestEpochMetrics produce byte-identical
// results against the in-memory target, the local DfAnalyzer store, and
// the remote DfAnalyzer HTTP client.
func TestQueriesIdenticalAcrossSources(t *testing.T) {
	ctx := context.Background()
	sources := buildSources(t)

	cases := []struct {
		name string
		run  func(src source.Source) (any, error)
	}{
		{"TopKAccuracy", func(src source.Source) (any, error) {
			return TopKAccuracy(ctx, src, "fl", "training_output", 3)
		}},
		{"LatestEpochMetrics", func(src source.Source) (any, error) {
			return LatestEpochMetrics(ctx, src, "fl", "training_output")
		}},
		{"AccuracyByHyperparam", func(src source.Source) (any, error) {
			return AccuracyByHyperparam(ctx, src, "fl", "training_input", "training_output", "lr")
		}},
		{"PredicateSelect", func(src source.Source) (any, error) {
			return src.Select(ctx, source.Query{
				Dataflow: "fl", Set: "training_output",
				Where:   []source.Pred{{Attr: "accuracy", Op: source.Ge, Value: 0.7}},
				OrderBy: "loss", Limit: 4,
			})
		}},
		{"Workflows", func(src source.Source) (any, error) {
			return src.Workflows(ctx)
		}},
		{"Task", func(src source.Source) (any, error) {
			return src.Task(ctx, "fl", "w/lr1-e4")
		}},
		{"Tasks", func(src source.Source) (any, error) {
			return src.Tasks(ctx, "fl")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var wantName string
			var want []byte
			for name, src := range sources {
				got, err := tc.run(src)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				data, err := json.Marshal(got)
				if err != nil {
					t.Fatalf("%s: marshal: %v", name, err)
				}
				if want == nil {
					wantName, want = name, data
					continue
				}
				if !bytes.Equal(data, want) {
					t.Errorf("results diverge:\n  %s: %s\n  %s: %s", wantName, want, name, data)
				}
			}
		})
	}
}

// TestSourceTopKMatchesSeedBehaviour pins the actual values so a uniform
// regression across all three backends cannot slip through the
// equality-only test above.
func TestSourceTopKMatchesSeedBehaviour(t *testing.T) {
	ctx := context.Background()
	for name, src := range buildSources(t) {
		rows, err := TopKAccuracy(ctx, src, "fl", "training_output", 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 3 {
			t.Fatalf("%s: rows = %d, want 3", name, len(rows))
		}
		if a := rows[0]["accuracy"].(float64); a < 0.89 || a > 0.91 {
			t.Errorf("%s: best accuracy = %v, want 0.9", name, rows[0]["accuracy"])
		}
		if id := rows[0]["task_id"].(string); id != "w/lr1-e4" {
			t.Errorf("%s: best task = %q, want w/lr1-e4", name, id)
		}
		ms, err := LatestEpochMetrics(ctx, src, "fl", "training_output")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ms) != 15 {
			t.Fatalf("%s: metrics = %d, want 15", name, len(ms))
		}
		last := ms[len(ms)-1]
		if last.Epoch != 4 {
			t.Errorf("%s: latest epoch = %v, want 4", name, last.Epoch)
		}
		if last.Elapsed != 30*time.Second {
			t.Errorf("%s: elapsed = %v, want 30s (task catalog join)", name, last.Elapsed)
		}
	}
}

// TestSourceErrNotFound checks the not-found contract across backends.
func TestSourceErrNotFound(t *testing.T) {
	ctx := context.Background()
	for name, src := range buildSources(t) {
		if _, err := src.Task(ctx, "fl", "ghost"); !errors.Is(err, source.ErrNotFound) {
			t.Errorf("%s: Task(ghost) error = %v, want ErrNotFound", name, err)
		}
	}
}

// TestSourceContextCancelled checks that every backend honours an
// already-cancelled context.
func TestSourceContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, src := range buildSources(t) {
		if _, err := src.Select(ctx, source.Query{Dataflow: "fl", Set: "training_output"}); err == nil {
			t.Errorf("%s: Select with cancelled ctx should fail", name)
		}
	}
}
