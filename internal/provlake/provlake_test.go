package provlake

import (
	"fmt"
	"testing"
	"time"

	"github.com/provlight/provlight/internal/capture"
	"github.com/provlight/provlight/internal/provdm"
)

var _ capture.Client = (*Client)(nil)

func taskRecord(i int) *provdm.Record {
	return &provdm.Record{
		Event: provdm.EventTaskEnd, WorkflowID: "wf1",
		TaskID: fmt.Sprintf("t%d", i), Transformation: "train",
		Status: provdm.StatusFinished,
		Data: []provdm.DataRef{{ID: fmt.Sprintf("out%d", i), Attributes: []provdm.Attribute{
			{Name: "loss", Value: 0.5}, {Name: "epoch", Value: int64(i)},
		}}},
		Time: time.Now(),
	}
}

func TestFromRecord(t *testing.T) {
	pr, err := FromRecord(taskRecord(3))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Type != TypeTask || pr.Event != EventEnd || pr.TaskID != "t3" {
		t.Errorf("request = %+v", pr)
	}
	if pr.Generated["loss"] != 0.5 {
		t.Errorf("generated = %v", pr.Generated)
	}
	if pr.Values != nil {
		t.Errorf("begin values on end event: %v", pr.Values)
	}
	wb, err := FromRecord(&provdm.Record{Event: provdm.EventWorkflowBegin, WorkflowID: "wf1", Time: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	if wb.Type != TypeWorkflow || wb.Event != EventBegin {
		t.Errorf("workflow begin = %+v", wb)
	}
}

func TestValidate(t *testing.T) {
	bad := []ProvRequest{
		{},
		{WorkflowID: "w", Type: "weird", Event: EventBegin},
		{WorkflowID: "w", Type: TypeTask, Event: EventBegin}, // missing task id
		{WorkflowID: "w", Type: TypeWorkflow, Event: "sideways"},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestStoreAppendAndQuery(t *testing.T) {
	s := NewStore()
	var reqs []ProvRequest
	for i := 0; i < 5; i++ {
		pr, _ := FromRecord(taskRecord(i))
		reqs = append(reqs, *pr)
	}
	if err := s.Append(reqs); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 5 {
		t.Errorf("count = %d", s.Count())
	}
	if wfs := s.Workflows(); len(wfs) != 1 || wfs[0] != "wf1" {
		t.Errorf("workflows = %v", wfs)
	}
	docs := s.ForWorkflow("wf1")
	if len(docs) != 5 || docs[0].TaskID != "t0" || docs[4].TaskID != "t4" {
		t.Errorf("docs out of order: %v", docs)
	}
}

func TestClientServerUngrouped(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient("http://" + srv.Addr())
	for i := 0; i < 10; i++ {
		if err := c.Capture(taskRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Store().Count(); got != 10 {
		t.Errorf("stored = %d, want 10", got)
	}
	// Ungrouped: one HTTP request per message.
	if got := srv.Requests(); got != 10 {
		t.Errorf("requests = %d, want 10 (no grouping)", got)
	}
}

func TestClientServerGrouped(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient("http://"+srv.Addr(), WithGroupSize(4))
	for i := 0; i < 10; i++ {
		if err := c.Capture(taskRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil { // flushes the trailing partial group
		t.Fatal(err)
	}
	if got := srv.Store().Count(); got != 10 {
		t.Errorf("stored = %d, want 10", got)
	}
	// Grouped by 4: ceil(10/4) = 3 transmissions.
	if got := c.Flushes(); got != 3 {
		t.Errorf("flushes = %d, want 3", got)
	}
	if got := srv.Requests(); got != 3 {
		t.Errorf("requests = %d, want 3 (grouping by 4)", got)
	}
	// Order preserved across groups.
	docs := srv.Store().ForWorkflow("wf1")
	for i, d := range docs {
		if d.TaskID != fmt.Sprintf("t%d", i) {
			t.Fatalf("doc %d = %s, order broken", i, d.TaskID)
		}
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // unreachable; must not be contacted
	if err := c.Flush(); err != nil {
		t.Errorf("empty flush should not hit the network: %v", err)
	}
}

func TestServerRejectsBadBatch(t *testing.T) {
	srv := NewServer(nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s := NewStore()
	err := s.Append([]ProvRequest{{WorkflowID: ""}})
	if err == nil {
		t.Error("invalid request should be rejected")
	}
}
