package provlake

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store is ProvLake's document backend: an append-only log of prov
// requests indexed by workflow.
type Store struct {
	mu   sync.RWMutex
	docs []ProvRequest
	byWF map[string][]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byWF: map[string][]int{}}
}

// Append stores a batch of requests.
func (s *Store) Append(reqs []ProvRequest) error {
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range reqs {
		s.byWF[r.WorkflowID] = append(s.byWF[r.WorkflowID], len(s.docs))
		s.docs = append(s.docs, r)
	}
	return nil
}

// Count returns the total number of stored requests.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Workflows lists workflow ids, sorted.
func (s *Store) Workflows() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byWF))
	for id := range s.byWF {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ForWorkflow returns all requests of a workflow in capture order.
func (s *Store) ForWorkflow(id string) []ProvRequest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byWF[id]
	out := make([]ProvRequest, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, s.docs[i])
	}
	return out
}

// Server is the ProvLake manager service: a JSON-over-HTTP ingestion
// endpoint (the paper's "ProvLake uWSGI HTTP server", Fig. 5).
type Server struct {
	store *Store
	http  *http.Server
	lis   net.Listener

	// ProcessingDelay adds artificial per-request work for tests that
	// emulate the Python backend.
	ProcessingDelay time.Duration

	requests atomic.Uint64
}

// NewServer creates a server around store (a fresh one if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{store: store}
}

// Store returns the backing store.
func (s *Server) Store() *Store { return s.store }

// Requests returns the number of HTTP requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Start listens and serves until Close.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("provlake: listen %s: %w", addr, err)
	}
	s.lis = lis
	mux := http.NewServeMux()
	mux.HandleFunc("/prov", s.handleProv)
	mux.HandleFunc("/workflows", s.handleWorkflows)
	mux.HandleFunc("/workflow", s.handleWorkflow)
	s.http = &http.Server{Handler: mux}
	go s.http.Serve(lis)
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close shuts the server down.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) handleProv(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if d := s.ProcessingDelay; d > 0 {
		time.Sleep(d)
	}
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var reqs []ProvRequest
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.store.Append(reqs); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"stored":%d}`, len(reqs))
}

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.store.Workflows())
}

func (s *Server) handleWorkflow(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.store.ForWorkflow(id))
}
