package provlake

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

// Client is the ProvLake capture library. Each captured message becomes a
// ProvRequest; with GroupSize == 0 every message is shipped immediately in
// its own blocking HTTP request (the default behaviour measured in
// Table II), while GroupSize > 0 buffers that many messages and ships them
// in one request (the grouping strategy of Table III).
type Client struct {
	base      string
	hc        *http.Client
	groupSize int

	mu     sync.Mutex
	buffer []ProvRequest

	flushes uint64
}

// Option configures a Client.
type Option func(*Client)

// WithGroupSize enables grouping of n captured messages per transmission.
func WithGroupSize(n int) Option {
	return func(c *Client) { c.groupSize = n }
}

// NewClient returns a capture client for the manager at baseURL.
func NewClient(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: baseURL,
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Flushes returns how many HTTP transmissions the client has performed.
func (c *Client) Flushes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushes
}

// Capture implements capture.Client: converts and ships (or buffers) one
// provenance record.
func (c *Client) Capture(rec *provdm.Record) error {
	pr, err := FromRecord(rec)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.buffer = append(c.buffer, *pr)
	shouldFlush := c.groupSize <= 0 || len(c.buffer) >= c.groupSize
	var batch []ProvRequest
	if shouldFlush {
		batch = c.buffer
		c.buffer = nil
	}
	c.mu.Unlock()
	if shouldFlush {
		return c.send(batch)
	}
	return nil
}

// Flush ships any buffered messages.
func (c *Client) Flush() error {
	c.mu.Lock()
	batch := c.buffer
	c.buffer = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	return c.send(batch)
}

// Close flushes and releases the client.
func (c *Client) Close() error {
	err := c.Flush()
	c.hc.CloseIdleConnections()
	return err
}

func (c *Client) send(batch []ProvRequest) error {
	data, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/prov", "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("provlake: manager returned %s: %s", resp.Status, msg)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	c.mu.Lock()
	c.flushes++
	c.mu.Unlock()
	return nil
}
