// Package provlake re-implements the ProvLake capture path (Souza et al.,
// eScience 2019): the second baseline of the paper's evaluation. Like the
// open-source ProvLake library, the client ships JSON provenance request
// documents to a manager service over blocking HTTP 1.1, and optionally
// groups several captured messages into one request to reduce transmission
// frequency (the feature analyzed in Table III).
package provlake

import (
	"fmt"
	"time"

	"github.com/provlight/provlight/internal/provdm"
)

// RequestType distinguishes workflow- and task-level prov requests.
type RequestType string

// Request types.
const (
	TypeWorkflow RequestType = "workflow"
	TypeTask     RequestType = "task"
)

// Event is the lifecycle edge a request captures.
type Event string

// Events.
const (
	EventBegin Event = "begin"
	EventEnd   Event = "end"
)

// ProvObj carries the PROV typing boilerplate the original system attaches
// to every request document.
type ProvObj struct {
	ActType    string `json:"act_type"`
	EntityType string `json:"entity_type"`
	AgentID    string `json:"agent_id"`
	Schema     string `json:"schema"`
}

// ClientInfo identifies the capture library instance (part of every
// request document in the original system).
type ClientInfo struct {
	Library  string `json:"library"`
	Version  string `json:"version"`
	Hostname string `json:"hostname"`
}

// ProvRequest is one captured provenance message, the JSON unit ProvLake
// accumulates and ships. The envelope (ID, DataflowName, ProvObj, Client)
// mirrors the verbosity of the original system's documents; it is part of
// why the baseline transmits ~2x more bytes than ProvLight (Fig. 6c).
type ProvRequest struct {
	ID           string         `json:"id"`
	WorkflowID   string         `json:"workflow_id"`
	DataflowName string         `json:"dataflow_name"`
	Type         RequestType    `json:"type"`
	Event        Event          `json:"event"`
	TaskID       string         `json:"task_id,omitempty"`
	Activity     string         `json:"activity,omitempty"`
	Dependencies []string       `json:"dependencies,omitempty"`
	Values       map[string]any `json:"values,omitempty"`
	Generated    map[string]any `json:"generated,omitempty"`
	ProvObj      ProvObj        `json:"prov_obj"`
	Client       ClientInfo     `json:"client"`
	Timestamp    time.Time      `json:"timestamp"`
}

// Validate checks the request shape.
func (r *ProvRequest) Validate() error {
	if r.WorkflowID == "" {
		return fmt.Errorf("provlake: workflow_id required")
	}
	switch r.Type {
	case TypeWorkflow:
	case TypeTask:
		if r.TaskID == "" {
			return fmt.Errorf("provlake: task request requires task_id")
		}
	default:
		return fmt.Errorf("provlake: unknown request type %q", r.Type)
	}
	switch r.Event {
	case EventBegin, EventEnd:
	default:
		return fmt.Errorf("provlake: unknown event %q", r.Event)
	}
	return nil
}

// FromRecord converts a ProvLight exchange record into a ProvLake request.
func FromRecord(rec *provdm.Record) (*ProvRequest, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	pr := &ProvRequest{
		WorkflowID:   rec.WorkflowID,
		DataflowName: "dataflow-" + rec.WorkflowID,
		ProvObj: ProvObj{
			ActType:    "prov:Activity",
			EntityType: "prov:Entity",
			AgentID:    "workflow:" + rec.WorkflowID,
			Schema:     "provlake/v1",
		},
		Client:    ClientInfo{Library: "provlake-lib", Version: "0.3.7", Hostname: "edge-device"},
		Timestamp: rec.Time,
	}
	switch rec.Event {
	case provdm.EventWorkflowBegin:
		pr.Type, pr.Event = TypeWorkflow, EventBegin
	case provdm.EventWorkflowEnd:
		pr.Type, pr.Event = TypeWorkflow, EventEnd
	case provdm.EventTaskBegin:
		pr.Type, pr.Event = TypeTask, EventBegin
	case provdm.EventTaskEnd:
		pr.Type, pr.Event = TypeTask, EventEnd
	}
	pr.ID = fmt.Sprintf("plk-%s-%s-%s", rec.WorkflowID, rec.TaskID, pr.Event)
	if pr.Type == TypeTask {
		pr.TaskID = rec.TaskID
		pr.Activity = rec.Transformation
		pr.Dependencies = rec.Dependencies
		vals := map[string]any{}
		for _, d := range rec.Data {
			for _, a := range d.Attributes {
				vals[a.Name] = a.Value
			}
		}
		if rec.Event == provdm.EventTaskBegin {
			pr.Values = vals
		} else {
			pr.Generated = vals
		}
	}
	return pr, nil
}
