// Package replica implements WAL-shipping replication for the durable
// DfAnalyzer store: a primary streams its write-ahead log to followers —
// sealed segments for catch-up, then the live tail — and each follower
// replays the records into its own store, serving Source queries as a
// read replica. Failover is explicit and fenced by a monotonic term (see
// internal/dfanalyzer's replication.go for the fencing model); promotion
// picks the most-caught-up follower, and with Server.MinSync > 0 the ack
// path waits for replication, so an acknowledged frame survives the loss
// of the primary.
package replica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// The wire protocol is length-prefixed binary over one TCP connection
// per follower, initiated by the follower:
//
//	[1-byte type][4-byte big-endian payload length][payload][4-byte CRC32C]
//
// The CRC covers the payload and is *re-verified* on receipt even though
// TCP has its own checksums: WAL records cross process and disk
// boundaries on both ends, and a corruption introduced anywhere between
// the primary's disk and the follower's append must not be silently
// replayed into a replica.
//
// Handshake: the follower sends hello (its id, resume offset, term, and
// last applied seq); the primary answers welcome, optionally ships a
// snapshot when the follower's offset predates the primary's retained
// WAL, then streams records. Heartbeats flow primary→follower when the
// tail is idle; acks flow follower→primary carrying the applied seq
// (the input to lag stats and semi-sync commit waits).

const (
	msgHello     byte = 1 // follower → primary: JSON helloMsg
	msgWelcome   byte = 2 // primary → follower: JSON welcomeMsg
	msgSnapshot  byte = 3 // primary → follower: [8-byte snapSeq][snapshot doc]
	msgRecord    byte = 4 // primary → follower: [8-byte seq][WAL payload]
	msgHeartbeat byte = 5 // primary → follower: [8-byte primary last seq]
	msgAck       byte = 6 // follower → primary: [8-byte applied seq]
	msgError     byte = 7 // either direction: UTF-8 reason, then close
)

// maxMessage bounds one protocol message (a snapshot is the largest).
const maxMessage = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// helloMsg opens a replication session.
type helloMsg struct {
	// ID names the follower (stable across reconnects; the primary keys
	// lag stats by it).
	ID string `json:"id"`
	// From is the first sequence number the follower wants (its last
	// applied + 1 — the resumable offset).
	From uint64 `json:"from"`
	// Term and LastApplied let the primary detect divergence: a follower
	// on an older term whose log extends past the promotion point of the
	// current term carries records that were never replicated.
	Term        uint64 `json:"term"`
	LastApplied uint64 `json:"last_applied"`
}

// welcomeMsg accepts a replication session.
type welcomeMsg struct {
	Term     uint64 `json:"term"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// Snapshot announces that a msgSnapshot follows before the record
	// stream (the follower's offset predates the retained WAL).
	Snapshot bool `json:"snapshot"`
}

// writeMsg frames and writes one protocol message.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxMessage {
		return fmt.Errorf("replica: message of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 0, 5+len(payload)+4)
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	_, err := w.Write(buf)
	return err
}

// readMsg reads and CRC-verifies one protocol message.
func readMsg(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxMessage {
		return 0, nil, fmt.Errorf("replica: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	payload = body[:n]
	want := binary.BigEndian.Uint32(body[n:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return 0, nil, fmt.Errorf("replica: message crc mismatch (type %d)", hdr[0])
	}
	return hdr[0], payload, nil
}

func writeJSONMsg(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeMsg(w, typ, payload)
}

// seqPayload frames an 8-byte sequence number plus optional body.
func seqPayload(seq uint64, body []byte) []byte {
	buf := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint64(buf, seq)
	return append(buf, body...)
}

// splitSeqPayload undoes seqPayload.
func splitSeqPayload(p []byte) (seq uint64, body []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("replica: short seq payload (%d bytes)", len(p))
	}
	return binary.BigEndian.Uint64(p), p[8:], nil
}
